// Ablation A1: degree of redundancy. The paper states it "observed
// diminishing returns with N <= 2 zones" and evaluates N = 3; this sweep
// quantifies cost and availability as N grows from 1 to 3 in both
// volatility windows (Markov-Daly, bid $0.81).
//
// Usage: bench_ablation_zones [num_experiments]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "market/spot_market.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;
  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());
  const Money bid = Money::cents(81);

  for (VolatilityWindow window :
       {VolatilityWindow::kLow, VolatilityWindow::kHigh}) {
    for (Duration tc : {Duration{300}, Duration{900}}) {
      const Scenario scenario{window, 0.15, tc, n};
      std::vector<BoxRow> rows;
      const std::vector<std::vector<std::size_t>> zone_sets = {
          {0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}};
      for (const auto& zones : zone_sets) {
        std::string label = "N=" + std::to_string(zones.size()) + " {";
        for (std::size_t z : zones) label += std::to_string(z);
        label += "}";
        const auto results = run_fixed_sweep(
            market, scenario,
            PolicyRunSpec{PolicyKind::kMarkovDaly, bid, zones});
        rows.push_back(make_box_row(label, checked_costs(results)));
      }
      std::fputs(
          boxplot_table("Ablation A1 — redundancy degree, " +
                            scenario.label() + ", markov-daly, bid $0.81",
                        rows, Money::dollars(48.00), Money::dollars(5.40))
              .c_str(),
          stdout);
      std::printf("\n");
    }
  }
  return 0;
}
