// Serve-plane microbenchmark with a machine-readable report for the CI
// tolerance gate (conventions: tools/bench_report.hpp; committed baseline:
// BENCH_serve.json).
//
// Three suites pin what the bid-advisor daemon costs and guarantees:
//
//   1. identity   — live growth: after every tick, each registered spec's
//                   incrementally slid answer is compared bit-for-bit with
//                   the from-scratch offline Adaptive decision. A mismatch
//                   aborts the benchmark (CheckFailure), so the committed
//                   serve_bit_identity=1 is an executable proof, not a
//                   recorded opinion.
//   2. multitenant— 1000 tenants sharing 8 models hammer the real batcher
//                   + registry + tick-store stack (the daemon's run_batch
//                   path without sockets) from 16 submitter threads.
//                   Gated: QPS floor, p50/p99 advise latency, model count
//                   ceiling (the sharing invariant), and bit-identity of
//                   every batched answer against precomputed oracles.
//   3. socket     — the in-process daemon behind a real unix socket and
//                   again behind TCP loopback, one blocking client, median
//                   advise round trip per transport.
//
// Usage: bench_serve [--quick] [--out report.json]
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_report.hpp"
#include "common/batcher.hpp"
#include "common/check.hpp"
#include "common/interrupt.hpp"
#include "common/parallel.hpp"
#include "serve/advisor.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/tick_store.hpp"
#include "stats/latency.hpp"

namespace redspot::serve {

// External linkage defeats dead-code elimination of the measured work.
std::int64_t g_sink = 0;

namespace {

using Clock = std::chrono::steady_clock;

/// Deterministic 3-zone market: cheap-stable, spiky, expensive-drifting.
ZoneTraceSet make_traces(std::size_t steps) {
  std::vector<Money> a, b, c;
  for (std::size_t i = 0; i < steps; ++i) {
    a.push_back(Money::cents(27 + static_cast<std::int64_t>(i % 7)));
    b.push_back(Money::cents((i / 40) % 2 == 0 ? 31 : 210));
    c.push_back(Money::cents(150 + static_cast<std::int64_t>(i % 13)));
  }
  std::vector<PriceSeries> series;
  series.emplace_back(0, kPriceStep, std::move(a));
  series.emplace_back(0, kPriceStep, std::move(b));
  series.emplace_back(0, kPriceStep, std::move(c));
  return ZoneTraceSet({"za", "zb", "zc"}, std::move(series));
}

/// The shared model fleet: kModels distinct specs (different windows and
/// Markov resolutions), far fewer than the tenant count.
std::vector<ModelSpec> make_specs(std::size_t count) {
  std::vector<ModelSpec> specs;
  for (std::size_t i = 0; i < count; ++i) {
    ModelSpec spec;
    spec.history_span = kDay + static_cast<Duration>(i % 4) * (kDay / 4);
    spec.max_states = 16 + 4 * i;  // distinct per spec: distinct hashes
    specs.push_back(std::move(spec));
  }
  return specs;
}

JobParams tenant_job(std::size_t tenant) {
  JobParams job;
  job.remaining_compute = 6 * kHour;
  job.remaining_time = 12 * kHour + static_cast<Duration>(tenant % 5) * kHour;
  return job;
}

}  // namespace
}  // namespace redspot::serve

int main(int argc, char** argv) {
  using namespace redspot;
  using namespace redspot::serve;

  bool quick = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_serve [--quick] [--out report.json]\n");
      return 2;
    }
  }

  benchreport::Report report;
  report.schema = "redspot-serve-v1";
  report.set("quick", quick ? 1 : 0);

  constexpr std::size_t kTenants = 1000;
  constexpr std::size_t kModels = 8;
  const std::size_t kSeedSamples = 600;
  const std::size_t kGrowthTicks = quick ? 12 : 40;
  const std::size_t kRequestsPerTenant = quick ? 2 : 10;

  const ZoneTraceSet full = make_traces(kSeedSamples + kGrowthTicks);
  const std::vector<ModelSpec> specs = make_specs(kModels);

  // --- 1. identity: slid answers == offline oracle across live growth -------
  {
    TickStore store(
        full.window(full.start(), full.start() + kPriceStep *
                                      static_cast<Duration>(kSeedSamples)),
        kSeedSamples + kGrowthTicks);
    std::vector<ModelEntry> slid;
    for (const ModelSpec& spec : specs) slid.emplace_back(spec);

    std::size_t checks = 0;
    std::vector<Money> prices(full.num_zones());
    for (std::size_t i = kSeedSamples; i < kSeedSamples + kGrowthTicks; ++i) {
      for (std::size_t z = 0; z < full.num_zones(); ++z)
        prices[z] = full.zone(z).view().sample(i);
      store.append(prices);
      store.with_read([&](const ZoneTraceSet& live) {
        for (std::size_t m = 0; m < specs.size(); ++m) {
          const JobParams job = tenant_job(m);
          const Advice incremental = compute_advice(slid[m], live, job);
          const Advice offline = advise_offline(specs[m], live, job);
          REDSPOT_CHECK_MSG(incremental == offline,
                            "serve advice diverged from the offline oracle");
          ++checks;
        }
        return 0;
      });
    }
    report.set("serve_bit_identity", 1);
    report.set("identity_checks", static_cast<double>(checks));
  }

  // --- 2. multitenant: 1000 tenants / 8 shared models through the batcher ---
  {
    TickStore store(full, kSeedSamples + kGrowthTicks);
    ModelRegistry registry;
    LatencyRecorder latency;

    // Precompute the oracle for every (spec, job-variant) combination so
    // the timed loop can assert bit-identity at equality-test cost.
    std::unordered_map<std::uint64_t, std::vector<Advice>> oracle;
    store.with_read([&](const ZoneTraceSet& live) {
      for (const ModelSpec& spec : specs) {
        auto& per_job = oracle[spec.spec_hash()];
        for (std::size_t v = 0; v < 5; ++v)
          per_job.push_back(advise_offline(spec, live, tenant_job(v)));
      }
      return 0;
    });
    std::unordered_map<std::uint64_t, ModelSpec> by_hash;
    for (const ModelSpec& spec : specs) by_hash.emplace(spec.spec_hash(), spec);

    struct Req {
      std::size_t tenant;
      Clock::time_point t0;
      std::atomic<bool>* done;
    };
    ThreadPool pool;
    Batcher<std::uint64_t, Req> batcher(
        pool, [&](const std::uint64_t& key, std::vector<Req>&& batch) {
          const ModelSpec& spec = by_hash.at(key);
          store.with_read([&](const ZoneTraceSet& live) {
            const auto entry = registry.acquire(spec, live.num_zones());
            for (const Req& req : batch) {
              const JobParams job = tenant_job(req.tenant);
              const Advice adv = compute_advice(*entry, live, job);
              REDSPOT_CHECK_MSG(adv == oracle.at(key)[req.tenant % 5],
                                "batched advice diverged from the oracle");
              latency.record(static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - req.t0)
                      .count()));
              req.done->store(true, std::memory_order_release);
              req.done->notify_one();
            }
            return 0;
          });
        });

    // Closed-loop load: each submitter keeps a bounded pipeline of
    // requests in flight, so the latency percentiles measure service time
    // plus bounded coalescing delay — not an unbounded arrival backlog.
    const std::size_t kSubmitters = 16;
    const std::size_t kPipeline = 8;
    const auto t0 = Clock::now();
    {
      std::vector<std::thread> submitters;
      for (std::size_t s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
          std::vector<std::atomic<bool>> done(kPipeline);
          std::size_t window = 0;
          auto flush = [&] {
            for (std::size_t w = 0; w < window; ++w)
              done[w].wait(false, std::memory_order_acquire);
            window = 0;
          };
          for (std::size_t t = s; t < kTenants; t += kSubmitters) {
            const std::uint64_t key = specs[t % kModels].spec_hash();
            for (std::size_t r = 0; r < kRequestsPerTenant; ++r) {
              if (window == kPipeline) flush();
              done[window].store(false, std::memory_order_relaxed);
              batcher.submit(key, {t, Clock::now(), &done[window]});
              ++window;
            }
          }
          flush();
        });
      }
      for (auto& th : submitters) th.join();
      batcher.drain();
    }
    const auto t1 = Clock::now();
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    const double total =
        static_cast<double>(kTenants) * static_cast<double>(kRequestsPerTenant);
    g_sink += static_cast<std::int64_t>(latency.count());

    const BatcherStats bs = batcher.stats();
    REDSPOT_CHECK(bs.delivered == static_cast<std::uint64_t>(total));
    report.set("tenants", static_cast<double>(kTenants));
    report.set("models", static_cast<double>(registry.stats().entries));
    report.set("serve_qps", total / secs);
    report.set("advise_p50_ns", latency.p50_ns());
    report.set("advise_p99_ns", latency.p99_ns());
    report.set("batch_max", static_cast<double>(bs.max_batch));
    report.set("batches_per_kreq",
               1000.0 * static_cast<double>(bs.batches) / total);
  }

  // --- 3. socket: real daemon behind unix + TCP loopback, blocking client ---
  const auto socket_suite = [&](const std::string& endpoint,
                                const std::string& prefix) {
    ServeOptions options;
    options.endpoint = endpoint;
    options.threads = 2;
    options.print_stats = false;
    options.install_signal_handlers = false;
    std::promise<std::string> bound_promise;
    options.on_bound = [&](const std::string& bound) {
      bound_promise.set_value(bound);
    };
    reset_interrupt_flag();
    install_interrupt_handlers();
    std::thread daemon([&] { g_sink += run_server(options); });

    {
      // tcp:HOST:0 binds an ephemeral port; dial whatever the kernel chose.
      ServeClient client(bound_promise.get_future().get());
      TraceInitMsg init;
      init.start = full.start();
      init.step = full.step();
      init.capacity_samples = kSeedSamples + kGrowthTicks;
      for (std::size_t z = 0; z < full.num_zones(); ++z) {
        init.zone_names.push_back(full.zone_name(z));
        std::vector<Money> seed;
        for (std::size_t i = 0; i < kSeedSamples; ++i)
          seed.push_back(full.zone(z).view().sample(i));
        init.samples.push_back(std::move(seed));
      }
      client.trace_init(init);
      const std::uint64_t hash = client.register_spec(specs[0]);

      const std::size_t kWarmup = 50;
      const std::size_t kRounds = quick ? 400 : 2000;
      std::vector<double> rtt;
      rtt.reserve(kRounds);
      for (std::size_t r = 0; r < kWarmup + kRounds; ++r) {
        const auto s0 = Clock::now();
        const AdviceMsg reply = client.advise(r + 1, hash, tenant_job(r));
        const auto s1 = Clock::now();
        g_sink += reply.advice.expected_uptime;
        if (r >= kWarmup)
          rtt.push_back(static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(s1 - s0)
                  .count()));
      }
      std::sort(rtt.begin(), rtt.end());
      report.set(prefix + "_rtt_p50_ns", rtt[rtt.size() / 2]);
      report.set(prefix + "_rtt_p99_ns", rtt[rtt.size() * 99 / 100]);
    }

    ::raise(SIGTERM);  // sets the interrupt flag; the daemon drains
    daemon.join();
    reset_interrupt_flag();
  };
  {
    const std::string socket_path =
        "/tmp/bench_serve_" + std::to_string(::getpid()) + ".sock";
    socket_suite(socket_path, "socket");
    ::unlink(socket_path.c_str());
    socket_suite("tcp:127.0.0.1:0", "tcp");
  }

  benchreport::write_report(report, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  for (const auto& [name, value] : report.metrics) {
    std::printf("  %-24s %.4g\n", name.c_str(), value);
  }
  return 0;
}
