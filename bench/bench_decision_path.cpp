// Decision-path microbenchmarks (DESIGN.md §10) with a machine-readable
// report for the CI tolerance gate.
//
// Four suites, each comparing the zero-copy / incremental decision path
// against the materialize-and-rebuild path it replaced:
//
//   1. history query    — PriceView window + min scan vs an owning
//                         PriceSeries::window materialization.
//   2. markov refit     — IncrementalMarkovModel::observe (slide + memoized
//                         uptime) vs build_markov_model from scratch +
//                         free expected_uptime, in unique-price AND
//                         quantile-binned mode.
//   3. adaptive re-plan — HistoryStats::advance vs fresh construction.
//   4. fig4 mini-sweep  — end-to-end engine runs (Threshold + Markov-Daly,
//                         3 bids, several starts) under the real policies
//                         vs bench-local legacy policies that reproduce the
//                         old per-decision materialize + rebuild behaviour.
//                         Totals are asserted bit-identical: the two paths
//                         make exactly the same decisions.
//
// A global operator-new hook additionally counts heap allocations on the
// steady-state policy path (constant-price slide + memoized uptime), which
// must be zero.
//
// Usage: bench_decision_path [--quick] [--out report.json]
// Writes BENCH_decision_path.json (see tools/bench_report.hpp) and prints
// a human-readable summary.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "ckpt/daly.hpp"
#include "common/check.hpp"
#include "common/random.hpp"
#include "core/adaptive/history_stats.hpp"
#include "core/batch/batched_engine.hpp"
#include "core/engine.hpp"
#include "core/policies/rising_edge.hpp"
#include "core/strategy.hpp"
#include "markov/incremental.hpp"
#include "markov/model.hpp"
#include "markov/uptime.hpp"
#include "trace/zone_traces.hpp"

// --- Allocation-counting hook (mirrors tests/decision_path_test.cpp) --------
//
// Compiled out under sanitizers, whose allocator interceptors clash with a
// replaced operator new; the allocation metrics then read 0.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define REDSPOT_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define REDSPOT_ALLOC_HOOK 0
#else
#define REDSPOT_ALLOC_HOOK 1
#endif
#else
#define REDSPOT_ALLOC_HOOK 1
#endif

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

#if REDSPOT_ALLOC_HOOK
void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) throw std::bad_alloc();
  return p;
}
#endif  // REDSPOT_ALLOC_HOOK
}  // namespace

#if REDSPOT_ALLOC_HOOK
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // REDSPOT_ALLOC_HOOK

namespace redspot {

// External linkage: stores cannot be elided, so accumulating results here
// defeats dead-code elimination of the measured work.
std::int64_t g_sink = 0;

namespace {

using Clock = std::chrono::steady_clock;

/// Median over `reps` timing runs of `iters` calls each, in ns per call.
template <typename F>
double median_ns(int reps, int iters, F&& fn) {
  std::vector<double> per_op;
  per_op.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) fn(i);
    const auto t1 = Clock::now();
    per_op.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(iters));
  }
  std::sort(per_op.begin(), per_op.end());
  return per_op[per_op.size() / 2];
}

// --- Synthetic traces --------------------------------------------------------

/// Piecewise-constant series over a small price alphabet (CC2-like: few
/// distinct levels, long constant runs). Windows stay in unique mode.
PriceSeries alphabet_series(std::uint64_t seed, std::size_t samples,
                            double switch_prob = 0.15) {
  static const double kLevels[] = {0.25, 0.27, 0.30, 0.35,
                                   0.55, 0.81, 1.20, 2.50};
  Rng rng(seed);
  std::vector<Money> out;
  out.reserve(samples);
  Money cur = Money::dollars(kLevels[0]);
  for (std::size_t i = 0; i < samples; ++i) {
    if (rng.uniform() < switch_prob)
      cur = Money::dollars(kLevels[rng.uniform_index(8)]);
    out.push_back(cur);
  }
  return PriceSeries(0, kPriceStep, std::move(out));
}

/// Random-walk series: nearly every sample distinct, so 2-day windows
/// exceed max_states and the quantile-binned path runs.
PriceSeries walk_series(std::uint64_t seed, std::size_t samples) {
  Rng rng(seed);
  std::vector<Money> out;
  out.reserve(samples);
  double cur = 0.30;
  for (std::size_t i = 0; i < samples; ++i) {
    cur = std::max(0.05, cur + rng.uniform(-0.02, 0.02));
    out.push_back(Money::dollars(cur));
  }
  return PriceSeries(0, kPriceStep, std::move(out));
}

// --- Legacy policies ---------------------------------------------------------
//
// Reproduce the pre-incremental decision path: materialize the history
// window into an owning PriceSeries, fit a fresh Markov model, solve the
// expected up-time with the allocating free function — at EVERY decision.
// Decision results are bit-identical to the real policies (property-tested
// in tests/decision_path_test.cpp), so both sweeps compute the same runs.

constexpr std::size_t kPolicyMaxStates = 64;  // matches the real policies

Duration legacy_zone_uptime(const EngineView& view, std::size_t zone) {
  const PriceSeries hist = view.history(zone).materialize();
  const MarkovModel model = build_markov_model(hist.view(), kPolicyMaxStates);
  return expected_uptime(model, view.price(zone), view.bid());
}

class LegacyMarkovDalyPolicy final : public Policy {
 public:
  std::string name() const override { return "legacy-markov-daly"; }
  bool checkpoint_condition(const EngineView&) override { return false; }
  SimTime schedule_next_checkpoint(const EngineView& view) override {
    if (!view.any_zone_running()) return kNever;
    Duration total = 0;
    for (std::size_t zone : view.zone_ids()) {
      if (!view.zone_running(zone)) continue;
      total += legacy_zone_uptime(view, zone);
    }
    if (total <= 0) return kNever;
    return view.now() +
           daly_interval(view.experiment().costs.checkpoint, total);
  }
};

class LegacyThresholdPolicy final : public Policy {
 public:
  std::string name() const override { return "legacy-threshold"; }
  bool checkpoint_condition(const EngineView& view) override {
    for (std::size_t zone : view.zone_ids()) {
      if (!view.zone_running(zone) || !rising_edge(view, zone)) continue;
      // The old engine materialized the history to compute S_min.
      const PriceSeries hist = view.history(zone).materialize();
      const Money price_thresh = Money::from_micros(
          (hist.min_price().micros() + view.bid().micros()) / 2);
      if (view.price(zone) >= price_thresh) return true;
    }
    return false;
  }
  SimTime schedule_next_checkpoint(const EngineView& view) override {
    const SimTime since = view.leading_compute_since();
    if (since == kNever) return kNever;
    Duration best_uptime = 0;
    for (std::size_t zone : view.zone_ids()) {
      if (!view.zone_running(zone)) continue;
      best_uptime = std::max(best_uptime, legacy_zone_uptime(view, zone));
    }
    if (best_uptime <= 0) return kNever;
    return std::max(view.now() + 1, since + best_uptime);
  }
};

// --- Fig-4 style mini-sweep --------------------------------------------------

Experiment sweep_experiment(SimTime start) {
  Experiment e;
  e.app = AppModel{"bench-decision-path", hours(8.0), 1, 8};
  e.costs = CheckpointCosts{120, 120};
  e.start = start;
  e.deadline = hours(12.0);
  e.history_span = 2 * kDay;
  e.validate();
  return e;
}

/// Runs the sweep and returns the summed total cost in micro-dollars.
std::int64_t run_sweep(const SpotMarket& market,
                       const std::vector<SimTime>& starts,
                       const std::vector<Money>& bids, bool legacy) {
  std::int64_t total = 0;
  for (const SimTime start : starts) {
    for (const Money bid : bids) {
      for (int kind = 0; kind < 2; ++kind) {
        std::unique_ptr<Policy> policy;
        if (legacy) {
          policy = kind == 0
                       ? std::unique_ptr<Policy>(new LegacyThresholdPolicy())
                       : std::unique_ptr<Policy>(new LegacyMarkovDalyPolicy());
        } else {
          policy = make_policy(kind == 0 ? PolicyKind::kThreshold
                                         : PolicyKind::kMarkovDaly);
        }
        const Experiment experiment = sweep_experiment(start);
        FixedStrategy strategy(bid, {0}, std::move(policy));
        Engine engine(market, experiment, strategy);
        total += engine.run().total_cost.micros();
      }
    }
  }
  return total;
}

/// The same sweep through the batched lockstep engine: every
/// (start, bid, policy) combination is one lane of a single group sharing
/// the trace index and per-zone Markov models (core/batch).
std::int64_t run_sweep_batched(const SpotMarket& market,
                               const std::vector<SimTime>& starts,
                               const std::vector<Money>& bids) {
  const batch::BatchedSweepEngine batcher(market);
  std::vector<batch::BatchConfig> configs;
  configs.reserve(starts.size() * bids.size() * 2);
  for (const SimTime start : starts) {
    for (const Money bid : bids) {
      for (int kind = 0; kind < 2; ++kind) {
        batch::BatchConfig cfg;
        cfg.experiment = sweep_experiment(start);
        cfg.policy =
            kind == 0 ? PolicyKind::kThreshold : PolicyKind::kMarkovDaly;
        cfg.bid = bid;
        configs.push_back(std::move(cfg));
      }
    }
  }
  std::int64_t total = 0;
  for (const RunResult& r : batcher.run(configs))
    total += r.total_cost.micros();
  return total;
}

}  // namespace
}  // namespace redspot

int main(int argc, char** argv) {
  using namespace redspot;

  bool quick = false;
  std::string out_path = "BENCH_decision_path.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_decision_path [--quick] [--out report.json]\n");
      return 2;
    }
  }

  benchreport::Report report;
  report.set("quick", quick ? 1 : 0);

  const std::size_t kWindow = 576;  // the 2-day / 5-min decision window
  const std::size_t kTraceLen = 1152;
  const PriceSeries alpha = alphabet_series(11, kTraceLen);
  const PriceSeries walk = walk_series(12, kTraceLen);
  const int reps = quick ? 5 : 9;

  // --- 1. history query: view vs materialized window ------------------------
  {
    const std::size_t positions = kTraceLen - kWindow;
    const auto window_bounds = [&](int i) {
      const std::size_t lo = static_cast<std::size_t>(i) % positions;
      const SimTime from =
          alpha.start() + static_cast<SimTime>(lo) * kPriceStep;
      return std::pair<SimTime, SimTime>(
          from, from + static_cast<SimTime>(kWindow) * kPriceStep);
    };
    const int iters = quick ? 400 : 2000;
    const double view_ns = median_ns(reps, iters, [&](int i) {
      const auto [from, to] = window_bounds(i);
      const PriceView v = alpha.view(from, to);
      g_sink += v.min_price().micros();
    });
    const double mat_ns = median_ns(reps, iters, [&](int i) {
      const auto [from, to] = window_bounds(i);
      const PriceSeries w = alpha.window(from, to);
      g_sink += w.min_price().micros();
    });
    // The view path must not touch the heap.
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < 64; ++i) {
      const auto [from, to] = window_bounds(i);
      g_sink += alpha.view(from, to).min_price().micros();
    }
    g_count_allocs.store(false);
    report.set("history_view_ns", view_ns);
    report.set("history_materialize_ns", mat_ns);
    report.set("history_query_speedup", mat_ns / view_ns);
    report.set("history_view_allocs",
               static_cast<double>(g_alloc_count.load()));
  }

  // --- 2. markov refit: incremental slide vs from-scratch --------------------
  const Money kBid = Money::cents(81);
  const auto markov_pair = [&](const PriceSeries& s, const std::string& inc_key,
                               const std::string& scratch_key,
                               const std::string& speedup_key) {
    const std::size_t positions = s.size() - kWindow;
    const auto window_at = [&](int i) {
      const std::size_t lo = static_cast<std::size_t>(i) % positions;
      const SimTime from = s.start() + static_cast<SimTime>(lo) * kPriceStep;
      return s.view(from, from + static_cast<SimTime>(kWindow) * kPriceStep);
    };
    IncrementalMarkovModel inc(kPolicyMaxStates);
    const int inc_iters = quick ? 400 : 2000;
    const double inc_ns = median_ns(reps, inc_iters, [&](int i) {
      const PriceView w = window_at(i);
      inc.observe(w);
      g_sink += inc.expected_uptime(w.sample(w.size() - 1), kBid);
    });
    const int scratch_iters = quick ? 60 : 300;
    const double scratch_ns = median_ns(reps, scratch_iters, [&](int i) {
      const PriceView w = window_at(i);
      const MarkovModel m = build_markov_model(w, kPolicyMaxStates);
      g_sink += expected_uptime(m, w.sample(w.size() - 1), kBid);
    });
    report.set(inc_key, inc_ns);
    report.set(scratch_key, scratch_ns);
    report.set(speedup_key, scratch_ns / inc_ns);
  };
  // Gated (floor 5x): unique-price mode, the common case on CC2-like traces.
  markov_pair(alpha, "markov_incremental_ns", "markov_scratch_ns",
              "markov_incremental_speedup");
  // Informational: quantile-binned mode still refits per slide (only the
  // window sort is amortized away).
  markov_pair(walk, "markov_binned_incremental_ns", "markov_binned_scratch_ns",
              "markov_binned_speedup");

  // --- 3. adaptive re-plan: HistoryStats advance vs fresh --------------------
  {
    std::vector<PriceSeries> zones;
    for (std::uint64_t z = 0; z < 3; ++z)
      zones.push_back(alphabet_series(21 + z, kTraceLen));
    std::vector<std::string> names = {"z0", "z1", "z2"};
    const ZoneTraceSet traces(names, zones);
    const std::vector<Money> grid = {Money::cents(27),  Money::cents(40),
                                     Money::cents(81),  Money::dollars(1.20),
                                     Money::dollars(2.40)};
    const std::vector<std::size_t> all_zones = {0, 1, 2};
    const std::size_t positions = kTraceLen - kWindow;
    const auto bounds = [&](int i) {
      const std::size_t lo = static_cast<std::size_t>(i) % positions;
      const SimTime from =
          traces.start() + static_cast<SimTime>(lo) * kPriceStep;
      return std::pair<SimTime, SimTime>(
          from, from + static_cast<SimTime>(kWindow) * kPriceStep);
    };
    const auto read_stats = [&](const HistoryStats& hs) {
      g_sink += static_cast<std::int64_t>(
          1e6 * (hs.stats(0, 2).availability +
                 hs.combined_availability(all_zones, 2) +
                 hs.full_outage_rate(all_zones, 1)));
    };
    const auto [f0, t0] = bounds(0);
    HistoryStats slid(traces, f0, t0, grid);
    const int adv_iters = quick ? 300 : 1500;
    const double adv_ns = median_ns(reps, adv_iters, [&](int i) {
      const auto [from, to] = bounds(i);
      slid.advance(traces, from, to);
      read_stats(slid);
    });
    const int fresh_iters = quick ? 60 : 300;
    const double fresh_ns = median_ns(reps, fresh_iters, [&](int i) {
      const auto [from, to] = bounds(i);
      HistoryStats fresh(traces, from, to, grid);
      read_stats(fresh);
    });
    report.set("adaptive_advance_ns", adv_ns);
    report.set("adaptive_fresh_ns", fresh_ns);
    report.set("adaptive_replan_speedup", fresh_ns / adv_ns);
  }

  // --- 4. fig4 mini-sweep: real policies vs legacy materialize+rebuild ------
  {
    std::vector<PriceSeries> zones;
    zones.push_back(alphabet_series(31, kTraceLen, 0.25));
    std::vector<std::string> names = {"z0"};
    const SpotMarket market(ZoneTraceSet(names, zones), cc2_instance(),
                            QueueDelayModel(QueueDelayParams::fixed(0)));
    std::vector<SimTime> starts;
    const int num_starts = quick ? 2 : 4;
    for (int k = 0; k < num_starts; ++k)
      starts.push_back(2 * kDay + k * 5 * kHour);
    const std::vector<Money> bids = {Money::cents(27), Money::cents(81),
                                     Money::dollars(2.40)};

    const std::int64_t new_cost = run_sweep(market, starts, bids, false);
    const std::int64_t legacy_cost = run_sweep(market, starts, bids, true);

    const std::int64_t batched_cost = run_sweep_batched(market, starts, bids);

    REDSPOT_CHECK_MSG(new_cost == legacy_cost,
                      "legacy and incremental sweeps diverged: "
                          << legacy_cost << " vs " << new_cost);
    REDSPOT_CHECK_MSG(batched_cost == new_cost,
                      "batched and scalar sweeps diverged: "
                          << new_cost << " vs " << batched_cost);

    const int sweep_reps = quick ? 3 : 5;
    const double scalar_ms =
        median_ns(sweep_reps, 1, [&](int) {
          g_sink += run_sweep(market, starts, bids, false);
        }) /
        1e6;
    const double legacy_ms =
        median_ns(sweep_reps, 1, [&](int) {
          g_sink += run_sweep(market, starts, bids, true);
        }) /
        1e6;
    const double batched_ms =
        median_ns(sweep_reps, 1, [&](int) {
          g_sink += run_sweep_batched(market, starts, bids);
        }) /
        1e6;
    // The "new" end-to-end path is the batched lockstep engine — that is
    // what run_fixed_sweep dispatches to. Scalar-incremental stays
    // reported for the per-lane comparison.
    report.set("fig4_sweep_new_ms", batched_ms);
    report.set("fig4_sweep_legacy_ms", legacy_ms);
    report.set("fig4_sweep_speedup", legacy_ms / batched_ms);
    report.set("fig4_sweep_costs_match", 1);
    report.set("fig4_batched_ms", batched_ms);
    report.set("fig4_batched_scalar_ms", scalar_ms);
    report.set("fig4_batched_speedup", scalar_ms / batched_ms);
    report.set("fig4_batched_lanes",
               static_cast<double>(starts.size() * bids.size() * 2));
  }

  // --- 5. steady-state allocation count --------------------------------------
  {
    const PriceSeries flat(0, kPriceStep,
                           std::vector<Money>(kWindow + 128, Money::cents(30)));
    const auto window_at = [&](std::size_t lo) {
      const SimTime from = static_cast<SimTime>(lo) * kPriceStep;
      return flat.view(from,
                       from + static_cast<SimTime>(kWindow) * kPriceStep);
    };
    IncrementalMarkovModel inc(kPolicyMaxStates);
    inc.observe(window_at(0));
    g_sink += inc.expected_uptime(Money::cents(30), kBid);
    inc.observe(window_at(1));  // warm the slide scratch
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (std::size_t lo = 2; lo < 102; ++lo) {
      const PriceView w = window_at(lo);
      inc.observe(w);
      g_sink += inc.expected_uptime(Money::cents(30), kBid);
      g_sink += w.min_price().micros();
    }
    g_count_allocs.store(false);
    report.set("steady_state_decision_allocs",
               static_cast<double>(g_alloc_count.load()));
  }

  // --- Emit -------------------------------------------------------------------
  std::printf("%-32s %14s\n", "metric", "value");
  for (const auto& [name, value] : report.metrics)
    std::printf("%-32s %14.6g\n", name.c_str(), value);
  benchreport::write_report(report, out_path);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
