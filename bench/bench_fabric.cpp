// Fabric dispatch-overhead microbenchmark with a machine-readable report
// for the CI tolerance gate (same conventions as bench_event_core; see
// tools/bench_report.hpp).
//
// Two suites pin what the distributed fabric costs over the in-process
// path it must stay bit-identical to:
//
//   1. dispatch       — a one-replication-per-shard ensemble (compute is
//                       negligible) run through a real coordinator plus
//                       one forked worker over a unix socket, vs the same
//                       spec through parallel_for_shards in-process. The
//                       difference, spread over the shard count, is the
//                       full per-shard fabric tax: lease grant, partial
//                       frame, CRC, ack, poll loop. Gated by a hard
//                       ceiling on fabric_dispatch_overhead_ratio.
//   2. codec          — encode+decode of a lease/partial/ack exchange per
//                       shard, isolating serialization from the socket.
//
// Usage: bench_fabric [--quick] [--out report.json]
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "app/ensemble_cli.hpp"
#include "bench_report.hpp"
#include "common/check.hpp"
#include "ensemble/runner.hpp"
#include "ensemble/shard_exec.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/wire.hpp"
#include "fabric/worker.hpp"

namespace redspot {

// External linkage defeats dead-code elimination of the measured work.
std::int64_t g_sink = 0;

namespace {

using Clock = std::chrono::steady_clock;

/// Median over `reps` timing runs of one call each, in ns.
template <typename F>
double median_run_ns(int reps, F&& fn) {
  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

/// One-replication-per-shard spec: compute cost per dispatch is one
/// simulation, so fabric-vs-inprocess deltas are dominated by dispatch.
EnsembleSpec dispatch_spec(std::size_t shards) {
  EnsembleCliArgs args;
  args.policy = "periodic";
  args.replications = shards;
  args.shards = shards;
  args.no_cache = true;
  return make_ensemble_spec(args);
}

/// Runs the spec through a real coordinator with one forked worker over
/// `endpoint` (unix path or tcp:HOST:0 for an ephemeral loopback port).
/// Returns the coordinator-side wall time in ns.
double fabric_run_ns(const EnsembleSpec& spec, const std::string& endpoint) {
  fabric::FabricOptions options;
  options.endpoint = endpoint;
  // Generous budgets: this benchmark measures throughput, not recovery.
  options.lease.lease_duration_ms = 120'000;
  options.lease.heartbeat_timeout_ms = 60'000;
  options.fallback_wait_ms = 60'000;

  // The constructor binds the listener, so forking right after can never
  // race the bind — connect retries would otherwise pollute the dispatch
  // figure. The worker dials the *resolved* endpoint (tcp:HOST:0 becomes
  // the kernel-assigned port).
  fabric::Coordinator coordinator(spec, options, /*journal=*/nullptr);
  options.endpoint = coordinator.endpoint();
  const pid_t child = ::fork();
  REDSPOT_CHECK_MSG(child >= 0, "fork failed");
  if (child == 0) {
    const int rc = fabric::run_worker(spec, options, fabric::ChaosPlan{});
    ::_exit(rc);
  }
  const auto t0 = Clock::now();
  const fabric::CoordinatorReport report = coordinator.run();
  const auto t1 = Clock::now();
  REDSPOT_CHECK_MSG(!report.used_fallback, "worker never joined the fleet");
  g_sink += static_cast<std::int64_t>(report.shards_from_fleet);

  int status = 0;
  REDSPOT_CHECK_MSG(::waitpid(child, &status, 0) == child, "waitpid failed");
  REDSPOT_CHECK_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                    "worker exited abnormally");
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

}  // namespace
}  // namespace redspot

int main(int argc, char** argv) {
  using namespace redspot;

  bool quick = false;
  std::string out_path = "BENCH_fabric.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_fabric [--quick] [--out report.json]\n");
      return 2;
    }
  }

  benchreport::Report report;
  report.schema = "redspot-fabric-v1";
  report.set("quick", quick ? 1 : 0);
  const int reps = quick ? 3 : 5;
  const std::size_t shards = quick ? 24 : 64;
  const std::string socket_path =
      "/tmp/bench_fabric_" + std::to_string(::getpid()) + ".sock";

  // --- 1. dispatch: coordinator + forked worker vs in-process ---------------
  // Run once per transport: the unix socket is the historical baseline,
  // the TCP loopback shows what the off-box transport costs on top.
  {
    const EnsembleSpec spec = dispatch_spec(shards);

    ThreadPool pool(1);  // the fabric side computes on one worker too
    const double inproc_ns = median_run_ns(reps, [&] {
      EnsembleRunner runner(spec);
      g_sink += static_cast<std::int64_t>(runner.run(pool).configs.size());
    });
    report.set("inproc_run_ms", inproc_ns / 1e6);

    // fabric_run_ns times coordinator.run() only, so fork/exec setup of
    // the worker process is excluded from the dispatch figure.
    const auto fabric_median = [&](const std::string& endpoint) {
      std::vector<double> runs;
      for (int r = 0; r < reps; ++r)
        runs.push_back(fabric_run_ns(spec, endpoint));
      std::sort(runs.begin(), runs.end());
      return runs[runs.size() / 2];
    };

    const double fabric_ns = fabric_median(socket_path);
    report.set("fabric_run_ms", fabric_ns / 1e6);
    report.set("fabric_dispatch_overhead_ratio", fabric_ns / inproc_ns);
    report.set("fabric_dispatch_us",
               (fabric_ns - inproc_ns) / static_cast<double>(shards) / 1e3);

    const double tcp_ns = fabric_median("tcp:127.0.0.1:0");
    report.set("tcp_fabric_run_ms", tcp_ns / 1e6);
    report.set("tcp_fabric_dispatch_overhead_ratio", tcp_ns / inproc_ns);
    report.set("tcp_fabric_dispatch_us",
               (tcp_ns - inproc_ns) / static_cast<double>(shards) / 1e3);
  }

  // --- 2. codec: the per-shard wire round trip without the socket -----------
  {
    const int n = quick ? 20000 : 100000;
    const std::string record(512, 'r');  // a typical shard-record size
    const double codec_ns = median_run_ns(reps, [&] {
      for (int i = 0; i < n; ++i) {
        const auto lease = fabric::decode_lease(fabric::encode_lease(
            {static_cast<std::uint64_t>(i), 0, 1, 1, 10'000}));
        const auto partial = fabric::decode_partial(fabric::encode_partial(
            {lease->lease_id, 0, record}));
        const auto ack =
            fabric::decode_ack(fabric::encode_ack({partial->shard, false}));
        g_sink += static_cast<std::int64_t>(ack->shard);
      }
    });
    report.set("wire_roundtrip_ns", codec_ns / n);
  }

  benchreport::write_report(report, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  for (const auto& [name, value] : report.metrics) {
    std::printf("  %-32s %.4g\n", name.c_str(), value);
  }
  return 0;
}
