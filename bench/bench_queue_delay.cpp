// Section 5 queuing-delay study reproduction: submit spot requests at
// 7:00 AM and 7:00 PM every day for two months and measure acquisition
// delay. The paper measured mean 299.6 s, best case 143 s, worst case
// 880 s; the calibrated model reproduces those moments.
#include <cstdio>

#include "common/random.hpp"
#include "market/queue_delay.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

using namespace redspot;

int main() {
  const QueueDelayModel model(QueueDelayParams::paper_calibrated());
  Rng rng(2013, /*stream=*/7);

  // Two months, two probes per day.
  RunningStats stats;
  Histogram hist(100.0, 900.0, 16);
  std::vector<double> delays;
  for (int day = 0; day < 61; ++day) {
    for (int probe = 0; probe < 2; ++probe) {
      const Duration d = model.sample(rng);
      stats.add(static_cast<double>(d));
      hist.add(static_cast<double>(d));
      delays.push_back(static_cast<double>(d));
    }
  }

  std::printf("== Section 5 — spot instance queuing delay (2 months, "
              "2 probes/day, n=%zu) ==\n",
              stats.count());
  std::printf("mean  %.1f s   (paper: 299.6 s)\n", stats.mean());
  std::printf("min   %.0f s   (paper: 143 s)\n", stats.min());
  std::printf("max   %.0f s   (paper: 880 s)\n", stats.max());
  std::printf("median %.0f s, stddev %.0f s\n\n", median(delays),
              stats.stddev());
  std::fputs(hist.ascii(48).c_str(), stdout);
  return 0;
}
