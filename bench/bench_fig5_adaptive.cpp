// Figure 5 reproduction: Adaptive vs Periodic, single-zone Markov-Daly
// (both at B = $0.81, zones merged) and the best-case redundancy-based
// policy, across the 8 scenario cells (2 volatility windows x t_c in
// {300, 900} x T_l in {15%, 50%}).
//
// Usage: bench_fig5_adaptive [num_experiments]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "market/spot_market.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

int main(int argc, char** argv) {
  const std::size_t num_experiments =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;

  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());
  const Money bid = Money::cents(81);  // the paper's comparison bid
  const PolicyKind redundancy_policies[] = {PolicyKind::kPeriodic,
                                            PolicyKind::kMarkovDaly};

  for (const Scenario& base : paper_scenarios()) {
    Scenario scenario = base;
    scenario.num_experiments = num_experiments;

    std::vector<BoxRow> rows;
    rows.push_back(make_box_row(
        "periodic (1 zone, $0.81)",
        merged_single_zone_costs(market, scenario, PolicyKind::kPeriodic,
                                 bid)));
    rows.push_back(make_box_row(
        "markov-daly (1 zone, $0.81)",
        merged_single_zone_costs(market, scenario, PolicyKind::kMarkovDaly,
                                 bid)));
    rows.push_back(make_box_row(
        "redundancy (best, $0.81)",
        best_case_redundancy_costs(market, scenario, redundancy_policies,
                                   bid)));
    const std::vector<RunResult> adaptive =
        run_adaptive_sweep(market, scenario);
    rows.push_back(make_box_row("adaptive", checked_costs(adaptive)));

    std::fputs(boxplot_table("Figure 5 — " + scenario.label(), rows,
                             Money::dollars(48.00), Money::dollars(5.40))
                   .c_str(),
               stdout);

    // The paper's bound discussion: Adaptive's worst case stayed within
    // 20% of on-demand across all experiments.
    double worst = 0.0;
    double switches = 0.0;
    for (const RunResult& r : adaptive) {
      worst = std::max(worst, r.total_cost.to_double());
      switches += r.config_changes;
    }
    std::printf("adaptive worst-case/on-demand = %.2fx; mean permutation "
                "switches per run = %.1f\n\n",
                worst / 48.0, switches / static_cast<double>(adaptive.size()));
  }
  return 0;
}
