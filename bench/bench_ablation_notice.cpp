// Ablation A4 (Appendix A what-if): what would a termination notice be
// worth? The paper argues Amazon will not offer one; this sweep quantifies
// what users would gain if it did — a notice >= t_c converts every
// abrupt termination into a clean checkpoint.
//
// Usage: bench_ablation_notice [num_experiments]
#include <cstdio>
#include <cstdlib>

#include "core/engine.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "market/spot_market.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

namespace {

double median_with_notice(const SpotMarket& market, const Scenario& scenario,
                          Duration notice) {
  std::vector<double> costs;
  for (std::size_t zone = 0; zone < market.num_zones(); ++zone) {
    for (std::size_t i = 0; i < scenario.num_experiments; ++i) {
      FixedStrategy strategy(Money::cents(81), {zone},
                             make_policy(PolicyKind::kMarkovDaly));
      EngineOptions options;
      options.termination_notice = notice;
      Engine engine(market, scenario.experiment(i), strategy, options);
      const RunResult r = engine.run();
      REDSPOT_CHECK(r.met_deadline);
      costs.push_back(r.total_cost.to_double());
    }
  }
  return median(costs);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40;
  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());

  std::printf("== Ablation A4 — termination-notice what-if (Appendix A) ==\n");
  std::printf("Single-zone Markov-Daly at $0.81, high-volatility window, "
              "Tl=15%%; median cost per instance.\n\n");
  std::printf("%10s %14s %14s\n", "notice", "tc=300s", "tc=900s");
  for (Duration notice : {Duration{0}, Duration{120}, Duration{300},
                          Duration{900}, Duration{1800}}) {
    const Scenario s300{VolatilityWindow::kHigh, 0.15, 300, n};
    const Scenario s900{VolatilityWindow::kHigh, 0.15, 900, n};
    std::printf("%10s %14.2f %14.2f\n", format_duration(notice).c_str(),
                median_with_notice(market, s300, notice),
                median_with_notice(market, s900, notice));
  }
  std::printf("\nA notice below t_c cannot fit a checkpoint (the paper's "
              "point); at or above t_c every failure commits its work.\n");
  return 0;
}
