// Micro-benchmarks (google-benchmark): the hot paths of the simulator —
// event calendar throughput, one full engine run, the Markov uptime solve,
// Daly's interval, the synthetic generator and the VAR fit.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "ckpt/daly.hpp"
#include "common/parallel.hpp"
#include "core/adaptive/adaptive_runner.hpp"
#include "core/engine.hpp"
#include "exp/scenario.hpp"
#include "market/spot_market.hpp"
#include "markov/model.hpp"
#include "markov/uptime.hpp"
#include "sim/simulation.hpp"
#include "trace/calendar.hpp"
#include "trace/synthetic.hpp"
#include "trace/var.hpp"

namespace {

using namespace redspot;

const SpotMarket& shared_market() {
  static const SpotMarket market(paper_traces(42), cc2_instance(),
                                 QueueDelayModel());
  return market;
}

void BM_EventCalendar(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i)
      sim.schedule_at(i, [&fired] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCalendar);

void BM_EventCalendarCancelChurn(benchmark::State& state) {
  // The engine's dominant calendar pattern: schedule a speculative event
  // (deadline trigger, doom timer), cancel it, schedule the next. Without
  // heap compaction the backlog grows with every cancel; with it the heap
  // stays near the live-event count.
  for (auto _ : state) {
    Simulation sim;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
      sim.schedule_at(1'000'000 + i, [&fired] { ++fired; });
    for (int i = 0; i < 1000; ++i) {
      const EventId id =
          sim.schedule_at(2'000'000 + i, [&fired] { ++fired; });
      sim.cancel(id);
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
    benchmark::DoNotOptimize(sim.backlog());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCalendarCancelChurn);

void BM_EngineRunPeriodic(benchmark::State& state) {
  const SpotMarket& market = shared_market();
  const Scenario scenario{VolatilityWindow::kHigh, 0.15, 300, 80};
  const Experiment experiment = scenario.experiment(5);
  for (auto _ : state) {
    FixedStrategy strategy(Money::cents(81), {0, 1, 2},
                           make_policy(PolicyKind::kPeriodic));
    Engine engine(market, experiment, strategy);
    benchmark::DoNotOptimize(engine.run().total_cost);
  }
}
BENCHMARK(BM_EngineRunPeriodic);

void BM_EngineRunAdaptive(benchmark::State& state) {
  const SpotMarket& market = shared_market();
  const Scenario scenario{VolatilityWindow::kHigh, 0.15, 300, 80};
  const Experiment experiment = scenario.experiment(5);
  for (auto _ : state) {
    AdaptiveStrategy strategy;
    Engine engine(market, experiment, strategy);
    benchmark::DoNotOptimize(engine.run().total_cost);
  }
}
BENCHMARK(BM_EngineRunAdaptive);

void BM_MarkovUptime(benchmark::State& state) {
  const ZoneTraceSet& traces = shared_market().traces();
  const SimTime t = month_start(kHighVolatilityMonth) + 5 * kDay;
  const PriceSeries window = traces.zone(1).window(t - 2 * kDay, t);
  const MarkovModel model = build_markov_model(window);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        expected_uptime(model, window.sample(window.size() - 1),
                        Money::cents(81)));
  }
}
BENCHMARK(BM_MarkovUptime);

void BM_MarkovModelBuild(benchmark::State& state) {
  const ZoneTraceSet& traces = shared_market().traces();
  const SimTime t = month_start(kHighVolatilityMonth) + 5 * kDay;
  const PriceSeries window = traces.zone(1).window(t - 2 * kDay, t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_markov_model(window).num_states());
  }
}
BENCHMARK(BM_MarkovModelBuild);

void BM_DalyInterval(benchmark::State& state) {
  Duration mtbf = kHour;
  for (auto _ : state) {
    benchmark::DoNotOptimize(daly_interval(300, mtbf));
    mtbf = (mtbf % kDay) + kMinute;
  }
}
BENCHMARK(BM_DalyInterval);

void BM_SyntheticMonth(benchmark::State& state) {
  SyntheticTraceSpec spec = paper_trace_spec(7);
  spec.params.resize(1);  // one month
  spec.forced_spikes.clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_traces(spec).num_zones());
    ++spec.seed;
  }
}
BENCHMARK(BM_SyntheticMonth);

// --- parallel_for dispatch cost --------------------------------------------
// parallel_for claims ~4 chunks per worker off one atomic counter; the two
// baselines below are the dispatch schemes it replaced. With a tiny body the
// difference is pure scheduling overhead: per-index submit pays one
// std::function allocation + queue round-trip per iteration, per-index
// claiming pays one contended fetch_add per iteration.

ThreadPool& bench_pool() {
  static ThreadPool pool(4);
  return pool;
}

constexpr std::size_t kParallelForN = 1 << 14;

void BM_ParallelForChunked(benchmark::State& state) {
  ThreadPool& pool = bench_pool();
  std::vector<std::uint64_t> out(kParallelForN);
  for (auto _ : state) {
    parallel_for(pool, 0, kParallelForN,
                 [&out](std::size_t i) { out[i] = i * 2654435761u; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kParallelForN));
}
BENCHMARK(BM_ParallelForChunked);

void BM_ParallelForPerIndexSubmit(benchmark::State& state) {
  ThreadPool& pool = bench_pool();
  std::vector<std::uint64_t> out(kParallelForN);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kParallelForN; ++i)
      pool.submit([&out, i] { out[i] = i * 2654435761u; });
    pool.wait_idle();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kParallelForN));
}
BENCHMARK(BM_ParallelForPerIndexSubmit);

void BM_ParallelForPerIndexClaim(benchmark::State& state) {
  ThreadPool& pool = bench_pool();
  std::vector<std::uint64_t> out(kParallelForN);
  for (auto _ : state) {
    std::atomic<std::size_t> next{0};
    for (std::size_t t = 0; t < pool.size(); ++t) {
      pool.submit([&out, &next] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < kParallelForN;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          out[i] = i * 2654435761u;
        }
      });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kParallelForN));
}
BENCHMARK(BM_ParallelForPerIndexClaim);

void BM_VarFitMonth(benchmark::State& state) {
  const ZoneTraceSet month = shared_market().traces().window(
      month_start(kHighVolatilityMonth), month_end(kHighVolatilityMonth));
  const auto series = to_series(month);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_var(series, 4).aic);
  }
}
BENCHMARK(BM_VarFitMonth);

}  // namespace

BENCHMARK_MAIN();
