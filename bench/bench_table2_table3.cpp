// Tables 2 and 3 reproduction: the optimal (policy, bid) per scenario cell,
// by lowest median cost over the experiment sweep.
//
// Table 2: t_c = 300 s; Table 3: t_c = 900 s. Candidates are the paper's:
// single-zone Periodic / Markov-Daly / Rising Edge / Threshold (zones
// merged) and best-case redundancy (N = 3), each at every bid in
// {$0.27, $0.81, $2.40} (the three bids Figure 4 shows).
//
// Paper's answers —
//   Table 2: low/15% Periodic($0.81); low/50% Periodic-or-MD($0.81);
//            high/15% Redundancy($0.81); high/50% MD($0.81).
//   Table 3: low/15% Redundancy($0.27); low/50% Periodic-or-MD($0.81);
//            high/15% Redundancy($0.81); high/50% MD($2.40).
//
// Usage: bench_table2_table3 [num_experiments]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "market/spot_market.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

namespace {

struct Candidate {
  std::string label;
  double median = 0.0;
};

void run_table(const SpotMarket& market, Duration tc,
               std::size_t num_experiments, const char* title) {
  std::printf("== %s (tc = %lld s) ==\n", title,
              static_cast<long long>(tc));
  const Money bids[] = {Money::cents(27), Money::cents(81),
                        Money::dollars(2.40)};
  const PolicyKind singles[] = {PolicyKind::kPeriodic,
                                PolicyKind::kMarkovDaly,
                                PolicyKind::kRisingEdge,
                                PolicyKind::kThreshold};
  const PolicyKind redundancy[] = {PolicyKind::kPeriodic,
                                   PolicyKind::kMarkovDaly};

  for (VolatilityWindow window :
       {VolatilityWindow::kLow, VolatilityWindow::kHigh}) {
    for (double slack : {0.15, 0.50}) {
      const Scenario scenario{window, slack, tc, num_experiments};
      std::vector<Candidate> all;
      for (Money bid : bids) {
        for (PolicyKind policy : singles) {
          all.push_back(Candidate{
              to_string(policy) + " (1 zone, " + bid.str() + ")",
              median(merged_single_zone_costs(market, scenario, policy,
                                              bid))});
        }
        all.push_back(Candidate{
            "redundancy (N=3, " + bid.str() + ")",
            median(best_case_redundancy_costs(market, scenario, redundancy,
                                              bid))});
      }
      const Candidate* best = &all.front();
      for (const Candidate& c : all)
        if (c.median < best->median) best = &c;
      std::printf("%-32s -> %-34s median=$%.2f\n",
                  scenario.label().c_str(), best->label.c_str(),
                  best->median);
      // Runners-up for context.
      std::vector<Candidate> sorted = all;
      std::sort(sorted.begin(), sorted.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.median < b.median;
                });
      for (std::size_t i = 1; i < 3 && i < sorted.size(); ++i)
        std::printf("    runner-up: %-34s median=$%.2f\n",
                    sorted[i].label.c_str(), sorted[i].median);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_experiments =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;
  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());
  run_table(market, 300, num_experiments, "Table 2 — optimal policies");
  run_table(market, 900, num_experiments, "Table 3 — optimal policies");
  return 0;
}
