// Figures 1 and 3 reproduction: annotated timelines of spot price
// movements, instance state transitions, checkpoint/restart events and net
// progress — Figure 1 with a Periodic schedule, Figure 3 with the Rising
// Edge policy.
#include <algorithm>
#include <cstdio>

#include "core/engine.hpp"
#include "exp/scenario.hpp"
#include "market/spot_market.hpp"
#include "trace/calendar.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

namespace {

void run_timeline(const SpotMarket& market, PolicyKind policy,
                  const char* title) {
  // A chunk of the high-volatility window gives the figure its
  // terminations and restarts.
  Scenario scenario{VolatilityWindow::kHigh, 0.50, 300, 80};
  const Experiment experiment = scenario.experiment(12);
  const std::size_t zone = 2;
  const Money bid = Money::cents(81);

  FixedStrategy strategy(bid, {zone}, make_policy(policy));
  EngineOptions options;
  options.record_timeline = true;
  Engine engine(market, experiment, strategy, options);
  const RunResult result = engine.run();

  std::printf("== %s — policy %s, zone %zu, bid %s ==\n", title,
              to_string(policy).c_str(), zone, bid.str().c_str());
  std::printf("C=%s D=%s t_c=t_r=%s\n",
              format_duration(experiment.app.total_compute).c_str(),
              format_duration(experiment.deadline).c_str(),
              format_duration(experiment.costs.checkpoint).c_str());

  // Price movements around each event give the figure its (a) panel.
  SimTime last_price_print = 0;
  for (const TimelineEvent& e : result.timeline) {
    const Money s = market.spot_price(zone, std::min(
        e.time, market.trace_end() - 1));
    if (e.time != last_price_print) {
      std::printf("%s  S=%-7s", format_time(e.time).c_str(), s.str().c_str());
      last_price_print = e.time;
    } else {
      std::printf("%s          ", std::string(18, ' ').c_str());
    }
    std::printf("  %s%s%s\n", to_string(e.kind).c_str(),
                e.detail.empty() ? "" : "  ", e.detail.c_str());
  }
  std::printf(
      "total=%s spot=%s od=%s ckpts=%d restarts=%d out-of-bid=%d %s\n\n",
      result.total_cost.str().c_str(), result.spot_cost.str().c_str(),
      result.on_demand_cost.str().c_str(), result.checkpoints_committed,
      result.restarts, result.out_of_bid_terminations,
      result.met_deadline ? "met deadline" : "MISSED DEADLINE");
}

}  // namespace

int main() {
  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());
  run_timeline(market, PolicyKind::kPeriodic,
               "Figure 1 — spot price movements and state transitions");
  run_timeline(market, PolicyKind::kRisingEdge,
               "Figure 3 — Rising Edge checkpoint policy");
  return 0;
}
