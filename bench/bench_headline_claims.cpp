// Headline-claims check (Abstract + Sections 6/7):
//
//   H1  Adaptive is up to 7x cheaper than the on-demand baseline.
//   H2  Adaptive's median is up to 44% below the best single-zone policy's
//       (the paper reports 44.2% at low volatility, t_c = 900 s, T_l = 15%).
//   H3  Best-case redundancy beats the best single-zone policy by ~24% at
//       high volatility, T_l = 15%, t_c = 300 s (paper: 23.9% vs Periodic).
//   H4  Adaptive never exceeds 1.2x the on-demand cost.
//
// Usage: bench_headline_claims [num_experiments]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "market/spot_market.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

namespace {

double best_single_zone_median(const SpotMarket& market,
                               const Scenario& scenario) {
  double best = 1e18;
  for (PolicyKind policy :
       {PolicyKind::kPeriodic, PolicyKind::kMarkovDaly}) {
    for (Money bid : {Money::cents(27), Money::cents(81),
                      Money::dollars(2.40)}) {
      best = std::min(best, median(merged_single_zone_costs(
                                market, scenario, policy, bid)));
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;
  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());
  const double on_demand = 48.0;

  double best_vs_od = 0.0;          // H1: max on-demand/adaptive-median
  double best_vs_single = 0.0;      // H2: max relative saving vs single
  double global_worst_ratio = 0.0;  // H4
  for (const Scenario& base : paper_scenarios()) {
    Scenario scenario = base;
    scenario.num_experiments = n;
    const std::vector<double> adaptive =
        checked_costs(run_adaptive_sweep(market, scenario));
    const double adaptive_median = median(adaptive);
    const double single = best_single_zone_median(market, scenario);
    const double worst = max_of(adaptive);

    best_vs_od = std::max(best_vs_od, on_demand / adaptive_median);
    best_vs_single =
        std::max(best_vs_single, (single - adaptive_median) / single);
    global_worst_ratio = std::max(global_worst_ratio, worst / on_demand);
    std::printf("%-34s adaptive median=$%6.2f worst=$%6.2f | best "
                "single-zone median=$%6.2f\n",
                scenario.label().c_str(), adaptive_median, worst, single);
  }

  {
    const Scenario h3{VolatilityWindow::kHigh, 0.15, 300, n};
    const PolicyKind red[] = {PolicyKind::kPeriodic, PolicyKind::kMarkovDaly};
    const double redundancy = median(
        best_case_redundancy_costs(market, h3, red, Money::cents(81)));
    const double periodic = median(merged_single_zone_costs(
        market, h3, PolicyKind::kPeriodic, Money::cents(81)));
    std::printf("\nH3: redundancy vs Periodic at high-vol/15%%/300s, $0.81: "
                "$%.2f vs $%.2f -> %.1f%% cheaper (paper: 23.9%%)\n",
                redundancy, periodic, 100.0 * (periodic - redundancy) /
                                          periodic);
  }
  std::printf("H1: adaptive up to %.1fx cheaper than on-demand "
              "(paper: up to 7x)\n",
              best_vs_od);
  std::printf("H2: adaptive median up to %.1f%% below best single-zone "
              "(paper: up to 44.2%%)\n",
              100.0 * best_vs_single);
  std::printf("H4: adaptive worst case %.2fx on-demand (paper bound: "
              "1.20x)\n",
              global_worst_ratio);
  return 0;
}
