// Figure 2 reproduction: per-zone and combined availability bars for the
// three CC2 zones over a 15-hour window on December 19, 2012, plus the
// Section 3.1 observation that redundancy raises availability.
//
// '#' marks up-time (S <= B), '.' down-time; one character per 15 minutes.
#include <cstdio>

#include "trace/availability.hpp"
#include "trace/calendar.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

int main() {
  const ZoneTraceSet traces = paper_traces(42);
  // A 15-hour window on Dec 19, 2012 (month 0 of the trace calendar).
  const SimTime from = day_start(0, 19) + 5 * kHour;
  const SimTime to = from + 15 * kHour;
  const Money bid = Money::cents(81);

  std::printf("== Figure 2 — availability, Dec 19 2012, 15 h window, bid %s "
              "==\n",
              bid.str().c_str());
  const Duration resolution = 15 * kMinute;
  {
    const auto combined = combined_segments(traces, bid, from, to);
    std::printf("%-9s %s  (%.1f%%)\n", "combined",
                ascii_bar(combined, resolution).c_str(),
                100.0 * combined_availability(traces, bid, from, to));
  }
  for (std::size_t z = 0; z < traces.num_zones(); ++z) {
    const auto segs = availability_segments(traces.zone(z), bid, from, to);
    std::printf("%-9s %s  (%.1f%%)\n", traces.zone_name(z).c_str(),
                ascii_bar(segs, resolution).c_str(),
                100.0 * availability_fraction(traces.zone(z), bid, from, to));
  }

  std::printf("\nAvailability gain from redundancy over the full "
              "high-volatility window at representative bids:\n");
  const SimTime hv_from = month_start(kHighVolatilityMonth);
  const SimTime hv_to = month_end(kHighVolatilityMonth);
  for (Money b : {Money::cents(47), Money::cents(81), Money::dollars(1.47),
                  Money::dollars(2.40)}) {
    double best_single = 0.0;
    for (std::size_t z = 0; z < traces.num_zones(); ++z) {
      best_single = std::max(
          best_single,
          availability_fraction(traces.zone(z), b, hv_from, hv_to));
    }
    std::printf("bid %-6s best single zone %.3f -> combined %.3f\n",
                b.str().c_str(), best_single,
                combined_availability(traces, b, hv_from, hv_to));
  }
  return 0;
}
