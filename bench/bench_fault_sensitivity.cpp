// Fault-sensitivity sweep (robustness study): cost and deadline-miss rate
// for all six policies as per-class fault rates rise. Every run is audited
// by RunValidator inside the sweep harness, so a fault-handling bug that
// broke an accounting or deadline invariant would abort the table rather
// than skew it.
//
// The key claim: the on-demand fallback guarantee holds under every fault
// class, so the "miss" column stays zero — faults cost money, not
// deadlines.
//
// Usage: bench_fault_sensitivity [num_experiments] [tc_seconds]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "fault/fault_plan.hpp"
#include "market/spot_market.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

namespace {

struct PlanRow {
  std::string label;
  FaultPlan plan;
};

std::vector<PlanRow> fault_grid() {
  std::vector<PlanRow> rows;
  rows.push_back({"none", {}});
  {
    FaultPlan p;
    p.ckpt_write_failure_rate = 0.05;
    rows.push_back({"ckpt-fail 5%", p});
    p.ckpt_write_failure_rate = 0.25;
    rows.push_back({"ckpt-fail 25%", p});
  }
  {
    FaultPlan p;
    p.ckpt_corruption_rate = 0.10;
    rows.push_back({"ckpt-corrupt 10%", p});
  }
  {
    FaultPlan p;
    p.restart_failure_rate = 0.25;
    rows.push_back({"restart-fail 25%", p});
  }
  {
    FaultPlan p;
    p.request_rejection_rate = 0.10;
    rows.push_back({"reject 10%", p});
    p.request_rejection_rate = 0.40;
    rows.push_back({"reject 40%", p});
  }
  {
    FaultPlan p;
    p.notice_drop_rate = 0.5;
    rows.push_back({"notice-drop 50%", p});
  }
  {
    // A two-day store blackout anchored on the first experiment chunk
    // (chunks start at window_start + history_span): every checkpoint
    // write inside it fails, whatever the policy. Anchoring there keeps
    // the outage overlapping runs at any sweep size.
    FaultPlan p;
    const SimTime start = window_start(VolatilityWindow::kLow) + 2 * kDay;
    p.store_outages.push_back({start, start + 2 * kDay});
    rows.push_back({"store-outage 48h", p});
  }
  {
    FaultPlan p;
    p.ckpt_write_failure_rate = 0.2;
    p.ckpt_corruption_rate = 0.1;
    p.restart_failure_rate = 0.2;
    p.request_rejection_rate = 0.3;
    p.notice_drop_rate = 0.2;
    p.notice_late_rate = 0.3;
    rows.push_back({"all moderate", p});
  }
  return rows;
}

struct PolicyCell {
  std::string name;
  std::vector<RunResult> results;
};

std::vector<PolicyCell> run_policies(const SpotMarket& market,
                                     const Scenario& scenario,
                                     const EngineOptions& options) {
  constexpr PolicyKind kFixed[] = {PolicyKind::kThreshold,
                                   PolicyKind::kRisingEdge,
                                   PolicyKind::kPeriodic,
                                   PolicyKind::kMarkovDaly};
  std::vector<PolicyCell> cells;
  for (PolicyKind kind : kFixed) {
    PolicyRunSpec spec;
    spec.policy = kind;
    spec.bid = Money::cents(81);
    spec.zones = {0, 1, 2};
    cells.push_back(
        {to_string(kind), run_fixed_sweep(market, scenario, spec, options)});
  }
  cells.push_back({"large-bid", run_large_bid_sweep(market, scenario,
                                                    Money::cents(30), 0,
                                                    options)});
  cells.push_back(
      {"adaptive", run_adaptive_sweep(market, scenario, {}, options)});
  return cells;
}

void print_cell(const std::string& plan_label, const PolicyCell& cell) {
  RunningStats cost;
  int misses = 0;
  long fault_events = 0;
  Duration backoff = 0;
  for (const RunResult& r : cell.results) {
    cost.add(r.total_cost.to_double());
    misses += r.met_deadline ? 0 : 1;
    const FaultStats& f = r.faults;
    fault_events += f.ckpt_write_failures + f.ckpt_corruptions +
                    f.restart_failures + f.request_rejections +
                    f.notices_dropped + f.notices_late;
    backoff += f.backoff_total;
  }
  std::printf("  %-18s %-12s $%7.2f  $%7.2f  %5d  %7ld  %8s\n",
              plan_label.c_str(), cell.name.c_str(), cost.mean(), cost.max(),
              misses, fault_events, format_duration(backoff).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_experiments =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;
  const Duration tc = argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 300;

  const SpotMarket market(paper_traces(42), cc2_instance(),
                          QueueDelayModel());
  const Scenario scenario{VolatilityWindow::kLow, 0.15, tc, num_experiments};

  std::printf("Fault sensitivity — %s, %zu experiments (RunValidator on "
              "every run)\n",
              scenario.label().c_str(), num_experiments);
  std::printf("  %-18s %-12s %8s  %8s  %5s  %7s  %8s\n", "faults", "policy",
              "mean", "max", "miss", "events", "backoff");
  for (const PlanRow& row : fault_grid()) {
    row.plan.validate();
    EngineOptions options;
    options.termination_notice = 300;
    options.faults = row.plan;
    for (const PolicyCell& cell : run_policies(market, scenario, options))
      print_cell(row.label, cell);
  }
  return 0;
}
