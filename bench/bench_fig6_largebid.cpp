// Figure 6 reproduction: Large-bid (B = $100) at user thresholds
// L in {$0.27, $0.81, $2.40, Max=$20.02, Naive = no threshold} vs Adaptive,
// for the four (t_c, T_l) cells of each volatility window. Large-bid is
// single-zone; zones are merged as in the paper's other single-zone
// boxplots. Circles in the paper mark the maximum cost — the "max" column
// here. The paper's headline worst cases: $183.75 (3.8x on-demand) in the
// low-volatility window (the $20.02 spike of Mar 13-14) and ~2.0x
// on-demand in the high-volatility window.
//
// Usage: bench_fig6_largebid [num_experiments]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/policies/large_bid.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "market/spot_market.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

namespace {

std::vector<double> merged_large_bid_costs(const SpotMarket& market,
                                           const Scenario& scenario,
                                           Money threshold) {
  std::vector<double> merged;
  for (std::size_t zone = 0; zone < market.num_zones(); ++zone) {
    const std::vector<RunResult> results =
        run_large_bid_sweep(market, scenario, threshold, zone);
    const std::vector<double> costs = checked_costs(results);
    merged.insert(merged.end(), costs.begin(), costs.end());
  }
  return merged;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_experiments =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;

  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());

  const std::pair<const char*, Money> thresholds[] = {
      {"L=$0.27", Money::cents(27)},
      {"L=$0.81", Money::cents(81)},
      {"L=$2.40", Money::dollars(2.40)},
      {"L=Max ($20.02)", Money::dollars(20.02)},
      {"Naive (no threshold)", LargeBidPolicy::no_threshold()},
  };

  for (const Scenario& base : paper_scenarios()) {
    Scenario scenario = base;
    scenario.num_experiments = num_experiments;

    std::vector<BoxRow> rows;
    for (const auto& [label, threshold] : thresholds) {
      rows.push_back(make_box_row(
          std::string("large-bid ") + label,
          merged_large_bid_costs(market, scenario, threshold)));
    }
    rows.push_back(make_box_row(
        "adaptive",
        checked_costs(run_adaptive_sweep(market, scenario))));
    std::fputs(boxplot_table("Figure 6 — " + scenario.label(), rows,
                             Money::dollars(48.00), Money::dollars(5.40))
                   .c_str(),
               stdout);
    std::printf("\n");
  }
  return 0;
}
