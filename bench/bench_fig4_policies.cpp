// Figure 4 reproduction: single-zone checkpointing policies (Threshold,
// Rising Edge, Periodic, Markov-Daly — zones merged) vs the best-case
// redundancy-based policy, as boxplots of per-experiment cost.
//
// The paper shows t_c = 300 s at bids {0.27, 0.81, 2.40} for the low and
// high volatility windows at T_l = 15% and 50%; each single-zone boxplot
// merges all three zones. We print one table per (window, slack) with the
// per-bid distributions merged the same way, plus a per-bid breakdown.
//
// Usage: bench_fig4_policies [num_experiments] [tc_seconds]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "market/spot_market.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

namespace {

constexpr PolicyKind kSingleZonePolicies[] = {
    PolicyKind::kThreshold, PolicyKind::kRisingEdge, PolicyKind::kPeriodic,
    PolicyKind::kMarkovDaly};

constexpr PolicyKind kRedundancyPolicies[] = {
    PolicyKind::kPeriodic, PolicyKind::kMarkovDaly, PolicyKind::kRisingEdge,
    PolicyKind::kThreshold};

void run_cell(const SpotMarket& market, const Scenario& scenario,
              const std::vector<Money>& bids) {
  std::vector<BoxRow> rows;
  for (PolicyKind policy : kSingleZonePolicies) {
    std::vector<double> merged;
    for (Money bid : bids) {
      const std::vector<double> costs =
          merged_single_zone_costs(market, scenario, policy, bid);
      merged.insert(merged.end(), costs.begin(), costs.end());
    }
    rows.push_back(make_box_row(to_string(policy) + " (1 zone)", merged));
  }
  {
    std::vector<double> merged;
    for (Money bid : bids) {
      const std::vector<double> costs = best_case_redundancy_costs(
          market, scenario, kRedundancyPolicies, bid);
      merged.insert(merged.end(), costs.begin(), costs.end());
    }
    rows.push_back(make_box_row("redundancy (best, N=3)", merged));
  }
  std::fputs(boxplot_table("Figure 4 — " + scenario.label() +
                               " (bids merged: $0.27/$0.81/$2.40)",
                           rows, Money::dollars(48.00),
                           Money::dollars(5.40))
                 .c_str(),
             stdout);

  // Per-bid breakdown (the summary discussion of Section 6 references
  // per-bid behaviour, e.g. Periodic's $0.81 sweet spot).
  for (Money bid : bids) {
    std::vector<BoxRow> detail;
    for (PolicyKind policy : kSingleZonePolicies) {
      detail.push_back(make_box_row(
          to_string(policy),
          merged_single_zone_costs(market, scenario, policy, bid)));
    }
    detail.push_back(make_box_row(
        "redundancy (best, N=3)",
        best_case_redundancy_costs(market, scenario, kRedundancyPolicies,
                                   bid)));
    std::fputs(boxplot_table("  bid " + bid.str(), detail,
                             Money::dollars(48.00), Money::dollars(5.40))
                   .c_str(),
               stdout);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_experiments =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;
  const Duration tc = argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 300;

  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());
  const std::vector<Money> bids = {Money::cents(27), Money::cents(81),
                                   Money::dollars(2.40)};

  for (VolatilityWindow window :
       {VolatilityWindow::kLow, VolatilityWindow::kHigh}) {
    for (double slack : {0.15, 0.50}) {
      run_cell(market, Scenario{window, slack, tc, num_experiments}, bids);
    }
  }
  return 0;
}
