// Ablation A3: checkpoint-cost sweep, plus the Daly-vs-Young interval
// comparison. The paper evaluates t_c = t_r at 300 s and 900 s; this sweep
// fills in the curve and shows where Edge/Threshold collapse ("high
// recovery costs resulting from inadequate checkpointing").
//
// Usage: bench_ablation_ckpt_cost [num_experiments]
#include <cstdio>
#include <cstdlib>

#include "ckpt/daly.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "market/spot_market.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40;
  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());
  const Money bid = Money::cents(81);
  const PolicyKind red[] = {PolicyKind::kPeriodic, PolicyKind::kMarkovDaly};

  std::printf("== Ablation A3 — checkpoint-cost sweep, high-volatility, "
              "Tl=15%%, bid $0.81 ==\n");
  std::printf("%6s %14s %14s %14s %14s\n", "tc(s)", "periodic med",
              "markov-daly med", "rising-edge med", "redundancy med");
  for (Duration tc : {Duration{150}, Duration{300}, Duration{600},
                      Duration{900}, Duration{1200}}) {
    const Scenario scenario{VolatilityWindow::kHigh, 0.15, tc, n};
    std::printf("%6lld %14.2f %14.2f %14.2f %14.2f\n",
                static_cast<long long>(tc),
                median(merged_single_zone_costs(market, scenario,
                                                PolicyKind::kPeriodic, bid)),
                median(merged_single_zone_costs(
                    market, scenario, PolicyKind::kMarkovDaly, bid)),
                median(merged_single_zone_costs(
                    market, scenario, PolicyKind::kRisingEdge, bid)),
                median(best_case_redundancy_costs(market, scenario, red,
                                                  bid)));
  }

  std::printf("\nDaly vs Young optimum interval (minutes) by MTBF, "
              "tc = 300 s / 900 s:\n");
  std::printf("%10s %12s %12s %12s %12s\n", "MTBF", "daly(300)",
              "young(300)", "daly(900)", "young(900)");
  for (Duration mtbf : {30 * kMinute, kHour, 3 * kHour, 12 * kHour,
                        2 * kDay}) {
    std::printf("%10s %12.1f %12.1f %12.1f %12.1f\n",
                format_duration(mtbf).c_str(),
                static_cast<double>(daly_interval(300, mtbf)) / 60.0,
                static_cast<double>(young_interval(300, mtbf)) / 60.0,
                static_cast<double>(daly_interval(900, mtbf)) / 60.0,
                static_cast<double>(young_interval(900, mtbf)) / 60.0);
  }
  return 0;
}
