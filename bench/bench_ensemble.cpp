// Ensemble reproduction of Figure 4: instead of one 12-month price history
// per zone, every policy is evaluated over >= 1000 seeded trace
// realizations (one synthetic window per replication) and reported as a
// distribution with a 95% bootstrap CI on the mean cost and a binomial CI
// on the deadline-miss rate. Single-zone policies merge the three per-zone
// ensembles exactly like the paper's boxplots; the redundancy row is the
// per-replication best-case over the redundancy-based policies (Section 6).
//
// Also exercises the two operational guarantees of the ensemble layer:
//   * result cache — rerunning the headline spec is a cache hit;
//   * determinism — the same spec + seed renders a bit-identical summary
//     with 1, 2, and hardware-concurrency threads.
//
// Usage: bench_ensemble [replications] [tc_seconds]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "ensemble/cache.hpp"
#include "ensemble/runner.hpp"
#include "exp/scenario.hpp"

using namespace redspot;

namespace {

constexpr PolicyKind kPolicies[] = {PolicyKind::kThreshold,
                                    PolicyKind::kRisingEdge,
                                    PolicyKind::kPeriodic,
                                    PolicyKind::kMarkovDaly};
constexpr std::size_t kNumPolicies = 4;
constexpr std::size_t kNumZones = 3;

/// Headline spec: high volatility, T_l = 15%, the paper's $0.81 sweet-spot
/// bid. Configs 0..11 are policy x zone singles; 12..15 are the same
/// policies with all three zones, feeding the best-case redundancy group.
EnsembleSpec headline_spec(std::size_t replications, Duration tc) {
  EnsembleSpec spec;
  spec.window = VolatilityWindow::kHigh;
  spec.slack_fraction = 0.15;
  spec.checkpoint_cost = tc;
  spec.replications = replications;
  spec.seed = 42;
  const Money bid = Money::cents(81);
  for (PolicyKind policy : kPolicies) {
    for (std::size_t z = 0; z < kNumZones; ++z) {
      EnsembleConfig c;
      c.policy = policy;
      c.bid = bid;
      c.zones = {z};
      spec.configs.push_back(c);
    }
  }
  MinGroup redundancy{"redundancy (best, N=3)", {}};
  for (PolicyKind policy : kPolicies) {
    EnsembleConfig c;
    c.policy = policy;
    c.bid = bid;
    c.zones = {0, 1, 2};
    c.label = "red:" + to_string(policy);
    redundancy.members.push_back(spec.configs.size());
    spec.configs.push_back(c);
  }
  spec.min_groups.push_back(redundancy);
  return spec;
}

std::string merged_label(std::size_t p) {
  return to_string(kPolicies[p]) + " (zones merged)";
}

/// Zone-merged view: one summary per policy (3 zone ensembles merged) plus
/// the redundancy group, rendered with the runner's table.
EnsembleResult merged_view(const EnsembleResult& result) {
  EnsembleResult merged;
  merged.ci_level = result.ci_level;
  for (std::size_t p = 0; p < kNumPolicies; ++p) {
    ConfigSummary s(merged_label(p),
                    result.configs[p * kNumZones].cost().options());
    for (std::size_t z = 0; z < kNumZones; ++z)
      s.merge(result.configs[p * kNumZones + z]);
    merged.configs.push_back(std::move(s));
  }
  merged.groups = result.groups;
  return merged;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t replications =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  const Duration tc = argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 300;

  const EnsembleSpec spec = headline_spec(replications, tc);
  const EnsembleRunner runner(spec);
  const EnsembleResult result = runner.run();

  EnsembleResult merged = merged_view(result);
  char title[160];
  std::snprintf(title, sizeof(title),
                "Figure 4 (ensemble) — high-volatility Tl=15%% tc=%llds "
                "bid=$0.81, %zu trace realizations",
                static_cast<long long>(tc), replications);
  std::fputs(merged.table(title).c_str(), stdout);

  // Qualitative policy ordering (Section 6): the best-case redundancy-based
  // policy outperforms every single-zone policy's mean cost.
  const double redundancy_mean = merged.groups[0].cost().mean();
  bool ordering_ok = true;
  double best_single = 1e18;
  std::size_t best_single_idx = 0;
  for (std::size_t p = 0; p < kNumPolicies; ++p) {
    const double m = merged.configs[p].cost().mean();
    if (m < best_single) {
      best_single = m;
      best_single_idx = p;
    }
    if (redundancy_mean > m) ordering_ok = false;
  }
  std::printf("\nordering check (redundancy best-case <= every single-zone "
              "mean): %s\n",
              ordering_ok ? "PASS" : "FAIL");
  std::printf("  redundancy mean $%.2f vs best single (%s) $%.2f "
              "(saving %.1f%%)\n",
              redundancy_mean, merged_label(best_single_idx).c_str(),
              best_single,
              100.0 * (best_single - redundancy_mean) / best_single);

  // Result cache: the same spec is a hit, not a recomputation.
  const EnsembleResult again = runner.run();
  const EnsembleCache::Stats cache = EnsembleCache::global().stats();
  std::printf("\nresult cache: %s (hits %llu, misses %llu, entries %zu)\n",
              again.from_cache ? "hit" : "MISS (unexpected)",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses), cache.entries);

  // Determinism: bit-identical summary for any thread count.
  EnsembleSpec direct = spec;
  direct.use_cache = false;
  const EnsembleRunner direct_runner(direct);
  std::string reference;
  bool deterministic = true;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{0} /* hardware */}) {
    ThreadPool pool(threads);
    const std::string table =
        merged_view(direct_runner.run(pool)).table("determinism");
    if (reference.empty()) {
      reference = table;
    } else if (table != reference) {
      deterministic = false;
    }
  }
  std::printf("determinism (1/2/hw threads, bit-identical summaries): %s\n",
              deterministic ? "PASS" : "FAIL");
  return ordering_ok && deterministic && again.from_cache ? 0 : 1;
}
