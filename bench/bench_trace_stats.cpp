// Trace-generator calibration report (Section 5 data characteristics).
//
// Prints, for each evaluation window and zone: mean, variance, min/max,
// the fraction of time at the $0.27 floor, and availability at the paper's
// three reference bids. EXPERIMENTS.md quotes this output against the
// statistics the paper reports for the real Dec 2012 - Jan 2014 data.
#include <cstdio>

#include "stats/descriptive.hpp"
#include "trace/availability.hpp"
#include "trace/calendar.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

namespace {

void window_report(const ZoneTraceSet& traces, const char* label,
                   std::size_t month, bool exclude_forced_spike) {
  const SimTime from = month_start(month);
  const SimTime to = month_end(month);
  std::printf("--- %s (%s) %s---\n", label, month_name(month).c_str(),
              exclude_forced_spike ? "[forced spike excluded] " : "");
  for (std::size_t z = 0; z < traces.num_zones(); ++z) {
    std::vector<double> xs;
    const PriceSeries w = traces.zone(z).window(from, to);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double v = w.sample(i).to_double();
      if (exclude_forced_spike && v > 3.05) continue;
      xs.push_back(v);
    }
    std::size_t at_floor = 0;
    for (double v : xs)
      if (v <= 0.2700001) ++at_floor;
    std::printf(
        "%-8s mean=$%.3f var=%.4f min=$%.3f max=$%.3f floor%%=%.0f  "
        "avail(0.27/0.81/2.40)=%.2f/%.2f/%.2f\n",
        traces.zone_name(z).c_str(), mean(xs), variance(xs), min_of(xs),
        max_of(xs), 100.0 * static_cast<double>(at_floor) /
                        static_cast<double>(xs.size()),
        availability_fraction(traces.zone(z), Money::cents(27), from, to),
        availability_fraction(traces.zone(z), Money::cents(81), from, to),
        availability_fraction(traces.zone(z), Money::dollars(2.40), from,
                              to));
  }
  for (Money bid : {Money::cents(27), Money::cents(81), Money::dollars(2.40)}) {
    std::printf("combined availability at %s: %.3f   mean zones up: %.2f\n",
                bid.str().c_str(),
                combined_availability(traces, bid, from, to),
                mean_zones_up(traces, bid, from, to));
  }
}

}  // namespace

int main() {
  const ZoneTraceSet traces = paper_traces(42);
  std::printf("== Synthetic trace calibration (seed 42) ==\n");
  std::printf("span: %s .. %s (%zu months)\n\n",
              month_name(0).c_str(), month_name(kTraceMonths - 1).c_str(),
              kTraceMonths);
  window_report(traces, "low-volatility window", kLowVolatilityMonth, false);
  window_report(traces, "low-volatility window", kLowVolatilityMonth, true);
  std::printf("\n");
  window_report(traces, "high-volatility window", kHighVolatilityMonth,
                false);
  std::printf("\npaper targets: low-vol mean ~$0.30 var<0.01 (spike aside); "
              "high-vol means $0.70-$1.12, var up to ~2.02, spikes <=$3.00; "
              "one 9 h $20.02 spike on Mar 13-14.\n");
  return 0;
}
