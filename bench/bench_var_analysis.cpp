// Section 3.1 reproduction: vector auto-regression of the three zones'
// prices over the full trace, lag order selected by the Akaike criterion.
// The paper's finding: same-zone lagged-price effects are consistently 1-2
// orders of magnitude larger than cross-zone effects — the statistical
// license for treating zones as independent failure domains.
//
// Usage: bench_var_analysis [max_lag]
#include <cstdio>
#include <cstdlib>

#include "trace/calendar.hpp"
#include "trace/synthetic.hpp"
#include "trace/var.hpp"

using namespace redspot;

int main(int argc, char** argv) {
  const std::size_t max_lag =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;

  const ZoneTraceSet traces = paper_traces(42);
  const auto series = to_series(traces);

  std::printf("== Section 3.1 — VAR analysis over %zu months ==\n",
              kTraceMonths);
  std::printf("%4s %14s %12s\n", "lag", "AIC", "ln|Sigma|");
  VarFit best;
  double best_aic = 0.0;
  for (std::size_t p = 1; p <= max_lag; ++p) {
    VarFit fit = fit_var(series, p);
    std::printf("%4zu %14.4f %12.4f\n", p, fit.aic,
                fit.aic - 2.0 * static_cast<double>(p * 9) /
                              static_cast<double>(fit.effective_samples));
    if (best.lag_order == 0 || fit.aic < best_aic) {
      best_aic = fit.aic;
      best = std::move(fit);
    }
  }
  std::printf("selected lag order (AIC): %zu\n\n", best.lag_order);

  const CrossZoneEffects effects = cross_zone_effects(best);
  std::printf("mean |within-zone| coefficient: %.5f\n",
              effects.mean_abs_within);
  std::printf("mean |cross-zone|  coefficient: %.5f\n",
              effects.mean_abs_cross);
  std::printf("within/cross ratio: %.1fx (paper: 1-2 orders of magnitude)\n",
              effects.within_to_cross_ratio);

  std::printf("\nlag-1 coefficient matrix (rows: target zone):\n");
  const Matrix& a1 = best.coefficients.front();
  for (std::size_t i = 0; i < a1.rows(); ++i) {
    for (std::size_t j = 0; j < a1.cols(); ++j)
      std::printf(" %9.5f", a1(i, j));
    std::printf("\n");
  }
  return 0;
}
