// Flagship head-to-head table: every policy of the zoo x every market
// regime of the catalog on the high-volatility window, with 95% CIs on
// mean cost and deadline-miss rate (exp/head_to_head.hpp). Emits the text
// tables plus a flat bench report for the CI runtime gate
// (BENCH_regime.json baseline; see tools/bench_report.hpp).
//
// Usage: bench_head_to_head [num_experiments] [tc_seconds] [report.json]
//                           [journal_path]
// With a journal path the whole matrix is resumable: cells already
// journaled replay instead of re-simulating.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "bench_report.hpp"
#include "exp/head_to_head.hpp"
#include "exp/scenario.hpp"
#include "journal/journal.hpp"
#include "market/spot_market.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

int main(int argc, char** argv) {
  const std::size_t num_experiments =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  const Duration tc = argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 300;
  const std::string report_path =
      argc > 3 ? argv[3] : "bench_head_to_head.json";

  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());

  HeadToHeadOptions options;
  options.scenario =
      Scenario{VolatilityWindow::kHigh, 0.15, tc, num_experiments};
  std::optional<RunJournal> journal;
  if (argc > 4) {
    journal.emplace(argv[4]);
    options.journal = &*journal;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const HeadToHeadResult result = run_head_to_head(market, options);
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  std::fputs(
      result.table("Head-to-head — " + options.scenario.label()).c_str(),
      stdout);
  std::printf(
      "randomized-bid draw: %s | %zu cells | journal: %zu replayed, %zu "
      "recomputed | %.0f ms\n",
      result.drawn_bid.str().c_str(), result.cells.size(),
      result.chunks_replayed, result.chunks_recomputed, ms);

  benchreport::Report report;
  report.schema = "redspot-head-to-head-v1";
  report.set("head_to_head_ms", ms);
  report.set("h2h.cells", static_cast<double>(result.cells.size()));
  for (const HeadToHeadCell& c : result.cells) {
    const std::string k = "h2h." + c.regime + "." + c.policy + ".";
    report.set(k + "n", static_cast<double>(c.n));
    report.set(k + "mean_cost", c.mean_cost);
    report.set(k + "cost_lo", c.cost_lo);
    report.set(k + "cost_hi", c.cost_hi);
    report.set(k + "median_cost", c.median_cost);
    report.set(k + "miss_rate", c.miss_rate);
  }
  benchreport::write_report(report, report_path);
  std::printf("wrote %s\n", report_path.c_str());
  return 0;
}
