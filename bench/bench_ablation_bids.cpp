// Ablation A2: bid-price sweep. Section 6's summary: single-zone Periodic
// is best around B = $0.81; higher bids favour single-zone Markov-Daly;
// for redundancy-based policies higher bids past a sweet spot raise the
// median (paying for all three zones). This sweep prints the median cost
// per bid for each policy family.
//
// Usage: bench_ablation_bids [num_experiments]
#include <cstdio>
#include <cstdlib>

#include "core/adaptive/adaptive_runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "market/spot_market.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;
  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());
  const PolicyKind red[] = {PolicyKind::kPeriodic, PolicyKind::kMarkovDaly};

  for (VolatilityWindow window :
       {VolatilityWindow::kLow, VolatilityWindow::kHigh}) {
    const Scenario scenario{window, 0.15, 300, n};
    std::printf("== Ablation A2 — bid sweep, %s ==\n",
                scenario.label().c_str());
    std::printf("%8s %18s %18s %18s\n", "bid", "periodic(1z) med",
                "markov-daly(1z) med", "redundancy med");
    for (Money bid : paper_bid_grid()) {
      const double p = median(merged_single_zone_costs(
          market, scenario, PolicyKind::kPeriodic, bid));
      const double m = median(merged_single_zone_costs(
          market, scenario, PolicyKind::kMarkovDaly, bid));
      const double r = median(
          best_case_redundancy_costs(market, scenario, red, bid));
      std::printf("%8s %18.2f %18.2f %18.2f\n", bid.str().c_str(), p, m, r);
    }
    std::printf("\n");
  }
  return 0;
}
