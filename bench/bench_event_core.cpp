// Typed-event-core microbenchmarks with a machine-readable report for the
// CI tolerance gate (same conventions as bench_decision_path; see
// tools/bench_report.hpp).
//
// Three suites pin the cost of the engine decomposition's calendar:
//
//   1. push/pop      — EventQueue schedule + dispatch throughput vs the
//                      generic sim/Simulation calendar on the identical
//                      workload. The typed queue carries EventKind + zone
//                      per entry; its dispatch overhead over the untyped
//                      core is gated by a hard ratio ceiling.
//   2. cancel churn  — the engine's deadline-trigger pattern: schedule,
//                      cancel, reschedule under a live backlog; exercises
//                      lazy deletion + heap compaction. The backlog bound
//                      (<= 2x live entries after churn) is asserted.
//   3. observed run  — a full small engine run with zero observers vs one
//                      with an attached EventTraceRecorder; zero-observer
//                      runs must not pay for the hook layer.
//
// Usage: bench_event_core [--quick] [--out report.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "common/check.hpp"
#include "core/engine.hpp"
#include "core/events/event_queue.hpp"
#include "core/events/trace_recorder.hpp"
#include "core/strategy.hpp"
#include "market/spot_market.hpp"
#include "sim/simulation.hpp"
#include "trace/zone_traces.hpp"

namespace redspot {

// External linkage defeats dead-code elimination of the measured work.
std::int64_t g_sink = 0;

namespace {

using Clock = std::chrono::steady_clock;

/// Median over `reps` timing runs of one call each, in ns.
template <typename F>
double median_run_ns(int reps, F&& fn) {
  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

/// The shared calendar workload: a seed event chain (price-tick style)
/// plus a fan of per-zone events, `n` dispatches total.
template <typename Queue, typename Schedule>
void run_calendar(Queue& queue, Schedule&& schedule, int n) {
  int remaining = n;
  std::function<void()> tick = [&] {
    g_sink += static_cast<std::int64_t>(queue.now());
    if (--remaining > 0) schedule(queue.now() + 300, tick);
  };
  schedule(SimTime{0}, tick);
  while (queue.step()) {
  }
  REDSPOT_CHECK(remaining == 0);
}

/// One small end-to-end engine run (4 h of compute on a flat cheap price).
RunResult tiny_run(const SpotMarket& market, const Experiment& experiment,
                   EngineObserver* observer) {
  FixedStrategy strategy(Money::cents(81), {0},
                         make_policy(PolicyKind::kPeriodic));
  Engine engine(market, experiment, strategy, {});
  if (observer != nullptr) engine.add_observer(observer);
  return engine.run();
}

}  // namespace
}  // namespace redspot

int main(int argc, char** argv) {
  using namespace redspot;

  bool quick = false;
  std::string out_path = "BENCH_event_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_event_core [--quick] [--out report.json]\n");
      return 2;
    }
  }

  benchreport::Report report;
  report.schema = "redspot-event-core-v1";
  report.set("quick", quick ? 1 : 0);
  const int reps = quick ? 5 : 9;
  const int n = quick ? 20000 : 100000;

  // --- 1. push/pop: typed queue vs the generic calendar ---------------------
  {
    const double typed_ns = median_run_ns(reps, [&] {
      EventQueue queue(0);
      run_calendar(
          queue,
          [&queue](SimTime t, const std::function<void()>& cb) {
            queue.schedule_at(EventKind::kPriceTick, kNoZone, t, cb);
          },
          n);
    });
    const double generic_ns = median_run_ns(reps, [&] {
      Simulation sim(0);
      run_calendar(
          sim,
          [&sim](SimTime t, const std::function<void()>& cb) {
            sim.schedule_at(t, cb);
          },
          n);
    });
    report.set("queue_push_pop_ns", typed_ns / n);
    report.set("generic_push_pop_ns", generic_ns / n);
    report.set("event_core_overhead_ratio", typed_ns / generic_ns);
  }

  // --- 2. cancel churn (the deadline-trigger reschedule pattern) ------------
  {
    const int churn = quick ? 20000 : 100000;
    std::size_t backlog = 0;
    std::size_t live = 0;
    const double churn_ns = median_run_ns(reps, [&] {
      EventQueue queue(0);
      // A standing backlog of zone events keeps the heap non-trivial.
      std::vector<EventId> standing;
      for (int i = 0; i < 256; ++i) {
        standing.push_back(queue.schedule_at(
            EventKind::kCycleBoundary, static_cast<std::size_t>(i % 3),
            1000000 + i, [] {}));
      }
      EventId trigger = 0;
      for (int i = 0; i < churn; ++i) {
        queue.cancel(trigger);
        trigger = queue.schedule_at(EventKind::kDeadlineTrigger, kNoZone,
                                    2000000 + i, [] {});
      }
      backlog = queue.backlog();
      live = queue.pending_count();
      for (EventId& id : standing) queue.cancel(id);
      queue.cancel(trigger);
    });
    REDSPOT_CHECK_MSG(backlog <= 2 * live,
                      "lazy deletion let the backlog grow past 2x live");
    report.set("queue_cancel_churn_ns", churn_ns / churn);
    report.set("queue_backlog_after_churn", static_cast<double>(backlog));
  }

  // --- 3. engine run: zero observers vs an attached trace recorder ----------
  {
    Experiment e;
    e.app = AppModel{"bench-app", 4 * kHour, 1, 8};
    e.costs = CheckpointCosts{300, 300};
    e.start = 0;
    e.deadline = 6 * kHour;
    e.history_span = 2 * kHour;
    e.validate();
    std::vector<PriceSeries> series;
    series.push_back(PriceSeries(
        0, kPriceStep, std::vector<Money>(96, Money::cents(30))));
    const SpotMarket market(
        ZoneTraceSet({"bench-zone"}, std::move(series)), cc2_instance(),
        QueueDelayModel(QueueDelayParams::fixed(0)));

    const double bare_ns = median_run_ns(reps, [&] {
      g_sink += tiny_run(market, e, nullptr).total_cost.micros();
    });
    const double observed_ns = median_run_ns(reps, [&] {
      EventTraceRecorder trace;  // fresh per rep: lines must not accumulate
      g_sink += tiny_run(market, e, &trace).total_cost.micros();
    });
    report.set("engine_run_ms", bare_ns / 1e6);
    report.set("engine_observed_run_ms", observed_ns / 1e6);
    report.set("observer_overhead_ratio", observed_ns / bare_ns);
  }

  benchreport::write_report(report, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  for (const auto& [name, value] : report.metrics) {
    std::printf("  %-28s %.4g\n", name.c_str(), value);
  }
  return 0;
}
