// The paper's motivating scenario (Section 2.1): "finish the weather
// prediction for tomorrow before the evening newscast at 7pm."
//
// A 20-hour forecast job is submitted at 8pm the previous evening; the
// deadline is 7pm the next day (23 h away, i.e. 15% slack). This example
// walks the whole decision the paper automates: what would on-demand cost,
// what do the fixed policies do, and what does Adaptive choose — then
// prints the winning run's timeline.
//
//   $ ./examples/weather_deadline [chunk-index]
#include <cstdio>
#include <cstdlib>

#include "app/application.hpp"
#include "core/adaptive/adaptive_runner.hpp"
#include "core/engine.hpp"
#include "exp/scenario.hpp"
#include "market/spot_market.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

int main(int argc, char** argv) {
  const std::size_t chunk =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 25;

  SpotMarket market(paper_traces(42), cc2_instance(), QueueDelayModel());

  // The weather preset: 20 h forecast, 128 tasks, 300 s checkpoints.
  const AppPreset& preset = weather_preset();
  Scenario scenario{VolatilityWindow::kHigh, 0.15,
                    preset.costs.checkpoint, 80};
  Experiment experiment = scenario.experiment(chunk);
  experiment.app = preset.model;
  experiment.costs = preset.costs;

  std::printf("Scenario: %s\n", preset.description.c_str());
  std::printf("Submitted with C = %s of compute, deadline in %s (slack %s)\n\n",
              format_duration(experiment.app.total_compute).c_str(),
              format_duration(experiment.deadline).c_str(),
              format_duration(experiment.slack()).c_str());

  const RunResult on_demand =
      run_on_demand_baseline(experiment, market.on_demand_rate());
  std::printf("%-28s %10s  (the naive answer)\n", "on-demand baseline",
              on_demand.total_cost.str().c_str());

  Money best_fixed = on_demand.total_cost;
  for (PolicyKind kind : {PolicyKind::kPeriodic, PolicyKind::kMarkovDaly}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{3}}) {
      std::vector<std::size_t> zones;
      for (std::size_t z = 0; z < n; ++z) zones.push_back(z);
      FixedStrategy strategy(Money::cents(81), zones, make_policy(kind));
      Engine engine(market, experiment, strategy);
      const RunResult r = engine.run();
      std::printf("%-28s %10s  finish %s before the newscast\n",
                  (to_string(kind) + " N=" + std::to_string(n)).c_str(),
                  r.total_cost.str().c_str(),
                  format_duration(experiment.deadline_time() -
                                  r.finish_time)
                      .c_str());
      best_fixed = std::min(best_fixed, r.total_cost);
    }
  }

  AdaptiveStrategy adaptive;
  EngineOptions options;
  options.record_timeline = true;
  Engine engine(market, experiment, adaptive, options);
  const RunResult r = engine.run();
  std::printf("%-28s %10s  finish %s before the newscast\n\n", "adaptive",
              r.total_cost.str().c_str(),
              format_duration(experiment.deadline_time() - r.finish_time)
                  .c_str());
  std::printf("adaptive vs on-demand: %.1fx cheaper; vs best fixed here: "
              "%+.0f%%\n\n",
              on_demand.total_cost.ratio(r.total_cost),
              100.0 * (r.total_cost.to_double() - best_fixed.to_double()) /
                  best_fixed.to_double());

  std::printf("Adaptive's run, hour by hour:\n%s", r.timeline_str().c_str());
  return 0;
}
