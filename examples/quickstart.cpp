// Quickstart: run one time-constrained experiment on the simulated spot
// market under each policy and compare costs against the on-demand
// baseline.
//
//   $ ./examples/quickstart [seed]
//
// This is the 60-second tour of the library: build traces, wrap them in a
// market, describe the experiment (20 h of compute, 15% slack, 300 s
// checkpoints), and run policies through the Algorithm-1 engine.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/adaptive/adaptive_runner.hpp"
#include "core/engine.hpp"
#include "exp/scenario.hpp"
#include "market/queue_delay.hpp"
#include "market/spot_market.hpp"
#include "trace/calendar.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

namespace {

void report(const char* label, const RunResult& r) {
  std::printf("%-24s cost=%9s  spot=%9s  od=%9s  ckpts=%3d restarts=%3d "
              "outbid=%3d %s %s\n",
              label, r.total_cost.str().c_str(), r.spot_cost.str().c_str(),
              r.on_demand_cost.str().c_str(), r.checkpoints_committed,
              r.restarts, r.out_of_bid_terminations,
              r.completed ? "completed" : "INCOMPLETE",
              r.met_deadline ? "on-time" : "LATE");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 14 months of synthetic CC2 spot prices for three zones, calibrated to
  // the statistics the paper reports for its real Dec 2012 - Jan 2014 data.
  SpotMarket market(paper_traces(seed), cc2_instance(),
                    QueueDelayModel(QueueDelayParams::paper_calibrated()));

  // One experiment from the high-volatility window: C = 20 h, 15% slack.
  Scenario scenario{VolatilityWindow::kHigh, 0.15, 300, 80};
  const Experiment experiment = scenario.experiment(10);
  std::printf("experiment: C=%s D=%s t_c=t_r=%s start=%s\n\n",
              format_duration(experiment.app.total_compute).c_str(),
              format_duration(experiment.deadline).c_str(),
              format_duration(experiment.costs.checkpoint).c_str(),
              format_time(experiment.start).c_str());

  const Money bid = Money::cents(81);  // the paper's sweet-spot bid

  for (PolicyKind kind :
       {PolicyKind::kPeriodic, PolicyKind::kMarkovDaly,
        PolicyKind::kRisingEdge, PolicyKind::kThreshold}) {
    // Single zone (zone 0).
    FixedStrategy single(bid, {0}, make_policy(kind));
    Engine engine(market, experiment, single);
    report((to_string(kind) + " (1 zone)").c_str(), engine.run());
  }
  {
    FixedStrategy redundant(bid, {0, 1, 2},
                            make_policy(PolicyKind::kMarkovDaly));
    Engine engine(market, experiment, redundant);
    report("markov-daly (3 zones)", engine.run());
  }
  {
    AdaptiveStrategy adaptive;
    Engine engine(market, experiment, adaptive);
    report("adaptive", engine.run());
  }
  report("on-demand baseline",
         run_on_demand_baseline(experiment, market.on_demand_rate()));
  return 0;
}
