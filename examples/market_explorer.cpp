// Market exploration: everything a user would want to know about a spot
// price trace before submitting a bid — price statistics per zone,
// availability at candidate bids, the Markov model's expected up-times,
// Daly's implied checkpoint cadence, and a CSV export for external tools.
//
//   $ ./examples/market_explorer [month-index 0..13] [out.csv]
#include <cstdio>
#include <cstdlib>

#include "ckpt/daly.hpp"
#include "markov/model.hpp"
#include "markov/uptime.hpp"
#include "stats/descriptive.hpp"
#include "trace/availability.hpp"
#include "trace/calendar.hpp"
#include "trace/csv_io.hpp"
#include "trace/synthetic.hpp"
#include "trace/var.hpp"

using namespace redspot;

int main(int argc, char** argv) {
  const std::size_t month =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : kHighVolatilityMonth;
  if (month >= kTraceMonths) {
    std::fprintf(stderr, "month must be 0..%zu\n", kTraceMonths - 1);
    return 1;
  }

  const ZoneTraceSet traces = paper_traces(42);
  const SimTime from = month_start(month);
  const SimTime to = month_end(month);
  std::printf("== %s — %d days of CC2 spot prices, %zu zones ==\n\n",
              month_name(month).c_str(), days_in_month(month),
              traces.num_zones());

  std::printf("%-8s %8s %8s %8s %8s\n", "zone", "mean", "stddev", "min",
              "max");
  for (std::size_t z = 0; z < traces.num_zones(); ++z) {
    const std::vector<double> xs =
        traces.zone(z).window(from, to).to_doubles();
    std::printf("%-8s %8.3f %8.3f %8.3f %8.3f\n",
                traces.zone_name(z).c_str(), mean(xs), stddev(xs),
                min_of(xs), max_of(xs));
  }

  std::printf("\nAvailability and expected up-time by bid:\n");
  std::printf("%8s", "bid");
  for (std::size_t z = 0; z < traces.num_zones(); ++z)
    std::printf("  %12s", traces.zone_name(z).c_str());
  std::printf("  %10s\n", "combined");
  for (Money bid : {Money::cents(27), Money::cents(47), Money::cents(81),
                    Money::dollars(1.47), Money::dollars(2.40)}) {
    std::printf("%8s", bid.str().c_str());
    for (std::size_t z = 0; z < traces.num_zones(); ++z) {
      const PriceSeries window = traces.zone(z).window(from, to);
      const MarkovModel model = build_markov_model(
          traces.zone(z).window(to - 2 * kDay, to));
      const Duration uptime = expected_uptime(
          model, window.sample(window.size() - 1), bid);
      std::printf("  %5.0f%%/%6s",
                  100.0 * availability_fraction(traces.zone(z), bid, from,
                                                to),
                  format_duration(uptime).c_str());
    }
    std::printf("  %9.1f%%\n",
                100.0 * combined_availability(traces, bid, from, to));
  }

  std::printf("\nDaly checkpoint cadence at the $0.81 bid "
              "(tc=300s / tc=900s):\n");
  for (std::size_t z = 0; z < traces.num_zones(); ++z) {
    const PriceSeries hist = traces.zone(z).window(to - 2 * kDay, to);
    const MarkovModel model = build_markov_model(hist);
    const Duration uptime = expected_uptime(
        model, hist.sample(hist.size() - 1), Money::cents(81));
    if (uptime == 0) {
      std::printf("%-8s currently out-of-bid at $0.81\n",
                  traces.zone_name(z).c_str());
      continue;
    }
    std::printf("%-8s E[Tu]=%8s -> checkpoint every %s / %s\n",
                traces.zone_name(z).c_str(),
                format_duration(uptime).c_str(),
                format_duration(daly_interval(300, uptime)).c_str(),
                format_duration(daly_interval(900, uptime)).c_str());
  }

  const VarFit fit = fit_var(to_series(traces.window(from, to)), 2);
  const CrossZoneEffects effects = cross_zone_effects(fit);
  std::printf("\nVAR(2) cross-zone analysis: within/cross effect ratio "
              "%.1fx -> zones are %s\n",
              effects.within_to_cross_ratio,
              effects.within_to_cross_ratio > 10
                  ? "nearly independent (redundancy-friendly)"
                  : "correlated (redundancy weaker)");

  if (argc > 2) {
    write_csv_file(argv[2], traces.window(from, to));
    std::printf("\nwrote %s\n", argv[2]);
  }
  return 0;
}
