// redspot-serve — the multi-tenant bid-advisor daemon (DESIGN.md §12).
//
//   redspot-serve --socket ENDPOINT [options]
//     --socket ENDPOINT   endpoint to listen on (required): a unix-socket
//                         path (bare or "unix:PATH") or "tcp:HOST:PORT"
//     --threads N         advise worker threads        [hardware]
//     --registry-mb N     shared-model LRU capacity    [64]
//     --shed-limit N      batcher queue depth at which overload answers
//                         come from the last-good model with the
//                         staleness marker (0 = never shed)  [1024]
//     --quiet             suppress the final stats line
//
// The daemon serves the protocol in src/serve/proto.hpp: a feed process
// seeds the price history (TraceInit) and streams ticks; tenants register
// model specs and ask for advice. SIGINT/SIGTERM drains in-flight
// requests, prints one stats line and exits 130 (a second signal
// force-exits). See tools/tick_replay.cpp for a CSV-driven feed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr,
               "redspot-serve: %s\nusage: redspot-serve --socket ENDPOINT "
               "[--threads N] [--registry-mb N] [--shed-limit N] [--quiet]\n",
               msg);
  std::exit(2);
}

long parse_positive(const char* opt, const char* v) {
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == nullptr || *end != '\0' || n <= 0) usage(opt);
  return n;
}

long parse_nonnegative(const char* opt, const char* v) {
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == nullptr || *end != '\0' || n < 0) usage(opt);
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  redspot::serve::ServeOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing option value");
      return argv[++i];
    };
    if (a == "--socket") {
      opt.endpoint = need();
    } else if (a == "--threads") {
      opt.threads = static_cast<std::size_t>(parse_positive("bad --threads", need()));
    } else if (a == "--registry-mb") {
      opt.registry_bytes =
          static_cast<std::size_t>(parse_positive("bad --registry-mb", need()))
          << 20;
    } else if (a == "--shed-limit") {
      opt.shed_queue_limit = static_cast<std::uint64_t>(
          parse_nonnegative("bad --shed-limit", need()));
    } else if (a == "--quiet") {
      opt.print_stats = false;
    } else {
      usage("unknown option");
    }
  }
  if (opt.endpoint.empty()) usage("--socket is required");
  return redspot::serve::run_server(opt);
}
