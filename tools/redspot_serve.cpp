// redspot-serve — the multi-tenant bid-advisor daemon (DESIGN.md §12).
//
//   redspot-serve --socket PATH [options]
//     --socket PATH       unix socket to listen on (required)
//     --threads N         advise worker threads        [hardware]
//     --registry-mb N     shared-model LRU capacity    [64]
//     --quiet             suppress the final stats line
//
// The daemon serves the protocol in src/serve/proto.hpp: a feed process
// seeds the price history (TraceInit) and streams ticks; tenants register
// model specs and ask for advice. SIGINT/SIGTERM drains in-flight
// requests, prints one stats line and exits 130 (a second signal
// force-exits). See tools/tick_replay.cpp for a CSV-driven feed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr,
               "redspot-serve: %s\nusage: redspot-serve --socket PATH "
               "[--threads N] [--registry-mb N] [--quiet]\n",
               msg);
  std::exit(2);
}

long parse_positive(const char* opt, const char* v) {
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == nullptr || *end != '\0' || n <= 0) usage(opt);
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  redspot::serve::ServeOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing option value");
      return argv[++i];
    };
    if (a == "--socket") {
      opt.socket_path = need();
    } else if (a == "--threads") {
      opt.threads = static_cast<std::size_t>(parse_positive("bad --threads", need()));
    } else if (a == "--registry-mb") {
      opt.registry_bytes =
          static_cast<std::size_t>(parse_positive("bad --registry-mb", need()))
          << 20;
    } else if (a == "--quiet") {
      opt.print_stats = false;
    } else {
      usage("unknown option");
    }
  }
  if (opt.socket_path.empty()) usage("--socket is required");
  return redspot::serve::run_server(opt);
}
