// Benchmark report emission and regression checking.
//
// bench_decision_path (and future microbenches) record their medians and
// allocation counts through a Report, serialized as a FLAT json object of
// "metric": number pairs. A committed baseline at the repo root gates CI:
//
//   bench_report check <current.json> <baseline.json> [--tolerance 0.25]
//
// Key conventions (the whole contract — the checker is name-driven):
//   * "min_<metric>" / "max_<metric>" in the BASELINE are hard floors /
//     ceilings on <metric> in the current report, tolerance-free. This is
//     how machine-independent acceptance numbers (speedup ratios, zero
//     allocation counts) are pinned.
//   * "<metric>_ns" / "<metric>_ms" are absolute medians: the check fails
//     when current > baseline * (1 + tolerance).
//   * "<metric>_speedup" are ratios (bigger is better): the check fails
//     when current < baseline * (1 - tolerance).
//   * anything else (counts, sizes) is informational.
//
// The parser reads exactly what to_json writes (a flat object of numeric
// fields; non-numeric values are skipped) — no external json dependency.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace redspot::benchreport {

/// Ordered metric -> value collection with a schema tag.
struct Report {
  std::string schema = "redspot-decision-path-v1";
  std::vector<std::pair<std::string, double>> metrics;

  /// Appends, or overwrites an existing metric of the same name.
  void set(const std::string& name, double value);
};

/// Flat json object: {"schema": "...", "<metric>": number, ...}.
std::string to_json(const Report& report);

/// Serializes and writes via atomic_write_file (temp + fsync + rename).
void write_report(const Report& report, const std::string& path);

/// Numeric fields of a flat json object; non-numeric values are skipped.
/// Tolerates arbitrary whitespace. Throws CheckFailure on malformed input.
std::map<std::string, double> parse_metrics(const std::string& json_text);

/// Applies the key conventions above; logs one PASS/FAIL/info line per
/// gated metric. Returns the number of failures (0 = gate passed).
int check(const std::map<std::string, double>& current,
          const std::map<std::string, double>& baseline, double tolerance,
          std::ostream& log);

}  // namespace redspot::benchreport
