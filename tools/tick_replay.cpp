// tick-replay — replays a trace-set CSV into a running redspot-serve
// daemon as a live feed (satellite of the serve subsystem; DESIGN.md §12).
//
//   tick-replay --csv FILE --socket ENDPOINT [options]
//     --csv FILE          trace-set CSV (trace/csv_io.hpp format; required)
//     --socket ENDPOINT   daemon endpoint (required): a unix-socket path
//                         (bare or "unix:PATH") or "tcp:HOST:PORT"
//     --init-samples N    samples per zone sent as the TraceInit seed;
//                         the rest stream as ticks            [half]
//     --advise-every K    also register the default ModelSpec and request
//                         advice after every K-th tick, printing each
//                         answer (0 = feed only)              [0]
//     --burst N           at each advise point, pipeline N advise requests
//                         instead of one (advise_async/recv_advice) and
//                         print one summary line with the stale and
//                         rejected ("overloaded") counts — an overload
//                         probe for --shed-limit               [1]
//     --jitter MS         sleep a seeded-uniform [0,MS] ms before each
//                         tick, simulating an uneven feed      [0]
//     --compute SECS      remaining compute for those requests [86400]
//     --deadline SECS     remaining time for those requests    [172800]
//
// The CSV goes through the same read_csv validation as every other trace
// consumer — malformed input dies with a line-numbered message before a
// single byte reaches the daemon. Exit 0 once the replay (and all advice
// responses) are in. The jitter schedule is a pure function of the trace
// position (fixed seed), so two replays of the same CSV pause identically.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "serve/client.hpp"
#include "trace/csv_io.hpp"

using namespace redspot;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr,
               "tick-replay: %s\nusage: tick-replay --csv FILE --socket "
               "ENDPOINT [--init-samples N] [--advise-every K] [--burst N] "
               "[--jitter MS] [--compute SECS] [--deadline SECS]\n",
               msg);
  std::exit(2);
}

long parse_positive(const char* opt, const char* v) {
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == nullptr || *end != '\0' || n <= 0) usage(opt);
  return n;
}

const char* policy_name(PolicyKind p) {
  switch (p) {
    case PolicyKind::kPeriodic:
      return "periodic";
    case PolicyKind::kMarkovDaly:
      return "markov-daly";
    default:
      return "?";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::string socket_path;
  std::size_t init_samples = 0;  // 0 = half the trace
  std::size_t advise_every = 0;
  std::size_t burst = 1;
  long jitter_ms = 0;
  serve::JobParams job;
  job.remaining_compute = kDay;
  job.remaining_time = 2 * kDay;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing option value");
      return argv[++i];
    };
    if (a == "--csv") {
      csv_path = need();
    } else if (a == "--socket") {
      socket_path = need();
    } else if (a == "--init-samples") {
      init_samples =
          static_cast<std::size_t>(parse_positive("bad --init-samples", need()));
    } else if (a == "--advise-every") {
      advise_every =
          static_cast<std::size_t>(parse_positive("bad --advise-every", need()));
    } else if (a == "--burst") {
      burst = static_cast<std::size_t>(parse_positive("bad --burst", need()));
    } else if (a == "--jitter") {
      jitter_ms = parse_positive("bad --jitter", need());
    } else if (a == "--compute") {
      job.remaining_compute = parse_positive("bad --compute", need());
    } else if (a == "--deadline") {
      job.remaining_time = parse_positive("bad --deadline", need());
    } else {
      usage("unknown option");
    }
  }
  if (csv_path.empty()) usage("--csv is required");
  if (socket_path.empty()) usage("--socket is required");

  try {
    const ZoneTraceSet traces = read_csv_file(csv_path);
    const std::size_t total = traces.zone(0).size();
    if (total < 2) usage("trace needs at least 2 samples");
    if (init_samples == 0) init_samples = total / 2;
    if (init_samples < 1 || init_samples > total)
      usage("--init-samples out of range");

    serve::TraceInitMsg init;
    init.start = traces.start();
    init.step = traces.step();
    init.capacity_samples = total;
    for (std::size_t z = 0; z < traces.num_zones(); ++z) {
      init.zone_names.push_back(traces.zone_name(z));
      std::vector<Money> seed;
      seed.reserve(init_samples);
      const PriceView view = traces.zone(z).view();
      for (std::size_t i = 0; i < init_samples; ++i)
        seed.push_back(view.sample(i));
      init.samples.push_back(std::move(seed));
    }

    serve::ServeClient client(socket_path);
    client.trace_init(init);
    std::printf("tick-replay: seeded %zu samples x %zu zones\n", init_samples,
                traces.num_zones());

    std::uint64_t spec_hash = 0;
    if (advise_every > 0)
      spec_hash = client.register_spec(serve::ModelSpec{});

    std::vector<Money> prices(traces.num_zones());
    std::size_t ticks = 0;
    std::size_t stale_total = 0;
    std::size_t rejected_total = 0;
    for (std::size_t i = init_samples; i < total; ++i) {
      if (jitter_ms > 0) {
        // Seeded per trace position: replaying the same CSV twice pauses
        // at exactly the same points for exactly the same durations.
        Rng rng(0xF33D, static_cast<std::uint64_t>(i));
        const auto pause = static_cast<std::int64_t>(
            rng.uniform() * static_cast<double>(jitter_ms));
        std::this_thread::sleep_for(std::chrono::milliseconds(pause));
      }
      for (std::size_t z = 0; z < traces.num_zones(); ++z)
        prices[z] = traces.zone(z).view().sample(i);
      client.tick(prices);
      ++ticks;
      if (advise_every > 0 && ticks % advise_every == 0) {
        if (burst > 1) {
          // Pipelined probe: N requests in flight at once. Under
          // --shed-limit overload some answers come from the last-good
          // model with the staleness marker, and requests with no
          // covering snapshot are rejected outright ("overloaded") —
          // both are designed degraded answers, so count rather than
          // die on them.
          std::size_t stale = 0;
          std::size_t rejected = 0;
          for (std::size_t n = 0; n < burst; ++n)
            client.advise_async(ticks * 1000 + n, spec_hash, job);
          serve::AdviceMsg last;
          bool got_answer = false;
          for (std::size_t n = 0; n < burst; ++n) {
            try {
              last = client.recv_advice();
              got_answer = true;
              if (last.stale) ++stale;
            } catch (const serve::ServeError&) {
              ++rejected;
            }
          }
          stale_total += stale;
          rejected_total += rejected;
          if (got_answer) {
            std::printf(
                "tick-replay: burst=%zu as_of=%lld bid=$%.3f policy=%s "
                "stale=%zu/%zu rejected=%zu/%zu\n",
                burst, static_cast<long long>(last.advice.as_of),
                last.advice.bid.to_double(), policy_name(last.advice.policy),
                stale, burst, rejected, burst);
          } else {
            std::printf("tick-replay: burst=%zu rejected=%zu/%zu\n", burst,
                        rejected, burst);
          }
        } else {
          const serve::AdviceMsg r = client.advise(ticks, spec_hash, job);
          if (r.stale) ++stale_total;
          std::string zones;
          for (std::size_t zone : r.advice.zones) {
            if (!zones.empty()) zones += "+";
            zones += traces.zone_name(zone);
          }
          std::printf(
              "tick-replay: as_of=%lld bid=$%.3f zones=%s policy=%s "
              "cost=$%.2f uptime=%llds ckpt=%llds%s\n",
              static_cast<long long>(r.advice.as_of), r.advice.bid.to_double(),
              zones.c_str(), policy_name(r.advice.policy),
              r.advice.predicted_cost.to_double(),
              static_cast<long long>(r.advice.expected_uptime),
              static_cast<long long>(r.advice.checkpoint_interval),
              r.stale ? " [stale]" : "");
        }
      }
    }
    if (stale_total > 0 || rejected_total > 0)
      std::printf(
          "tick-replay: replayed %zu ticks (%zu stale, %zu rejected "
          "answers)\n",
          ticks, stale_total, rejected_total);
    else
      std::printf("tick-replay: replayed %zu ticks\n", ticks);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tick-replay: %s\n", e.what());
    return 1;
  }
}
