// redspot_fabric — distributed ensemble front end (coordinator + worker).
//
// Both subcommands take the same ensemble options as `redspot-sim
// ensemble` (shared parser: src/app/ensemble_cli.hpp) and must be given
// identical values — the spec-hash handshake rejects a worker describing
// a different run.
//
// `--socket` takes a transport endpoint: a unix-socket path (bare or
// "unix:PATH") or "tcp:HOST:PORT" for off-box fleets (tcp:0.0.0.0:PORT to
// accept workers from other hosts).
//
//   redspot-fabric coordinator --socket ENDPOINT [ensemble options]
//     --journal DIR            durable journal: completed shards and
//                              lease grants are persisted, and a killed
//                              coordinator restarted with the same flags
//                              resumes without rerunning finished shards
//     --lease-ms N             lease duration              [10000]
//     --heartbeat-timeout-ms N silence before a worker is dead  [2000]
//     --fallback-wait-ms N     empty-fleet patience before finishing
//                              the run in-process          [3000]
//
//   redspot-fabric worker --socket ENDPOINT [ensemble options]
//     --chaos SEED:RATE[:ATTEMPTS]  deterministically SIGKILL itself
//                              mid-shard (testing; see fabric/chaos.hpp)
//     --net-chaos SEED:RATE[:KINDS[:BUDGET]]  seeded network faults on
//                              every connection (testing; see
//                              common/transport/fault.hpp)
//     --heartbeat-interval-ms N     liveness cadence       [250]
//     --give-up-ms N           reconnect patience          [20000]
//     --handshake-timeout-ms N abandon a half-open handshake [2000]
//
// The coordinator prints the same summary table an in-process ensemble
// run prints — bit-identical numbers whatever the fleet did — plus
// "fabric:"/"journal:" provenance lines that comparisons strip.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "app/ensemble_cli.hpp"
#include "ensemble/runner.hpp"
#include "exp/scenario.hpp"
#include "fabric/chaos.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/fabric.hpp"
#include "fabric/worker.hpp"
#include "journal/journal.hpp"

using namespace redspot;

namespace {

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "redspot-fabric: %s (see the header of "
                       "tools/redspot_fabric.cpp for options)\n",
               msg.c_str());
  std::exit(2);
}

std::int64_t parse_ms(const std::string& opt, const std::string& v) {
  char* end = nullptr;
  const std::int64_t ms = std::strtoll(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || ms <= 0) usage("bad value for " + opt);
  return ms;
}

/// Fabric-specific options left over by the shared ensemble parser.
struct FabricArgs {
  fabric::FabricOptions options;
  fabric::ChaosPlan chaos;
  transport::NetFaultPlan net_chaos;
};

FabricArgs parse_fabric_extra(const std::vector<std::string>& extra,
                              bool is_worker) {
  FabricArgs f;
  for (std::size_t i = 0; i < extra.size(); ++i) {
    const std::string& opt = extra[i];
    auto need = [&]() -> const std::string& {
      if (i + 1 >= extra.size()) usage("missing value for " + opt);
      return extra[++i];
    };
    if (opt == "--socket") {
      f.options.endpoint = need();
    } else if (opt == "--lease-ms" && !is_worker) {
      f.options.lease.lease_duration_ms = parse_ms(opt, need());
    } else if (opt == "--heartbeat-timeout-ms" && !is_worker) {
      f.options.lease.heartbeat_timeout_ms = parse_ms(opt, need());
    } else if (opt == "--fallback-wait-ms" && !is_worker) {
      f.options.fallback_wait_ms = parse_ms(opt, need());
    } else if (opt == "--heartbeat-interval-ms" && is_worker) {
      f.options.heartbeat_interval_ms = parse_ms(opt, need());
    } else if (opt == "--give-up-ms" && is_worker) {
      f.options.give_up_ms = parse_ms(opt, need());
    } else if (opt == "--handshake-timeout-ms" && is_worker) {
      f.options.handshake_timeout_ms = parse_ms(opt, need());
    } else if (opt == "--chaos" && is_worker) {
      const auto plan = fabric::parse_chaos_plan(need());
      if (!plan) usage("bad --chaos (want SEED:RATE[:ATTEMPTS])");
      f.chaos = *plan;
    } else if (opt == "--net-chaos" && is_worker) {
      const auto plan = transport::parse_net_fault_plan(need());
      if (!plan) usage("bad --net-chaos (want SEED:RATE[:KINDS[:BUDGET]])");
      f.net_chaos = *plan;
    } else {
      usage("unknown option " + opt);
    }
  }
  if (f.options.endpoint.empty()) usage("--socket is required");
  if (!transport::parse_endpoint(f.options.endpoint))
    usage("bad --socket endpoint " + f.options.endpoint);
  return f;
}

int run_coordinator(const EnsembleCliArgs& args, const FabricArgs& fargs) {
  const EnsembleSpec spec = make_ensemble_spec(args);

  std::unique_ptr<RunJournal> journal;
  if (!args.journal_dir.empty()) {
    std::filesystem::create_directories(args.journal_dir);
    journal = std::make_unique<RunJournal>(
        (std::filesystem::path(args.journal_dir) / RunJournal::kFileName)
            .string());
  }

  fabric::Coordinator coordinator(spec, fargs.options, journal.get());
  // Resolved endpoint (tcp:HOST:0 becomes the kernel-assigned port) on
  // stderr, unbuffered, so scripts can learn where to point workers.
  // "fabric:" prefix: output comparisons strip it.
  std::fprintf(stderr, "fabric: listening on %s\n",
               coordinator.endpoint().c_str());
  const fabric::CoordinatorReport report = coordinator.run();

  const Scenario scenario{args.window, args.slack, args.tc, spec.starts_grid};
  std::fputs(report.result
                 .table("ensemble — " + scenario.label() + ", seed " +
                        std::to_string(args.seed))
                 .c_str(),
             stdout);
  const ConfigSummary& s = report.result.configs[0];
  std::printf("replications %zu (computed), incomplete %llu, "
              "switched to on-demand %llu\n",
              s.count(),
              static_cast<unsigned long long>(s.incomplete()),
              static_cast<unsigned long long>(s.switched_to_on_demand()));
  // Provenance on its own lines so output comparisons can strip them.
  std::printf("fabric: workers seen %llu lost %llu; shards fleet %llu "
              "replayed %llu fallback %llu; duplicate partials %llu%s\n",
              static_cast<unsigned long long>(report.workers_seen),
              static_cast<unsigned long long>(report.workers_lost),
              static_cast<unsigned long long>(report.shards_from_fleet),
              static_cast<unsigned long long>(report.shards_replayed),
              static_cast<unsigned long long>(report.shards_fallback),
              static_cast<unsigned long long>(report.duplicate_partials),
              report.used_fallback ? " (in-process fallback)" : "");
  if (journal != nullptr) {
    std::printf("journal: replayed %zu shards, recomputed %zu shards "
                "(recovered_tail=%d)\n",
                report.result.shards_replayed,
                report.result.shards_recomputed,
                journal->open_stats().recovered_tail ? 1 : 0);
  }
  return 0;
}

int run_worker_cmd(const EnsembleCliArgs& args, const FabricArgs& fargs) {
  const EnsembleSpec spec = make_ensemble_spec(args);
  transport::NetFaultInjector injector(fargs.net_chaos);
  fabric::FabricOptions options = fargs.options;
  if (fargs.net_chaos.enabled()) options.net_fault = &injector;
  const int rc = fabric::run_worker(spec, options, fargs.chaos);
  if (fargs.net_chaos.enabled() && injector.injected() > 0) {
    // Stderr, like the listening banner: chaos bookkeeping must never
    // perturb the bit-compared result stream.
    std::fprintf(stderr, "fabric: fault plan fired %llu times\n",
                 static_cast<unsigned long long>(injector.injected()));
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("expected a subcommand: coordinator | worker");
  const std::string cmd = argv[1];
  const bool is_worker = cmd == "worker";
  if (!is_worker && cmd != "coordinator")
    usage("unknown subcommand " + cmd);

  std::vector<std::string> extra;
  const EnsembleCliArgs args =
      parse_ensemble_args(argc - 1, argv + 1, &extra);
  const FabricArgs fargs = parse_fabric_extra(extra, is_worker);
  return is_worker ? run_worker_cmd(args, fargs)
                   : run_coordinator(args, fargs);
}
