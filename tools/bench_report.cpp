#include "bench_report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/fs.hpp"

namespace redspot::benchreport {

void Report::set(const std::string& name, double value) {
  for (auto& [n, v] : metrics) {
    if (n == name) {
      v = value;
      return;
    }
  }
  metrics.emplace_back(name, value);
}

namespace {

std::string format_number(double v) {
  // Integers (allocation counts, sample sizes) print without a fraction;
  // everything else gets enough digits to round-trip comparisons sanely.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string to_json(const Report& report) {
  // Keys are emitted in sorted order (schema first) so two reports of the
  // same run diff cleanly regardless of metric insertion order — nested
  // table emitters (the head-to-head matrix) set keys per cell in
  // whatever order the cells complete.
  std::vector<std::pair<std::string, double>> sorted(report.metrics);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ostringstream out;
  out << "{\n  \"schema\": \"" << report.schema << "\"";
  for (const auto& [name, value] : sorted) {
    out << ",\n  \"" << name << "\": " << format_number(value);
  }
  out << "\n}\n";
  return out.str();
}

void write_report(const Report& report, const std::string& path) {
  atomic_write_file(path, to_json(report));
}

std::map<std::string, double> parse_metrics(const std::string& json_text) {
  std::map<std::string, double> out;
  const char* p = json_text.c_str();
  const char* end = p + json_text.size();
  while (p < end) {
    // Find the next quoted key.
    while (p < end && *p != '"') ++p;
    if (p >= end) break;
    const char* key_begin = ++p;
    while (p < end && *p != '"') ++p;
    REDSPOT_CHECK_MSG(p < end, "unterminated string in bench report");
    const std::string key(key_begin, p);
    ++p;
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
    if (p >= end || *p != ':') continue;  // not a key (a string value)
    ++p;
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
    if (p >= end) break;
    if (*p == '"') {  // string value (e.g. "schema"): skip it
      ++p;
      while (p < end && *p != '"') ++p;
      if (p < end) ++p;
      continue;
    }
    char* num_end = nullptr;
    const double v = std::strtod(p, &num_end);
    if (num_end == p) continue;  // not a number (object/array/bool): skip
    out[key] = v;
    p = num_end;
  }
  return out;
}

namespace {

double require(const std::map<std::string, double>& current,
               const std::string& name, bool& ok, std::ostream& log) {
  const auto it = current.find(name);
  if (it == current.end()) {
    log << "FAIL  " << name << ": missing from current report\n";
    ok = false;
    return 0.0;
  }
  return it->second;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int check(const std::map<std::string, double>& current,
          const std::map<std::string, double>& baseline, double tolerance,
          std::ostream& log) {
  int failures = 0;
  for (const auto& [name, base] : baseline) {
    bool present = true;
    if (name.rfind("min_", 0) == 0) {
      const std::string target = name.substr(4);
      const double cur = require(current, target, present, log);
      if (!present) {
        ++failures;
      } else if (cur < base) {
        log << "FAIL  " << target << " = " << cur << " below floor " << base
            << "\n";
        ++failures;
      } else {
        log << "PASS  " << target << " = " << cur << " (floor " << base
            << ")\n";
      }
    } else if (name.rfind("max_", 0) == 0) {
      const std::string target = name.substr(4);
      const double cur = require(current, target, present, log);
      if (!present) {
        ++failures;
      } else if (cur > base) {
        log << "FAIL  " << target << " = " << cur << " above ceiling " << base
            << "\n";
        ++failures;
      } else {
        log << "PASS  " << target << " = " << cur << " (ceiling " << base
            << ")\n";
      }
    } else if (ends_with(name, "_ns") || ends_with(name, "_ms")) {
      const double cur = require(current, name, present, log);
      const double limit = base * (1.0 + tolerance);
      if (!present) {
        ++failures;
      } else if (cur > limit) {
        log << "FAIL  " << name << " = " << cur << " regressed past "
            << limit << " (baseline " << base << " +"
            << static_cast<int>(tolerance * 100) << "%)\n";
        ++failures;
      } else {
        log << "PASS  " << name << " = " << cur << " (baseline " << base
            << ")\n";
      }
    } else if (ends_with(name, "_speedup")) {
      const double cur = require(current, name, present, log);
      const double limit = base * (1.0 - tolerance);
      if (!present) {
        ++failures;
      } else if (cur < limit) {
        log << "FAIL  " << name << " = " << cur << " regressed below "
            << limit << " (baseline " << base << " -"
            << static_cast<int>(tolerance * 100) << "%)\n";
        ++failures;
      } else {
        log << "PASS  " << name << " = " << cur << " (baseline " << base
            << ")\n";
      }
    } else {
      log << "info  " << name << " (baseline " << base << ", not gated)\n";
    }
  }

  // Candidate-only keys are fine — a fresh metric lands in the report one
  // PR before its baseline gate does. Surface them in one line so a typo'd
  // baseline key is still visible, but never fail on them.
  std::string fresh;
  for (const auto& [name, value] : current) {
    (void)value;
    if (baseline.count(name) > 0) continue;
    const bool gated = baseline.count("min_" + name) > 0 ||
                       baseline.count("max_" + name) > 0;
    if (gated) continue;
    if (!fresh.empty()) fresh += ", ";
    fresh += name;
  }
  if (!fresh.empty())
    log << "note  new keys not in baseline (accepted): " << fresh << "\n";
  return failures;
}

}  // namespace redspot::benchreport
