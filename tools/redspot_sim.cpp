// redspot_sim — command-line front end for the simulator.
//
// Runs one policy configuration (or Adaptive, or Large-bid) over a
// scenario sweep and prints the cost distribution, or a single run with
// its full timeline.
//
//   redspot_sim [options]
//     --window low|high          volatility window        [high]
//     --slack F                  slack fraction of C      [0.15]
//     --tc SECONDS               checkpoint=restart cost  [300]
//     --policy NAME              periodic|markov-daly|rising-edge|
//                                threshold|adaptive|large-bid  [adaptive]
//     --bid DOLLARS              bid price (fixed policies)    [0.81]
//     --threshold DOLLARS        L for large-bid               [0.81]
//     --zones LIST               e.g. 0,1,2 (fixed policies)   [0]
//     --experiments N            sweep size; 1 = single run    [20]
//     --chunk I                  chunk index for a single run  [0]
//     --seed S                   trace generator seed          [42]
//     --notice SECONDS           Appendix-A termination notice [0]
//     --trace FILE.csv           fixed-grid trace instead of synthetic
//     --events FILE.csv          raw change-event trace (resampled)
//     --timeline                 print the run timeline (single run)
//
//   redspot_sim ensemble [options]
//     Monte-Carlo mode: evaluates the configuration over N independently
//     seeded trace realizations (src/ensemble/) and prints the cost
//     distribution with a bootstrap CI. Shares the options above (except
//     --experiments/--chunk/--trace/--events/--timeline), plus:
//     --replications N           trace realizations            [1000]
//     --shards N                 deterministic reduction shards  [64]
//     --threads N                worker threads; 0 = hardware     [0]
//     --no-cache                 bypass the process result cache
//     --journal DIR              durable shard journal: completed shards
//                                are persisted to DIR/run.journal as they
//                                finish, a rerun with the same spec and
//                                --journal replays them (bit-identical),
//                                and SIGINT/SIGTERM stops gracefully —
//                                drain, journal, exit 130 — instead of
//                                discarding finished work
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "app/ensemble_cli.hpp"
#include "common/interrupt.hpp"
#include "common/parallel.hpp"
#include "core/adaptive/adaptive_runner.hpp"
#include "core/engine.hpp"
#include "core/policies/large_bid.hpp"
#include "ensemble/runner.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "journal/journal.hpp"
#include "journal/run_record.hpp"
#include "market/spot_market.hpp"
#include "trace/csv_io.hpp"
#include "trace/resample.hpp"
#include "trace/synthetic.hpp"

using namespace redspot;

namespace {

struct Args {
  VolatilityWindow window = VolatilityWindow::kHigh;
  double slack = 0.15;
  Duration tc = 300;
  std::string policy = "adaptive";
  Money bid = Money::cents(81);
  Money threshold = Money::cents(81);
  std::vector<std::size_t> zones{0};
  std::size_t experiments = 20;
  std::size_t chunk = 0;
  std::uint64_t seed = 42;
  Duration notice = 0;
  std::string trace_file;
  std::string events_file;
  bool timeline = false;
};

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "redspot_sim: %s (see the header of "
                       "tools/redspot_sim.cpp for options)\n",
               msg);
  std::exit(2);
}

std::vector<std::size_t> parse_zones(const std::string& s) {
  std::vector<std::size_t> zones;
  std::size_t pos = 0;
  while (pos < s.size()) {
    zones.push_back(std::strtoull(s.c_str() + pos, nullptr, 10));
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (zones.empty()) usage("bad --zones");
  return zones;
}

Args parse(int argc, char** argv) {
  Args a;
  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string opt = argv[i];
    if (opt == "--window") {
      const std::string v = need(i++);
      if (v == "low") {
        a.window = VolatilityWindow::kLow;
      } else if (v == "high") {
        a.window = VolatilityWindow::kHigh;
      } else {
        usage("--window must be low or high");
      }
    } else if (opt == "--slack") {
      a.slack = std::strtod(need(i++), nullptr);
    } else if (opt == "--tc") {
      a.tc = std::strtoll(need(i++), nullptr, 10);
    } else if (opt == "--policy") {
      a.policy = need(i++);
    } else if (opt == "--bid") {
      a.bid = Money::parse(need(i++));
    } else if (opt == "--threshold") {
      a.threshold = Money::parse(need(i++));
    } else if (opt == "--zones") {
      a.zones = parse_zones(need(i++));
    } else if (opt == "--experiments") {
      a.experiments = std::strtoull(need(i++), nullptr, 10);
    } else if (opt == "--chunk") {
      a.chunk = std::strtoull(need(i++), nullptr, 10);
    } else if (opt == "--seed") {
      a.seed = std::strtoull(need(i++), nullptr, 10);
    } else if (opt == "--notice") {
      a.notice = std::strtoll(need(i++), nullptr, 10);
    } else if (opt == "--trace") {
      a.trace_file = need(i++);
    } else if (opt == "--events") {
      a.events_file = need(i++);
    } else if (opt == "--timeline") {
      a.timeline = true;
    } else {
      usage(("unknown option " + opt).c_str());
    }
  }
  return a;
}

std::unique_ptr<Strategy> make_strategy(const Args& a) {
  if (a.policy == "adaptive") return std::make_unique<AdaptiveStrategy>();
  if (a.policy == "large-bid") {
    return std::make_unique<FixedStrategy>(
        LargeBidPolicy::large_bid(), a.zones,
        std::make_unique<LargeBidPolicy>(a.threshold));
  }
  for (PolicyKind kind :
       {PolicyKind::kPeriodic, PolicyKind::kMarkovDaly,
        PolicyKind::kRisingEdge, PolicyKind::kThreshold}) {
    if (a.policy == to_string(kind))
      return std::make_unique<FixedStrategy>(a.bid, a.zones,
                                             make_policy(kind));
  }
  usage(("unknown policy " + a.policy).c_str());
}

void print_run(const RunResult& r, bool timeline) {
  std::printf("cost %s (spot %s, on-demand %s)\n", r.total_cost.str().c_str(),
              r.spot_cost.str().c_str(), r.on_demand_cost.str().c_str());
  std::printf("checkpoints %d, restarts %d, out-of-bid %d, full outages %d, "
              "config changes %d\n",
              r.checkpoints_committed, r.restarts,
              r.out_of_bid_terminations, r.full_outages, r.config_changes);
  std::printf("%s, %s\n", r.completed ? "completed" : "INCOMPLETE",
              r.met_deadline ? "met deadline" : "MISSED DEADLINE");
  if (timeline) std::fputs(r.timeline_str().c_str(), stdout);
}

/// `redspot_sim ensemble`: one configuration over N seeded realizations.
/// Option parsing and the option-to-spec mapping are shared with
/// redspot-fabric (src/app/ensemble_cli.hpp) so both front ends describe
/// the identical run.
int run_ensemble(const EnsembleCliArgs& args) {
  EnsembleSpec spec = make_ensemble_spec(args);

  ThreadPool pool(args.threads);
  const Scenario scenario{args.window, args.slack, args.tc, spec.starts_grid};
  const EnsembleRunner runner(spec);

  // With --journal, completed shards are persisted as they finish and a
  // SIGINT/SIGTERM drains gracefully instead of discarding finished work.
  std::unique_ptr<RunJournal> journal;
  EnsembleRunOptions run_options;
  if (!args.journal_dir.empty()) {
    std::filesystem::create_directories(args.journal_dir);
    journal = std::make_unique<RunJournal>(
        (std::filesystem::path(args.journal_dir) / RunJournal::kFileName)
            .string());
    install_interrupt_handlers();
    run_options.journal = journal.get();
    run_options.stop = &interrupt_flag();
  }
  const EnsembleResult result = runner.run(pool, run_options);

  std::fputs(result
                 .table("redspot_sim ensemble — " + scenario.label() +
                        ", seed " + std::to_string(args.seed))
                 .c_str(),
             stdout);
  const ConfigSummary& s = result.configs[0];
  std::printf("replications %zu (%s), incomplete %llu, "
              "switched to on-demand %llu\n",
              s.count(), result.from_cache ? "cached" : "computed",
              static_cast<unsigned long long>(s.incomplete()),
              static_cast<unsigned long long>(s.switched_to_on_demand()));
  if (journal != nullptr) {
    // Provenance on its own line so output comparisons can strip it.
    std::printf("journal: replayed %zu shards, recomputed %zu shards "
                "(recovered_tail=%d)\n",
                result.shards_replayed, result.shards_recomputed,
                journal->open_stats().recovered_tail ? 1 : 0);
  }
  if (result.interrupted) {
    const std::size_t done = result.shards_replayed + result.shards_recomputed;
    if (journal != nullptr) {
      journal->append(encode_clean_stop(
          CleanStopRecord{spec.spec_hash(), done, spec.num_shards}));
    }
    std::printf("interrupted: %zu / %zu shards journaled; rerun with the "
                "same options to resume\n",
                done, spec.num_shards);
    return 130;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "ensemble") == 0) {
    return run_ensemble(parse_ensemble_args(argc - 1, argv + 1, nullptr));
  }
  const Args args = parse(argc, argv);

  ZoneTraceSet traces = !args.trace_file.empty()
                            ? read_csv_file(args.trace_file)
                        : !args.events_file.empty()
                            ? read_event_csv_file(args.events_file)
                            : paper_traces(args.seed);
  SpotMarket market(std::move(traces), cc2_instance(), QueueDelayModel());

  Scenario scenario{args.window, args.slack, args.tc,
                    std::max<std::size_t>(args.experiments, 1)};

  if (args.experiments <= 1) {
    // Single-run mode: chunk indices address the paper's 80-chunk grid.
    scenario.num_experiments = std::max<std::size_t>(args.chunk + 1, 80);
    const Experiment e = scenario.experiment(args.chunk);
    auto strategy = make_strategy(args);
    EngineOptions options;
    options.record_timeline = args.timeline;
    options.termination_notice = args.notice;
    Engine engine(market, e, *strategy, options);
    print_run(engine.run(), args.timeline);
    return 0;
  }

  std::vector<double> costs(scenario.num_experiments);
  std::vector<RunResult> results(scenario.num_experiments);
  for (std::size_t i = 0; i < scenario.num_experiments; ++i) {
    auto strategy = make_strategy(args);
    EngineOptions options;
    options.termination_notice = args.notice;
    Engine engine(market, scenario.experiment(i), *strategy, options);
    results[i] = engine.run();
    costs[i] = results[i].total_cost.to_double();
  }
  const BoxRow row = make_box_row(args.policy, costs);
  std::fputs(boxplot_table("redspot_sim — " + scenario.label(),
                           std::vector<BoxRow>{row}, Money::dollars(48.0),
                           Money::dollars(5.40))
                 .c_str(),
             stdout);
  int missed = 0;
  for (const RunResult& r : results)
    if (!r.met_deadline) ++missed;
  std::printf("deadline misses: %d / %zu\n", missed, results.size());
  return 0;
}
