// bench_report CLI — the CI tolerance gate for microbenchmark reports.
//
//   bench_report check <current.json> <baseline.json> [--tolerance 0.25]
//
// Exit status 0 when every gated metric passes, 1 otherwise (see
// bench_report.hpp for the key conventions).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_report.hpp"
#include "common/check.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_report check <current.json> <baseline.json> "
               "[--tolerance FRAC]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4 || std::strcmp(argv[1], "check") != 0) return usage();
  const std::string current_path = argv[2];
  const std::string baseline_path = argv[3];
  double tolerance = 0.25;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else {
      return usage();
    }
  }

  try {
    const auto current =
        redspot::benchreport::parse_metrics(slurp(current_path));
    const auto baseline =
        redspot::benchreport::parse_metrics(slurp(baseline_path));
    const int failures =
        redspot::benchreport::check(current, baseline, tolerance, std::cout);
    if (failures > 0) {
      std::printf("bench_report: %d metric(s) regressed\n", failures);
      return 1;
    }
    std::printf("bench_report: all gated metrics pass\n");
    return 0;
  } catch (const redspot::CheckFailure& e) {
    std::fprintf(stderr, "bench_report: %s\n", e.what());
    return 2;
  }
}
