// Discrete-event simulation core.
//
// A minimal event calendar: schedule callbacks at absolute simulated times,
// cancel them, and run. Events at equal timestamps fire in scheduling order
// (FIFO), which the scheduling engine relies on — e.g. a billing-cycle
// boundary scheduled before a price tick at the same instant must observe
// the pre-tick price.
//
// Cancellation is lazy: cancelled entries stay in the heap and are skipped
// when popped, keeping both schedule() and cancel() O(log n) amortized. To
// stop cancel-heavy workloads (the engine reschedules its deadline trigger
// and per-zone events constantly) from growing the heap without bound, the
// calendar compacts — rebuilds the heap from only the live entries — once
// cancelled entries outnumber live ones and the backlog is large enough to
// matter. Each compaction is O(live) and removes >= backlog/2 entries, so
// the amortized cost per cancel stays O(1) and the heap never holds more
// than ~2x the live events (plus the small floor).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace redspot {

/// Handle for cancelling a scheduled event. 0 is never a valid id.
using EventId = std::uint64_t;

class Simulation {
 public:
  using Callback = std::function<void()>;

  explicit Simulation(SimTime start = 0) : now_(start) {}

  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now()). Returns a handle.
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after `d` (>= 0) of simulated time.
  EventId schedule_in(Duration d, Callback cb) {
    return schedule_at(now_ + d, std::move(cb));
  }

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// True when `id` is still pending.
  bool pending(EventId id) const;

  /// Runs the next event. Returns false when the calendar is empty.
  bool step();

  /// Runs events with time <= `t`, then advances the clock to `t`
  /// (if the last event left it earlier).
  void run_until(SimTime t);

  /// Runs until the calendar drains.
  void run();

  /// Pending (non-cancelled) event count.
  std::size_t pending_count() const { return callbacks_.size(); }

  /// Heap entries, including cancelled ones awaiting lazy removal.
  /// Bounded by max(2 * pending_count(), compaction floor); exposed so
  /// tests and benchmarks can assert the bound holds.
  std::size_t backlog() const { return heap_.size(); }

  /// Total events executed so far (for the micro-benchmarks).
  std::uint64_t executed_count() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO within a timestamp
    EventId id;
    // Heap ordering wants earliest-first with FIFO ties, so "less" means
    // later (std::*_heap build max-heaps).
    bool operator<(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  /// Drops cancelled heap entries when they dominate the backlog.
  void maybe_compact();

  SimTime now_;
  EventId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  /// Max-heap via std::push_heap/std::pop_heap (a priority_queue hides its
  /// container, which would force compaction to copy).
  std::vector<Entry> heap_;
  /// id -> callback; an id absent here but present in the heap was
  /// cancelled (lazy deletion).
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace redspot
