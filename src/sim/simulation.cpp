#include "sim/simulation.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

namespace {

/// Below this backlog the cancelled fraction is irrelevant; skipping
/// compaction keeps tiny calendars allocation-stable.
constexpr std::size_t kCompactionFloor = 64;

}  // namespace

EventId Simulation::schedule_at(SimTime t, Callback cb) {
  REDSPOT_CHECK_MSG(t >= now_, "scheduling into the past: t=" << t
                                   << " now=" << now_);
  REDSPOT_CHECK(cb != nullptr);
  const EventId id = next_id_++;
  heap_.push_back(Entry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end());
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void Simulation::cancel(EventId id) {
  if (callbacks_.erase(id) > 0) maybe_compact();
}

void Simulation::maybe_compact() {
  // Every heap entry was pushed with a callbacks_ entry and callbacks_
  // only shrinks via cancel or pop, so live = callbacks_.size() and the
  // difference is exactly the cancelled entries still in the heap.
  const std::size_t live = callbacks_.size();
  if (heap_.size() <= kCompactionFloor || heap_.size() - live <= live)
    return;
  std::erase_if(heap_, [this](const Entry& e) {
    return callbacks_.find(e.id) == callbacks_.end();
  });
  std::make_heap(heap_.begin(), heap_.end());
}

bool Simulation::pending(EventId id) const {
  return callbacks_.find(id) != callbacks_.end();
}

bool Simulation::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    REDSPOT_CHECK(top.time >= now_);
    now_ = top.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulation::run_until(SimTime t) {
  while (!heap_.empty()) {
    // Skip over stale (cancelled) heads without advancing time.
    const Entry top = heap_.front();
    if (callbacks_.find(top.id) == callbacks_.end()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace redspot
