#include "sim/simulation.hpp"

#include "common/check.hpp"

namespace redspot {

EventId Simulation::schedule_at(SimTime t, Callback cb) {
  REDSPOT_CHECK_MSG(t >= now_, "scheduling into the past: t=" << t
                                   << " now=" << now_);
  REDSPOT_CHECK(cb != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void Simulation::cancel(EventId id) { callbacks_.erase(id); }

bool Simulation::pending(EventId id) const {
  return callbacks_.find(id) != callbacks_.end();
}

bool Simulation::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    REDSPOT_CHECK(top.time >= now_);
    now_ = top.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulation::run_until(SimTime t) {
  while (!heap_.empty()) {
    // Skip over stale (cancelled) heads without advancing time.
    const Entry top = heap_.top();
    if (callbacks_.find(top.id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace redspot
