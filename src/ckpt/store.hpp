// Checkpoint store.
//
// Models the on-demand I/O server that holds checkpoints (Section 5). The
// paper assumes its cost is negligible and its storage durable: once a
// checkpoint commits, any zone can restart from it. The store records the
// sequence of committed checkpoints of one application run; "progress" is
// the amount of uninterrupted compute time the checkpoint captures.
//
// Under fault injection a write can succeed but deliver bad data; the
// engine validates every commit and rolls a corrupt one back through
// invalidate_latest(), so latest_progress() only ever reflects verified
// checkpoints — the property the deadline-guarantee margin depends on.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace redspot {

/// One committed checkpoint.
struct Checkpoint {
  SimTime committed_at = 0;  ///< when the checkpoint write finished
  Duration progress = 0;     ///< compute time captured
  bool valid = true;         ///< false once invalidated (failed validation)
};

/// Durable checkpoint sequence; progress is monotone over valid entries.
class CheckpointStore {
 public:
  /// Records a checkpoint that finished writing at `t`, capturing
  /// `progress`. Checkpoints that do not improve on the stored progress
  /// are recorded (they cost the application time and money) but do not
  /// regress `latest_progress()`.
  void commit(SimTime t, Duration progress);

  /// Rolls back the most recent still-valid checkpoint (post-write
  /// validation caught a corrupt image): marks it invalid and recomputes
  /// the best progress over the remaining valid entries, falling back to
  /// the previous good checkpoint. Requires at least one valid entry.
  void invalidate_latest();

  /// Invalidates the checkpoint at `index` in all(). No-op when already
  /// invalid.
  void invalidate(std::size_t index);

  /// Progress of the best valid checkpoint; 0 when none exists
  /// (restart = start from the beginning).
  Duration latest_progress() const { return best_progress_; }

  std::size_t count() const { return checkpoints_.size(); }
  /// Number of entries that are still valid.
  std::size_t valid_count() const;
  /// Number of entries rolled back by validation.
  std::size_t invalidated_count() const {
    return checkpoints_.size() - valid_count();
  }
  bool empty() const { return checkpoints_.empty(); }
  const std::vector<Checkpoint>& all() const { return checkpoints_; }

 private:
  void recompute_best();

  std::vector<Checkpoint> checkpoints_;
  Duration best_progress_ = 0;
};

}  // namespace redspot
