// Checkpoint store.
//
// Models the on-demand I/O server that holds checkpoints (Section 5). The
// paper assumes its cost is negligible and its storage durable: once a
// checkpoint commits, any zone can restart from it. The store records the
// sequence of committed checkpoints of one application run; "progress" is
// the amount of uninterrupted compute time the checkpoint captures.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace redspot {

/// One committed checkpoint.
struct Checkpoint {
  SimTime committed_at = 0;  ///< when the checkpoint write finished
  Duration progress = 0;     ///< compute time captured
};

/// Durable, monotonically improving checkpoint sequence.
class CheckpointStore {
 public:
  /// Records a checkpoint that finished writing at `t`, capturing
  /// `progress`. Checkpoints that do not improve on the stored progress
  /// are recorded (they cost the application time and money) but do not
  /// regress `latest_progress()`.
  void commit(SimTime t, Duration progress);

  /// Progress of the best committed checkpoint; 0 when none exists
  /// (restart = start from the beginning).
  Duration latest_progress() const { return best_progress_; }

  std::size_t count() const { return checkpoints_.size(); }
  bool empty() const { return checkpoints_.empty(); }
  const std::vector<Checkpoint>& all() const { return checkpoints_; }

 private:
  std::vector<Checkpoint> checkpoints_;
  Duration best_progress_ = 0;
};

}  // namespace redspot
