#include "ckpt/daly.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace redspot {

Duration daly_interval(Duration checkpoint_cost, Duration mtbf) {
  REDSPOT_CHECK(checkpoint_cost > 0);
  REDSPOT_CHECK(mtbf > 0);
  const double delta = static_cast<double>(checkpoint_cost);
  const double m = static_cast<double>(mtbf);
  if (delta >= 2.0 * m) return std::max<Duration>(1, mtbf);
  const double ratio = delta / (2.0 * m);
  const double tau = std::sqrt(2.0 * delta * m) *
                         (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
                     delta;
  return std::max<Duration>(1, static_cast<Duration>(std::llround(tau)));
}

Duration young_interval(Duration checkpoint_cost, Duration mtbf) {
  REDSPOT_CHECK(checkpoint_cost > 0);
  REDSPOT_CHECK(mtbf > 0);
  const double delta = static_cast<double>(checkpoint_cost);
  const double m = static_cast<double>(mtbf);
  const double tau = std::sqrt(2.0 * delta * m) - delta;
  return std::max<Duration>(1, static_cast<Duration>(std::llround(tau)));
}

double checkpoint_efficiency(Duration interval, Duration checkpoint_cost,
                             Duration restart_cost, Duration mtbf) {
  REDSPOT_CHECK(interval > 0);
  REDSPOT_CHECK(checkpoint_cost >= 0);
  REDSPOT_CHECK(restart_cost >= 0);
  REDSPOT_CHECK(mtbf > 0);
  const double tau = static_cast<double>(interval);
  const double delta = static_cast<double>(checkpoint_cost);
  const double r = static_cast<double>(restart_cost);
  const double m = static_cast<double>(mtbf);
  // One cycle attempts tau + delta of wall time. With failure rate 1/M the
  // expected wasted time per failure is half a cycle plus the restart; the
  // standard first-order model gives
  //   efficiency = tau / [ (tau + delta) (1 + (tau + delta)/(2M)) + r (tau+delta)/M ]
  const double cycle = tau + delta;
  const double denom = cycle * (1.0 + cycle / (2.0 * m)) + r * cycle / m;
  return tau / denom;
}

}  // namespace redspot
