#include "ckpt/cost_model.hpp"

#include <cmath>

namespace redspot {

CheckpointCosts costs_from_io(double image_gib, double bandwidth_gib_per_s,
                              Duration base_overhead) {
  REDSPOT_CHECK(image_gib >= 0.0);
  REDSPOT_CHECK(bandwidth_gib_per_s > 0.0);
  REDSPOT_CHECK(base_overhead >= 0);
  const auto transfer = static_cast<Duration>(
      std::llround(image_gib / bandwidth_gib_per_s));
  const Duration cost = base_overhead + transfer;
  return CheckpointCosts{cost, cost};
}

}  // namespace redspot
