// Daly's optimum checkpoint interval.
//
// The Markov-Daly policy (Section 4.2) feeds the Markov model's expected
// up-time into "Daly's equation" — J. T. Daly, "A higher order estimate of
// the optimum checkpoint interval for restart dumps", FGCS 2006 — to pick
// the checkpoint frequency. With delta the checkpoint write cost and M the
// mean time between failures:
//
//   tau_opt = sqrt(2 delta M) [1 + 1/3 sqrt(delta/(2M)) + 1/9 (delta/(2M))]
//             - delta                                  for delta < 2M
//   tau_opt = M                                        for delta >= 2M
//
// tau_opt is the compute time between checkpoint completions.
#pragma once

#include "common/time.hpp"

namespace redspot {

/// Daly's higher-order optimum compute interval between checkpoints.
/// `checkpoint_cost` = delta, `mtbf` = M, both in seconds, both > 0.
/// The result is at least 1 second.
Duration daly_interval(Duration checkpoint_cost, Duration mtbf);

/// First-order (Young) approximation sqrt(2 delta M) - delta, for the
/// ablation comparing interval estimators.
Duration young_interval(Duration checkpoint_cost, Duration mtbf);

/// Expected fraction of wall-clock time doing useful work when
/// checkpointing every `interval` of compute with cost `checkpoint_cost`
/// under exponential failures with the given MTBF. Used by the Adaptive
/// policy's progress-rate estimator and by tests as the quantity Daly's
/// interval maximizes.
double checkpoint_efficiency(Duration interval, Duration checkpoint_cost,
                             Duration restart_cost, Duration mtbf);

}  // namespace redspot
