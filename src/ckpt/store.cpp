#include "ckpt/store.hpp"

#include <algorithm>

namespace redspot {

void CheckpointStore::commit(SimTime t, Duration progress) {
  REDSPOT_CHECK(progress >= 0);
  if (!checkpoints_.empty())
    REDSPOT_CHECK_MSG(t >= checkpoints_.back().committed_at,
                      "checkpoint commits must not go back in time");
  checkpoints_.push_back(Checkpoint{t, progress, true});
  best_progress_ = std::max(best_progress_, progress);
}

void CheckpointStore::invalidate_latest() {
  for (std::size_t i = checkpoints_.size(); i-- > 0;) {
    if (checkpoints_[i].valid) {
      invalidate(i);
      return;
    }
  }
  REDSPOT_CHECK_FAIL("invalidate_latest on a store with no valid checkpoint");
}

void CheckpointStore::invalidate(std::size_t index) {
  REDSPOT_CHECK(index < checkpoints_.size());
  if (!checkpoints_[index].valid) return;
  checkpoints_[index].valid = false;
  recompute_best();
}

std::size_t CheckpointStore::valid_count() const {
  return static_cast<std::size_t>(
      std::count_if(checkpoints_.begin(), checkpoints_.end(),
                    [](const Checkpoint& c) { return c.valid; }));
}

void CheckpointStore::recompute_best() {
  best_progress_ = 0;
  for (const Checkpoint& c : checkpoints_)
    if (c.valid) best_progress_ = std::max(best_progress_, c.progress);
}

}  // namespace redspot
