#include "ckpt/store.hpp"

#include <algorithm>

namespace redspot {

void CheckpointStore::commit(SimTime t, Duration progress) {
  REDSPOT_CHECK(progress >= 0);
  if (!checkpoints_.empty())
    REDSPOT_CHECK_MSG(t >= checkpoints_.back().committed_at,
                      "checkpoint commits must not go back in time");
  checkpoints_.push_back(Checkpoint{t, progress});
  best_progress_ = std::max(best_progress_, progress);
}

}  // namespace redspot
