// Checkpoint/restart cost model.
//
// The paper assumes constant, equal checkpoint and restart costs per
// configuration — 300 s or 900 s, matching measured system-level
// checkpointing overheads on EC2's slow network (Section 5). The derived
// model maps an application's checkpoint image and the I/O server's
// bandwidth to a cost, for studies beyond the paper's two fixed points.
#pragma once

#include "common/check.hpp"
#include "common/time.hpp"

namespace redspot {

/// Fixed per-operation costs, seconds.
struct CheckpointCosts {
  Duration checkpoint = 300;  ///< t_c
  Duration restart = 300;     ///< t_r

  /// The paper's two evaluation points.
  static CheckpointCosts low() { return {300, 300}; }
  static CheckpointCosts high() { return {900, 900}; }
};

/// Derives costs from an application checkpoint image and I/O bandwidth:
///   cost = base_overhead + image_gib / bandwidth_gib_per_s
/// (restart = same transfer in the other direction plus the overhead,
/// matching the paper's t_c == t_r assumption).
CheckpointCosts costs_from_io(double image_gib, double bandwidth_gib_per_s,
                              Duration base_overhead);

}  // namespace redspot
