// Price-state Markov model (Appendix B).
//
// The Markov-Daly policy models a zone's spot price as a first-order Markov
// chain over the distinct prices observed in a trailing history window
// (the paper uses 2 days): PROB is a distribution over price states and
// TRANS the empirical transition matrix between consecutive 5-minute
// samples.
//
// Real quantized prices in a 2-day window produce a manageable state count,
// but a synthetic or long window could produce hundreds; the builder merges
// states into at most `max_states` quantile bins (each represented by the
// mean price of its members) so downstream solves stay O(max_states^3).
#pragma once

#include <cstddef>
#include <vector>

#include "common/money.hpp"
#include "linalg/matrix.hpp"
#include "trace/price_series.hpp"

namespace redspot {

/// A fitted price-state chain.
struct MarkovModel {
  /// Representative price per state, ascending.
  std::vector<double> state_prices;
  /// Row-stochastic transition matrix: trans(i, j) = P(next = j | cur = i).
  Matrix trans;
  /// Sampling step of the fitted history (the chain's time unit).
  Duration step = kPriceStep;

  std::size_t num_states() const { return state_prices.size(); }

  /// State whose representative price is closest to `price`.
  std::size_t state_of(Money price) const;

  /// Largest state index whose price is <= bid, or SIZE_MAX when the bid is
  /// below every state (zone can never be up).
  std::size_t max_alive_state(Money bid) const;
};

/// Fits a model to `history`. A single-sample history (no observed
/// transitions) degenerates to one self-looping state — "the price never
/// moves", the only unbiased guess.
///
/// States with no observed outgoing transition get a self-loop (the price
/// was only seen at the window's end; persisting is the only unbiased
/// guess). Every row is then smoothed toward the empirical occupancy
/// distribution with weight `smoothing`: a short window observes few
/// transitions per exact price level, and the raw empirical matrix
/// routinely contains closed classes below a bid from which termination
/// looks impossible, sending the expected up-time to its cap. The smoothed
/// chain can always reach every observed state.
MarkovModel build_markov_model(const PriceSeries& history,
                               std::size_t max_states = 32,
                               double smoothing = 0.02);

}  // namespace redspot
