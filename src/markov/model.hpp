// Price-state Markov model (Appendix B).
//
// The Markov-Daly policy models a zone's spot price as a first-order Markov
// chain over the distinct prices observed in a trailing history window
// (the paper uses 2 days): PROB is a distribution over price states and
// TRANS the empirical transition matrix between consecutive 5-minute
// samples.
//
// Real quantized prices in a 2-day window produce a manageable state count,
// but a synthetic or long window could produce hundreds; the builder merges
// states into at most `max_states` quantile bins (each represented by the
// mean price of its members) so downstream solves stay O(max_states^3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/money.hpp"
#include "linalg/matrix.hpp"
#include "trace/price_series.hpp"

namespace redspot {

/// A fitted price-state chain.
struct MarkovModel {
  /// Representative price per state, ascending.
  std::vector<double> state_prices;
  /// Row-stochastic transition matrix: trans(i, j) = P(next = j | cur = i).
  Matrix trans;
  /// Sampling step of the fitted history (the chain's time unit).
  Duration step = kPriceStep;

  std::size_t num_states() const { return state_prices.size(); }

  /// State whose representative price is closest to `price` (binary search
  /// over the ascending prices; equidistant ties pick the lower state).
  std::size_t state_of(Money price) const;

  /// Largest state index whose price is <= bid, or SIZE_MAX when the bid is
  /// below every state (zone can never be up). Binary search.
  std::size_t max_alive_state(Money bid) const;
};

/// Fits a model to `history`. A single-sample history (no observed
/// transitions) degenerates to one self-looping state — "the price never
/// moves", the only unbiased guess.
///
/// States with no observed outgoing transition get a self-loop (the price
/// was only seen at the window's end; persisting is the only unbiased
/// guess). Every row is then smoothed toward the empirical occupancy
/// distribution with weight `smoothing`: a short window observes few
/// transitions per exact price level, and the raw empirical matrix
/// routinely contains closed classes below a bid from which termination
/// looks impossible, sending the expected up-time to its cap. The smoothed
/// chain can always reach every observed state.
MarkovModel build_markov_model(const PriceView& history,
                               std::size_t max_states = 32,
                               double smoothing = 0.02);

inline MarkovModel build_markov_model(const PriceSeries& history,
                                      std::size_t max_states = 32,
                                      double smoothing = 0.02) {
  return build_markov_model(history.view(), max_states, smoothing);
}

namespace detail {

/// Reusable buffers for model fitting. A persistent scratch makes repeated
/// (re)builds allocation-free once warm — the incremental sliding-window
/// model refits every few samples and must not churn the heap.
struct MarkovScratch {
  std::vector<double> values;  ///< window samples, chronological
  std::vector<double> sorted;  ///< the same samples, ascending
  std::vector<double> unique;
  std::vector<double> edges;
  std::vector<double> bin_sum;
  std::vector<double> state_prices;
  std::vector<std::size_t> state_of_sample;
  std::vector<std::size_t> bin_count;
  std::vector<std::size_t> remap;
  std::vector<std::int64_t> trans_counts;
  std::vector<std::int64_t> occupancy;
};

/// Fits a model from `scratch.values` (chronological) given
/// `scratch.sorted` (the identical multiset, ascending). This is THE model
/// fit: build_markov_model sorts and delegates here, and the incremental
/// path maintains the sorted multiset across slides and delegates here,
/// so both produce bit-identical models by construction.
MarkovModel build_markov_model_presorted(MarkovScratch& scratch,
                                         Duration step,
                                         std::size_t max_states,
                                         double smoothing);

/// Turns integer transition counts + occupancy into the normalized,
/// smoothed MarkovModel. Shared by the from-scratch builder and the
/// incremental sliding-window builder so both produce bit-identical
/// matrices: a count accumulated as `+= 1.0` k times equals (double)k
/// exactly, so normalizing (double)count by 1/row_total reproduces the
/// historical arithmetic operation-for-operation.
///
/// `trans_counts` is row-major n x n; `occupancy[s]` the number of window
/// samples in state s; `total_samples` their sum.
MarkovModel finish_markov_model(std::vector<double> state_prices,
                                const std::vector<std::int64_t>& trans_counts,
                                const std::vector<std::int64_t>& occupancy,
                                std::int64_t total_samples, Duration step,
                                double smoothing);

/// In-place variant for the steady-state slide: rewrites `model.trans`
/// from the counts, reusing its storage when the shape already matches and
/// `pi_scratch` for the smoothing distribution, leaving state_prices/step
/// untouched. Writes the exact doubles finish_markov_model would — every
/// matrix entry is overwritten (self-loop rows are zero-filled explicitly,
/// matching the fresh zero-initialized Matrix) — so the two paths stay
/// bit-identical while this one never touches the heap.
void refit_markov_model(MarkovModel& model,
                        const std::vector<std::int64_t>& trans_counts,
                        const std::vector<std::int64_t>& occupancy,
                        std::int64_t total_samples, double smoothing,
                        std::vector<double>& pi_scratch);

}  // namespace detail

}  // namespace redspot
