#include "markov/uptime.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "linalg/lu.hpp"

namespace redspot {

Duration expected_uptime(const MarkovModel& model, Money current_price,
                         Money bid, Duration cap) {
  UptimeScratch scratch;
  return expected_uptime(model, current_price, bid, cap, scratch);
}

Duration expected_uptime(const MarkovModel& model, Money current_price,
                         Money bid, Duration cap, UptimeScratch& scratch) {
  REDSPOT_CHECK(model.num_states() > 0);
  REDSPOT_CHECK(cap > 0);
  if (current_price > bid) return 0;

  // state_prices is ascending, so the alive states (price <= bid) are
  // exactly the prefix [0, a].
  const std::size_t a = model.max_alive_state(bid);
  if (a == SIZE_MAX) return 0;
  const std::size_t m = a + 1;

  // Q: transition sub-matrix among alive states. Absorption = any move to
  // a dead state (price above bid). Built directly into the reused buffer
  // (every entry is written) and factored in place.
  scratch.i_minus_q.resize(m * m);
  double* imq = scratch.i_minus_q.data();
  const double* trans = model.trans.data();
  const std::size_t n = model.num_states();
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const double q = trans[r * n + c];
      imq[r * m + c] = (r == c ? 1.0 : 0.0) - q;
    }
  }

  scratch.perm.resize(m);
  int perm_sign = 1;
  if (detail::lu_factor_inplace(imq, m, scratch.perm.data(), &perm_sign)) {
    // A closed communicating class within the bid: the chain can never be
    // absorbed from (at least) the current state — up "forever".
    return cap;
  }

  // t = (I - Q)^{-1} 1: expected steps to absorption from each alive state.
  scratch.t.assign(m, 1.0);  // the ones vector, solved in place below
  std::vector<double>& t = scratch.t;
  {
    // lu_solve_inplace forbids aliasing; permute b on the fly instead by
    // noting b = 1 is permutation-invariant, so solve with b[i] = 1.
    for (std::size_t i = 0; i < m; ++i) {
      const double* row = imq + i * m;
      double acc = 1.0;
      for (std::size_t j = 0; j < i; ++j) acc -= row[j] * t[j];
      t[i] = acc;
    }
    for (std::size_t ii = m; ii-- > 0;) {
      const double* row = imq + ii * m;
      double acc = t[ii];
      for (std::size_t j = ii + 1; j < m; ++j) acc -= row[j] * t[j];
      t[ii] = acc / row[ii];
    }
  }

  const std::size_t start = model.state_of(current_price);
  if (start > a) return 0;  // nearest state is out-of-bid

  const double steps = t[start];
  // Numerically near-singular systems can yield huge or negative values;
  // clamp into [0 steps, cap].
  if (!std::isfinite(steps) || steps < 0.0) return cap;
  const double seconds = steps * static_cast<double>(model.step);
  if (seconds >= static_cast<double>(cap)) return cap;
  return std::max<Duration>(0, static_cast<Duration>(std::llround(seconds)));
}

Duration expected_uptime_iterative(const MarkovModel& model,
                                   Money current_price, Money bid,
                                   std::size_t max_steps, Duration cap) {
  REDSPOT_CHECK(model.num_states() > 0);
  if (current_price > bid) return 0;

  const std::size_t n = model.num_states();
  const double b = bid.to_double() + 1e-9;
  std::vector<bool> alive(n);
  for (std::size_t i = 0; i < n; ++i) alive[i] = model.state_prices[i] <= b;

  const std::size_t start = model.state_of(current_price);
  if (!alive[start]) return 0;

  // PROB^k: probability of being alive in each state after k steps.
  std::vector<double> prob(n, 0.0);
  prob[start] = 1.0;
  std::vector<double> next(n);

  double expected_steps = 0.0;
  double alive_mass = 1.0;
  for (std::size_t k = 1; k <= max_steps; ++k) {
    // Equation 2: propagate alive mass one step.
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double p = prob[i];
      if (p == 0.0) continue;  // dead states were already zeroed
      for (std::size_t j = 0; j < n; ++j)
        next[j] += p * model.trans(i, j);
    }
    // Equation 3 (reversed indicator): mass now in out-of-bid states dies
    // at step k.
    double died = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!alive[j]) {
        died += next[j];
        next[j] = 0.0;
      }
    }
    expected_steps += static_cast<double>(k) * died;
    alive_mass -= died;
    prob.swap(next);

    // Th: stop once effectively all mass has been absorbed — the estimate
    // can no longer change at seconds granularity.
    if (alive_mass <= 1e-12) break;
    // Early cap: even the mass absorbed so far already exceeds the cap.
    if (expected_steps * static_cast<double>(model.step) >=
        static_cast<double>(cap))
      return cap;
  }
  // Whatever is still alive survived the horizon: credit it the horizon.
  expected_steps += alive_mass * static_cast<double>(max_steps);

  const double seconds =
      expected_steps * static_cast<double>(model.step);
  if (seconds >= static_cast<double>(cap)) return cap;
  return std::max<Duration>(0, static_cast<Duration>(std::llround(seconds)));
}

Duration combined_expected_uptime(std::span<const Duration> per_zone) {
  Duration total = 0;
  for (Duration d : per_zone) {
    REDSPOT_CHECK(d >= 0);
    total += d;
  }
  return total;
}

}  // namespace redspot
