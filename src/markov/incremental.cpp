#include "markov/incremental.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

IncrementalMarkovModel::IncrementalMarkovModel(std::size_t max_states,
                                               double smoothing)
    : max_states_(max_states), smoothing_(smoothing) {
  REDSPOT_CHECK(max_states_ >= 2);
  REDSPOT_CHECK(smoothing_ >= 0.0 && smoothing_ < 1.0);
}

const MarkovModel& IncrementalMarkovModel::model() const {
  REDSPOT_CHECK_MSG(valid_, "observe() a window first");
  return model_;
}

std::size_t IncrementalMarkovModel::state_index(Money price) const {
  const auto it = std::lower_bound(state_micros_.begin(), state_micros_.end(),
                                   price.micros());
  if (it == state_micros_.end() || *it != price.micros()) return SIZE_MAX;
  return static_cast<std::size_t>(std::distance(state_micros_.begin(), it));
}

void IncrementalMarkovModel::remember_window(const PriceView& window) {
  data_ = window.data();
  size_ = window.size();
  start_ = window.start();
  step_ = window.step();
  valid_ = true;
}

const MarkovModel& IncrementalMarkovModel::observe(const PriceView& window) {
  REDSPOT_CHECK(!window.empty());
  // Identical window: nothing to do (common when a policy asks for the
  // history twice within one engine step).
  if (valid_ && window.data() == data_ && window.size() == size_ &&
      window.start() == start_ && window.step() == step_) {
    return model_;
  }
  if (valid_ && try_slide(window)) {
    ++incremental_slides_;
    return model_;
  }
  rebuild_full(window);
  return model_;
}

bool IncrementalMarkovModel::try_slide(const PriceView& window) {
  // Forward slide over the same storage, with at least one overlapping
  // sample — anything else rebuilds.
  if (window.step() != step_) return false;
  if (window.start() < start_) return false;
  const std::size_t shift =
      static_cast<std::size_t>((window.start() - start_) / step_);
  if (shift >= size_) return false;  // no overlap
  if (shift + window.size() < size_) return false;  // right edge moved back
  // data_ + shift is within the old span, so this equality is well-defined;
  // it holds exactly when both windows view the same underlying array.
  if (window.data() != data_ + shift) return false;

  return binned_ ? slide_binned(window, shift) : slide_unique(window, shift);
}

bool IncrementalMarkovModel::slide_binned(const PriceView& window,
                                          std::size_t shift) {
  // Evict the samples that left the window: decrement each departing
  // price's level count, dropping the level when it reaches zero (exact
  // double equality — both sides come from the same Money::to_double of
  // the same stored micros). A count edit is O(log distinct); only a
  // level birth/death pays an O(distinct) array shift, versus the
  // O(window) memmove every sample cost under the old sorted-multiset
  // maintenance.
  for (std::size_t i = 0; i < shift; ++i) {
    const double v = data_[i].to_double();
    const auto it = std::lower_bound(bin_levels_.begin(), bin_levels_.end(), v);
    REDSPOT_CHECK(it != bin_levels_.end() && *it == v);
    const std::size_t pos =
        static_cast<std::size_t>(std::distance(bin_levels_.begin(), it));
    if (--bin_counts_[pos] == 0) {
      bin_levels_.erase(it);
      bin_counts_.erase(bin_counts_.begin() +
                        static_cast<std::ptrdiff_t>(pos));
      --distinct_;
    }
  }
  // Count in the appended samples, inserting unseen levels in place.
  const std::size_t new_abs_end = shift + window.size();
  for (std::size_t i = size_; i < new_abs_end; ++i) {
    const double v = window.sample(i - shift).to_double();
    const auto it = std::lower_bound(bin_levels_.begin(), bin_levels_.end(), v);
    const std::size_t pos =
        static_cast<std::size_t>(std::distance(bin_levels_.begin(), it));
    if (it == bin_levels_.end() || *it != v) {
      bin_levels_.insert(it, v);
      bin_counts_.insert(bin_counts_.begin() + static_cast<std::ptrdiff_t>(pos),
                         1);
      ++distinct_;
    } else {
      ++bin_counts_[pos];
    }
  }
  // The window left quantile territory: let the full rebuild re-derive
  // everything in unique mode (it recounts, so the edits above are moot).
  if (distinct_ <= max_states_) return false;

  // Expand the counts back into the sorted buffer the shared mapping pass
  // consumes: ascending levels repeated by multiplicity ARE the sorted
  // window, so the refit sees the same input as a from-scratch sort —
  // same chronological values, same sorted multiset, bit-identical model.
  fit_.sorted.resize(window.size());
  double* out = fit_.sorted.data();
  for (std::size_t b = 0; b < bin_levels_.size(); ++b)
    out = std::fill_n(out, bin_counts_[b], bin_levels_[b]);
  REDSPOT_CHECK(out == fit_.sorted.data() + fit_.sorted.size());
  fit_.values.resize(window.size());
  for (std::size_t i = 0; i < window.size(); ++i)
    fit_.values[i] = window.sample(i).to_double();
  model_ = detail::build_markov_model_presorted(fit_, step_, max_states_,
                                                smoothing_);
  ++model_refreshes_;
  ++epoch_;
  grow_memo_for_model();
  remember_window(window);
  return true;
}

bool IncrementalMarkovModel::slide_unique(const PriceView& window,
                                          std::size_t shift) {
  const std::size_t new_abs_end = shift + window.size();  // old-local index

  // An appended sample with an unseen price changes the state set.
  for (std::size_t i = size_; i < new_abs_end; ++i) {
    if (state_index(window.sample(i - shift)) == SIZE_MAX) return false;
  }

  // Occupancy after the slide; a state dropping to zero changes the set.
  const std::size_t n = state_micros_.size();
  occ_scratch_.assign(occupancy_.begin(), occupancy_.end());
  for (std::size_t i = 0; i < shift; ++i) {
    const std::size_t s = state_index(data_[i]);
    REDSPOT_CHECK(s != SIZE_MAX);
    --occ_scratch_[s];
  }
  for (std::size_t i = size_; i < new_abs_end; ++i) {
    ++occ_scratch_[state_index(window.sample(i - shift))];
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (occ_scratch_[s] <= 0) return false;
  }

  // Commit. Samples at old-local index i: < shift only exist in the old
  // span, >= shift are window.sample(i - shift).
  const auto at = [&](std::size_t i) {
    return i >= shift ? window.sample(i - shift) : data_[i];
  };
  removed_pairs_.clear();
  added_pairs_.clear();
  for (std::size_t i = 0; i < shift; ++i) {  // evicted transitions
    const std::uint32_t key = static_cast<std::uint32_t>(
        state_index(at(i)) * n + state_index(at(i + 1)));
    --trans_counts_[key];
    removed_pairs_.push_back(key);
  }
  for (std::size_t i = size_ - 1; i + 1 < new_abs_end; ++i) {
    const std::uint32_t key = static_cast<std::uint32_t>(
        state_index(at(i)) * n + state_index(at(i + 1)));
    ++trans_counts_[key];
    added_pairs_.push_back(key);
  }

  const bool occupancy_unchanged =
      window.size() == size_ && occ_scratch_ == occupancy_;
  occupancy_.swap(occ_scratch_);
  std::sort(removed_pairs_.begin(), removed_pairs_.end());
  std::sort(added_pairs_.begin(), added_pairs_.end());
  const bool counts_unchanged =
      occupancy_unchanged && removed_pairs_ == added_pairs_;

  remember_window(window);
  if (!counts_unchanged) {
    // Counts net-changed: re-finish the matrix and drop the uptime memo.
    // The state set is unchanged on this path, so the refit rewrites
    // model_.trans in place — no Matrix/pi/state_prices allocations.
    detail::refit_markov_model(model_, trans_counts_, occupancy_,
                               static_cast<std::int64_t>(size_), smoothing_,
                               pi_scratch_);
    ++model_refreshes_;
    ++epoch_;
    grow_memo_for_model();
  }
  return true;
}

void IncrementalMarkovModel::rebuild_full(const PriceView& window) {
  // Fill the shared fit buffers: chronological values plus a full sort.
  // Slides keep fit_.sorted up to date instead of re-running this sort.
  fit_.values.resize(window.size());
  for (std::size_t i = 0; i < window.size(); ++i)
    fit_.values[i] = window.sample(i).to_double();
  fit_.sorted.assign(fit_.values.begin(), fit_.values.end());
  std::sort(fit_.sorted.begin(), fit_.sorted.end());
  distinct_ = 1;
  for (std::size_t i = 1; i < fit_.sorted.size(); ++i)
    if (fit_.sorted[i] != fit_.sorted[i - 1]) ++distinct_;
  model_ = detail::build_markov_model_presorted(fit_, window.step(),
                                                max_states_, smoothing_);
  ++full_rebuilds_;
  ++model_refreshes_;
  ++epoch_;
  grow_memo_for_model();

  binned_ = distinct_ > max_states_;
  remember_window(window);
  if (binned_) {
    // Binned slides maintain the window multiset as counting arrays and
    // re-expand fit_.sorted from them on each refit.
    bin_levels_.clear();
    bin_counts_.clear();
    for (const double v : fit_.sorted) {
      if (bin_levels_.empty() || bin_levels_.back() != v) {
        bin_levels_.push_back(v);
        bin_counts_.push_back(1);
      } else {
        ++bin_counts_.back();
      }
    }
    return;
  }

  // Exact unique mode: distinct micro-dollar prices, ascending, plus the
  // integer counts the unique-mode slide maintains.
  state_micros_.clear();
  for (std::size_t i = 0; i < window.size(); ++i)
    state_micros_.push_back(window.sample(i).micros());
  std::sort(state_micros_.begin(), state_micros_.end());
  state_micros_.erase(
      std::unique(state_micros_.begin(), state_micros_.end()),
      state_micros_.end());

  const std::size_t n = state_micros_.size();
  REDSPOT_CHECK(n == model_.num_states());
  trans_counts_.assign(n * n, 0);
  occupancy_.assign(n, 0);
  std::size_t prev = SIZE_MAX;
  for (std::size_t i = 0; i < window.size(); ++i) {
    const std::size_t s = state_index(window.sample(i));
    ++occupancy_[s];
    if (prev != SIZE_MAX) ++trans_counts_[prev * n + s];
    prev = s;
  }

  occ_scratch_.reserve(n);
  removed_pairs_.reserve(16);
  added_pairs_.reserve(16);
}

void IncrementalMarkovModel::grow_memo_for_model() {
  // Fresh slots read epoch 0, never fresh (epoch_ >= 1 by now). Shrinking
  // models keep the larger memo: keys stay in range, stale slots stay cold
  // behind the epoch check.
  const std::size_t slots = model_.num_states() * model_.num_states();
  if (memo_.size() < slots) {
    memo_ = std::vector<detail::CopyableAtomic<Duration>>(slots);
    memo_epoch_ = std::vector<detail::CopyableAtomic<std::uint32_t>>(slots);
  }
}

Duration IncrementalMarkovModel::expected_uptime(Money current_price,
                                                 Money bid, Duration cap) {
  REDSPOT_CHECK_MSG(valid_, "observe() a window first");
  if (cap != memo_cap_) {  // different cap: flush (cap is constant in practice)
    ++epoch_;
    memo_cap_ = cap;
  }
  return expected_uptime(current_price, bid, uptime_scratch_, cap);
}

Duration IncrementalMarkovModel::expected_uptime(Money current_price,
                                                 Money bid,
                                                 UptimeScratch& scratch,
                                                 Duration cap) const {
  REDSPOT_CHECK_MSG(valid_, "observe() a window first");
  // Same early-outs as redspot::expected_uptime, before touching the memo:
  // these depend on the raw prices, not only on the (state, alive) key.
  if (current_price > bid) return 0;
  const std::size_t a = model_.max_alive_state(bid);
  if (a == SIZE_MAX) return 0;
  const std::size_t s = model_.state_of(current_price);
  if (s > a) return 0;  // nearest state is out-of-bid

  // A cap other than the memoized one computes unmemoized — readers must
  // not flush a shared memo.
  if (cap != memo_cap_) {
    return redspot::expected_uptime(model_, current_price, bid, cap, scratch);
  }
  const std::size_t n = model_.num_states();
  const std::size_t key = s * n + a;
  REDSPOT_CHECK(key < memo_.size());
  // epoch_ >= 1 after the first rebuild, so a default-zero slot never
  // reads as fresh. Acquire on the slot epoch pairs with the release
  // below: a fresh epoch guarantees the value store is visible.
  if (memo_epoch_[key].load(std::memory_order_acquire) == epoch_) {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
    return memo_[key].load(std::memory_order_relaxed);
  }
  const Duration val =
      redspot::expected_uptime(model_, current_price, bid, cap, scratch);
  // Racing readers store identical bits (the solve is a pure function of
  // the epoch-frozen model), so last-writer-wins is harmless.
  memo_[key].store(val, std::memory_order_relaxed);
  memo_epoch_[key].store(epoch_, std::memory_order_release);
  memo_misses_.fetch_add(1, std::memory_order_relaxed);
  return val;
}

}  // namespace redspot
