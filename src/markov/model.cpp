#include "markov/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace redspot {

std::size_t MarkovModel::state_of(Money price) const {
  REDSPOT_CHECK(!state_prices.empty());
  const double p = price.to_double();
  // state_prices is ascending: the nearest state is one of the two
  // neighbours of the insertion point. Equidistant ties pick the lower
  // index (matching the historical first-minimum scan).
  const auto it = std::lower_bound(state_prices.begin(), state_prices.end(), p);
  if (it == state_prices.begin()) return 0;
  if (it == state_prices.end()) return state_prices.size() - 1;
  const std::size_t hi =
      static_cast<std::size_t>(std::distance(state_prices.begin(), it));
  const std::size_t lo = hi - 1;
  return (p - state_prices[lo] <= state_prices[hi] - p) ? lo : hi;
}

std::size_t MarkovModel::max_alive_state(Money bid) const {
  // Tolerate the micro-dollar -> double conversion.
  const double b = bid.to_double() + 1e-9;
  const auto it = std::upper_bound(state_prices.begin(), state_prices.end(), b);
  if (it == state_prices.begin()) return SIZE_MAX;
  return static_cast<std::size_t>(std::distance(state_prices.begin(), it)) - 1;
}

namespace detail {

void refit_markov_model(MarkovModel& model,
                        const std::vector<std::int64_t>& trans_counts,
                        const std::vector<std::int64_t>& occupancy,
                        std::int64_t total_samples, double smoothing,
                        std::vector<double>& pi_scratch) {
  const std::size_t n = model.state_prices.size();
  REDSPOT_CHECK(trans_counts.size() == n * n);
  REDSPOT_CHECK(occupancy.size() == n);
  REDSPOT_CHECK(total_samples > 0);

  if (model.trans.rows() != n || model.trans.cols() != n)
    model.trans = Matrix(n, n);
  double* trans = model.trans.data();  // checked accessor is too hot here
  for (std::size_t r = 0; r < n; ++r) {
    std::int64_t row_total = 0;
    for (std::size_t c = 0; c < n; ++c) row_total += trans_counts[r * n + c];
    if (row_total == 0) {
      // Never observed leaving: self-loop. The explicit zero-fill matters
      // when reusing storage — a fresh Matrix arrives zero-initialized.
      std::fill(trans + r * n, trans + (r + 1) * n, 0.0);
      trans[r * n + r] = 1.0;
      continue;
    }
    const double inv = 1.0 / static_cast<double>(row_total);
    for (std::size_t c = 0; c < n; ++c)
      trans[r * n + c] = static_cast<double>(trans_counts[r * n + c]) * inv;
  }

  if (smoothing > 0.0) {
    // Empirical occupancy distribution.
    pi_scratch.resize(n);
    double* pi = pi_scratch.data();
    for (std::size_t c = 0; c < n; ++c)
      pi[c] = static_cast<double>(occupancy[c]) /
              static_cast<double>(total_samples);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        trans[r * n + c] =
            (1.0 - smoothing) * trans[r * n + c] + smoothing * pi[c];
  }
}

MarkovModel finish_markov_model(std::vector<double> state_prices,
                                const std::vector<std::int64_t>& trans_counts,
                                const std::vector<std::int64_t>& occupancy,
                                std::int64_t total_samples, Duration step,
                                double smoothing) {
  MarkovModel model;
  model.state_prices = std::move(state_prices);
  model.step = step;
  std::vector<double> pi;
  refit_markov_model(model, trans_counts, occupancy, total_samples, smoothing,
                     pi);
  return model;
}

}  // namespace detail

namespace detail {

MarkovModel build_markov_model_presorted(MarkovScratch& scratch,
                                         Duration step,
                                         std::size_t max_states,
                                         double smoothing) {
  const std::vector<double>& values = scratch.values;
  const std::vector<double>& sorted = scratch.sorted;
  REDSPOT_CHECK(values.size() >= 1);
  REDSPOT_CHECK(sorted.size() == values.size());
  REDSPOT_CHECK(max_states >= 2);
  REDSPOT_CHECK(smoothing >= 0.0 && smoothing < 1.0);

  // Distinct observed prices, ascending.
  std::vector<double>& unique = scratch.unique;
  unique.assign(sorted.begin(), sorted.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  std::vector<double>& state_prices = scratch.state_prices;
  state_prices.clear();

  // Map each sample to a state index.
  std::vector<std::size_t>& state_of_sample = scratch.state_of_sample;
  state_of_sample.resize(values.size());
  // Prices are piecewise-constant, so consecutive samples are usually
  // equal: both mapping loops below reuse the previous lookup when the
  // value repeats (same value, same search result — no behavior change).
  if (unique.size() <= max_states) {
    state_prices = unique;
    double last_v = 0.0;
    std::size_t last_s = SIZE_MAX;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double v = values[i];
      if (last_s == SIZE_MAX || v != last_v) {
        const auto it = std::lower_bound(unique.begin(), unique.end(), v);
        last_s = static_cast<std::size_t>(std::distance(unique.begin(), it));
        last_v = v;
      }
      state_of_sample[i] = last_s;
    }
  } else {
    // Quantile binning over the sample distribution: equal-count bins keep
    // resolution where the price actually lives. Bin means accumulate in
    // chronological sample order, so a slid window re-runs this mapping
    // pass over its samples — same order, same doubles.
    std::vector<double>& edges = scratch.edges;
    edges.resize(max_states - 1);
    for (std::size_t b = 0; b + 1 < max_states; ++b) {
      const double q =
          static_cast<double>(b + 1) / static_cast<double>(max_states);
      edges[b] = sorted[static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1))];
    }
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    const std::size_t num_bins = edges.size() + 1;
    std::vector<double>& bin_sum = scratch.bin_sum;
    std::vector<std::size_t>& bin_count = scratch.bin_count;
    bin_sum.assign(num_bins, 0.0);
    bin_count.assign(num_bins, 0);
    double last_v = 0.0;
    std::size_t last_bin = SIZE_MAX;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double v = values[i];
      if (last_bin == SIZE_MAX || v != last_v) {
        const auto it = std::upper_bound(edges.begin(), edges.end(), v);
        last_bin = static_cast<std::size_t>(std::distance(edges.begin(), it));
        last_v = v;
      }
      state_of_sample[i] = last_bin;
      bin_sum[last_bin] += v;
      ++bin_count[last_bin];
    }
    // Drop empty bins, remapping indices.
    std::vector<std::size_t>& remap = scratch.remap;
    remap.assign(num_bins, SIZE_MAX);
    for (std::size_t b = 0; b < num_bins; ++b) {
      if (bin_count[b] == 0) continue;
      remap[b] = state_prices.size();
      state_prices.push_back(bin_sum[b] /
                             static_cast<double>(bin_count[b]));
    }
    for (auto& s : state_of_sample) {
      REDSPOT_CHECK(remap[s] != SIZE_MAX);
      s = remap[s];
    }
  }

  // Empirical transition counts between consecutive samples; the shared
  // finisher normalizes and smooths so the incremental path can reproduce
  // the exact same doubles from its own counts.
  const std::size_t n = state_prices.size();
  std::vector<std::int64_t>& trans_counts = scratch.trans_counts;
  std::vector<std::int64_t>& occupancy = scratch.occupancy;
  trans_counts.assign(n * n, 0);
  occupancy.assign(n, 0);
  for (std::size_t i = 0; i + 1 < state_of_sample.size(); ++i)
    ++trans_counts[state_of_sample[i] * n + state_of_sample[i + 1]];
  for (std::size_t s : state_of_sample) ++occupancy[s];

  return finish_markov_model(
      std::vector<double>(state_prices), trans_counts, occupancy,
      static_cast<std::int64_t>(state_of_sample.size()), step, smoothing);
}

}  // namespace detail

MarkovModel build_markov_model(const PriceView& history,
                               std::size_t max_states, double smoothing) {
  REDSPOT_CHECK(history.size() >= 1);
  detail::MarkovScratch scratch;
  scratch.values = history.to_doubles();
  scratch.sorted = scratch.values;
  std::sort(scratch.sorted.begin(), scratch.sorted.end());
  return detail::build_markov_model_presorted(scratch, history.step(),
                                              max_states, smoothing);
}

}  // namespace redspot
