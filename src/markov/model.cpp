#include "markov/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace redspot {

std::size_t MarkovModel::state_of(Money price) const {
  REDSPOT_CHECK(!state_prices.empty());
  const double p = price.to_double();
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < state_prices.size(); ++i) {
    const double d = std::fabs(state_prices[i] - p);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

std::size_t MarkovModel::max_alive_state(Money bid) const {
  const double b = bid.to_double();
  std::size_t result = SIZE_MAX;
  for (std::size_t i = 0; i < state_prices.size(); ++i) {
    // Tolerate the micro-dollar -> double conversion.
    if (state_prices[i] <= b + 1e-9) result = i;
  }
  return result;
}

MarkovModel build_markov_model(const PriceSeries& history,
                               std::size_t max_states, double smoothing) {
  REDSPOT_CHECK(history.size() >= 1);
  REDSPOT_CHECK(max_states >= 2);
  REDSPOT_CHECK(smoothing >= 0.0 && smoothing < 1.0);

  // Distinct observed prices, ascending.
  std::vector<double> values = history.to_doubles();
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> unique = sorted;
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  MarkovModel model;
  model.step = history.step();

  // Map each sample to a state index.
  std::vector<std::size_t> state_of_sample(values.size());
  if (unique.size() <= max_states) {
    model.state_prices = unique;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const auto it =
          std::lower_bound(unique.begin(), unique.end(), values[i]);
      state_of_sample[i] =
          static_cast<std::size_t>(std::distance(unique.begin(), it));
    }
  } else {
    // Quantile binning over the sample distribution: equal-count bins keep
    // resolution where the price actually lives.
    std::vector<double> edges(max_states - 1);
    for (std::size_t b = 0; b + 1 < max_states; ++b) {
      const double q =
          static_cast<double>(b + 1) / static_cast<double>(max_states);
      edges[b] = sorted[static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1))];
    }
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    const std::size_t num_bins = edges.size() + 1;
    std::vector<double> bin_sum(num_bins, 0.0);
    std::vector<std::size_t> bin_count(num_bins, 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const auto it =
          std::upper_bound(edges.begin(), edges.end(), values[i]);
      const auto bin =
          static_cast<std::size_t>(std::distance(edges.begin(), it));
      state_of_sample[i] = bin;
      bin_sum[bin] += values[i];
      ++bin_count[bin];
    }
    // Drop empty bins, remapping indices.
    std::vector<std::size_t> remap(num_bins, SIZE_MAX);
    for (std::size_t b = 0; b < num_bins; ++b) {
      if (bin_count[b] == 0) continue;
      remap[b] = model.state_prices.size();
      model.state_prices.push_back(bin_sum[b] /
                                   static_cast<double>(bin_count[b]));
    }
    for (auto& s : state_of_sample) {
      REDSPOT_CHECK(remap[s] != SIZE_MAX);
      s = remap[s];
    }
  }

  // Empirical transition counts between consecutive samples.
  const std::size_t n = model.state_prices.size();
  model.trans = Matrix(n, n);
  std::vector<std::size_t> row_total(n, 0);
  for (std::size_t i = 0; i + 1 < state_of_sample.size(); ++i) {
    model.trans(state_of_sample[i], state_of_sample[i + 1]) += 1.0;
    ++row_total[state_of_sample[i]];
  }
  for (std::size_t r = 0; r < n; ++r) {
    if (row_total[r] == 0) {
      model.trans(r, r) = 1.0;  // never observed leaving: self-loop
      continue;
    }
    const double inv = 1.0 / static_cast<double>(row_total[r]);
    for (std::size_t c = 0; c < n; ++c) model.trans(r, c) *= inv;
  }

  if (smoothing > 0.0) {
    // Empirical occupancy distribution.
    std::vector<double> pi(n, 0.0);
    for (std::size_t s : state_of_sample) pi[s] += 1.0;
    for (double& x : pi) x /= static_cast<double>(state_of_sample.size());
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        model.trans(r, c) =
            (1.0 - smoothing) * model.trans(r, c) + smoothing * pi[c];
  }
  return model;
}

}  // namespace redspot
