// Sliding-window Markov model with incremental updates (decision path).
//
// Markov-based policies refit build_markov_model() over the trailing
// 2-day window at every decision, even though consecutive decisions see
// windows that differ by a handful of 5-minute samples. This class keeps
// the integer transition counts and occupancy of the current window and
// slides them — add the newest samples, evict the oldest — instead of
// re-sorting and re-counting 576 samples per decision.
//
// Invariants and triggers (DESIGN.md §10):
//   * The model is rebuilt from scratch only when the *state set* changes:
//     an appended sample introduces an unseen price, or an evicted sample
//     removes the last occurrence of one. Otherwise the state index map is
//     stable and counts slide in O(samples moved).
//   * Sliding is only attempted when the new window is a forward slide
//     over the SAME underlying storage (the zone trace outlives the run,
//     so evicted samples can still be read from the previous span). A
//     window over different storage, a backward move, or a sampling-step
//     change falls back to a full rebuild.
//   * Quantile-binned windows (distinct prices > max_states) keep the
//     window's sample multiset as flat counting arrays (distinct levels +
//     multiplicities), edit the counts across slides, and re-run the
//     shared mapping pass over the expanded multiset — identical input,
//     identical arithmetic, identical model — instead of re-sorting the
//     whole window or memmoving a sorted array per sample. The model
//     still refreshes on every binned slide (bin means move with the
//     window), but the per-decision path is count edits plus one linear
//     expansion.
//   * The normalized matrix is re-finished only when the counts NET-change.
//     A constant-price slide removes and adds the same transition, leaving
//     counts — and therefore the model and the expected-uptime memo —
//     untouched. This is the steady state: no allocation, no FP work.
//
// Bit-identity: counts are integers, and detail::finish_markov_model
// reproduces build_markov_model's arithmetic from integer counts exactly,
// so model() always equals build_markov_model(window) bit-for-bit
// (property-tested in markov_test / decision_path_test).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "markov/model.hpp"
#include "markov/uptime.hpp"
#include "trace/price_view.hpp"

namespace redspot {
namespace detail {

/// std::atomic with copy semantics (relaxed load/store) so containers of
/// memo slots stay copyable — policies hold models by value in vectors.
/// Copying requires writer-exclusion quiescence, the same contract as
/// observe(); the orderings that matter are on load/store at use sites.
template <typename T>
class CopyableAtomic {
 public:
  CopyableAtomic() noexcept = default;
  CopyableAtomic(const CopyableAtomic& other) noexcept
      : v_(other.v_.load(std::memory_order_relaxed)) {}
  CopyableAtomic& operator=(const CopyableAtomic& other) noexcept {
    v_.store(other.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }

  T load(std::memory_order order) const noexcept { return v_.load(order); }
  void store(T val, std::memory_order order) noexcept { v_.store(val, order); }
  T fetch_add(T val, std::memory_order order) noexcept {
    return v_.fetch_add(val, order);
  }

 private:
  std::atomic<T> v_{};
};

}  // namespace detail

class IncrementalMarkovModel {
 public:
  explicit IncrementalMarkovModel(std::size_t max_states = 32,
                                  double smoothing = 0.02);

  /// Refits the model to `window`, sliding incrementally when possible.
  /// `window` may borrow storage freely: only its samples are read, during
  /// this call (plus the previous window's span, which must still be
  /// readable — true for views into a live zone trace).
  const MarkovModel& observe(const PriceView& window);

  /// The current model. Requires a prior observe().
  const MarkovModel& model() const;

  /// Memoized exact expected up-time on the current model; equals
  /// redspot::expected_uptime(model(), current_price, bid, cap) bit-for-bit.
  /// The memo is keyed on (start state, max alive state) — the only inputs
  /// the closed-form solve depends on — and survives slides that leave the
  /// counts net-unchanged.
  Duration expected_uptime(Money current_price, Money bid,
                           Duration cap = kDefaultUptimeCap);

  /// Concurrent-reader query path (one writer / many readers).
  ///
  /// Bit-identical to expected_uptime(), but const and safe to call from
  /// MANY reader threads concurrently: the memo slots are atomics, and
  /// two readers racing to fill the same slot store the same bits (the
  /// closed-form solve is a pure function of the model). Each reader
  /// supplies its own UptimeScratch.
  ///
  /// Epoch-snapshot contract (enforced, not just documented): readers and
  /// the single writer — observe() and the non-const expected_uptime() —
  /// must be separated by the caller (the serve registry uses the request
  /// batcher's per-key serialization; the TSan stress test a
  /// shared_mutex). A model epoch is immutable while readers hold it, so
  /// every answer is the exact answer of the epoch it read. Queries with
  /// a cap different from the memoized one compute unmemoized.
  Duration expected_uptime(Money current_price, Money bid,
                           UptimeScratch& scratch,
                           Duration cap = kDefaultUptimeCap) const;

  // Introspection for tests and benchmarks.
  std::uint64_t full_rebuilds() const { return full_rebuilds_; }
  std::uint64_t incremental_slides() const { return incremental_slides_; }
  std::uint64_t model_refreshes() const { return model_refreshes_; }
  std::uint64_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t memo_misses() const {
    return memo_misses_.load(std::memory_order_relaxed);
  }

 private:
  void rebuild_full(const PriceView& window);
  /// Attempts the incremental slide; false means "fall back to rebuild".
  bool try_slide(const PriceView& window);
  /// Unique-price mode: slide the integer transition counts.
  bool slide_unique(const PriceView& window, std::size_t shift);
  /// Quantile-binned mode: slide the sorted multiset, refit via the shared
  /// mapping pass.
  bool slide_binned(const PriceView& window, std::size_t shift);
  /// State index of an exact observed price, or SIZE_MAX when unseen.
  std::size_t state_index(Money price) const;
  void remember_window(const PriceView& window);
  /// Writer-side: grows the memo to fit the current model's state count.
  /// Must run after every model refresh — binned refits can yield more
  /// states than the last rebuild (quantile bins collapse on duplicates),
  /// and the atomic slot vectors cannot grow under concurrent readers.
  void grow_memo_for_model();

  std::size_t max_states_;
  double smoothing_;

  // Identity of the window the counts describe.
  bool valid_ = false;
  bool binned_ = false;  ///< quantile mode: slides via the sorted multiset
  const Money* data_ = nullptr;
  std::size_t size_ = 0;
  SimTime start_ = 0;
  Duration step_ = kPriceStep;

  // Exact state set (unique mode): ascending micro-dollar prices, aligned
  // with model_.state_prices.
  std::vector<std::int64_t> state_micros_;
  std::vector<std::int64_t> trans_counts_;  ///< n x n, row-major
  std::vector<std::int64_t> occupancy_;     ///< per-state sample count

  MarkovModel model_;

  // expected_uptime memo: n*n slots keyed start_state * n + alive_state,
  // epoch-invalidated so steady-state slides never touch the heap. Slots
  // are atomics so concurrent readers may race on fills (they store
  // identical bits); the slot protocol publishes the value before its
  // epoch (release) and checks the epoch before the value (acquire).
  // epoch_ and memo_cap_ are writer-only state: mutated by observe() /
  // the non-const expected_uptime(), which the epoch-snapshot contract
  // excludes from running concurrently with readers.
  mutable std::vector<detail::CopyableAtomic<Duration>> memo_;
  mutable std::vector<detail::CopyableAtomic<std::uint32_t>> memo_epoch_;
  std::uint32_t epoch_ = 0;
  Duration memo_cap_ = kDefaultUptimeCap;

  // Reusable scratch (persisted to keep the slide allocation-free).
  std::vector<std::int64_t> occ_scratch_;
  std::vector<std::uint32_t> removed_pairs_;
  std::vector<std::uint32_t> added_pairs_;
  std::vector<double> pi_scratch_;  ///< smoothing distribution for refits

  // Binned mode: the window's sample multiset as flat counting arrays —
  // bin_levels_ the distinct prices ascending, bin_counts_[i] the
  // multiplicity of bin_levels_[i], distinct_ == bin_levels_.size().
  // Slides edit the counts and expand them back into fit_.sorted per
  // refit; both are repopulated whenever rebuild_full runs.
  std::vector<double> bin_levels_;
  std::vector<std::int64_t> bin_counts_;

  // Shared fit buffers (fit_.sorted is the expanded multiset above in
  // binned mode, the full re-sort in a rebuild).
  detail::MarkovScratch fit_;
  std::size_t distinct_ = 0;
  UptimeScratch uptime_scratch_;

  std::uint64_t full_rebuilds_ = 0;
  std::uint64_t incremental_slides_ = 0;
  std::uint64_t model_refreshes_ = 0;
  mutable detail::CopyableAtomic<std::uint64_t> memo_hits_;
  mutable detail::CopyableAtomic<std::uint64_t> memo_misses_;
};

}  // namespace redspot
