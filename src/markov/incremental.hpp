// Sliding-window Markov model with incremental updates (decision path).
//
// Markov-based policies refit build_markov_model() over the trailing
// 2-day window at every decision, even though consecutive decisions see
// windows that differ by a handful of 5-minute samples. This class keeps
// the integer transition counts and occupancy of the current window and
// slides them — add the newest samples, evict the oldest — instead of
// re-sorting and re-counting 576 samples per decision.
//
// Invariants and triggers (DESIGN.md §10):
//   * The model is rebuilt from scratch only when the *state set* changes:
//     an appended sample introduces an unseen price, or an evicted sample
//     removes the last occurrence of one. Otherwise the state index map is
//     stable and counts slide in O(samples moved).
//   * Sliding is only attempted when the new window is a forward slide
//     over the SAME underlying storage (the zone trace outlives the run,
//     so evicted samples can still be read from the previous span). A
//     window over different storage, a backward move, or a sampling-step
//     change falls back to a full rebuild.
//   * Quantile-binned windows (distinct prices > max_states) keep the
//     window's sorted sample multiset up to date across slides (erase
//     evicted, insert appended) and re-run the shared mapping pass over it
//     — identical input, identical arithmetic, identical model — instead
//     of re-sorting the whole window. The model still refreshes on every
//     binned slide (bin means move with the window), but the O(n log n)
//     sort is gone from the per-decision path.
//   * The normalized matrix is re-finished only when the counts NET-change.
//     A constant-price slide removes and adds the same transition, leaving
//     counts — and therefore the model and the expected-uptime memo —
//     untouched. This is the steady state: no allocation, no FP work.
//
// Bit-identity: counts are integers, and detail::finish_markov_model
// reproduces build_markov_model's arithmetic from integer counts exactly,
// so model() always equals build_markov_model(window) bit-for-bit
// (property-tested in markov_test / decision_path_test).
#pragma once

#include <cstdint>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "markov/model.hpp"
#include "markov/uptime.hpp"
#include "trace/price_view.hpp"

namespace redspot {

class IncrementalMarkovModel {
 public:
  explicit IncrementalMarkovModel(std::size_t max_states = 32,
                                  double smoothing = 0.02);

  /// Refits the model to `window`, sliding incrementally when possible.
  /// `window` may borrow storage freely: only its samples are read, during
  /// this call (plus the previous window's span, which must still be
  /// readable — true for views into a live zone trace).
  const MarkovModel& observe(const PriceView& window);

  /// The current model. Requires a prior observe().
  const MarkovModel& model() const;

  /// Memoized exact expected up-time on the current model; equals
  /// redspot::expected_uptime(model(), current_price, bid, cap) bit-for-bit.
  /// The memo is keyed on (start state, max alive state) — the only inputs
  /// the closed-form solve depends on — and survives slides that leave the
  /// counts net-unchanged.
  Duration expected_uptime(Money current_price, Money bid,
                           Duration cap = kDefaultUptimeCap);

  // Introspection for tests and benchmarks.
  std::uint64_t full_rebuilds() const { return full_rebuilds_; }
  std::uint64_t incremental_slides() const { return incremental_slides_; }
  std::uint64_t model_refreshes() const { return model_refreshes_; }
  std::uint64_t memo_hits() const { return memo_hits_; }
  std::uint64_t memo_misses() const { return memo_misses_; }

 private:
  void rebuild_full(const PriceView& window);
  /// Attempts the incremental slide; false means "fall back to rebuild".
  bool try_slide(const PriceView& window);
  /// Unique-price mode: slide the integer transition counts.
  bool slide_unique(const PriceView& window, std::size_t shift);
  /// Quantile-binned mode: slide the sorted multiset, refit via the shared
  /// mapping pass.
  bool slide_binned(const PriceView& window, std::size_t shift);
  /// State index of an exact observed price, or SIZE_MAX when unseen.
  std::size_t state_index(Money price) const;
  void remember_window(const PriceView& window);

  std::size_t max_states_;
  double smoothing_;

  // Identity of the window the counts describe.
  bool valid_ = false;
  bool binned_ = false;  ///< quantile mode: slides via the sorted multiset
  const Money* data_ = nullptr;
  std::size_t size_ = 0;
  SimTime start_ = 0;
  Duration step_ = kPriceStep;

  // Exact state set (unique mode): ascending micro-dollar prices, aligned
  // with model_.state_prices.
  std::vector<std::int64_t> state_micros_;
  std::vector<std::int64_t> trans_counts_;  ///< n x n, row-major
  std::vector<std::int64_t> occupancy_;     ///< per-state sample count

  MarkovModel model_;

  // expected_uptime memo: n*n slots keyed start_state * n + alive_state,
  // epoch-invalidated so steady-state slides never touch the heap.
  std::vector<Duration> memo_;
  std::vector<std::uint32_t> memo_epoch_;
  std::uint32_t epoch_ = 0;
  Duration memo_cap_ = kDefaultUptimeCap;

  // Reusable scratch (persisted to keep the slide allocation-free).
  std::vector<std::int64_t> occ_scratch_;
  std::vector<std::uint32_t> removed_pairs_;
  std::vector<std::uint32_t> added_pairs_;

  // Shared fit buffers. In binned mode, fit_.sorted is the window's sample
  // multiset kept ascending across slides and distinct_ its unique count;
  // both are rebuilt from scratch whenever rebuild_full runs.
  detail::MarkovScratch fit_;
  std::size_t distinct_ = 0;
  UptimeScratch uptime_scratch_;

  std::uint64_t full_rebuilds_ = 0;
  std::uint64_t incremental_slides_ = 0;
  std::uint64_t model_refreshes_ = 0;
  std::uint64_t memo_hits_ = 0;
  std::uint64_t memo_misses_ = 0;
};

}  // namespace redspot
