// Expected zone up-time at a bid price (Appendix B, Equations 2-3).
//
// Starting from the current price state, mass evolves through the
// transition matrix; mass reaching a state whose price exceeds the bid is
// "terminated". The expected up-time is the mean absorption time of this
// substochastic chain, in chain steps, converted to seconds.
//
// Two implementations:
//   * expected_uptime_iterative — the paper's literal iteration: propagate
//     PROB, accumulate k x (mass dying at step k) until the estimate is
//     stable at seconds granularity (the paper's Th) or a step cap.
//   * expected_uptime — exact closed form via the absorbing-chain
//     fundamental matrix: t = (I - Q)^{-1} 1 restricted to alive states.
//     Identical in the limit, and O(alive_states^3) instead of
//     O(Th x states^2).
//
// Both clamp at `cap`: when the bid exceeds every price the chain can
// reach, the expected up-time is unbounded and the cap (default 30 days)
// stands in for "effectively forever".
#pragma once

#include <span>

#include "common/money.hpp"
#include "common/time.hpp"
#include "markov/model.hpp"

namespace redspot {

inline constexpr Duration kDefaultUptimeCap = 30 * kDay;

/// Reusable buffers for the closed-form solve. Policies call
/// expected_uptime at every decision point; a persistent scratch keeps the
/// per-call heap traffic at zero.
struct UptimeScratch {
  std::vector<double> i_minus_q;  ///< m x m, row-major
  std::vector<std::size_t> perm;
  std::vector<double> t;  ///< expected steps to absorption per alive state
};

/// Exact expected up-time starting from `current_price`, bidding `bid`.
/// Returns 0 when the current price already exceeds the bid.
Duration expected_uptime(const MarkovModel& model, Money current_price,
                         Money bid, Duration cap = kDefaultUptimeCap);

/// As expected_uptime, reusing `scratch` — bit-identical result, no
/// allocation once the scratch is warm.
Duration expected_uptime(const MarkovModel& model, Money current_price,
                         Money bid, Duration cap, UptimeScratch& scratch);

/// The paper's iterative estimator (Equations 2-3). `max_steps` bounds Th.
Duration expected_uptime_iterative(const MarkovModel& model,
                                   Money current_price, Money bid,
                                   std::size_t max_steps = 20000,
                                   Duration cap = kDefaultUptimeCap);

/// Combined expected up-time of independent zones: the sum of the
/// per-zone values (Section 4.2). Zones currently out-of-bid contribute 0.
Duration combined_expected_uptime(std::span<const Duration> per_zone);

}  // namespace redspot
