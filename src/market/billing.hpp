// Spot and on-demand billing ledger.
//
// The default rules implement the EC2 charging model of Section 2.1
// exactly:
//
//   * Hour-boundary pricing — each billing cycle is charged at the SPOT
//     price in effect at the cycle's start (not the bid), regardless of
//     in-cycle price movement below the bid.
//   * Partial-hour usage — a cycle cut short by EC2 (out-of-bid
//     termination) is free.
//   * User termination mid-cycle — charged the full hour (standard 2013
//     EC2 behaviour; this is what makes Large-bid's "manual termination
//     near the end of the hour" sensible).
//   * On-demand — fixed rate per started hour.
//
// Those assumptions are not laws of nature: EC2 switched to per-second
// billing (60-second minimum) in 2017 and stopped refunding interrupted
// partial hours for Linux spot. `BillingRules` captures the axes that
// changed so a `MarketRegime` (market/regime.hpp) can select them per
// run. Cycle anchors stay hourly under every rule set — the rate lock,
// the kCycleBoundary cadence, and Large-bid's boundary decisions are
// structural — only what a *partial* cycle costs changes:
//
//   * granularity kPerSecond: partial usage is prorated at the locked
//     rate (floor micro-dollars), with a per-instance minimum charge;
//   * refund kProviderChargesUsage: provider interruption bills the
//     partial cycle like a user stop under the active granularity;
//   * refund kFreeFirstHourOnInterrupt: interruption is free only while
//     the instance is younger than one hour (EC2's 2017-2021 hybrid).
//
// The ledger is a passive recorder: the engine reports lifecycle events
// (instance started / cycle completed / terminated) and queries totals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"

namespace redspot {

/// Why an instance stopped.
enum class TerminationCause {
  kOutOfBid,  ///< EC2 terminated: spot price moved above the bid
  kUser,      ///< we terminated: completion, reconfiguration, manual stop
};

/// How usage inside a billing cycle converts to a charge.
enum class BillingGranularity : std::uint8_t {
  kHourly,     ///< any started cycle bills the full locked hour
  kPerSecond,  ///< partial cycles prorate by the second (with a minimum)
};

/// What a provider-initiated (out-of-bid / rebalance) kill costs.
enum class RefundRule : std::uint8_t {
  kProviderForfeitsCycle,     ///< classic 2012: the partial cycle is free
  kProviderChargesUsage,      ///< interruption bills like a user stop
  kFreeFirstHourOnInterrupt,  ///< free only if the instance is < 1h old
};

/// The billing axes a MarketRegime selects. Defaults are classic 2012.
struct BillingRules {
  BillingGranularity granularity = BillingGranularity::kHourly;
  /// Per-instance minimum charge under kPerSecond (EC2: 60 s). Ignored
  /// under kHourly.
  Duration minimum = 0;
  RefundRule refund = RefundRule::kProviderForfeitsCycle;

  bool operator==(const BillingRules&) const = default;
};

/// One charge on the bill.
struct LineItem {
  enum class Kind {
    kSpotHour,          ///< a completed spot billing cycle
    kSpotUserPartial,   ///< user-terminated cycle, charged in full
    kOnDemandHour,      ///< a started on-demand hour
    kSpotUsage,         ///< per-second spot usage (partial cycle)
    kOnDemandUsage,     ///< per-second on-demand usage
  };
  Kind kind = Kind::kSpotHour;
  std::size_t zone = 0;      ///< zone index (0 for on-demand)
  SimTime cycle_start = 0;
  SimTime charged_at = 0;
  Money amount;
};

std::string to_string(LineItem::Kind kind);

/// True for the kinds that bill on-demand (vs spot) capacity.
inline bool is_on_demand(LineItem::Kind kind) {
  return kind == LineItem::Kind::kOnDemandHour ||
         kind == LineItem::Kind::kOnDemandUsage;
}

/// Exact proration of an hourly rate over `seconds` of usage: floor of
/// rate x seconds / 3600 in micro-dollars. Deterministic integer
/// arithmetic — no doubles anywhere near the bill.
inline Money prorate_hourly(Money rate, Duration seconds) {
  return Money::from_micros(rate.micros() * seconds / kHour);
}

/// Billing state for the instances of one experiment run.
class BillingLedger {
 public:
  /// Selects the rule set. Call before any usage is reported; defaults to
  /// classic 2012 rules.
  void set_rules(const BillingRules& rules) { rules_ = rules; }
  const BillingRules& rules() const { return rules_; }

  /// Reports a spot instance entering the running state in `zone` at `t`;
  /// `rate` is the zone's spot price at `t` (locks the first cycle's rate).
  void spot_started(std::size_t zone, SimTime t, Money rate);

  /// True when `zone` currently has an open (running) spot cycle.
  bool spot_running(std::size_t zone) const;

  /// When the zone's current billing cycle ends (start + 1 hour).
  /// Requires spot_running(zone).
  SimTime cycle_end(std::size_t zone) const;

  /// Completes the cycle ending at cycle_end(zone): charges the locked rate
  /// and opens the next cycle at `next_rate` (the spot price at that
  /// boundary). Requires spot_running(zone).
  void cycle_boundary(std::size_t zone, Money next_rate);

  /// Terminates the zone's instance at `t`. What the open partial cycle
  /// costs depends on the rules: classically, out-of-bid forfeits it and
  /// user termination charges it in full; per-second granularity prorates
  /// a user stop, and the refund rule decides provider kills.
  void spot_terminated(std::size_t zone, SimTime t, TerminationCause cause);

  /// Stops the zone exactly at its cycle boundary: charges the completed
  /// cycle (like cycle_boundary) but does not open a new one. The clean way
  /// to leave the market — used by Large-bid's manual stop and by Adaptive
  /// reconfigurations at hour ends.
  void spot_stopped_at_boundary(std::size_t zone);

  /// Charges on-demand usage of [start, start + used): one `rate` charge
  /// per started hour classically, or a single prorated usage item (with
  /// the per-instance minimum) under per-second granularity.
  void on_demand_usage(SimTime start, Duration used, Money rate);

  Money total() const { return total_; }
  Money spot_total() const { return spot_total_; }
  Money on_demand_total() const { return total_ - spot_total_; }
  const std::vector<LineItem>& items() const { return items_; }

 private:
  struct OpenCycle {
    bool open = false;
    SimTime start = 0;
    Money rate;
    /// When this zone's current instance first started (survives cycle
    /// boundaries) — anchors the per-second minimum and the first-hour
    /// refund window.
    SimTime instance_start = 0;
  };

  OpenCycle& cycle_for(std::size_t zone);
  const OpenCycle& cycle_for(std::size_t zone) const;
  void charge(LineItem item);
  /// Bills the open partial cycle [c.start, t) by the second, honouring
  /// the per-instance minimum, and emits nothing when the charge is zero.
  void charge_partial_per_second(std::size_t zone, OpenCycle& c, SimTime t);

  BillingRules rules_;
  std::vector<OpenCycle> cycles_;  // indexed by zone, grown on demand
  std::vector<LineItem> items_;
  Money total_;
  Money spot_total_;
};

}  // namespace redspot
