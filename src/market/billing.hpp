// Spot and on-demand billing ledger.
//
// Implements the EC2 charging rules of Section 2.1 exactly:
//
//   * Hour-boundary pricing — each billing cycle is charged at the SPOT
//     price in effect at the cycle's start (not the bid), regardless of
//     in-cycle price movement below the bid.
//   * Partial-hour usage — a cycle cut short by EC2 (out-of-bid
//     termination) is free.
//   * User termination mid-cycle — charged the full hour (standard 2013
//     EC2 behaviour; this is what makes Large-bid's "manual termination
//     near the end of the hour" sensible).
//   * On-demand — fixed rate per started hour.
//
// The ledger is a passive recorder: the engine reports lifecycle events
// (instance started / cycle completed / terminated) and queries totals.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"

namespace redspot {

/// Why an instance stopped.
enum class TerminationCause {
  kOutOfBid,  ///< EC2 terminated: spot price moved above the bid
  kUser,      ///< we terminated: completion, reconfiguration, manual stop
};

/// One charge on the bill.
struct LineItem {
  enum class Kind {
    kSpotHour,          ///< a completed spot billing cycle
    kSpotUserPartial,   ///< user-terminated cycle, charged in full
    kOnDemandHour,      ///< a started on-demand hour
  };
  Kind kind = Kind::kSpotHour;
  std::size_t zone = 0;      ///< zone index (0 for on-demand)
  SimTime cycle_start = 0;
  SimTime charged_at = 0;
  Money amount;
};

std::string to_string(LineItem::Kind kind);

/// Billing state for the instances of one experiment run.
class BillingLedger {
 public:
  /// Reports a spot instance entering the running state in `zone` at `t`;
  /// `rate` is the zone's spot price at `t` (locks the first cycle's rate).
  void spot_started(std::size_t zone, SimTime t, Money rate);

  /// True when `zone` currently has an open (running) spot cycle.
  bool spot_running(std::size_t zone) const;

  /// When the zone's current billing cycle ends (start + 1 hour).
  /// Requires spot_running(zone).
  SimTime cycle_end(std::size_t zone) const;

  /// Completes the cycle ending at cycle_end(zone): charges the locked rate
  /// and opens the next cycle at `next_rate` (the spot price at that
  /// boundary). Requires spot_running(zone).
  void cycle_boundary(std::size_t zone, Money next_rate);

  /// Terminates the zone's instance at `t`. Out-of-bid forfeits the open
  /// partial cycle; user termination charges it in full.
  void spot_terminated(std::size_t zone, SimTime t, TerminationCause cause);

  /// Stops the zone exactly at its cycle boundary: charges the completed
  /// cycle (like cycle_boundary) but does not open a new one. The clean way
  /// to leave the market — used by Large-bid's manual stop and by Adaptive
  /// reconfigurations at hour ends.
  void spot_stopped_at_boundary(std::size_t zone);

  /// Charges on-demand usage of [start, start + used): one `rate` charge
  /// per started hour.
  void on_demand_usage(SimTime start, Duration used, Money rate);

  Money total() const { return total_; }
  Money spot_total() const { return spot_total_; }
  Money on_demand_total() const { return total_ - spot_total_; }
  const std::vector<LineItem>& items() const { return items_; }

 private:
  struct OpenCycle {
    bool open = false;
    SimTime start = 0;
    Money rate;
  };

  OpenCycle& cycle_for(std::size_t zone);
  const OpenCycle& cycle_for(std::size_t zone) const;
  void charge(LineItem item);

  std::vector<OpenCycle> cycles_;  // indexed by zone, grown on demand
  std::vector<LineItem> items_;
  Money total_;
  Money spot_total_;
};

}  // namespace redspot
