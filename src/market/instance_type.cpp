#include "market/instance_type.hpp"

#include "common/check.hpp"

namespace redspot {

const InstanceType& cc2_instance() {
  static const InstanceType cc2{
      .api_name = "cc2.8xlarge",
      .description = "Cluster Compute Eight Extra Large",
      .on_demand_rate = Money::dollars(2.40),
      .vcpus = 32,
      .memory_gib = 60.5,
  };
  return cc2;
}

const std::vector<InstanceType>& instance_catalog() {
  static const std::vector<InstanceType> catalog{
      cc2_instance(),
      {"cr1.8xlarge", "High Memory Cluster Eight Extra Large",
       Money::dollars(3.50), 32, 244.0},
      {"cg1.4xlarge", "Cluster GPU Quadruple Extra Large",
       Money::dollars(2.10), 16, 22.5},
      {"m1.xlarge", "General purpose (I/O server class)",
       Money::dollars(0.48), 4, 15.0},
  };
  return catalog;
}

const InstanceType& find_instance_type(const std::string& api_name) {
  for (const InstanceType& t : instance_catalog()) {
    if (t.api_name == api_name) return t;
  }
  REDSPOT_CHECK_FAIL("unknown instance type: " << api_name);
}

}  // namespace redspot
