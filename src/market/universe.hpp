// Multi-type price universe (DESIGN.md §15).
//
// The classic engine prices one instance type across Z availability
// zones. A MarketRegime with a non-empty instance-type universe instead
// prices T types x Z zones as T*Z lanes over one joint stochastic
// process: each type replays the calibrated per-zone generator at its own
// price scale (a c5.9xlarge trades at half a c5.18xlarge), and the types'
// innovations are colored through the Cholesky factor of the regime's
// type-correlation matrix — capacity pressure that raises one type's
// price tends to raise its substitutes' too, which is exactly the
// correlation structure index-tracking policies exploit and redundancy
// arguments must survive.
//
// Construction: per step, draw T iid factor normals and color them with
// cholesky_lower(type_correlation); each lane's innovation is then
// sqrt(1-w^2) * own_noise + w * factor[type], with w fixed below, so
// lanes of types t and u correlate at ~ w^2 * C(t, u) while staying
// unit-variance. The per-type own streams are reseeded with a splitmix
// derivation so no two types share dwell or spike randomness. Everything
// is deterministic in (spec.seed, regime).
#pragma once

#include <cstddef>
#include <vector>

#include "market/regime.hpp"
#include "trace/synthetic.hpp"
#include "trace/zone_traces.hpp"

namespace redspot {

/// T*Z lanes of aligned prices plus the per-lane typing metadata policies
/// need to normalize across types (index tracking divides by lane_scale).
struct UniverseTraces {
  /// Lane order is type-major: lane(t, z) = t * zones_per_type + z. Lanes
  /// are named "<type api_name>/<zone name>".
  ZoneTraceSet traces;
  std::vector<double> lane_scale;      ///< per-lane InstanceTypeSpec scale
  std::vector<std::size_t> lane_type;  ///< per-lane index into regime.types
  std::size_t zones_per_type = 0;

  std::size_t num_types() const {
    return zones_per_type == 0 ? 0 : lane_scale.size() / zones_per_type;
  }
  std::size_t lane(std::size_t type, std::size_t zone) const {
    return type * zones_per_type + zone;
  }
};

/// Generates the T*Z-lane universe of `regime` (which must have a
/// non-empty type universe) from the single-type calibration in `base`.
/// An empty regime.type_correlation means independent types.
UniverseTraces generate_universe(const MarketRegime& regime,
                                 const SyntheticTraceSpec& base);

}  // namespace redspot
