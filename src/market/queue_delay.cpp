#include "market/queue_delay.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace redspot {

QueueDelayParams QueueDelayParams::fixed(Duration delay) {
  QueueDelayParams p;
  p.shift_seconds = static_cast<double>(delay);
  p.mu = 0.0;
  p.sigma = 0.0;
  p.min_delay = delay;
  p.max_delay = delay;
  return p;
}

void QueueDelayParams::validate() const {
  REDSPOT_CHECK_MSG(std::isfinite(shift_seconds) && shift_seconds >= 0.0,
                    "queue-delay shift must be >= 0, got " << shift_seconds);
  REDSPOT_CHECK_MSG(std::isfinite(mu), "queue-delay mu must be finite");
  REDSPOT_CHECK_MSG(std::isfinite(sigma) && sigma >= 0.0,
                    "queue-delay sigma must be >= 0, got " << sigma);
  REDSPOT_CHECK_MSG(min_delay >= 0,
                    "queue-delay minimum must be >= 0, got " << min_delay);
  REDSPOT_CHECK_MSG(min_delay <= max_delay,
                    "queue-delay clamp range inverted: [" << min_delay << ", "
                        << max_delay << "]");
}

QueueDelayModel::QueueDelayModel(QueueDelayParams params)
    : params_(params) {
  params_.validate();
}

Duration QueueDelayModel::sample(Rng& rng) const {
  double raw = params_.shift_seconds;
  if (params_.sigma > 0.0) {
    raw += rng.lognormal(params_.mu, params_.sigma);
  } else if (params_.mu != 0.0) {
    raw += std::exp(params_.mu);
  }
  const auto delay = static_cast<Duration>(std::llround(raw));
  return std::clamp(delay, params_.min_delay, params_.max_delay);
}

}  // namespace redspot
