#include "market/queue_delay.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace redspot {

QueueDelayParams QueueDelayParams::fixed(Duration delay) {
  QueueDelayParams p;
  p.shift_seconds = static_cast<double>(delay);
  p.mu = 0.0;
  p.sigma = 0.0;
  p.min_delay = delay;
  p.max_delay = delay;
  return p;
}

QueueDelayModel::QueueDelayModel(QueueDelayParams params)
    : params_(params) {
  REDSPOT_CHECK(params_.min_delay <= params_.max_delay);
  REDSPOT_CHECK(params_.sigma >= 0.0);
}

Duration QueueDelayModel::sample(Rng& rng) const {
  double raw = params_.shift_seconds;
  if (params_.sigma > 0.0) {
    raw += rng.lognormal(params_.mu, params_.sigma);
  } else if (params_.mu != 0.0) {
    raw += std::exp(params_.mu);
  }
  const auto delay = static_cast<Duration>(std::llround(raw));
  return std::clamp(delay, params_.min_delay, params_.max_delay);
}

}  // namespace redspot
