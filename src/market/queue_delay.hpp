// Spot-instance acquisition (queuing) delay.
//
// Section 5: the authors probed the spot market twice daily for two months
// and measured the delay from spot-request submission to SSH-reachable
// instance: mean 299.6 s, best case 143 s, worst case 880 s. We model the
// delay as a shifted log-normal clamped to the observed range, calibrated
// so the mean matches:
//
//   delay = clamp(140 + LogNormal(mu = 4.734, sigma = 0.826), 143, 880)
//
// E[LogNormal] = exp(mu + sigma^2/2) ~ 160 s, so the mean is ~300 s, and
// the 1-in-120 upper tail reaches the ~880 s worst case.
#pragma once

#include "common/random.hpp"
#include "common/time.hpp"

namespace redspot {

/// Parameters of the shifted, clamped log-normal delay model.
struct QueueDelayParams {
  double shift_seconds = 140.0;
  double mu = 4.734;
  double sigma = 0.826;
  Duration min_delay = 143;
  Duration max_delay = 880;

  /// Calibration matching the paper's measurement study.
  static QueueDelayParams paper_calibrated() { return {}; }

  /// Degenerate model with a fixed delay (useful in unit tests and for
  /// sensitivity ablations).
  static QueueDelayParams fixed(Duration delay);

  /// Throws CheckFailure on malformed parameters. sigma == 0 is legal
  /// (degenerate/fixed model); negative delays or an inverted clamp
  /// range are not.
  void validate() const;
};

/// Samples spot-instance acquisition delays.
class QueueDelayModel {
 public:
  explicit QueueDelayModel(QueueDelayParams params = {});

  /// One acquisition delay, in seconds.
  Duration sample(Rng& rng) const;

  const QueueDelayParams& params() const { return params_; }

 private:
  QueueDelayParams params_;
};

}  // namespace redspot
