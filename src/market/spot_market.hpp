// Spot-market facade.
//
// Bundles everything the scheduling engine observes about EC2: per-zone
// spot prices (a trace window), the on-demand rate of the instance type,
// and the acquisition-delay model. The engine interacts with prices only
// through this class, keeping the trace representation swappable.
#pragma once

#include <cstddef>

#include "common/money.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "market/instance_type.hpp"
#include "market/queue_delay.hpp"
#include "trace/zone_traces.hpp"

namespace redspot {

class SpotMarket {
 public:
  /// `traces` must cover every instant the engine will query.
  SpotMarket(ZoneTraceSet traces, InstanceType instance_type,
             QueueDelayModel delay_model);

  std::size_t num_zones() const { return traces_.num_zones(); }

  /// Spot price of `zone` at `t`.
  Money spot_price(std::size_t zone, SimTime t) const {
    return traces_.price(zone, t);
  }

  /// True when a bid of `bid` keeps (or would get) an instance in `zone`:
  /// bid >= spot price (Section 2.3).
  bool zone_up(std::size_t zone, SimTime t, Money bid) const {
    return spot_price(zone, t) <= bid;
  }

  /// Next instant > t at which any zone's price changes; kNever if prices
  /// are constant for the rest of the trace.
  SimTime next_price_change(SimTime t) const;

  /// Earliest queryable instant.
  SimTime trace_start() const { return traces_.start(); }
  /// One past the last queryable instant.
  SimTime trace_end() const { return traces_.end(); }

  /// Acquisition delay for a fresh spot request.
  Duration sample_queue_delay(Rng& rng) const {
    return delay_model_.sample(rng);
  }

  Money on_demand_rate() const { return instance_type_.on_demand_rate; }
  const InstanceType& instance_type() const { return instance_type_; }
  const ZoneTraceSet& traces() const { return traces_; }
  const QueueDelayModel& delay_model() const { return delay_model_; }

 private:
  ZoneTraceSet traces_;
  InstanceType instance_type_;
  QueueDelayModel delay_model_;
};

}  // namespace redspot
