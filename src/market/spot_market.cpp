#include "market/spot_market.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

SpotMarket::SpotMarket(ZoneTraceSet traces, InstanceType instance_type,
                       QueueDelayModel delay_model)
    : traces_(std::move(traces)),
      instance_type_(std::move(instance_type)),
      delay_model_(delay_model) {
  REDSPOT_CHECK(traces_.num_zones() > 0);
  REDSPOT_CHECK(instance_type_.on_demand_rate > Money());
}

SimTime SpotMarket::next_price_change(SimTime t) const {
  SimTime next = kNever;
  for (std::size_t z = 0; z < traces_.num_zones(); ++z)
    next = std::min(next, traces_.zone(z).next_change(t));
  return next;
}

}  // namespace redspot
