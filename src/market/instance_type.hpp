// EC2 instance types.
//
// The paper runs exclusively on Cluster Compute Eight Extra Large (CC2)
// instances — "we use the spot market to run only CC2 instances and ignore
// other inferior clusters" (Section 2.3) — billed at $2.40/hr on-demand.
// Other 2013-era HPC-ish types are listed for the examples and ablations.
#pragma once

#include <string>
#include <vector>

#include "common/money.hpp"

namespace redspot {

struct InstanceType {
  std::string api_name;     ///< e.g. "cc2.8xlarge"
  std::string description;
  Money on_demand_rate;     ///< $/hour, fixed (Section 2.1)
  int vcpus = 0;
  double memory_gib = 0.0;
};

/// The paper's instance: cc2.8xlarge at $2.40/hr.
const InstanceType& cc2_instance();

/// 2013-era catalog (for examples; the evaluation uses only CC2).
const std::vector<InstanceType>& instance_catalog();

/// Looks up a type by API name; throws CheckFailure when unknown.
const InstanceType& find_instance_type(const std::string& api_name);

}  // namespace redspot
