#include "market/regime.hpp"

#include "common/check.hpp"

namespace redspot {

MarketRegime MarketRegime::classic_2012() { return MarketRegime{}; }

MarketRegime MarketRegime::per_second() {
  MarketRegime r;
  r.name = "per-second";
  r.billing.granularity = BillingGranularity::kPerSecond;
  r.billing.minimum = kMinute;
  r.billing.refund = RefundRule::kProviderChargesUsage;
  return r;
}

MarketRegime MarketRegime::rebalance() {
  MarketRegime r;
  r.name = "rebalance";
  r.rebalance_notice = 2 * kMinute;
  return r;
}

MarketRegime MarketRegime::modern_multi() {
  MarketRegime r = per_second();
  r.name = "modern-multi";
  r.rebalance_notice = 2 * kMinute;
  // Three 2017-era compute-ish types at distinct price levels. The
  // correlation matrix is symmetric positive definite with unit diagonal:
  // large types co-move strongly (shared datacenter demand), the small
  // type more loosely.
  r.types = {{"c5.18xlarge", 1.0},
             {"c5.9xlarge", 0.5},
             {"c5.4xlarge", 0.25}};
  r.type_correlation = {{1.0, 0.8, 0.5},
                        {0.8, 1.0, 0.6},
                        {0.5, 0.6, 1.0}};
  return r;
}

const MarketRegime& MarketRegime::classic() {
  static const MarketRegime kClassic = classic_2012();
  return kClassic;
}

const std::vector<MarketRegime>& regime_catalog() {
  static const std::vector<MarketRegime> kCatalog = {
      MarketRegime::classic_2012(), MarketRegime::per_second(),
      MarketRegime::rebalance(), MarketRegime::modern_multi()};
  return kCatalog;
}

const MarketRegime& regime_by_name(const std::string& name) {
  for (const MarketRegime& r : regime_catalog())
    if (r.name == name) return r;
  REDSPOT_CHECK_MSG(false, "unknown market regime: " << name);
  return regime_catalog().front();  // unreachable
}

void hash_regime(HashStream& h, const MarketRegime& regime) {
  h.str(regime.name);
  h.u64(static_cast<std::uint64_t>(regime.billing.granularity));
  h.i64(regime.billing.minimum);
  h.u64(static_cast<std::uint64_t>(regime.billing.refund));
  h.i64(regime.rebalance_notice);
  h.u64(regime.types.size());
  for (const InstanceTypeSpec& t : regime.types) {
    h.str(t.api_name);
    h.f64(t.price_scale);
  }
  h.u64(regime.type_correlation.size());
  for (const auto& row : regime.type_correlation) {
    h.u64(row.size());
    for (double v : row) h.f64(v);
  }
}

std::uint64_t regime_fingerprint(const MarketRegime& regime) {
  HashStream h;
  h.str("market-regime-v1");
  hash_regime(h, regime);
  return h.digest();
}

}  // namespace redspot
