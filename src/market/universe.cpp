#include "market/universe.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/random.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "trace/calendar.hpp"

namespace redspot {

namespace {

/// Weight of the cross-type factor in each lane's innovation. Lanes of
/// types t, u end up correlated at ~ w^2 * C(t, u): strong enough for the
/// VAR residual analysis to resolve the regime's correlation matrix,
/// weak enough that each lane keeps most of its own variance.
constexpr double kTypeFactorWeight = 0.6;

/// Derives type t's generator seed so no two types share dwell or spike
/// streams (generate_traces keys its streams on the spec seed alone).
std::uint64_t type_seed(std::uint64_t seed, std::size_t t) {
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (t + 1));
  return splitmix64(state);
}

}  // namespace

UniverseTraces generate_universe(const MarketRegime& regime,
                                 const SyntheticTraceSpec& base) {
  const std::size_t num_types = regime.types.size();
  REDSPOT_CHECK_MSG(num_types > 0, "regime has no instance-type universe");
  REDSPOT_CHECK(base.num_zones > 0 && !base.params.empty());

  // Step count of the base span (same arithmetic as generate_traces).
  SimTime span = 0;
  for (std::size_t m = 0; m < base.params.size(); ++m)
    span += (m < kTraceMonths ? days_in_month(m) : 30) * kDay;
  const auto num_steps = static_cast<std::size_t>(span / base.step);

  Matrix corr;
  if (regime.type_correlation.empty()) {
    corr = Matrix::identity(num_types);
  } else {
    REDSPOT_CHECK_MSG(regime.type_correlation.size() == num_types,
                      "type_correlation does not match the type count");
    corr = Matrix(num_types, num_types);
    for (std::size_t i = 0; i < num_types; ++i) {
      REDSPOT_CHECK(regime.type_correlation[i].size() == num_types);
      for (std::size_t j = 0; j < num_types; ++j)
        corr(i, j) = regime.type_correlation[i][j];
    }
  }
  const Matrix chol = cholesky_lower(corr);

  // One correlated factor vector per step: factor[t][i] = (L * raw_i)[t].
  Rng factor_rng(base.seed, /*stream=*/0xFAC708);
  std::vector<std::vector<double>> factor(
      num_types, std::vector<double>(num_steps));
  std::vector<double> raw(num_types);
  for (std::size_t i = 0; i < num_steps; ++i) {
    for (std::size_t t = 0; t < num_types; ++t) raw[t] = factor_rng.normal();
    for (std::size_t t = 0; t < num_types; ++t) {
      double g = 0.0;
      for (std::size_t j = 0; j <= t; ++j) g += chol(t, j) * raw[j];
      factor[t][i] = g;
    }
  }

  const double own_weight =
      std::sqrt(1.0 - kTypeFactorWeight * kTypeFactorWeight);

  UniverseTraces out;
  out.zones_per_type = base.num_zones;
  std::vector<std::string> names;
  std::vector<PriceSeries> series;
  names.reserve(num_types * base.num_zones);
  series.reserve(num_types * base.num_zones);

  for (std::size_t t = 0; t < num_types; ++t) {
    const InstanceTypeSpec& type = regime.types[t];
    SyntheticTraceSpec spec = scaled_spec(base, type.price_scale);
    spec.seed = type_seed(base.seed, t);

    std::vector<std::vector<double>> innovations(
        base.num_zones, std::vector<double>(num_steps));
    for (std::size_t z = 0; z < base.num_zones; ++z) {
      Rng own(spec.seed, /*stream=*/0x10000 + z);
      for (std::size_t i = 0; i < num_steps; ++i)
        innovations[z][i] =
            own_weight * own.normal() + kTypeFactorWeight * factor[t][i];
    }
    spec.innovation_override = &innovations;

    ZoneTraceSet set = generate_traces(spec);
    for (std::size_t z = 0; z < base.num_zones; ++z) {
      names.push_back(type.api_name + "/" + set.zone_name(z));
      series.push_back(set.zone(z));
      out.lane_scale.push_back(type.price_scale);
      out.lane_type.push_back(t);
    }
  }
  out.traces = ZoneTraceSet(std::move(names), std::move(series));
  return out;
}

}  // namespace redspot
