// Market regimes: the pluggable rule set for "which cloud are we on".
//
// The paper's evaluation assumes the EC2 of 2012: hourly billing with the
// interrupted partial hour refunded, no warning before an out-of-bid
// kill, and a single instance type whose zones move independently. None
// of those survived: EC2 bills per second (60 s minimum) since 2017,
// stopped refunding interrupted partials, sends a 2-minute capacity
// rebalance / interruption notice, and modern fleets span many instance
// types whose prices co-move. A MarketRegime bundles those axes so the
// engine, the policies, and the sweep/ensemble cache keys can treat
// "which market" as configuration instead of a fork (DESIGN.md §15).
//
// The default-constructed regime is bit-identical to the classic engine:
// every regime field is threaded through the stack such that the classic
// values reproduce the pre-regime behaviour exactly (the PR-5 oracle
// suite and the md5-gated figure reproductions pin this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/money.hpp"
#include "common/time.hpp"
#include "market/billing.hpp"

namespace redspot {

/// One instance type in a regime's universe. `price_scale` is the type's
/// price level relative to the paper's cc2.8xlarge baseline: a type at
/// scale 0.5 trades at half the price (spot and on-demand) with the same
/// dynamics. Normalized prices (price / scale) are what cross-type
/// policies like index_track compare.
struct InstanceTypeSpec {
  std::string api_name;
  double price_scale = 1.0;

  bool operator==(const InstanceTypeSpec&) const = default;
};

/// The market rule set for one run. Value type; compare with == for the
/// batching homogeneity gate.
struct MarketRegime {
  /// Catalog name ("classic-2012", "per-second", ...); also the knob the
  /// CLI / head-to-head harness selects regimes by.
  std::string name = "classic-2012";

  BillingRules billing;

  /// Lead time of the capacity-rebalance warning before a provider kill
  /// (EC2: 120 s). Zero means kills land unannounced, as in 2012. When
  /// positive, an out-of-bid price tick delivers a kRebalanceNotice event
  /// and moves the zone to kRebalanceWarned for the lead time instead of
  /// terminating on the spot. Mutually exclusive with the Appendix-A
  /// EngineOptions::termination_notice ablation knob.
  Duration rebalance_notice = 0;

  /// Instance-type universe. Empty means the paper's single-type market.
  /// With k types, a k-zone trace set fans out to k x zones lanes whose
  /// price processes share innovations per `type_correlation`
  /// (market/universe.hpp builds the fan-out).
  std::vector<InstanceTypeSpec> types;

  /// Cross-type innovation correlation (k x k, symmetric positive
  /// definite, unit diagonal). Row/column order matches `types`. Empty
  /// with empty `types`.
  std::vector<std::vector<double>> type_correlation;

  bool operator==(const MarketRegime&) const = default;

  /// Named constructors — the three regimes of the head-to-head matrix
  /// plus the multi-type showcase.
  static MarketRegime classic_2012();   ///< the paper's market (default)
  static MarketRegime per_second();     ///< per-second billing, no refund
  static MarketRegime rebalance();      ///< classic billing + 2-min notice
  static MarketRegime modern_multi();   ///< per-second + notice + 3 types

  /// Shared immutable classic instance (for defaulted references).
  static const MarketRegime& classic();
};

/// All named regimes, classic first.
const std::vector<MarketRegime>& regime_catalog();

/// Looks up a catalog regime by name; throws CheckFailure when unknown.
const MarketRegime& regime_by_name(const std::string& name);

/// Folds every regime field into `h` (order-sensitive). Part of
/// hash_engine_options, hence of every sweep/journal/ensemble key.
void hash_regime(HashStream& h, const MarketRegime& regime);

/// Convenience: the 64-bit fingerprint of a regime alone (serve-plane
/// ModelSpec embeds this rather than the full struct).
std::uint64_t regime_fingerprint(const MarketRegime& regime);

}  // namespace redspot
