#include "market/billing.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

std::string to_string(LineItem::Kind kind) {
  switch (kind) {
    case LineItem::Kind::kSpotHour:
      return "spot-hour";
    case LineItem::Kind::kSpotUserPartial:
      return "spot-user-partial";
    case LineItem::Kind::kOnDemandHour:
      return "on-demand-hour";
    case LineItem::Kind::kSpotUsage:
      return "spot-usage";
    case LineItem::Kind::kOnDemandUsage:
      return "on-demand-usage";
  }
  return "?";
}

BillingLedger::OpenCycle& BillingLedger::cycle_for(std::size_t zone) {
  if (zone >= cycles_.size()) cycles_.resize(zone + 1);
  return cycles_[zone];
}

const BillingLedger::OpenCycle& BillingLedger::cycle_for(
    std::size_t zone) const {
  REDSPOT_CHECK(zone < cycles_.size());
  return cycles_[zone];
}

void BillingLedger::charge(LineItem item) {
  total_ += item.amount;
  if (!is_on_demand(item.kind)) spot_total_ += item.amount;
  items_.push_back(item);
}

void BillingLedger::spot_started(std::size_t zone, SimTime t, Money rate) {
  OpenCycle& c = cycle_for(zone);
  REDSPOT_CHECK_MSG(!c.open, "zone " << zone << " already running");
  REDSPOT_CHECK(rate >= Money());
  c = OpenCycle{true, t, rate, t};
}

bool BillingLedger::spot_running(std::size_t zone) const {
  return zone < cycles_.size() && cycles_[zone].open;
}

SimTime BillingLedger::cycle_end(std::size_t zone) const {
  const OpenCycle& c = cycle_for(zone);
  REDSPOT_CHECK(c.open);
  return c.start + kHour;
}

void BillingLedger::cycle_boundary(std::size_t zone, Money next_rate) {
  OpenCycle& c = cycle_for(zone);
  REDSPOT_CHECK(c.open);
  const SimTime boundary = c.start + kHour;
  charge(LineItem{LineItem::Kind::kSpotHour, zone, c.start, boundary,
                  c.rate});
  c = OpenCycle{true, boundary, next_rate, c.instance_start};
}

void BillingLedger::charge_partial_per_second(std::size_t zone, OpenCycle& c,
                                              SimTime t) {
  // Seconds already billed for this instance (all prior full cycles), so
  // the minimum is charged at most once per instance.
  const Duration prior = c.start - c.instance_start;
  const Duration used = t - c.start;
  const Duration owed =
      std::clamp<Duration>(std::max(used, rules_.minimum - prior), 0, kHour);
  if (owed == 0) return;
  charge(LineItem{LineItem::Kind::kSpotUsage, zone, c.start, t,
                  prorate_hourly(c.rate, owed)});
}

void BillingLedger::spot_terminated(std::size_t zone, SimTime t,
                                    TerminationCause cause) {
  OpenCycle& c = cycle_for(zone);
  REDSPOT_CHECK(c.open);
  REDSPOT_CHECK_MSG(t >= c.start && t <= c.start + kHour,
                    "termination outside the open cycle");
  bool billable = cause == TerminationCause::kUser;
  if (!billable) {
    // Provider kill: classic 2012 forfeits the partial cycle ("Partial-hour
    // resource usage due to abrupt termination by EC2 is not charged to the
    // user"); later regimes narrowed or removed the refund.
    switch (rules_.refund) {
      case RefundRule::kProviderForfeitsCycle:
        break;
      case RefundRule::kProviderChargesUsage:
        billable = true;
        break;
      case RefundRule::kFreeFirstHourOnInterrupt:
        billable = t - c.instance_start >= kHour;
        break;
    }
  }
  if (billable) {
    if (rules_.granularity == BillingGranularity::kHourly) {
      // A started hour pays in full (Section 2.1).
      charge(LineItem{LineItem::Kind::kSpotUserPartial, zone, c.start, t,
                      c.rate});
    } else {
      charge_partial_per_second(zone, c, t);
    }
  }
  c.open = false;
}

void BillingLedger::spot_stopped_at_boundary(std::size_t zone) {
  OpenCycle& c = cycle_for(zone);
  REDSPOT_CHECK(c.open);
  const SimTime boundary = c.start + kHour;
  charge(LineItem{LineItem::Kind::kSpotHour, zone, c.start, boundary,
                  c.rate});
  c.open = false;
}

void BillingLedger::on_demand_usage(SimTime start, Duration used,
                                    Money rate) {
  REDSPOT_CHECK(used > 0);
  if (rules_.granularity == BillingGranularity::kPerSecond) {
    const Duration owed = std::max(used, rules_.minimum);
    charge(LineItem{LineItem::Kind::kOnDemandUsage, 0, start, start + used,
                    prorate_hourly(rate, owed)});
    return;
  }
  const std::int64_t hours = started_hours(used);
  for (std::int64_t h = 0; h < hours; ++h) {
    charge(LineItem{LineItem::Kind::kOnDemandHour, 0, start + h * kHour,
                    start + used, rate});
  }
}

}  // namespace redspot
