#include "app/ensemble_cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace redspot {

namespace {

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "ensemble options: %s\n", msg.c_str());
  std::exit(2);
}

std::vector<std::size_t> parse_zones(const std::string& s) {
  std::vector<std::size_t> zones;
  std::size_t pos = 0;
  while (pos < s.size()) {
    zones.push_back(std::strtoull(s.c_str() + pos, nullptr, 10));
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (zones.empty()) usage("bad --zones");
  return zones;
}

}  // namespace

EnsembleCliArgs parse_ensemble_args(int argc, char** argv,
                                    std::vector<std::string>* extra) {
  EnsembleCliArgs a;
  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string opt = argv[i];
    if (opt == "--window") {
      const std::string v = need(i++);
      if (v == "low") {
        a.window = VolatilityWindow::kLow;
      } else if (v == "high") {
        a.window = VolatilityWindow::kHigh;
      } else {
        usage("--window must be low or high");
      }
    } else if (opt == "--slack") {
      a.slack = std::strtod(need(i++), nullptr);
    } else if (opt == "--tc") {
      a.tc = std::strtoll(need(i++), nullptr, 10);
    } else if (opt == "--policy") {
      a.policy = need(i++);
    } else if (opt == "--bid") {
      a.bid = Money::parse(need(i++));
    } else if (opt == "--threshold") {
      a.threshold = Money::parse(need(i++));
    } else if (opt == "--zones") {
      a.zones = parse_zones(need(i++));
    } else if (opt == "--seed") {
      a.seed = std::strtoull(need(i++), nullptr, 10);
    } else if (opt == "--notice") {
      a.notice = std::strtoll(need(i++), nullptr, 10);
    } else if (opt == "--replications") {
      a.replications = std::strtoull(need(i++), nullptr, 10);
    } else if (opt == "--shards") {
      a.shards = std::strtoull(need(i++), nullptr, 10);
    } else if (opt == "--threads") {
      a.threads = std::strtoull(need(i++), nullptr, 10);
    } else if (opt == "--no-cache") {
      a.no_cache = true;
    } else if (opt == "--journal") {
      a.journal_dir = need(i++);
    } else if (extra != nullptr) {
      // Caller-specific option: hand it (and, conservatively, its value
      // if one follows that is not itself an option) back verbatim.
      extra->push_back(opt);
      if (i + 1 < argc && argv[i + 1][0] != '-') extra->push_back(argv[++i]);
    } else {
      usage("unknown option " + opt);
    }
  }
  return a;
}

EnsembleSpec make_ensemble_spec(const EnsembleCliArgs& args) {
  EnsembleSpec spec;
  spec.window = args.window;
  spec.slack_fraction = args.slack;
  spec.checkpoint_cost = args.tc;
  spec.seed = args.seed;
  spec.replications = args.replications;
  spec.num_shards = args.shards;
  spec.use_cache = !args.no_cache;
  spec.engine.termination_notice = args.notice;

  EnsembleConfig config;
  if (args.policy == "adaptive") {
    config.kind = EnsembleConfig::Kind::kAdaptive;
  } else if (args.policy == "large-bid") {
    config.kind = EnsembleConfig::Kind::kLargeBid;
    config.threshold = args.threshold;
    config.zones = args.zones;
  } else {
    config.kind = EnsembleConfig::Kind::kFixedPolicy;
    config.bid = args.bid;
    config.zones = args.zones;
    bool known = false;
    for (PolicyKind kind :
         {PolicyKind::kPeriodic, PolicyKind::kMarkovDaly,
          PolicyKind::kRisingEdge, PolicyKind::kThreshold}) {
      if (args.policy == to_string(kind)) {
        config.policy = kind;
        known = true;
      }
    }
    if (!known) usage("unknown policy " + args.policy);
  }
  spec.configs.push_back(config);
  spec.validate();
  return spec;
}

}  // namespace redspot
