// Shared command-line parsing for ensemble-mode front ends.
//
// `redspot-sim ensemble` and both `redspot-fabric` subcommands must build
// the *same* EnsembleSpec from the same flags — the fabric's spec-hash
// handshake rejects any divergence, so the option-to-spec mapping lives
// here once instead of drifting per binary.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ensemble/spec.hpp"

namespace redspot {

struct EnsembleCliArgs {
  // Spec-shaping options (fingerprinted via EnsembleSpec::spec_hash).
  VolatilityWindow window = VolatilityWindow::kHigh;
  double slack = 0.15;
  Duration tc = 300;
  std::string policy = "adaptive";
  Money bid = Money::cents(81);
  Money threshold = Money::cents(81);
  std::vector<std::size_t> zones{0};
  std::uint64_t seed = 42;
  Duration notice = 0;
  std::size_t replications = 1000;
  std::size_t shards = 64;
  // Execution options (not part of the spec).
  std::size_t threads = 0;
  bool no_cache = false;
  std::string journal_dir;
};

/// Consumes every recognized ensemble option from argv (argv[0] is skipped
/// as the program/subcommand name). Unrecognized options are appended to
/// *extra for the caller to handle; pass nullptr to make them fatal.
/// Exits with code 2 and a usage message on malformed input.
EnsembleCliArgs parse_ensemble_args(int argc, char** argv,
                                    std::vector<std::string>* extra);

/// Builds the validated, fingerprintable spec the args describe.
/// Exits with code 2 on an unknown policy name.
EnsembleSpec make_ensemble_spec(const EnsembleCliArgs& args);

}  // namespace redspot
