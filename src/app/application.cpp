#include "app/application.hpp"

#include "common/check.hpp"

namespace redspot {

Duration iteration_aligned(const AppModel& app, Duration raw) {
  REDSPOT_CHECK(app.iteration_time > 0);
  REDSPOT_CHECK(raw >= 0);
  return raw - (raw % app.iteration_time);
}

const AppPreset& weather_preset() {
  static const AppPreset preset{
      .model = AppModel{"weather-forecast", 20 * kHour, 30, 128},
      .costs = CheckpointCosts{300, 300},
      .description =
          "20 h regional forecast that must publish before the evening "
          "newscast — the paper's motivating deadline scenario"};
  return preset;
}

const AppPreset& cfd_preset() {
  static const AppPreset preset{
      .model = AppModel{"cfd-solver", 20 * kHour, 120, 256},
      .costs = costs_from_io(/*image_gib=*/180.0,
                             /*bandwidth_gib_per_s=*/0.25,
                             /*base_overhead=*/180),
      .description =
          "implicit CFD solve with a ~180 GiB working set; checkpoints are "
          "expensive (~900 s), the paper's high-t_c regime"};
  return preset;
}

const AppPreset& montecarlo_preset() {
  static const AppPreset preset{
      .model = AppModel{"monte-carlo", 20 * kHour, 5, 64},
      .costs = CheckpointCosts{60, 60},
      .description =
          "embarrassingly parallel Monte Carlo sweep with tiny state; "
          "cheap checkpoints favour aggressive spot usage"};
  return preset;
}

}  // namespace redspot
