// Application model.
//
// The scheduler sees an HPC application as the paper's system model does
// (Section 2.3): a fixed problem size on a fixed number of tasks, needing C
// seconds of uninterrupted compute, reporting progress at iteration
// boundaries (the paper suggests MPI_Pcontrol). Progress is the amount of
// completed compute; a checkpoint can only capture whole iterations.
#pragma once

#include <string>

#include "ckpt/cost_model.hpp"
#include "common/time.hpp"

namespace redspot {

/// A tightly coupled iterative application.
struct AppModel {
  std::string name = "app";
  /// C: uninterrupted execution time on the chosen node count (Section 2.3).
  Duration total_compute = 20 * kHour;
  /// Progress commits at iteration granularity; 1 s approximates the
  /// continuous model the paper's simulation uses.
  Duration iteration_time = 1;
  /// Number of MPI tasks (informational; cost is reported per instance).
  int num_tasks = 64;

  /// The paper's simulated experiment: 20 hours of compute (Section 5).
  static AppModel paper_default() {
    return AppModel{"paper-20h", 20 * kHour, 1, 64};
  }
};

/// Largest iteration-aligned progress not exceeding `raw` — what a
/// checkpoint taken at raw progress actually captures.
Duration iteration_aligned(const AppModel& app, Duration raw);

/// Catalog of example applications for the examples/ binaries, with
/// checkpoint costs derived from their working sets (NAS-class-inspired;
/// the evaluation itself uses the paper's fixed 300 s / 900 s costs).
struct AppPreset {
  AppModel model;
  CheckpointCosts costs;
  std::string description;
};

const AppPreset& weather_preset();   ///< deadline-driven forecast run
const AppPreset& cfd_preset();       ///< large-working-set CFD solve
const AppPreset& montecarlo_preset();///< tiny-state Monte Carlo sweep

}  // namespace redspot
