// Policy-zoo head-to-head harness (DESIGN.md §15): every policy of the
// zoo against every market regime of the catalog, on one scenario, with
// bootstrap CIs — the repo's flagship comparison table.
//
// Each (regime, policy) cell is an ordinary journaled sweep: the cell's
// journal key already contains the regime because hash_engine_options
// folds in the regime fingerprint, so a single RunJournal makes the whole
// matrix resumable chunk-by-chunk exactly like every other sweep. Costs
// aggregate into a mean with a Poisson-bootstrap CI and a deadline-miss
// rate with a Wilson CI; unlike the figure benches, a missed deadline is
// a *data point* here (the on-demand switchover cost shows up in the
// mean), not an assertion failure — regimes are allowed to change how
// often policies get cornered.
//
// Roster (9 rows): the paper's four fixed policies run with full
// redundancy (N = all zones), the two zoo entries (randomized-bid with
// its seeded draw over [price floor, on-demand]; index-track over the
// zone set), large-bid, Adaptive, and the on-demand baseline as the
// anchor row.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "market/regime.hpp"
#include "market/spot_market.hpp"

namespace redspot {

struct HeadToHeadOptions {
  Scenario scenario;
  /// Regimes to run (columns of the matrix); defaults to the catalog.
  std::vector<MarketRegime> regimes;
  /// Bid for the fixed policies and large-bid's threshold L.
  Money bid = Money::cents(81);
  /// Floor of randomized-bid's draw interval (the draw's ceiling is the
  /// market's on-demand rate).
  Money bid_floor = Money::cents(27);
  /// Seeds the randomized-bid draw and the per-cell bootstrap streams.
  std::uint64_t seed = 42;
  double ci_level = 0.95;
  std::size_t bootstrap_replicates = 200;
  /// Non-null makes every cell's sweep durable/resumable.
  RunJournal* journal = nullptr;
};

/// One (regime, policy) cell of the matrix.
struct HeadToHeadCell {
  std::string regime;
  std::string policy;
  std::size_t n = 0;
  double mean_cost = 0.0;
  double cost_lo = 0.0;  ///< bootstrap CI on the mean
  double cost_hi = 0.0;
  double q1_cost = 0.0;
  double median_cost = 0.0;
  double q3_cost = 0.0;
  double miss_rate = 0.0;  ///< deadline misses / n
  double miss_lo = 0.0;    ///< Wilson CI
  double miss_hi = 0.0;
};

struct HeadToHeadResult {
  std::vector<HeadToHeadCell> cells;  ///< regime-major, roster order
  double ci_level = 0.95;
  Money drawn_bid;                    ///< randomized-bid's seeded draw

  std::size_t chunks_replayed = 0;    ///< journal hits across all cells
  std::size_t chunks_recomputed = 0;

  /// One ci_table per regime, concatenated.
  std::string table(const std::string& title) const;
};

/// Runs the full matrix. `market` supplies traces and the on-demand rate;
/// regimes with an instance-type universe run on the same traces (the
/// type metadata changes billing/notice semantics, not the lane set —
/// market/universe.hpp generates multi-type lane sets for the trace-level
/// analyses).
HeadToHeadResult run_head_to_head(const SpotMarket& market,
                                  const HeadToHeadOptions& options);

}  // namespace redspot
