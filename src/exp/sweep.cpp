#include "exp/sweep.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "core/policies/large_bid.hpp"
#include "fault/run_validator.hpp"

namespace redspot {

namespace {

/// Runs one simulation per chunk in parallel via `make_strategy`, which is
/// invoked once per run (strategies are stateful and not shareable). Every
/// result is audited against the run invariants before it is returned, so
/// a broken guarantee surfaces at the sweep instead of skewing a figure.
template <typename MakeStrategy>
std::vector<RunResult> run_sweep(const SpotMarket& market,
                                 const Scenario& scenario,
                                 const EngineOptions& engine_options,
                                 MakeStrategy make_strategy) {
  const std::size_t n = scenario.num_experiments;
  std::vector<RunResult> results(n);
  parallel_for(0, n, [&](std::size_t i) {
    const Experiment experiment = scenario.experiment(i);
    auto strategy = make_strategy(i);
    Engine engine(market, experiment, *strategy, engine_options);
    results[i] = engine.run();
    RunValidator(experiment, market.on_demand_rate()).check(results[i]);
  });
  return results;
}

}  // namespace

std::vector<RunResult> run_fixed_sweep(const SpotMarket& market,
                                       const Scenario& scenario,
                                       const PolicyRunSpec& spec,
                                       const EngineOptions& engine_options) {
  REDSPOT_CHECK(!spec.zones.empty());
  return run_sweep(market, scenario, engine_options, [&spec](std::size_t) {
    return std::make_unique<FixedStrategy>(spec.bid, spec.zones,
                                           make_policy(spec.policy));
  });
}

std::vector<RunResult> run_adaptive_sweep(
    const SpotMarket& market, const Scenario& scenario,
    const AdaptiveStrategy::Options& options,
    const EngineOptions& engine_options) {
  return run_sweep(market, scenario, engine_options, [&options](std::size_t) {
    return std::make_unique<AdaptiveStrategy>(options);
  });
}

std::vector<RunResult> run_large_bid_sweep(const SpotMarket& market,
                                           const Scenario& scenario,
                                           Money threshold,
                                           std::size_t zone,
                                           const EngineOptions& engine_options) {
  return run_sweep(market, scenario, engine_options,
                   [threshold, zone](std::size_t) {
    return std::make_unique<FixedStrategy>(
        LargeBidPolicy::large_bid(), std::vector<std::size_t>{zone},
        std::make_unique<LargeBidPolicy>(threshold));
  });
}

std::vector<double> costs_of(std::span<const RunResult> results) {
  std::vector<double> costs;
  costs.reserve(results.size());
  for (const RunResult& r : results)
    costs.push_back(r.total_cost.to_double());
  return costs;
}

std::vector<double> checked_costs(std::span<const RunResult> results) {
  for (const RunResult& r : results) {
    REDSPOT_CHECK_MSG(r.completed, "run did not complete");
    REDSPOT_CHECK_MSG(r.met_deadline, "run missed its deadline");
  }
  return costs_of(results);
}

std::vector<double> merged_single_zone_costs(const SpotMarket& market,
                                             const Scenario& scenario,
                                             PolicyKind policy, Money bid) {
  std::vector<double> merged;
  for (std::size_t zone = 0; zone < market.num_zones(); ++zone) {
    const std::vector<RunResult> results = run_fixed_sweep(
        market, scenario, PolicyRunSpec{policy, bid, {zone}});
    const std::vector<double> costs = checked_costs(results);
    merged.insert(merged.end(), costs.begin(), costs.end());
  }
  return merged;
}

std::vector<double> best_case_redundancy_costs(
    const SpotMarket& market, const Scenario& scenario,
    std::span<const PolicyKind> policies, Money bid) {
  REDSPOT_CHECK(!policies.empty());
  std::vector<std::size_t> all_zones(market.num_zones());
  for (std::size_t z = 0; z < all_zones.size(); ++z) all_zones[z] = z;

  std::vector<double> best;
  for (PolicyKind policy : policies) {
    const std::vector<RunResult> results = run_fixed_sweep(
        market, scenario, PolicyRunSpec{policy, bid, all_zones});
    const std::vector<double> costs = checked_costs(results);
    if (best.empty()) {
      best = costs;
    } else {
      REDSPOT_CHECK(best.size() == costs.size());
      for (std::size_t i = 0; i < costs.size(); ++i)
        best[i] = std::min(best[i], costs[i]);
    }
  }
  return best;
}

}  // namespace redspot
