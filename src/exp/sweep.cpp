#include "exp/sweep.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "core/batch/batched_engine.hpp"
#include "core/policies/large_bid.hpp"
#include "fault/audit_observer.hpp"
#include "fault/run_validator.hpp"
#include "journal/journal.hpp"
#include "journal/run_record.hpp"

namespace redspot {

namespace {

/// Lanes per lockstep group on the fixed-policy fast path. Wide enough to
/// amortize the shared models/index across a group, small enough that
/// groups still fill the thread pool on the paper's 80-experiment sweeps.
constexpr std::size_t kSweepBatchWidth = 16;

/// Batched execution of the non-replayed chunks of a fixed-policy sweep:
/// groups of kSweepBatchWidth lanes run in lockstep, each lane audited
/// and journaled exactly as on the scalar path. Bit-identical to the
/// scalar path by the BatchedSweepEngine contract.
void run_chunks_batched(const SpotMarket& market, const Scenario& scenario,
                        const EngineOptions& engine_options,
                        const PolicyRunSpec& spec, std::uint64_t key,
                        RunJournal* journal,
                        const std::vector<std::size_t>& chunks,
                        std::vector<RunResult>& results) {
  const batch::BatchedSweepEngine batcher(market, engine_options);
  const std::size_t groups =
      (chunks.size() + kSweepBatchWidth - 1) / kSweepBatchWidth;
  parallel_for(0, groups, [&](std::size_t g) {
    const std::size_t lo = g * kSweepBatchWidth;
    const std::size_t hi = std::min(lo + kSweepBatchWidth, chunks.size());
    std::vector<batch::BatchConfig> configs;
    std::vector<std::unique_ptr<AuditObserver>> audits;
    configs.reserve(hi - lo);
    audits.reserve(hi - lo);
    for (std::size_t k = lo; k < hi; ++k) {
      const Experiment experiment = scenario.experiment(chunks[k]);
      audits.push_back(std::make_unique<AuditObserver>(
          experiment, market.on_demand_rate(), AuditMode::kFull,
          engine_options.regime));
      configs.push_back(batch::BatchConfig{experiment, spec.policy, spec.bid,
                                           spec.zones, audits.back().get()});
    }
    const std::vector<RunResult> runs = batcher.run(configs);
    for (std::size_t k = lo; k < hi; ++k) {
      const std::size_t chunk = chunks[k];
      results[chunk] = runs[k - lo];
      if (journal != nullptr)
        journal->append(encode_sweep_chunk(key, chunk, results[chunk]));
    }
  });
}

/// Runs one simulation per chunk in parallel via `make_strategy`, which is
/// invoked once per run (strategies are stateful and not shareable). Every
/// result is audited against the run invariants before it is returned, so
/// a broken guarantee surfaces at the sweep instead of skewing a figure.
///
/// `key` fingerprints this sweep for the journal: with a durability
/// journal attached, chunks found under `key` (checksum-intact, passing
/// the kReplay audit) are taken from the journal, and computed chunks are
/// appended under `key` once they pass the full audit.
///
/// `batch_spec` non-null marks a homogeneous fixed-policy sweep: chunk
/// groups dispatch to the batched lockstep engine when the options
/// qualify (no faults); everything else — adaptive, large-bid, faulted —
/// keeps the scalar per-chunk path.
template <typename MakeStrategy>
std::vector<RunResult> run_sweep(const SpotMarket& market,
                                 const Scenario& scenario,
                                 const EngineOptions& engine_options,
                                 std::uint64_t key,
                                 SweepDurability* durability,
                                 const PolicyRunSpec* batch_spec,
                                 MakeStrategy make_strategy) {
  const std::size_t n = scenario.num_experiments;
  std::vector<RunResult> results(n);
  std::vector<char> replayed(n, 0);
  RunJournal* journal =
      durability != nullptr ? durability->journal : nullptr;
  if (journal != nullptr) {
    for (const std::string& payload : journal->records()) {
      if (record_type(payload) != RecordType::kSweepChunk) continue;
      std::optional<SweepChunkRecord> rec = decode_sweep_chunk(payload);
      if (!rec || rec->sweep_key != key || rec->chunk >= n) continue;
      const std::size_t chunk = static_cast<std::size_t>(rec->chunk);
      const Experiment experiment = scenario.experiment(chunk);
      if (!RunValidator(experiment, market.on_demand_rate(),
                        engine_options.regime)
               .audit(rec->run, AuditMode::kReplay)
               .empty()) {
        LOG_WARN << "journal: sweep chunk " << chunk
                 << " record failed the replay audit; recomputing";
        continue;
      }
      results[chunk] = std::move(rec->run);
      replayed[chunk] = 1;
    }
  }
  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (replayed[i] == 0) pending.push_back(i);
  if (batch_spec != nullptr && pending.size() > 1 &&
      batch::BatchedSweepEngine::can_batch(engine_options)) {
    run_chunks_batched(market, scenario, engine_options, *batch_spec, key,
                       journal, pending, results);
  } else {
    parallel_for(0, pending.size(), [&](std::size_t p) {
      const std::size_t i = pending[p];
      const Experiment experiment = scenario.experiment(i);
      auto strategy = make_strategy(i);
      Engine engine(market, experiment, *strategy, engine_options);
      AuditObserver audit(experiment, market.on_demand_rate(),
                          AuditMode::kFull, engine_options.regime);
      engine.add_observer(&audit);
      results[i] = engine.run();
      if (journal != nullptr)
        journal->append(encode_sweep_chunk(key, i, results[i]));
    });
  }
  if (durability != nullptr) {
    const std::size_t hits = static_cast<std::size_t>(
        std::count(replayed.begin(), replayed.end(), char{1}));
    durability->chunks_replayed = hits;
    durability->chunks_recomputed = n - hits;
  }
  return results;
}

void hash_market(HashStream& h, const SpotMarket& market) {
  const InstanceType& instance = market.instance_type();
  h.str(instance.api_name);
  h.i64(instance.on_demand_rate.micros());
  const QueueDelayParams& delay = market.delay_model().params();
  h.f64(delay.shift_seconds);
  h.f64(delay.mu);
  h.f64(delay.sigma);
  h.i64(static_cast<std::int64_t>(delay.min_delay));
  h.i64(static_cast<std::int64_t>(delay.max_delay));
  const ZoneTraceSet& traces = market.traces();
  h.u64(traces.num_zones());
  for (std::size_t z = 0; z < traces.num_zones(); ++z) {
    h.str(traces.zone_name(z));
    const PriceSeries& series = traces.zone(z);
    h.i64(static_cast<std::int64_t>(series.start()));
    h.i64(static_cast<std::int64_t>(series.step()));
    h.u64(series.size());
    for (const Money price : series.samples()) h.i64(price.micros());
  }
}

}  // namespace

std::uint64_t sweep_base_key(const SpotMarket& market,
                             const Scenario& scenario,
                             const EngineOptions& engine_options) {
  HashStream h;
  hash_market(h, market);
  h.u64(static_cast<std::uint64_t>(scenario.window));
  h.f64(scenario.slack_fraction);
  h.i64(static_cast<std::int64_t>(scenario.checkpoint_cost));
  h.u64(scenario.num_experiments);
  hash_engine_options(h, engine_options);
  return h.digest();
}

std::vector<RunResult> run_fixed_sweep(const SpotMarket& market,
                                       const Scenario& scenario,
                                       const PolicyRunSpec& spec,
                                       const EngineOptions& engine_options,
                                       SweepDurability* durability) {
  REDSPOT_CHECK(!spec.zones.empty());
  HashStream h;
  h.u64(sweep_base_key(market, scenario, engine_options));
  h.u64(1);  // sweep kind: fixed policy
  h.u64(static_cast<std::uint64_t>(spec.policy));
  h.i64(spec.bid.micros());
  h.u64(spec.zones.size());
  for (const std::size_t z : spec.zones) h.u64(z);
  return run_sweep(market, scenario, engine_options, h.digest(), durability,
                   &spec, [&spec](std::size_t) {
    return std::make_unique<FixedStrategy>(spec.bid, spec.zones,
                                           make_policy(spec.policy));
  });
}

std::vector<RunResult> run_adaptive_sweep(
    const SpotMarket& market, const Scenario& scenario,
    const AdaptiveStrategy::Options& options,
    const EngineOptions& engine_options,
    SweepDurability* durability) {
  HashStream h;
  h.u64(sweep_base_key(market, scenario, engine_options));
  h.u64(2);  // sweep kind: adaptive
  h.u64(options.bid_grid.size());
  for (const Money bid : options.bid_grid) h.i64(bid.micros());
  h.u64(options.candidate_policies.size());
  for (const PolicyKind p : options.candidate_policies)
    h.u64(static_cast<std::uint64_t>(p));
  h.u64(options.max_zones);
  h.f64(options.switch_ratio);
  h.i64(static_cast<std::int64_t>(options.mean_queue_delay));
  h.u64(options.charge_switch_penalty ? 1 : 0);
  return run_sweep(market, scenario, engine_options, h.digest(), durability,
                   nullptr, [&options](std::size_t) {
    return std::make_unique<AdaptiveStrategy>(options);
  });
}

std::vector<RunResult> run_large_bid_sweep(const SpotMarket& market,
                                           const Scenario& scenario,
                                           Money threshold,
                                           std::size_t zone,
                                           const EngineOptions& engine_options,
                                           SweepDurability* durability) {
  HashStream h;
  h.u64(sweep_base_key(market, scenario, engine_options));
  h.u64(3);  // sweep kind: large-bid
  h.i64(threshold.micros());
  h.u64(zone);
  return run_sweep(market, scenario, engine_options, h.digest(), durability,
                   nullptr, [threshold, zone](std::size_t) {
    return std::make_unique<FixedStrategy>(
        LargeBidPolicy::large_bid(), std::vector<std::size_t>{zone},
        std::make_unique<LargeBidPolicy>(threshold));
  });
}

std::vector<double> costs_of(std::span<const RunResult> results) {
  std::vector<double> costs;
  costs.reserve(results.size());
  for (const RunResult& r : results)
    costs.push_back(r.total_cost.to_double());
  return costs;
}

std::vector<double> checked_costs(std::span<const RunResult> results) {
  for (const RunResult& r : results) {
    REDSPOT_CHECK_MSG(r.completed, "run did not complete");
    REDSPOT_CHECK_MSG(r.met_deadline, "run missed its deadline");
  }
  return costs_of(results);
}

std::vector<double> merged_single_zone_costs(const SpotMarket& market,
                                             const Scenario& scenario,
                                             PolicyKind policy, Money bid) {
  std::vector<double> merged;
  for (std::size_t zone = 0; zone < market.num_zones(); ++zone) {
    const std::vector<RunResult> results = run_fixed_sweep(
        market, scenario, PolicyRunSpec{policy, bid, {zone}});
    const std::vector<double> costs = checked_costs(results);
    merged.insert(merged.end(), costs.begin(), costs.end());
  }
  return merged;
}

std::vector<double> best_case_redundancy_costs(
    const SpotMarket& market, const Scenario& scenario,
    std::span<const PolicyKind> policies, Money bid) {
  REDSPOT_CHECK(!policies.empty());
  std::vector<std::size_t> all_zones(market.num_zones());
  for (std::size_t z = 0; z < all_zones.size(); ++z) all_zones[z] = z;

  std::vector<double> best;
  for (PolicyKind policy : policies) {
    const std::vector<RunResult> results = run_fixed_sweep(
        market, scenario, PolicyRunSpec{policy, bid, all_zones});
    const std::vector<double> costs = checked_costs(results);
    if (best.empty()) {
      best = costs;
    } else {
      REDSPOT_CHECK(best.size() == costs.size());
      for (std::size_t i = 0; i < costs.size(); ++i)
        best[i] = std::min(best[i], costs[i]);
    }
  }
  return best;
}

}  // namespace redspot
