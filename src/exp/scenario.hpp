// Evaluation scenarios (Section 5).
//
// The paper evaluates every policy over two spot-price windows (the
// low-volatility month, March 2013, and the high-volatility month, January
// 2013), two slack levels (15% and 50% of C) and two checkpoint costs
// (300 s and 900 s), running 80 experiments over partially overlapping
// chunks of each window.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "core/experiment.hpp"

namespace redspot {

enum class VolatilityWindow { kLow, kHigh };

std::string to_string(VolatilityWindow window);

/// [start, end) of the evaluation window within the trace calendar.
SimTime window_start(VolatilityWindow window);
SimTime window_end(VolatilityWindow window);

/// One cell of the evaluation grid.
struct Scenario {
  VolatilityWindow window = VolatilityWindow::kLow;
  double slack_fraction = 0.15;      ///< T_l as a fraction of C
  Duration checkpoint_cost = 300;    ///< t_c = t_r
  std::size_t num_experiments = 80;

  std::string label() const;

  /// The experiment for chunk `index` of this scenario (also derives the
  /// per-experiment queue-delay seed).
  Experiment experiment(std::size_t index) const;

  /// All chunk start times (evenly spaced, overlapping).
  std::vector<SimTime> starts() const;
};

/// The paper's eight scenario cells, ordered as Figures 4/5 present them:
/// volatility-major, then t_c, then slack.
std::vector<Scenario> paper_scenarios();

}  // namespace redspot
