#include "exp/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace redspot {

BoxRow make_box_row(std::string label, std::span<const double> costs) {
  REDSPOT_CHECK(!costs.empty());
  return BoxRow{std::move(label), five_number_summary(costs)};
}

std::string boxplot_table(const std::string& title,
                          std::span<const BoxRow> rows,
                          Money on_demand_reference,
                          Money lowest_spot_reference) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-26s %8s %8s %8s %8s %8s %8s %5s\n",
                "policy", "min", "q1", "median", "q3", "max", "mean", "n");
  os << line;
  for (const BoxRow& row : rows) {
    const FiveNumberSummary& s = row.summary;
    std::snprintf(line, sizeof(line),
                  "%-26s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %5zu\n",
                  row.label.c_str(), s.min, s.q1, s.median, s.q3, s.max,
                  s.mean, s.count);
    os << line;
  }
  os << "reference: on-demand " << on_demand_reference.str()
     << " | lowest-spot " << lowest_spot_reference.str() << "\n";
  return os.str();
}

std::string ci_table(const std::string& title, std::span<const CiRow> rows,
                     double ci_level) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  char line[320];
  char ci_label[32];
  std::snprintf(ci_label, sizeof(ci_label), "[%.0f%% CI]", ci_level * 100.0);
  std::snprintf(line, sizeof(line),
                "%-28s %5s %8s %-19s %8s %8s %8s %7s %-15s\n", "policy", "n",
                "mean", ci_label, "q1", "median", "q3", "miss%", ci_label);
  os << line;
  for (const CiRow& r : rows) {
    char mean_ci[32], miss_ci[32];
    std::snprintf(mean_ci, sizeof(mean_ci), "[%7.2f, %7.2f]", r.ci_lo,
                  r.ci_hi);
    std::snprintf(miss_ci, sizeof(miss_ci), "[%5.2f, %5.2f]",
                  r.miss_lo * 100.0, r.miss_hi * 100.0);
    std::snprintf(line, sizeof(line),
                  "%-28s %5zu %8.2f %-19s %8.2f %8.2f %8.2f %7.2f %-15s\n",
                  r.label.c_str(), r.n, r.mean, mean_ci, r.q1, r.median,
                  r.q3, r.miss_rate * 100.0, miss_ci);
    os << line;
  }
  return os.str();
}

std::string two_column_table(
    const std::string& title,
    std::span<const std::pair<std::string, std::string>> rows) {
  std::size_t width = 0;
  for (const auto& [left, right] : rows) width = std::max(width, left.size());
  std::ostringstream os;
  os << "== " << title << " ==\n";
  for (const auto& [left, right] : rows) {
    os << left << std::string(width + 2 - left.size(), ' ') << right
       << '\n';
  }
  return os.str();
}

}  // namespace redspot
