#include "exp/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace redspot {

BoxRow make_box_row(std::string label, std::span<const double> costs) {
  REDSPOT_CHECK(!costs.empty());
  return BoxRow{std::move(label), five_number_summary(costs)};
}

std::string boxplot_table(const std::string& title,
                          std::span<const BoxRow> rows,
                          Money on_demand_reference,
                          Money lowest_spot_reference) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-26s %8s %8s %8s %8s %8s %8s %5s\n",
                "policy", "min", "q1", "median", "q3", "max", "mean", "n");
  os << line;
  for (const BoxRow& row : rows) {
    const FiveNumberSummary& s = row.summary;
    std::snprintf(line, sizeof(line),
                  "%-26s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %5zu\n",
                  row.label.c_str(), s.min, s.q1, s.median, s.q3, s.max,
                  s.mean, s.count);
    os << line;
  }
  os << "reference: on-demand " << on_demand_reference.str()
     << " | lowest-spot " << lowest_spot_reference.str() << "\n";
  return os.str();
}

std::string two_column_table(
    const std::string& title,
    std::span<const std::pair<std::string, std::string>> rows) {
  std::size_t width = 0;
  for (const auto& [left, right] : rows) width = std::max(width, left.size());
  std::ostringstream os;
  os << "== " << title << " ==\n";
  for (const auto& [left, right] : rows) {
    os << left << std::string(width + 2 - left.size(), ' ') << right
       << '\n';
  }
  return os.str();
}

}  // namespace redspot
