#include "exp/head_to_head.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "core/engine.hpp"
#include "core/policies/randomized_bid.hpp"
#include "exp/report.hpp"
#include "stats/descriptive.hpp"
#include "stats/streaming.hpp"

namespace redspot {

namespace {

/// The fixed half of the roster, run with N = all zones.
constexpr PolicyKind kFixedRoster[] = {
    PolicyKind::kPeriodic,   PolicyKind::kMarkovDaly,
    PolicyKind::kRisingEdge, PolicyKind::kThreshold,
    PolicyKind::kIndexTrack,
};

std::uint64_t cell_seed(const std::string& regime, const std::string& policy,
                        std::uint64_t seed) {
  HashStream h;
  h.str("head-to-head-cell");
  h.str(regime);
  h.str(policy);
  h.u64(seed);
  return h.digest();
}

HeadToHeadCell make_cell(const MarketRegime& regime, std::string policy,
                         std::span<const RunResult> results,
                         const HeadToHeadOptions& options) {
  HeadToHeadCell cell;
  cell.regime = regime.name;
  cell.policy = std::move(policy);
  cell.n = results.size();

  const std::vector<double> costs = costs_of(results);
  std::size_t misses = 0;
  PoissonBootstrap boot(options.bootstrap_replicates,
                        cell_seed(cell.regime, cell.policy, options.seed));
  for (std::size_t i = 0; i < results.size(); ++i) {
    REDSPOT_CHECK_MSG(results[i].completed, "head-to-head run incomplete");
    if (!results[i].met_deadline) ++misses;
    boot.add(i, costs[i]);
  }
  cell.mean_cost = mean(costs);
  const auto [lo, hi] = boot.mean_ci(options.ci_level, cell.mean_cost);
  cell.cost_lo = lo;
  cell.cost_hi = hi;
  cell.q1_cost = quantile(costs, 0.25);
  cell.median_cost = median(costs);
  cell.q3_cost = quantile(costs, 0.75);
  cell.miss_rate =
      cell.n == 0 ? 0.0
                  : static_cast<double>(misses) / static_cast<double>(cell.n);
  const auto [mlo, mhi] = wilson_interval(misses, cell.n, options.ci_level);
  cell.miss_lo = mlo;
  cell.miss_hi = mhi;
  return cell;
}

}  // namespace

HeadToHeadResult run_head_to_head(const SpotMarket& market,
                                  const HeadToHeadOptions& options) {
  const std::vector<MarketRegime> regimes =
      options.regimes.empty() ? regime_catalog() : options.regimes;
  const Scenario& scenario = options.scenario;

  std::vector<std::size_t> all_zones(market.num_zones());
  for (std::size_t z = 0; z < all_zones.size(); ++z) all_zones[z] = z;

  // One draw for the whole matrix: the randomized-bid column must differ
  // across regimes only by the regime, not by its luck.
  const Money drawn_bid = RandomizedBidPolicy::draw_bid(
      options.seed, options.bid_floor, market.on_demand_rate());

  HeadToHeadResult out;
  out.ci_level = options.ci_level;
  out.drawn_bid = drawn_bid;

  const auto account = [&out](const SweepDurability& d) {
    out.chunks_replayed += d.chunks_replayed;
    out.chunks_recomputed += d.chunks_recomputed;
  };

  for (const MarketRegime& regime : regimes) {
    EngineOptions eo;
    eo.regime = regime;

    for (const PolicyKind policy : kFixedRoster) {
      SweepDurability dur{options.journal};
      const std::vector<RunResult> results = run_fixed_sweep(
          market, scenario, PolicyRunSpec{policy, options.bid, all_zones},
          eo, &dur);
      account(dur);
      out.cells.push_back(
          make_cell(regime, to_string(policy), results, options));
    }
    {
      SweepDurability dur{options.journal};
      const std::vector<RunResult> results = run_fixed_sweep(
          market, scenario,
          PolicyRunSpec{PolicyKind::kRandomizedBid, drawn_bid, all_zones},
          eo, &dur);
      account(dur);
      out.cells.push_back(
          make_cell(regime, "randomized-bid", results, options));
    }
    {
      SweepDurability dur{options.journal};
      const std::vector<RunResult> results = run_large_bid_sweep(
          market, scenario, options.bid, /*zone=*/0, eo, &dur);
      account(dur);
      out.cells.push_back(make_cell(regime, "large-bid", results, options));
    }
    {
      SweepDurability dur{options.journal};
      const std::vector<RunResult> results =
          run_adaptive_sweep(market, scenario, {}, eo, &dur);
      account(dur);
      out.cells.push_back(make_cell(regime, "adaptive", results, options));
    }
    {
      // The anchor row needs no sweep: the baseline is a closed-form
      // function of the experiment and the regime's billing rules.
      std::vector<RunResult> results;
      results.reserve(scenario.num_experiments);
      for (std::size_t i = 0; i < scenario.num_experiments; ++i)
        results.push_back(run_on_demand_baseline(
            scenario.experiment(i), market.on_demand_rate(), regime));
      out.cells.push_back(make_cell(regime, "on-demand", results, options));
    }
  }
  return out;
}

std::string HeadToHeadResult::table(const std::string& title) const {
  std::string rendered;
  std::size_t i = 0;
  while (i < cells.size()) {
    const std::string& regime = cells[i].regime;
    std::vector<CiRow> rows;
    for (; i < cells.size() && cells[i].regime == regime; ++i) {
      const HeadToHeadCell& c = cells[i];
      CiRow r;
      r.label = c.policy;
      r.n = c.n;
      r.mean = c.mean_cost;
      r.ci_lo = c.cost_lo;
      r.ci_hi = c.cost_hi;
      r.q1 = c.q1_cost;
      r.median = c.median_cost;
      r.q3 = c.q3_cost;
      r.miss_rate = c.miss_rate;
      r.miss_lo = c.miss_lo;
      r.miss_hi = c.miss_hi;
      rows.push_back(r);
    }
    rendered += ci_table(title + " — regime " + regime, rows, ci_level);
  }
  return rendered;
}

}  // namespace redspot
