#include "exp/scenario.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "trace/calendar.hpp"
#include "trace/windows.hpp"

namespace redspot {

std::string to_string(VolatilityWindow window) {
  return window == VolatilityWindow::kLow ? "low-volatility"
                                          : "high-volatility";
}

SimTime window_start(VolatilityWindow window) {
  return month_start(window == VolatilityWindow::kLow ? kLowVolatilityMonth
                                                      : kHighVolatilityMonth);
}

SimTime window_end(VolatilityWindow window) {
  return month_end(window == VolatilityWindow::kLow ? kLowVolatilityMonth
                                                    : kHighVolatilityMonth);
}

std::string Scenario::label() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s Tl=%.0f%% tc=%llds",
                to_string(window).c_str(), slack_fraction * 100.0,
                static_cast<long long>(checkpoint_cost));
  return buf;
}

Experiment Scenario::experiment(std::size_t index) const {
  const std::vector<SimTime> all = starts();
  REDSPOT_CHECK(index < all.size());
  return Experiment::paper(all[index], slack_fraction, checkpoint_cost,
                           /*seed=*/0x5EED0000 + index);
}

std::vector<SimTime> Scenario::starts() const {
  const Experiment probe =
      Experiment::paper(0, slack_fraction, checkpoint_cost);
  return experiment_starts(window_start(window), window_end(window),
                           probe.deadline, probe.history_span,
                           num_experiments);
}

std::vector<Scenario> paper_scenarios() {
  std::vector<Scenario> cells;
  for (VolatilityWindow w : {VolatilityWindow::kLow, VolatilityWindow::kHigh})
    for (Duration tc : {Duration{300}, Duration{900}})
      for (double slack : {0.15, 0.50})
        cells.push_back(Scenario{w, slack, tc, 80});
  return cells;
}

}  // namespace redspot
