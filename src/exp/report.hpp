// Text reporting for the reproduction benches: fixed-width boxplot tables
// that mirror the paper's figures, with the paper's two reference lines
// (on-demand $48.00, lowest-spot $5.40) printed alongside.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/money.hpp"
#include "stats/descriptive.hpp"

namespace redspot {

/// One labelled cost distribution (one box of a boxplot figure).
struct BoxRow {
  std::string label;
  FiveNumberSummary summary;
};

BoxRow make_box_row(std::string label, std::span<const double> costs);

/// Renders a figure-style table:
///
///   == title ==
///   policy             min     q1    med     q3    max   mean    n
///   ...
///   reference: on-demand $48.00 | lowest-spot $5.40
std::string boxplot_table(const std::string& title,
                          std::span<const BoxRow> rows,
                          Money on_demand_reference,
                          Money lowest_spot_reference);

/// One row of an ensemble summary: a cost distribution with a bootstrap
/// CI for the mean plus the deadline-miss rate with its binomial CI
/// (rates are fractions in [0, 1]; rendered as percentages).
struct CiRow {
  std::string label;
  std::size_t n = 0;
  double mean = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double miss_rate = 0.0;
  double miss_lo = 0.0;
  double miss_hi = 0.0;
};

/// Renders an ensemble table:
///
///   == title ==
///   policy            n   mean [lo, hi]   q1  med  q3   miss% [lo, hi]
///
/// `ci_level` only labels the header (e.g. 0.95 -> "95% CI").
std::string ci_table(const std::string& title, std::span<const CiRow> rows,
                     double ci_level);

/// A simple aligned two-column table for Tables 2/3-style summaries.
std::string two_column_table(const std::string& title,
                             std::span<const std::pair<std::string,
                                                       std::string>> rows);

}  // namespace redspot
