// Text reporting for the reproduction benches: fixed-width boxplot tables
// that mirror the paper's figures, with the paper's two reference lines
// (on-demand $48.00, lowest-spot $5.40) printed alongside.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/money.hpp"
#include "stats/descriptive.hpp"

namespace redspot {

/// One labelled cost distribution (one box of a boxplot figure).
struct BoxRow {
  std::string label;
  FiveNumberSummary summary;
};

BoxRow make_box_row(std::string label, std::span<const double> costs);

/// Renders a figure-style table:
///
///   == title ==
///   policy             min     q1    med     q3    max   mean    n
///   ...
///   reference: on-demand $48.00 | lowest-spot $5.40
std::string boxplot_table(const std::string& title,
                          std::span<const BoxRow> rows,
                          Money on_demand_reference,
                          Money lowest_spot_reference);

/// A simple aligned two-column table for Tables 2/3-style summaries.
std::string two_column_table(const std::string& title,
                             std::span<const std::pair<std::string,
                                                       std::string>> rows);

}  // namespace redspot
