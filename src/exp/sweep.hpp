// Experiment sweeps.
//
// Runs a policy configuration over every chunk of a scenario (in parallel —
// chunks are independent simulations) and aggregates per-experiment costs
// the way the paper's boxplots do:
//   * single-zone policies merge the results of all three zones into one
//     distribution (Figures 4 and 5);
//   * the redundancy bar is the best-case redundancy-based policy per
//     experiment (Section 6);
//   * Adaptive and Large-bid run as themselves.
#pragma once

#include <span>
#include <vector>

#include "core/adaptive/adaptive_runner.hpp"
#include "core/engine.hpp"
#include "core/policy.hpp"
#include "exp/scenario.hpp"
#include "market/spot_market.hpp"

namespace redspot {

/// One fixed-policy configuration to sweep.
struct PolicyRunSpec {
  PolicyKind policy = PolicyKind::kPeriodic;
  Money bid;
  std::vector<std::size_t> zones;
};

/// Runs `spec` over all chunks of `scenario`. Results are indexed by chunk.
/// Every run is audited by RunValidator (see fault/run_validator.hpp)
/// before it is returned; `engine_options` carries the termination-notice
/// and fault-injection configuration.
std::vector<RunResult> run_fixed_sweep(const SpotMarket& market,
                                       const Scenario& scenario,
                                       const PolicyRunSpec& spec,
                                       const EngineOptions& engine_options = {});

/// Adaptive (Section 7) over all chunks.
std::vector<RunResult> run_adaptive_sweep(
    const SpotMarket& market, const Scenario& scenario,
    const AdaptiveStrategy::Options& options = {},
    const EngineOptions& engine_options = {});

/// Large-bid with threshold L in `zone` over all chunks.
std::vector<RunResult> run_large_bid_sweep(const SpotMarket& market,
                                           const Scenario& scenario,
                                           Money threshold, std::size_t zone,
                                           const EngineOptions& engine_options = {});

/// Total costs in dollars, one per run.
std::vector<double> costs_of(std::span<const RunResult> results);

/// Single-zone policy at `bid`, zones merged: 3 x num_experiments costs.
std::vector<double> merged_single_zone_costs(const SpotMarket& market,
                                             const Scenario& scenario,
                                             PolicyKind policy, Money bid);

/// Best-case redundancy-based policy (N = all zones) at `bid`: for each
/// chunk, the cheapest cost among `policies`.
std::vector<double> best_case_redundancy_costs(
    const SpotMarket& market, const Scenario& scenario,
    std::span<const PolicyKind> policies, Money bid);

/// Asserts invariants that must hold for every run (deadline met,
/// completion); returns the results' costs. Used by benches so a broken
/// guarantee cannot silently skew a table.
std::vector<double> checked_costs(std::span<const RunResult> results);

}  // namespace redspot
