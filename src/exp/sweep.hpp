// Experiment sweeps.
//
// Runs a policy configuration over every chunk of a scenario (in parallel —
// chunks are independent simulations) and aggregates per-experiment costs
// the way the paper's boxplots do:
//   * single-zone policies merge the results of all three zones into one
//     distribution (Figures 4 and 5);
//   * the redundancy bar is the best-case redundancy-based policy per
//     experiment (Section 6);
//   * Adaptive and Large-bid run as themselves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/adaptive/adaptive_runner.hpp"
#include "core/engine.hpp"
#include "core/policy.hpp"
#include "exp/scenario.hpp"
#include "market/spot_market.hpp"

namespace redspot {

class RunJournal;

/// One fixed-policy configuration to sweep.
struct PolicyRunSpec {
  PolicyKind policy = PolicyKind::kPeriodic;
  Money bid;
  std::vector<std::size_t> zones;
};

/// Durability controls for one sweep call. When `journal` is non-null,
/// chunks already journaled under this sweep's key (market + scenario +
/// engine options + configuration fingerprint) are replayed instead of
/// re-simulated — after passing the kReplay audit — and freshly computed
/// chunks are appended as kSweepChunk records as they finish. The
/// counters report what actually ran; replay is bit-identical because the
/// journal stores the exact RunResult scalars the aggregations consume.
struct SweepDurability {
  RunJournal* journal = nullptr;
  std::size_t chunks_replayed = 0;    ///< filled on return
  std::size_t chunks_recomputed = 0;  ///< filled on return
};

/// Runs `spec` over all chunks of `scenario`. Results are indexed by chunk.
/// Every run is audited by RunValidator (see fault/run_validator.hpp)
/// before it is returned; `engine_options` carries the termination-notice
/// and fault-injection configuration.
std::vector<RunResult> run_fixed_sweep(const SpotMarket& market,
                                       const Scenario& scenario,
                                       const PolicyRunSpec& spec,
                                       const EngineOptions& engine_options = {},
                                       SweepDurability* durability = nullptr);

/// Adaptive (Section 7) over all chunks.
std::vector<RunResult> run_adaptive_sweep(
    const SpotMarket& market, const Scenario& scenario,
    const AdaptiveStrategy::Options& options = {},
    const EngineOptions& engine_options = {},
    SweepDurability* durability = nullptr);

/// Large-bid with threshold L in `zone` over all chunks.
std::vector<RunResult> run_large_bid_sweep(const SpotMarket& market,
                                           const Scenario& scenario,
                                           Money threshold, std::size_t zone,
                                           const EngineOptions& engine_options = {},
                                           SweepDurability* durability = nullptr);

/// Fingerprint shared by every sweep of the same (market, scenario, engine
/// options): traces, instance type, delay model and cell parameters. Each
/// run_*_sweep mixes its own configuration on top to form its journal key.
std::uint64_t sweep_base_key(const SpotMarket& market,
                             const Scenario& scenario,
                             const EngineOptions& engine_options);

/// Total costs in dollars, one per run.
std::vector<double> costs_of(std::span<const RunResult> results);

/// Single-zone policy at `bid`, zones merged: 3 x num_experiments costs.
std::vector<double> merged_single_zone_costs(const SpotMarket& market,
                                             const Scenario& scenario,
                                             PolicyKind policy, Money bid);

/// Best-case redundancy-based policy (N = all zones) at `bid`: for each
/// chunk, the cheapest cost among `policies`.
std::vector<double> best_case_redundancy_costs(
    const SpotMarket& market, const Scenario& scenario,
    std::span<const PolicyKind> policies, Money bid);

/// Asserts invariants that must hold for every run (deadline met,
/// completion); returns the results' costs. Used by benches so a broken
/// guarantee cannot silently skew a table.
std::vector<double> checked_costs(std::span<const RunResult> results);

}  // namespace redspot
