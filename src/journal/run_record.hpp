// Typed journal record schemas.
//
// Three record kinds ride the RunJournal framing:
//
//   * kEnsembleShard — one completed shard of an EnsembleRunner sweep:
//     (spec_hash, shard, [lo, hi), num_configs) plus one compact RunResult
//     per (replication, config), replication-major. Replaying the record
//     folds exactly the scalars ConfigSummary::fold consumes, in exactly
//     the live order, so a resumed run is bit-identical to an
//     uninterrupted one (the fixed-shard determinism contract).
//   * kSweepChunk — one audited RunResult of an exp/ sweep, keyed by
//     (sweep_key, chunk).
//   * kCleanStop — a graceful-interruption marker written by redspot-sim
//     after the drain, recording how far the run got.
//
// Compact RunResults carry every scalar the summaries and the sweep
// consumers read (costs in exact micro-dollars, counters, outcome flags,
// fault stats) but not the per-run logs (checkpoint_log, timeline,
// line_items) — RunValidator re-audits replayed records in
// AuditMode::kReplay, which skips the log-derived cross-checks. Decoders
// are total: any structurally malformed payload yields nullopt (the caller
// recomputes), never UB.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/run_result.hpp"

namespace redspot {

enum class RecordType : std::uint32_t {
  kEnsembleShard = 1,
  kSweepChunk = 2,
  kCleanStop = 3,
  kFabricLease = 4,
};

/// Type tag of a record payload, or nullopt if too short / unknown.
std::optional<RecordType> record_type(std::string_view payload);

// --- ensemble shard records ------------------------------------------------

/// Incrementally encodes one shard's record while the shard computes, so
/// completed replications never need to be buffered as full RunResults.
class ShardRecordBuilder {
 public:
  ShardRecordBuilder(std::uint64_t spec_hash, std::uint64_t shard,
                     std::uint64_t lo, std::uint64_t hi,
                     std::uint32_t num_configs);

  /// Appends one compact run. Call (hi-lo)*num_configs times, replication-
  /// major in fold order.
  void add_run(const RunResult& r);

  /// The finished payload. Checks that every expected run was added.
  const std::string& payload() const;

 private:
  std::string buf_;
  std::uint64_t expected_;
  std::uint64_t added_ = 0;
};

struct EnsembleShardRecord {
  std::uint64_t spec_hash = 0;
  std::uint64_t shard = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint32_t num_configs = 0;
  /// (hi-lo)*num_configs compact runs, replication-major.
  std::vector<RunResult> runs;
};

std::optional<EnsembleShardRecord> decode_ensemble_shard(
    std::string_view payload);

// --- sweep chunk records ---------------------------------------------------

struct SweepChunkRecord {
  std::uint64_t sweep_key = 0;
  std::uint64_t chunk = 0;
  RunResult run;
};

std::string encode_sweep_chunk(std::uint64_t sweep_key, std::uint64_t chunk,
                               const RunResult& run);
std::optional<SweepChunkRecord> decode_sweep_chunk(std::string_view payload);

// --- fabric lease grants ---------------------------------------------------

/// One lease grant by the fabric coordinator (src/fabric/). Written ahead
/// of the grant so a resumed coordinator knows how many times each shard
/// was ever handed out: attempt numbers keep counting up across coordinator
/// crashes, which keeps ChaosPlan kill decisions (keyed on attempt)
/// deterministic for the whole run, not just one coordinator lifetime.
struct FabricLeaseRecord {
  std::uint64_t spec_hash = 0;
  std::uint64_t lease_id = 0;
  std::uint64_t shard_lo = 0;  ///< leased shard range [shard_lo, shard_hi)
  std::uint64_t shard_hi = 0;
  std::uint64_t attempt = 0;  ///< 1-based grant count of shard_lo
  std::uint64_t worker = 0;   ///< coordinator-local worker session id
};

std::string encode_fabric_lease(const FabricLeaseRecord& r);
std::optional<FabricLeaseRecord> decode_fabric_lease(std::string_view payload);

// --- clean-stop markers ----------------------------------------------------

struct CleanStopRecord {
  std::uint64_t key = 0;  ///< spec_hash or sweep_key of the interrupted run
  std::uint64_t units_done = 0;
  std::uint64_t units_total = 0;
};

std::string encode_clean_stop(const CleanStopRecord& r);
std::optional<CleanStopRecord> decode_clean_stop(std::string_view payload);

}  // namespace redspot
