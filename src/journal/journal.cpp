#include "journal/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/frame.hpp"
#include "common/fs.hpp"
#include "common/log.hpp"

namespace redspot {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("journal: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

}  // namespace

RunJournal::RunJournal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) fail("cannot open", path_);

  std::string data;
  try {
    data = read_file(path_);
  } catch (const std::runtime_error&) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }

  std::size_t good = 0;  // byte offset of the end of the intact prefix
  if (data.size() >= sizeof(kMagic)) {
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("journal: '" + path_ +
                               "' exists but is not a redspot run journal");
    }
    good = sizeof(kMagic);
    // Scan frames until one breaks (shared codec with the fabric wire
    // protocol — common/frame.hpp); everything after the break is a
    // torn/corrupt tail and must be recomputed, because a corrupt length
    // field poisons all downstream framing.
    for (;;) {
      std::string_view payload;
      std::size_t frame_size = 0;
      if (peek_frame(std::string_view(data).substr(good), &payload,
                     &frame_size) != FrameStatus::kOk)
        break;  // torn tail, flipped bits, or a forged length
      records_.emplace_back(payload);
      good += frame_size;
    }
    open_stats_.intact_records = records_.size();
    open_stats_.dropped_bytes = data.size() - good;
    open_stats_.recovered_tail = open_stats_.dropped_bytes > 0;
    if (open_stats_.recovered_tail) {
      LOG_WARN << "journal: dropping " << open_stats_.dropped_bytes
               << " torn/corrupt tail byte(s) of '" << path_
               << "'; the affected work will be recomputed";
      if (::ftruncate(fd_, static_cast<off_t>(good)) != 0)
        fail("cannot truncate recovered tail of", path_);
    }
    if (::lseek(fd_, static_cast<off_t>(good), SEEK_SET) < 0)
      fail("cannot seek", path_);
  } else {
    // New (or torn-before-magic) file: start it fresh. A torn magic can
    // only be our own crash during creation — there are no records yet.
    open_stats_.dropped_bytes = data.size();
    open_stats_.recovered_tail = !data.empty();
    if (::ftruncate(fd_, 0) != 0) fail("cannot reset", path_);
    if (::lseek(fd_, 0, SEEK_SET) < 0) fail("cannot seek", path_);
    write_fully(fd_, kMagic, sizeof(kMagic), path_);
    if (::fsync(fd_) != 0) fail("cannot fsync", path_);
    fsync_parent_dir(path_);
  }
}

RunJournal::~RunJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void RunJournal::append(std::string_view payload) {
  // One frame, one write(), one fsync: the only torn state a crash can
  // leave is a short tail, which the next open truncates away.
  const std::string frame = encode_frame(payload);

  std::lock_guard<std::mutex> lock(mutex_);
  write_fully(fd_, frame.data(), frame.size(), path_);
  if (::fsync(fd_) != 0) fail("cannot fsync", path_);
  ++appended_;
}

std::size_t RunJournal::appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

}  // namespace redspot
