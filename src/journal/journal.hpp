// Durable write-ahead run journal.
//
// RunJournal is an append-only log of length-prefixed, CRC-32-checksummed
// records persisted after every completed unit of work (an ensemble shard,
// a sweep chunk — see run_record.hpp for the payload schemas). The framing
// is what makes a rerun crash-safe:
//
//   file   := magic "RSPJNL01" , record*
//   record := u32 payload_len , u32 crc32(payload) , payload
//
// (integers little-endian). Appends are a single write() followed by an
// fsync, so a crash — SIGKILL, OOM, power loss — can only ever produce a
// torn *tail*. On open, the file is scanned front to back; the first
// record whose frame is incomplete or whose checksum mismatches ends the
// intact prefix, everything after it is counted as dropped and the file is
// truncated back to the prefix, and appends resume from there. A record is
// therefore either replayable in full or recomputed; no half-written state
// is ever trusted. Thread-safe for concurrent appends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace redspot {

class RunJournal {
 public:
  /// What the opening scan found. `dropped_bytes` > 0 means a torn or
  /// corrupt tail was detected and truncated away (those units of work
  /// will be recomputed).
  struct OpenStats {
    std::size_t intact_records = 0;
    std::size_t dropped_bytes = 0;
    bool recovered_tail = false;
  };

  /// Opens (creating if absent) the journal at `path`, scans and recovers
  /// it. Throws std::runtime_error if the file cannot be opened, or if it
  /// exists but does not carry the journal magic (to avoid silently
  /// destroying an unrelated file).
  explicit RunJournal(std::string path);
  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  const std::string& path() const { return path_; }
  const OpenStats& open_stats() const { return open_stats_; }

  /// The intact record payloads found when the journal was opened (the
  /// replayable prefix). Appends made through this handle are NOT added
  /// here — they become visible to the next open.
  const std::vector<std::string>& records() const { return records_; }

  /// Appends one record and flushes it to disk before returning (write-
  /// ahead durability: once append returns, a crash cannot lose it).
  /// Thread-safe. Throws std::runtime_error on I/O failure.
  void append(std::string_view payload);

  /// Records appended through this handle (not counting the replayed
  /// prefix).
  std::size_t appended() const;

  static constexpr char kMagic[8] = {'R', 'S', 'P', 'J', 'N', 'L', '0', '1'};
  /// Conventional file name inside a --journal directory.
  static constexpr const char* kFileName = "run.journal";

 private:
  std::string path_;
  int fd_ = -1;
  OpenStats open_stats_;
  std::vector<std::string> records_;
  mutable std::mutex mutex_;
  std::size_t appended_ = 0;
};

}  // namespace redspot
