#include "journal/run_record.hpp"

#include "common/check.hpp"
#include "common/frame.hpp"

namespace redspot {

namespace {

// Byte layout rides the shared little-endian codec in common/frame.hpp
// (the same primitives the fabric wire protocol uses). Readers are
// bounds-checked and signal failure by returning false — a malformed
// record must decode to "recompute", never to UB.
using Reader = ByteReader;

constexpr std::uint8_t kFlagCompleted = 1u << 0;
constexpr std::uint8_t kFlagMetDeadline = 1u << 1;
constexpr std::uint8_t kFlagSwitched = 1u << 2;

void encode_run(std::string& out, const RunResult& r) {
  put_i64(out, r.total_cost.micros());
  put_i64(out, r.spot_cost.micros());
  put_i64(out, r.on_demand_cost.micros());
  std::uint8_t flags = 0;
  if (r.completed) flags |= kFlagCompleted;
  if (r.met_deadline) flags |= kFlagMetDeadline;
  if (r.switched_to_on_demand) flags |= kFlagSwitched;
  put_u8(out, flags);
  put_i64(out, r.finish_time);
  put_i32(out, r.checkpoints_committed);
  put_i32(out, r.restarts);
  put_i32(out, r.out_of_bid_terminations);
  put_i32(out, r.full_outages);
  put_i32(out, r.config_changes);
  put_i64(out, r.spot_instance_seconds);
  put_i64(out, r.on_demand_seconds);
  put_i64(out, r.queue_delay_total);
  put_i64(out, r.committed_progress);
  put_i32(out, r.faults.ckpt_write_failures);
  put_i32(out, r.faults.ckpt_corruptions);
  put_i32(out, r.faults.restart_failures);
  put_i32(out, r.faults.request_rejections);
  put_i32(out, r.faults.notices_dropped);
  put_i32(out, r.faults.notices_late);
  put_i64(out, r.faults.backoff_total);
}

bool decode_run(Reader& in, RunResult* r) {
  std::int64_t total = 0, spot = 0, od = 0;
  std::uint8_t flags = 0;
  if (!in.i64(&total) || !in.i64(&spot) || !in.i64(&od) || !in.u8(&flags))
    return false;
  r->total_cost = Money::from_micros(total);
  r->spot_cost = Money::from_micros(spot);
  r->on_demand_cost = Money::from_micros(od);
  r->completed = (flags & kFlagCompleted) != 0;
  r->met_deadline = (flags & kFlagMetDeadline) != 0;
  r->switched_to_on_demand = (flags & kFlagSwitched) != 0;
  return in.i64(&r->finish_time) && in.i32(&r->checkpoints_committed) &&
         in.i32(&r->restarts) && in.i32(&r->out_of_bid_terminations) &&
         in.i32(&r->full_outages) && in.i32(&r->config_changes) &&
         in.i64(&r->spot_instance_seconds) && in.i64(&r->on_demand_seconds) &&
         in.i64(&r->queue_delay_total) && in.i64(&r->committed_progress) &&
         in.i32(&r->faults.ckpt_write_failures) &&
         in.i32(&r->faults.ckpt_corruptions) &&
         in.i32(&r->faults.restart_failures) &&
         in.i32(&r->faults.request_rejections) &&
         in.i32(&r->faults.notices_dropped) &&
         in.i32(&r->faults.notices_late) && in.i64(&r->faults.backoff_total);
}

}  // namespace

std::optional<RecordType> record_type(std::string_view payload) {
  Reader in(payload);
  std::uint32_t tag = 0;
  if (!in.u32(&tag)) return std::nullopt;
  switch (static_cast<RecordType>(tag)) {
    case RecordType::kEnsembleShard:
    case RecordType::kSweepChunk:
    case RecordType::kCleanStop:
    case RecordType::kFabricLease:
      return static_cast<RecordType>(tag);
  }
  return std::nullopt;
}

ShardRecordBuilder::ShardRecordBuilder(std::uint64_t spec_hash,
                                       std::uint64_t shard, std::uint64_t lo,
                                       std::uint64_t hi,
                                       std::uint32_t num_configs)
    : expected_((hi - lo) * num_configs) {
  REDSPOT_CHECK(lo <= hi);
  put_u32(buf_, static_cast<std::uint32_t>(RecordType::kEnsembleShard));
  put_u64(buf_, spec_hash);
  put_u64(buf_, shard);
  put_u64(buf_, lo);
  put_u64(buf_, hi);
  put_u32(buf_, num_configs);
}

void ShardRecordBuilder::add_run(const RunResult& r) {
  ++added_;
  REDSPOT_CHECK_MSG(added_ <= expected_, "shard record overflow");
  encode_run(buf_, r);
}

const std::string& ShardRecordBuilder::payload() const {
  REDSPOT_CHECK_MSG(added_ == expected_,
                    "shard record incomplete: " << added_ << " of "
                                                << expected_ << " runs");
  return buf_;
}

std::optional<EnsembleShardRecord> decode_ensemble_shard(
    std::string_view payload) {
  Reader in(payload);
  std::uint32_t tag = 0;
  EnsembleShardRecord rec;
  if (!in.u32(&tag) ||
      tag != static_cast<std::uint32_t>(RecordType::kEnsembleShard))
    return std::nullopt;
  if (!in.u64(&rec.spec_hash) || !in.u64(&rec.shard) || !in.u64(&rec.lo) ||
      !in.u64(&rec.hi) || !in.u32(&rec.num_configs))
    return std::nullopt;
  if (rec.hi < rec.lo) return std::nullopt;
  const std::uint64_t count = (rec.hi - rec.lo) * rec.num_configs;
  // The framing layer already bounds payload size; this guards against a
  // CRC-valid record of a future/foreign schema claiming a silly count.
  if (count > payload.size()) return std::nullopt;
  rec.runs.resize(static_cast<std::size_t>(count));
  for (RunResult& r : rec.runs) {
    if (!decode_run(in, &r)) return std::nullopt;
  }
  if (!in.done()) return std::nullopt;
  return rec;
}

std::string encode_sweep_chunk(std::uint64_t sweep_key, std::uint64_t chunk,
                               const RunResult& run) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(RecordType::kSweepChunk));
  put_u64(out, sweep_key);
  put_u64(out, chunk);
  encode_run(out, run);
  return out;
}

std::optional<SweepChunkRecord> decode_sweep_chunk(std::string_view payload) {
  Reader in(payload);
  std::uint32_t tag = 0;
  SweepChunkRecord rec;
  if (!in.u32(&tag) ||
      tag != static_cast<std::uint32_t>(RecordType::kSweepChunk))
    return std::nullopt;
  if (!in.u64(&rec.sweep_key) || !in.u64(&rec.chunk)) return std::nullopt;
  if (!decode_run(in, &rec.run) || !in.done()) return std::nullopt;
  return rec;
}

std::string encode_fabric_lease(const FabricLeaseRecord& r) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(RecordType::kFabricLease));
  put_u64(out, r.spec_hash);
  put_u64(out, r.lease_id);
  put_u64(out, r.shard_lo);
  put_u64(out, r.shard_hi);
  put_u64(out, r.attempt);
  put_u64(out, r.worker);
  return out;
}

std::optional<FabricLeaseRecord> decode_fabric_lease(std::string_view payload) {
  Reader in(payload);
  std::uint32_t tag = 0;
  FabricLeaseRecord rec;
  if (!in.u32(&tag) ||
      tag != static_cast<std::uint32_t>(RecordType::kFabricLease))
    return std::nullopt;
  if (!in.u64(&rec.spec_hash) || !in.u64(&rec.lease_id) ||
      !in.u64(&rec.shard_lo) || !in.u64(&rec.shard_hi) ||
      !in.u64(&rec.attempt) || !in.u64(&rec.worker) || !in.done())
    return std::nullopt;
  if (rec.shard_hi < rec.shard_lo) return std::nullopt;
  return rec;
}

std::string encode_clean_stop(const CleanStopRecord& r) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(RecordType::kCleanStop));
  put_u64(out, r.key);
  put_u64(out, r.units_done);
  put_u64(out, r.units_total);
  return out;
}

std::optional<CleanStopRecord> decode_clean_stop(std::string_view payload) {
  Reader in(payload);
  std::uint32_t tag = 0;
  CleanStopRecord rec;
  if (!in.u32(&tag) ||
      tag != static_cast<std::uint32_t>(RecordType::kCleanStop))
    return std::nullopt;
  if (!in.u64(&rec.key) || !in.u64(&rec.units_done) ||
      !in.u64(&rec.units_total) || !in.done())
    return std::nullopt;
  return rec;
}

}  // namespace redspot
