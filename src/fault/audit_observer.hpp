// Run auditing as an engine observer.
//
// Attach an AuditObserver before Engine::run() and every finished run is
// checked against RunValidator's invariants the moment its result settles
// — the observer-layer replacement for calling check() by hand after
// run() returns. A violation throws CheckFailure out of run(), so a
// broken guarantee can never silently skew a table or figure.
//
//   AuditObserver audit(experiment, market.on_demand_rate());
//   engine.add_observer(&audit);
//   RunResult r = engine.run();  // throws if the result is unsound
#pragma once

#include "core/events/observer.hpp"
#include "fault/run_validator.hpp"

namespace redspot {

class AuditObserver final : public EngineObserver {
 public:
  AuditObserver(Experiment experiment, Money on_demand_rate,
                AuditMode mode = AuditMode::kFull,
                MarketRegime regime = MarketRegime::classic_2012())
      : validator_(std::move(experiment), on_demand_rate, std::move(regime)),
        mode_(mode) {}

  void on_finish(const RunResult& result) override {
    validator_.check(result, mode_);
  }

 private:
  RunValidator validator_;
  AuditMode mode_;
};

}  // namespace redspot
