// Post-run auditor.
//
// Every RunResult — fault-free or fault-injected — must satisfy a set of
// invariants that follow from the billing rules (Section 2.1) and the
// deadline guarantee (Algorithm 1): the run completed by the deadline or
// switched to on-demand, costs decompose exactly into their line items, no
// out-of-bid partial hour was charged, and committed progress only ever
// reflects verified checkpoints. RunValidator re-derives each invariant
// from the recorded result; the exp/ sweeps audit every run so a broken
// guarantee can never silently skew a table or figure.
#pragma once

#include <string>
#include <vector>

#include "common/money.hpp"
#include "core/experiment.hpp"
#include "core/run_result.hpp"
#include "market/regime.hpp"

namespace redspot {

/// What kind of RunResult is being audited.
///
/// kFull audits a freshly simulated result, including the cross-checks
/// that re-derive counters from the recorded checkpoint log. kReplay
/// audits a compact result decoded from the run journal
/// (journal/run_record.hpp), which carries every scalar but not the
/// per-run logs — the log-derived cross-checks are skipped, everything
/// else (outcome consistency, counter signs, exact cost decomposition,
/// billing arithmetic) still holds and still gates acceptance of a
/// replayed record.
enum class AuditMode { kFull, kReplay };

/// Audits RunResults of one experiment configuration.
class RunValidator {
 public:
  /// `on_demand_rate` is the fallback rate the engine switched to (the
  /// market's on-demand price, $2.40/h in the paper). `regime` must match
  /// the EngineOptions the run executed under — the billing invariants
  /// (on-demand arithmetic, partial-cycle charges, the out-of-bid refund)
  /// are regime-dependent.
  RunValidator(Experiment experiment, Money on_demand_rate,
               MarketRegime regime = MarketRegime::classic_2012());

  /// Checks every invariant; returns one human-readable line per
  /// violation (empty = the run is sound). Never throws.
  std::vector<std::string> audit(const RunResult& r,
                                 AuditMode mode = AuditMode::kFull) const;

  /// Throws CheckFailure listing all violations when audit() is non-empty.
  void check(const RunResult& r, AuditMode mode = AuditMode::kFull) const;

 private:
  Experiment experiment_;
  Money on_demand_rate_;
  MarketRegime regime_;
};

}  // namespace redspot
