#include "fault/run_validator.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace redspot {

namespace {

/// Accumulates violation lines with printf-free stream formatting.
class Violations {
 public:
  template <typename... Parts>
  void add(const Parts&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    lines_.push_back(os.str());
  }

  std::vector<std::string> take() { return std::move(lines_); }

 private:
  std::vector<std::string> lines_;
};

}  // namespace

RunValidator::RunValidator(Experiment experiment, Money on_demand_rate,
                           MarketRegime regime)
    : experiment_(experiment),
      on_demand_rate_(on_demand_rate),
      regime_(std::move(regime)) {
  experiment_.validate();
  REDSPOT_CHECK(on_demand_rate > Money());
}

std::vector<std::string> RunValidator::audit(const RunResult& r,
                                             AuditMode mode) const {
  Violations v;
  const SimTime start = experiment_.start;
  const SimTime deadline = experiment_.deadline_time();

  // --- outcome: the engine's whole contract is completion by deadline ----
  if (!r.completed) v.add("run did not complete");
  if (r.finish_time < start)
    v.add("finish_time ", format_time(r.finish_time),
          " precedes the experiment start");
  if (r.completed && r.finish_time > deadline)
    v.add("deadline missed: finished at ", format_time(r.finish_time),
          " vs deadline ", format_time(deadline));
  if (r.met_deadline != (r.completed && r.finish_time <= deadline))
    v.add("met_deadline flag inconsistent with finish_time");

  // --- counters ----------------------------------------------------------
  if (r.checkpoints_committed < 0 || r.restarts < 0 ||
      r.out_of_bid_terminations < 0 || r.full_outages < 0 ||
      r.config_changes < 0)
    v.add("negative accounting counter");
  if (r.spot_instance_seconds < 0 || r.on_demand_seconds < 0 ||
      r.queue_delay_total < 0)
    v.add("negative duration counter");
  if (r.faults.ckpt_write_failures < 0 || r.faults.ckpt_corruptions < 0 ||
      r.faults.restart_failures < 0 || r.faults.request_rejections < 0 ||
      r.faults.notices_dropped < 0 || r.faults.notices_late < 0 ||
      r.faults.backoff_total < 0)
    v.add("negative fault counter");

  // --- cost decomposition ------------------------------------------------
  if (r.total_cost != r.spot_cost + r.on_demand_cost)
    v.add("total_cost ", r.total_cost.str(), " != spot ", r.spot_cost.str(),
          " + on-demand ", r.on_demand_cost.str());
  if (r.spot_cost < Money() || r.on_demand_cost < Money())
    v.add("negative cost component");
  if (!r.switched_to_on_demand && r.on_demand_cost != Money())
    v.add("on-demand charge ", r.on_demand_cost.str(),
          " without an on-demand switch");
  // On-demand bills per started hour (classic) or prorated per second with
  // the minimum charge; a switch with all progress already committed
  // legitimately uses (and pays) nothing.
  if (regime_.billing.granularity == BillingGranularity::kPerSecond) {
    const Money expected =
        r.on_demand_seconds > 0
            ? prorate_hourly(on_demand_rate_,
                             std::max(r.on_demand_seconds,
                                      regime_.billing.minimum))
            : Money();
    if (r.on_demand_cost != expected)
      v.add("on-demand cost ", r.on_demand_cost.str(),
            " != per-second rate over ", r.on_demand_seconds, " s");
  } else {
    const std::int64_t od_hours = started_hours(r.on_demand_seconds);
    if (r.on_demand_cost != on_demand_rate_ * od_hours)
      v.add("on-demand cost ", r.on_demand_cost.str(), " != rate x ",
            od_hours, " started hours");
  }
  if (!r.switched_to_on_demand && r.on_demand_seconds != 0)
    v.add("on-demand seconds without an on-demand switch");

  // --- checkpoint log ----------------------------------------------------
  // Journal-replayed records carry the scalar summary but not the log
  // itself; re-deriving the counters from an (empty) log would flag every
  // replayed run, so the cross-checks below are full-audit only. The
  // range check on committed_progress still applies either way.
  if (mode == AuditMode::kReplay) {
    if (r.committed_progress < 0 ||
        r.committed_progress > experiment_.app.total_compute)
      v.add("committed progress ", format_duration(r.committed_progress),
            " outside [0, C]");
    return v.take();
  }
  Duration best_valid = 0;
  std::size_t valid = 0, invalidated = 0;
  SimTime prev_commit = start;
  for (const Checkpoint& c : r.checkpoint_log) {
    if (c.committed_at < prev_commit)
      v.add("checkpoint commit times go back in time at ",
            format_time(c.committed_at));
    prev_commit = c.committed_at;
    if (c.committed_at > r.finish_time)
      v.add("checkpoint committed after the run finished");
    if (c.progress < 0 || c.progress > experiment_.app.total_compute)
      v.add("checkpoint progress ", format_duration(c.progress),
            " outside [0, C]");
    if (c.valid) {
      ++valid;
      best_valid = std::max(best_valid, c.progress);
    } else {
      ++invalidated;
    }
  }
  if (static_cast<int>(valid) != r.checkpoints_committed)
    v.add("checkpoints_committed=", r.checkpoints_committed, " but ", valid,
          " valid entries in the log");
  if (static_cast<int>(invalidated) != r.faults.ckpt_corruptions)
    v.add("invalidated checkpoints=", invalidated,
          " != recorded corruptions=", r.faults.ckpt_corruptions);
  if (r.committed_progress != best_valid)
    v.add("committed_progress ", format_duration(r.committed_progress),
          " != best valid checkpoint ", format_duration(best_valid));

  // --- line items (when recorded) ----------------------------------------
  if (!r.line_items.empty()) {
    Money spot, on_demand;
    for (const LineItem& item : r.line_items) {
      if (item.amount < Money())
        v.add("negative line item of ", item.amount.str());
      switch (item.kind) {
        case LineItem::Kind::kSpotHour:
          if (item.charged_at - item.cycle_start != kHour)
            v.add("spot hour at ", format_time(item.cycle_start),
                  " not charged at its boundary");
          spot += item.amount;
          break;
        case LineItem::Kind::kSpotUserPartial: {
          // used == 0 is legal: a termination landing exactly on the cycle
          // boundary still pays the hour that just started.
          const Duration used = item.charged_at - item.cycle_start;
          if (used < 0 || used > kHour)
            v.add("user-terminated cycle at ", format_time(item.cycle_start),
                  " spans ", format_duration(used));
          spot += item.amount;
          break;
        }
        case LineItem::Kind::kSpotUsage: {
          // Per-second partial-cycle charge (user stop or a charging
          // refund rule); never spans more than the cycle.
          const Duration used = item.charged_at - item.cycle_start;
          if (used < 0 || used > kHour)
            v.add("per-second spot usage at ", format_time(item.cycle_start),
                  " spans ", format_duration(used));
          spot += item.amount;
          break;
        }
        case LineItem::Kind::kOnDemandHour:
        case LineItem::Kind::kOnDemandUsage:
          on_demand += item.amount;
          break;
      }
    }
    if (spot != r.spot_cost)
      v.add("spot line items sum to ", spot.str(), " != spot_cost ",
            r.spot_cost.str());
    if (on_demand != r.on_demand_cost)
      v.add("on-demand line items sum to ", on_demand.str(),
            " != on_demand_cost ", r.on_demand_cost.str());
  }

  // --- timeline (when recorded) ------------------------------------------
  if (!r.timeline.empty()) {
    SimTime prev = start;
    for (const TimelineEvent& e : r.timeline) {
      if (e.time < prev)
        v.add("timeline goes back in time at ", format_time(e.time));
      prev = e.time;
    }
    // No charge for out-of-bid partial hours: an EC2 termination must not
    // coincide with a full-hour user charge for the same zone. Only the
    // classic refund rule promises this — charging refund rules bill
    // exactly there by design.
    if (regime_.billing.refund == RefundRule::kProviderForfeitsCycle) {
      for (const TimelineEvent& e : r.timeline) {
        if (e.kind != TimelineKind::kOutOfBid) continue;
        for (const LineItem& item : r.line_items) {
          if (item.kind == LineItem::Kind::kSpotUserPartial &&
              item.zone == e.zone && item.charged_at == e.time)
            v.add("zone ", e.zone, " charged a partial hour at its "
                  "out-of-bid termination ", format_time(e.time));
        }
      }
    }
  }

  return v.take();
}

void RunValidator::check(const RunResult& r, AuditMode mode) const {
  const std::vector<std::string> violations = audit(r, mode);
  if (violations.empty()) return;
  std::ostringstream os;
  os << violations.size() << " run invariant(s) violated:";
  for (const std::string& line : violations) os << "\n  - " << line;
  throw CheckFailure(os.str());
}

}  // namespace redspot
