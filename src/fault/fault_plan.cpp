#include "fault/fault_plan.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

Duration backoff_delay(const BackoffPolicy& policy, int attempt,
                       double jitter_draw) {
  REDSPOT_CHECK(attempt >= 1);
  Duration d = policy.base;
  for (int i = 1; i < attempt && d < policy.cap; ++i) d *= 2;
  d = std::min(d, policy.cap);
  if (policy.jitter > 0.0) {
    d += static_cast<Duration>(static_cast<double>(d) * policy.jitter *
                               jitter_draw);
  }
  return d;
}

bool FaultPlan::enabled() const {
  return ckpt_write_failure_rate > 0.0 || ckpt_corruption_rate > 0.0 ||
         restart_failure_rate > 0.0 || request_rejection_rate > 0.0 ||
         notice_drop_rate > 0.0 || notice_late_rate > 0.0 ||
         !store_outages.empty();
}

void FaultPlan::validate() const {
  const double rates[] = {ckpt_write_failure_rate, ckpt_corruption_rate,
                          restart_failure_rate,    request_rejection_rate,
                          notice_drop_rate,        notice_late_rate};
  for (double r : rates)
    REDSPOT_CHECK_MSG(r >= 0.0 && r <= 1.0,
                      "fault rate must be in [0, 1], got " << r);
  REDSPOT_CHECK_MSG(ckpt_write_failure_rate + ckpt_corruption_rate <= 1.0,
                    "checkpoint failure + corruption rates exceed 1");
  REDSPOT_CHECK(notice_max_lag >= 0);
  for (const StoreOutage& o : store_outages)
    REDSPOT_CHECK_MSG(o.start < o.end, "empty/inverted outage window ["
                                           << o.start << ", " << o.end
                                           << ")");
  REDSPOT_CHECK_MSG(backoff.base > 0, "backoff base must be positive");
  REDSPOT_CHECK_MSG(backoff.cap >= backoff.base,
                    "backoff cap below backoff base");
  REDSPOT_CHECK_MSG(backoff.jitter >= 0.0 && backoff.jitter <= 1.0,
                    "backoff jitter must be in [0, 1]");
}

}  // namespace redspot
