// Declarative fault model for the scheduling engine.
//
// The paper (Section 5) idealizes everything outside the spot price process:
// the on-demand I/O server never fails, every spot request is eventually
// fulfilled, and terminations are either abrupt or cleanly announced. Real
// deployments are dominated by exactly those failures (Voorsluys & Buyya,
// arXiv:1110.5969; Alourani & Kshemkalyani, arXiv:2003.13846). A FaultPlan
// declares per-class fault rates and outage windows; a FaultInjector draws
// deterministic fault decisions from it so every faulty run is replayable.
//
// An all-zero plan is a strict no-op: the engine consults the injector only
// through queries that short-circuit without consuming randomness when the
// corresponding rate is zero, so disabled-fault runs reproduce the seed
// benchmarks bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace redspot {

/// A window [start, end) during which the checkpoint store (the on-demand
/// I/O server) is unreachable: no checkpoint write can commit.
struct StoreOutage {
  SimTime start = 0;
  SimTime end = 0;
};

/// Exponential backoff with multiplicative jitter for retried spot
/// requests: attempt k (1-based) waits base * 2^(k-1), capped at `cap`,
/// stretched by up to `jitter` of itself (uniform), so synchronized
/// rejections do not resubmit in lock-step.
struct BackoffPolicy {
  Duration base = 30;
  Duration cap = 10 * kMinute;
  double jitter = 0.5;
};

/// Delay before attempt k (1-based) under `policy`: base * 2^(k-1), capped
/// at `cap`, stretched by `jitter_draw` (uniform in [0, 1)) times the
/// policy's jitter fraction of itself. Pure — the caller supplies the
/// random draw — so the same policy shape serves both simulated time
/// (FaultInjector, seconds) and wall-clock time (fabric worker reconnects,
/// milliseconds).
Duration backoff_delay(const BackoffPolicy& policy, int attempt,
                       double jitter_draw);

/// Per-class fault rates. Every rate is a per-event probability in [0, 1];
/// zero disables the class entirely (no RNG is consumed for it).
struct FaultPlan {
  /// A finished checkpoint write reports failure; nothing commits.
  double ckpt_write_failure_rate = 0.0;
  /// A finished checkpoint write reports success but the data is bad; the
  /// store's post-write validation catches it and rolls the commit back.
  double ckpt_corruption_rate = 0.0;
  /// A completed restart/load fails; the zone retries the load (paying
  /// t_r again) from the newest verified checkpoint.
  double restart_failure_rate = 0.0;
  /// A spot request reaching the front of the queue is rejected (EC2
  /// "insufficient capacity"); retried with exponential backoff.
  double request_rejection_rate = 0.0;
  /// A termination notice (EngineOptions::termination_notice > 0) never
  /// arrives: the instance dies abruptly, as in the 2013 market.
  double notice_drop_rate = 0.0;
  /// A termination notice arrives late, shrinking the usable warning.
  double notice_late_rate = 0.0;
  /// Maximum notice delivery lag when a notice is late.
  Duration notice_max_lag = 2 * kMinute;
  /// Windows during which no checkpoint can commit (writes fail
  /// deterministically, independent of ckpt_write_failure_rate).
  std::vector<StoreOutage> store_outages;
  BackoffPolicy backoff;

  /// True when any fault class can fire.
  bool enabled() const;

  /// Throws CheckFailure on malformed plans (rates outside [0, 1],
  /// inverted outage windows, nonsense backoff).
  void validate() const;
};

}  // namespace redspot
