// Deterministic, seeded fault injection.
//
// Each fault class draws from its own RNG stream (derived from the
// experiment seed), so enabling one class never perturbs the decision
// sequence of another — a run with 5% checkpoint failures sees the same
// request rejections whether or not corruption is also enabled. Queries
// whose rate is zero return false without consuming randomness, which is
// what makes an all-zero FaultPlan a bit-for-bit no-op.
#pragma once

#include <cstdint>

#include "common/random.hpp"
#include "common/time.hpp"
#include "fault/fault_plan.hpp"

namespace redspot {

class FaultInjector {
 public:
  /// Validates and captures `plan`; decision streams derive from `seed`.
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  bool enabled() const { return enabled_; }
  const FaultPlan& plan() const { return plan_; }

  /// True when the store cannot accept a commit at `t` (outage window).
  bool store_unreachable(SimTime t) const;

  /// Decides the fate of a checkpoint write finishing at `t`: failure
  /// (outage or random write error). Consumes one draw iff the rate > 0.
  bool checkpoint_write_fails(SimTime t);

  /// Decides whether a (non-failed) checkpoint write silently corrupted.
  bool checkpoint_corrupts();

  /// Decides whether a completed restart/load fails.
  bool restart_fails();

  /// Decides whether a spot request is rejected at fulfilment time.
  bool request_rejected();

  /// Decides whether a termination notice is dropped entirely.
  bool notice_dropped();

  /// Delivery lag of a termination notice with `notice` seconds of nominal
  /// warning: 0 when on time, otherwise in [1, min(notice, max_lag)].
  Duration notice_lag(Duration notice);

  /// Fate of a termination notice with `notice` seconds of nominal
  /// warning. A dropped notice never draws a lag (lag stays 0), so the
  /// notice stream advances exactly as the separate queries would.
  struct NoticeDelivery {
    bool dropped = false;
    Duration lag = 0;
  };
  NoticeDelivery notice_delivery(Duration notice);

  /// Backoff before retry `attempt` (1-based) of a rejected spot request:
  /// exponential in the attempt, capped, with multiplicative jitter.
  Duration backoff_delay(int attempt);

 private:
  FaultPlan plan_;
  bool enabled_;
  Rng ckpt_rng_;
  Rng corrupt_rng_;
  Rng restart_rng_;
  Rng request_rng_;
  Rng notice_rng_;
  Rng backoff_rng_;
};

}  // namespace redspot
