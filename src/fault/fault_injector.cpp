#include "fault/fault_injector.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

namespace {

// Stream ids keep each fault class on an independent decision sequence.
constexpr std::uint64_t kCkptStream = 0xFA010;
constexpr std::uint64_t kCorruptStream = 0xFA020;
constexpr std::uint64_t kRestartStream = 0xFA030;
constexpr std::uint64_t kRequestStream = 0xFA040;
constexpr std::uint64_t kNoticeStream = 0xFA050;
constexpr std::uint64_t kBackoffStream = 0xFA060;

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)),
      enabled_(plan_.enabled()),
      ckpt_rng_(seed, kCkptStream),
      corrupt_rng_(seed, kCorruptStream),
      restart_rng_(seed, kRestartStream),
      request_rng_(seed, kRequestStream),
      notice_rng_(seed, kNoticeStream),
      backoff_rng_(seed, kBackoffStream) {
  plan_.validate();
}

bool FaultInjector::store_unreachable(SimTime t) const {
  for (const StoreOutage& o : plan_.store_outages)
    if (t >= o.start && t < o.end) return true;
  return false;
}

bool FaultInjector::checkpoint_write_fails(SimTime t) {
  if (store_unreachable(t)) return true;
  if (plan_.ckpt_write_failure_rate <= 0.0) return false;
  return ckpt_rng_.bernoulli(plan_.ckpt_write_failure_rate);
}

bool FaultInjector::checkpoint_corrupts() {
  if (plan_.ckpt_corruption_rate <= 0.0) return false;
  return corrupt_rng_.bernoulli(plan_.ckpt_corruption_rate);
}

bool FaultInjector::restart_fails() {
  if (plan_.restart_failure_rate <= 0.0) return false;
  return restart_rng_.bernoulli(plan_.restart_failure_rate);
}

bool FaultInjector::request_rejected() {
  if (plan_.request_rejection_rate <= 0.0) return false;
  return request_rng_.bernoulli(plan_.request_rejection_rate);
}

bool FaultInjector::notice_dropped() {
  if (plan_.notice_drop_rate <= 0.0) return false;
  return notice_rng_.bernoulli(plan_.notice_drop_rate);
}

Duration FaultInjector::notice_lag(Duration notice) {
  REDSPOT_CHECK(notice > 0);
  if (plan_.notice_late_rate <= 0.0 || plan_.notice_max_lag <= 0) return 0;
  if (!notice_rng_.bernoulli(plan_.notice_late_rate)) return 0;
  const Duration max_lag = std::min(plan_.notice_max_lag, notice);
  return 1 + static_cast<Duration>(notice_rng_.uniform_index(
                 static_cast<std::uint64_t>(max_lag)));
}

FaultInjector::NoticeDelivery FaultInjector::notice_delivery(
    Duration notice) {
  if (notice_dropped()) return {true, 0};
  return {false, notice_lag(notice)};
}

Duration FaultInjector::backoff_delay(int attempt) {
  // The RNG is consumed only when jitter can matter, preserving the
  // no-fault bit-identity contract (an all-zero-jitter plan draws nothing).
  const double draw =
      plan_.backoff.jitter > 0.0 ? backoff_rng_.uniform() : 0.0;
  return redspot::backoff_delay(plan_.backoff, attempt, draw);
}

}  // namespace redspot
