// The EngineView read surface: what policies and strategies may observe.
#include <algorithm>

#include "core/batch/trace_index.hpp"
#include "core/engine.hpp"

namespace redspot {

Money Engine::previous_price(std::size_t zone) const {
  const SimTime prev = now() - market_->traces().step();
  if (prev < market_->trace_start()) return price(zone);
  return market_->spot_price(zone, prev);
}

PriceView Engine::history(std::size_t zone) const {
  const SimTime from =
      std::max(market_->trace_start(), now() - experiment_.history_span);
  // At the very start of the trace there is no history yet; expose the
  // current sample so Markov-based policies still get a (degenerate) model.
  const SimTime to = std::max(now(), from + 1);
  return market_->traces().zone(zone).view(from, to);
}

Money Engine::min_observed_price(std::size_t zone) const {
  // min over the view — no window materialization. Batched runs answer
  // from the shared sparse-table index instead of the O(window) scan;
  // exact integer minimum either way, so the two paths are bit-identical.
  const PriceView h = history(zone);
  if (shared_trace_ != nullptr) return shared_trace_->min_over(zone, h);
  return h.min_price();
}

Duration Engine::zone_progress(std::size_t zone) const {
  return zone_at(zone).progress(now());
}

Duration Engine::leading_progress() const {
  Duration best = store_.latest_progress();
  for (std::size_t z : config_.zones) {
    if (zone_running(z)) best = std::max(best, zone_progress(z));
  }
  return best;
}

SimTime Engine::leading_compute_since() const {
  Duration best = -1;
  SimTime since = kNever;
  for (std::size_t z : config_.zones) {
    if (!zone_at(z).computing()) continue;
    const Duration p = zone_progress(z);
    if (p > best) {
      best = p;
      since = zone_at(z).computing_since();
    }
  }
  return since;
}

std::optional<std::size_t> Engine::leading_zone() const {
  Duration best = -1;
  std::optional<std::size_t> leader;
  for (std::size_t z : config_.zones) {
    if (!zone_at(z).computing()) continue;
    const Duration p = zone_progress(z);
    if (p > best) {
      best = p;
      leader = z;
    }
  }
  return leader;
}

}  // namespace redspot
