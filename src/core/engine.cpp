// Engine construction, the run loop, and completion — the orchestration
// core. Handler bodies live with the module they choreograph:
//   zone/engine_lifecycle.cpp          price ticks, instance lifecycle
//   engine_checkpointing.cpp           checkpoint start/settlement
//   billing_ledger/engine_cycle_hooks.cpp  cycle boundaries, pre-boundary
//   deadline/engine_switchover.cpp     deadline trigger, on-demand switch
//   engine_reconfigure.cpp             strategy consults, config changes
//   engine_view.cpp                    the EngineView read surface
#include "core/engine.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace redspot {

namespace {

/// Queue-delay draws get their own RNG stream id.
constexpr std::uint64_t kQueueStream = 0x51DE;

}  // namespace

Engine::Engine(const SpotMarket& market, Experiment experiment,
               Strategy& strategy, EngineOptions options)
    : market_(&market),
      experiment_(experiment),
      strategy_(&strategy),
      options_(options),
      queue_(experiment.start),
      queue_rng_(experiment.seed, kQueueStream),
      injector_(options.faults, experiment.seed),
      monitor_(queue_,
               DeadlineParams{experiment.app.total_compute,
                              experiment.costs.checkpoint,
                              experiment.costs.restart,
                              experiment.deadline_time(),
                              options.regime.rebalance_notice},
               [this] { on_deadline_trigger(); }),
      fault_recorder_(&result_.faults) {
  experiment_.validate();
  REDSPOT_CHECK_MSG(options_.termination_notice == 0 ||
                        options_.regime.rebalance_notice == 0,
                    "the Appendix-A termination_notice ablation and the "
                    "regime rebalance notice are mutually exclusive");
  billing_.set_rules(options_.regime.billing);
  REDSPOT_CHECK_MSG(market.trace_start() <= experiment_.start,
                    "trace starts after the experiment");
  REDSPOT_CHECK_MSG(market.trace_end() >= experiment_.deadline_time(),
                    "trace ends before the experiment deadline");
  zones_.reserve(market.num_zones());
  for (std::size_t z = 0; z < market.num_zones(); ++z)
    zones_.emplace_back(z, static_cast<ZoneTransitionSink*>(this));
  billing_.set_sink([this](const LineItem& item) {
    for (EngineObserver* o : observers_) o->on_billing(item);
  });
  // The engine's own fault accounting rides the observer layer too. It is
  // not a queue observer (no on_event need), keeping the calendar's
  // zero-observer fast path for unobserved runs.
  observers_.push_back(&fault_recorder_);
  queue_.set_sink(this);
}

void Engine::on_queue_event(EventKind kind, std::size_t zone) {
  switch (kind) {
    case EventKind::kPriceTick:
      on_price_tick();
      return;
    case EventKind::kInstanceReady:
      on_instance_ready(zone);
      return;
    case EventKind::kRestartDone:
      on_restart_done(zone);
      return;
    case EventKind::kCycleBoundary:
      on_cycle_boundary(zone);
      return;
    case EventKind::kPreBoundary:
      on_pre_boundary(zone);
      return;
    case EventKind::kZoneCompletion:
      on_zone_completion(zone);
      return;
    case EventKind::kDoom:
      on_doom(zone);
      return;
    case EventKind::kRebalanceNotice:
      on_rebalance_notice(zone);
      return;
    case EventKind::kScheduledCheckpoint:
      on_scheduled_checkpoint();
      return;
    default:
      REDSPOT_CHECK_MSG(false, "event kind without a fixed handler scheduled "
                               "without a callback");
  }
}

void Engine::add_observer(EngineObserver* observer) {
  REDSPOT_CHECK_MSG(!ran_, "observers must attach before run()");
  REDSPOT_CHECK(observer != nullptr);
  observers_.push_back(observer);
  queue_.add_observer(observer);
}

// ---------------------------------------------------------------------------
// Observer fan-out

void Engine::on_zone_transition(std::size_t zone, ZoneState from,
                                ZoneState to) {
  for (EngineObserver* o : observers_) o->on_transition(now(), zone, from, to);
}

void Engine::notify_fault(FaultEvent::Kind kind, std::size_t zone,
                          Duration backoff) {
  const FaultEvent fault{kind, now(), zone, backoff};
  for (EngineObserver* o : observers_) o->on_fault(fault);
}

void Engine::notify_commit(const CheckpointCommit& commit) {
  for (EngineObserver* o : observers_) o->on_checkpoint_commit(commit);
}

void Engine::record(SimTime t, std::size_t zone, TimelineKind kind,
                    std::string detail) {
  if (!options_.record_timeline) return;
  result_.timeline.push_back(TimelineEvent{t, zone, kind, std::move(detail)});
}

// ---------------------------------------------------------------------------
// Run loop

RunResult Engine::run() {
  begin();
  while (!done_ && queue_.step()) {
  }
  return finalize();
}

void Engine::begin() {
  REDSPOT_CHECK_MSG(!ran_, "Engine::run() may only be called once");
  ran_ = true;

  apply_initial_config();
  tick_event_ =
      queue_.schedule_at(EventKind::kPriceTick, kNoZone, experiment_.start);
  reschedule_deadline_trigger();
}

void Engine::step_one() {
  REDSPOT_CHECK_MSG(!done_, "step_one() after completion");
  const bool dispatched = queue_.step();
  REDSPOT_CHECK_MSG(dispatched, "engine calendar drained before completion");
}

RunResult Engine::finalize() {
  REDSPOT_CHECK_MSG(done_, "engine calendar drained before completion");

  result_.total_cost = billing_.total();
  result_.spot_cost = billing_.spot_total();
  result_.on_demand_cost = billing_.on_demand_total();
  result_.spot_instance_seconds = billing_.spot_seconds();
  result_.committed_progress = store_.latest_progress();
  result_.checkpoint_log = store_.all();
  if (options_.record_line_items) result_.line_items = billing_.items();
  for (EngineObserver* o : observers_) o->on_finish(result_);
  return result_;
}

void Engine::apply_initial_config() {
  config_ = strategy_->initial(*this);
  REDSPOT_CHECK_MSG(!config_.zones.empty(), "strategy selected no zones");
  REDSPOT_CHECK(config_.policy != nullptr);
  REDSPOT_CHECK(config_.bid > Money());
  for (std::size_t z : config_.zones) {
    REDSPOT_CHECK_MSG(z < market_->num_zones(), "zone id out of range");
    REDSPOT_CHECK_MSG(std::count(config_.zones.begin(), config_.zones.end(),
                                 z) == 1,
                      "duplicate zone in config");
  }
}

void Engine::finish(SimTime at, bool completed) {
  done_ = true;
  result_.completed = completed;
  result_.finish_time = at;
  result_.met_deadline = completed && at <= experiment_.deadline_time();
  queue_.cancel(tick_event_);
  monitor_.disarm();
  queue_.cancel(scheduled_ckpt_event_);
  coord_.abort(queue_);
  for (ZoneMachine& z : zones_) z.cancel_events(queue_);
}

// ---------------------------------------------------------------------------

RunResult run_on_demand_baseline(const Experiment& experiment, Money rate) {
  return run_on_demand_baseline(experiment, rate, MarketRegime::classic());
}

RunResult run_on_demand_baseline(const Experiment& experiment, Money rate,
                                 const MarketRegime& regime) {
  experiment.validate();
  RunResult r;
  if (regime.billing.granularity == BillingGranularity::kPerSecond) {
    const Duration owed =
        std::max(experiment.app.total_compute, regime.billing.minimum);
    r.total_cost = prorate_hourly(rate, owed);
  } else {
    r.total_cost = rate * started_hours(experiment.app.total_compute);
  }
  r.on_demand_cost = r.total_cost;
  r.on_demand_seconds = experiment.app.total_compute;
  r.completed = true;
  r.finish_time = experiment.start + experiment.app.total_compute;
  r.met_deadline = true;
  r.switched_to_on_demand = true;
  return r;
}

void hash_engine_options(HashStream& h, const EngineOptions& o) {
  h.u64(o.record_timeline);
  h.u64(o.record_line_items);
  h.i64(o.termination_notice);
  const FaultPlan& f = o.faults;
  h.f64(f.ckpt_write_failure_rate);
  h.f64(f.ckpt_corruption_rate);
  h.f64(f.restart_failure_rate);
  h.f64(f.request_rejection_rate);
  h.f64(f.notice_drop_rate);
  h.f64(f.notice_late_rate);
  h.i64(f.notice_max_lag);
  h.u64(f.store_outages.size());
  for (const StoreOutage& w : f.store_outages) {
    h.i64(w.start);
    h.i64(w.end);
  }
  h.i64(f.backoff.base);
  h.i64(f.backoff.cap);
  h.f64(f.backoff.jitter);
  // The regime is part of the options fingerprint, so every sweep journal
  // key, ensemble cache key, and fabric shard key distinguishes regimes
  // automatically.
  hash_regime(h, o.regime);
}

}  // namespace redspot
