#include "core/engine.hpp"

#include <algorithm>
#include <cstdio>

#include "common/hash.hpp"
#include "common/log.hpp"

namespace redspot {

namespace {

/// Queue-delay draws get their own RNG stream id.
constexpr std::uint64_t kQueueStream = 0x51DE;

bool contains(std::span<const std::size_t> xs, std::size_t v) {
  return std::find(xs.begin(), xs.end(), v) != xs.end();
}

}  // namespace

Engine::Engine(const SpotMarket& market, Experiment experiment,
               Strategy& strategy, EngineOptions options)
    : market_(&market),
      experiment_(experiment),
      strategy_(&strategy),
      options_(options),
      sim_(experiment.start),
      queue_rng_(experiment.seed, kQueueStream),
      injector_(options.faults, experiment.seed) {
  experiment_.validate();
  REDSPOT_CHECK_MSG(market.trace_start() <= experiment_.start,
                    "trace starts after the experiment");
  REDSPOT_CHECK_MSG(market.trace_end() >= experiment_.deadline_time(),
                    "trace ends before the experiment deadline");
  zones_.resize(market.num_zones());
}

// ---------------------------------------------------------------------------
// EngineView

Engine::ZoneRt& Engine::rt(std::size_t zone) {
  REDSPOT_CHECK(zone < zones_.size());
  return zones_[zone];
}

const Engine::ZoneRt& Engine::rt(std::size_t zone) const {
  REDSPOT_CHECK(zone < zones_.size());
  return zones_[zone];
}

bool Engine::zone_running(std::size_t zone) const {
  const ZoneState s = rt(zone).state;
  return s == ZoneState::kRunning || s == ZoneState::kCheckpointing;
}

bool Engine::any_zone_running() const {
  for (std::size_t z : config_.zones)
    if (zone_running(z)) return true;
  return false;
}

Money Engine::price(std::size_t zone) const {
  return market_->spot_price(zone, now());
}

Money Engine::previous_price(std::size_t zone) const {
  const SimTime prev = now() - market_->traces().step();
  if (prev < market_->trace_start()) return price(zone);
  return market_->spot_price(zone, prev);
}

PriceView Engine::history(std::size_t zone) const {
  const SimTime from =
      std::max(market_->trace_start(), now() - experiment_.history_span);
  // At the very start of the trace there is no history yet; expose the
  // current sample so Markov-based policies still get a (degenerate) model.
  const SimTime to = std::max(now(), from + 1);
  return market_->traces().zone(zone).view(from, to);
}

Money Engine::min_observed_price(std::size_t zone) const {
  // min over the view — no window materialization.
  return history(zone).min_price();
}

Duration Engine::zone_progress(std::size_t zone) const {
  const ZoneRt& z = rt(zone);
  switch (z.state) {
    case ZoneState::kRunning:
      return z.progress_base + (now() - z.computing_since);
    case ZoneState::kCheckpointing:
      return z.progress_base;  // frozen while the checkpoint writes
    default:
      return z.progress_base;
  }
}

Duration Engine::leading_progress() const {
  Duration best = store_.latest_progress();
  for (std::size_t z : config_.zones) {
    if (zone_running(z)) best = std::max(best, zone_progress(z));
  }
  return best;
}

SimTime Engine::leading_compute_since() const {
  Duration best = -1;
  SimTime since = kNever;
  for (std::size_t z : config_.zones) {
    if (rt(z).state != ZoneState::kRunning) continue;
    const Duration p = zone_progress(z);
    if (p > best) {
      best = p;
      since = rt(z).computing_since;
    }
  }
  return since;
}

std::optional<std::size_t> Engine::leading_zone() const {
  Duration best = -1;
  std::optional<std::size_t> leader;
  for (std::size_t z : config_.zones) {
    if (rt(z).state != ZoneState::kRunning) continue;
    const Duration p = zone_progress(z);
    if (p > best) {
      best = p;
      leader = z;
    }
  }
  return leader;
}

bool Engine::zone_active(const ZoneRt& z) const {
  switch (z.state) {
    case ZoneState::kQueued:
    case ZoneState::kRestarting:
    case ZoneState::kRunning:
    case ZoneState::kCheckpointing:
      return true;
    default:
      return false;
  }
}

bool Engine::any_zone_active() const {
  for (std::size_t z : config_.zones)
    if (zone_active(rt(z))) return true;
  return false;
}

void Engine::record(SimTime t, std::size_t zone, TimelineKind kind,
                    std::string detail) {
  if (!options_.record_timeline) return;
  result_.timeline.push_back(TimelineEvent{t, zone, kind, std::move(detail)});
}

// ---------------------------------------------------------------------------
// Run loop

RunResult Engine::run() {
  REDSPOT_CHECK_MSG(!ran_, "Engine::run() may only be called once");
  ran_ = true;

  apply_initial_config();
  tick_event_ = sim_.schedule_at(experiment_.start, [this] { on_price_tick(); });
  reschedule_deadline_trigger();

  while (!done_ && sim_.step()) {
  }
  REDSPOT_CHECK_MSG(done_, "engine calendar drained before completion");

  result_.total_cost = ledger_.total();
  result_.spot_cost = ledger_.spot_total();
  result_.on_demand_cost = ledger_.on_demand_total();
  result_.committed_progress = store_.latest_progress();
  result_.checkpoint_log = store_.all();
  if (options_.record_line_items) result_.line_items = ledger_.items();
  return result_;
}

void Engine::apply_initial_config() {
  config_ = strategy_->initial(*this);
  REDSPOT_CHECK_MSG(!config_.zones.empty(), "strategy selected no zones");
  REDSPOT_CHECK(config_.policy != nullptr);
  REDSPOT_CHECK(config_.bid > Money());
  for (std::size_t z : config_.zones) {
    REDSPOT_CHECK_MSG(z < market_->num_zones(), "zone id out of range");
    REDSPOT_CHECK_MSG(std::count(config_.zones.begin(), config_.zones.end(),
                                 z) == 1,
                      "duplicate zone in config");
  }
}

// ---------------------------------------------------------------------------
// Price ticks and zone state transitions

void Engine::on_price_tick() {
  tick_event_ = 0;
  if (done_) return;

  const bool had_active = any_zone_active();
  bool terminated_any = false;
  for (std::size_t z : config_.zones) {
    ZoneRt& zone = rt(z);
    const Money p = price(z);
    switch (zone.state) {
      case ZoneState::kQueued:
      case ZoneState::kRestarting:
      case ZoneState::kRunning:
      case ZoneState::kCheckpointing:
        if (p > config_.bid && !zone.doomed) {
          if (options_.termination_notice > 0 &&
              (zone.state == ZoneState::kRunning ||
               zone.state == ZoneState::kCheckpointing)) {
            deliver_termination_notice(z);
            if (zone.state == ZoneState::kDown) terminated_any = true;
          } else {
            terminate_out_of_bid(z);
            terminated_any = true;
          }
        }
        break;
      case ZoneState::kDown:
        if (p <= config_.bid) zone.state = ZoneState::kWaiting;
        break;
      case ZoneState::kWaiting:
        if (p > config_.bid) zone.state = ZoneState::kDown;
        break;
      case ZoneState::kStopped:
        if (config_.policy->should_resume(*this, z))
          zone.state = ZoneState::kWaiting;
        break;
    }
  }
  if (had_active && !any_zone_active()) ++result_.full_outages;

  // The switch to on-demand cancels the tick chain, so a tick can never
  // observe the on-demand phase.
  REDSPOT_CHECK(!on_demand_phase_);

  if (strategy_->dynamic()) {
    consult_strategy(terminated_any ? DecisionPoint::kZoneTerminated
                                    : DecisionPoint::kPriceTick);
  }
  if (!done_ && !on_demand_phase_ && !ckpt_in_flight_ &&
      policy_checkpoint_allowed() && any_zone_running() &&
      config_.policy->checkpoint_condition(*this)) {
    start_checkpoint(std::nullopt);
  }
  reconcile();

  if (done_ || on_demand_phase_) return;
  const SimTime next = price_step_floor(now()) + market_->traces().step();
  if (next <= experiment_.deadline_time() && next < market_->trace_end())
    tick_event_ = sim_.schedule_at(next, [this] { on_price_tick(); });
}

void Engine::reconcile() {
  if (done_ || on_demand_phase_) return;
  if (any_zone_active()) return;
  // Algorithm 1 lines 29-35: with no instance up, every waiting zone
  // restarts from the previous checkpoint.
  for (std::size_t z : config_.zones) {
    if (rt(z).state == ZoneState::kWaiting) request_instance(z);
  }
}

void Engine::request_instance(std::size_t zone) {
  ZoneRt& z = rt(zone);
  REDSPOT_CHECK(z.state == ZoneState::kWaiting ||
                z.state == ZoneState::kDown);
  z.state = ZoneState::kQueued;
  z.request_attempts = 0;
  const Duration delay = market_->sample_queue_delay(queue_rng_);
  result_.queue_delay_total += delay;
  z.ready_event =
      sim_.schedule_in(delay, [this, zone] { on_instance_ready(zone); });
  record(now(), zone, TimelineKind::kInstanceRequested,
         "delay=" + format_duration(delay));
}

void Engine::on_instance_ready(std::size_t zone) {
  ZoneRt& z = rt(zone);
  z.ready_event = 0;
  REDSPOT_CHECK(z.state == ZoneState::kQueued);
  const Money rate = price(zone);
  if (rate > config_.bid) {
    // The price moved above the bid at this very instant (the tick event
    // carrying the termination is ordered after us): the request dies
    // unfulfilled.
    terminate_out_of_bid(zone);
    return;
  }
  if (injector_.request_rejected()) {
    // EC2 "insufficient capacity": the request is rejected at fulfilment.
    // Retry with exponential backoff + jitter, then re-queue; the zone
    // stays kQueued (no instance, nothing billed) throughout.
    ++result_.faults.request_rejections;
    ++z.request_attempts;
    const Duration backoff = injector_.backoff_delay(z.request_attempts);
    result_.faults.backoff_total += backoff;
    const Duration requeue = market_->sample_queue_delay(queue_rng_);
    result_.queue_delay_total += requeue;
    z.ready_event = sim_.schedule_in(
        backoff + requeue, [this, zone] { on_instance_ready(zone); });
    record(now(), zone, TimelineKind::kRequestRejected,
           "retry-in=" + format_duration(backoff + requeue));
    return;
  }
  z.request_attempts = 0;
  ledger_.spot_started(zone, now(), rate);
  z.instance_start = now();
  z.cycle_event = sim_.schedule_at(ledger_.cycle_end(zone),
                                   [this, zone] { on_cycle_boundary(zone); });
  const SimTime pre = ledger_.cycle_end(zone) - experiment_.costs.checkpoint;
  if ((config_.policy->wants_pre_boundary_checks() || strategy_->dynamic()) &&
      pre > now()) {
    z.preboundary_event =
        sim_.schedule_at(pre, [this, zone] { on_pre_boundary(zone); });
  }
  record(now(), zone, TimelineKind::kInstanceRunning,
         "rate=" + rate.str());

  const Duration target = store_.latest_progress();
  if (target > 0) {
    z.state = ZoneState::kRestarting;
    z.restart_target = target;
    z.restart_event = sim_.schedule_in(
        experiment_.costs.restart, [this, zone] { on_restart_done(zone); });
    record(now(), zone, TimelineKind::kRestartStart);
  } else {
    // Nothing to load: the application starts from its initial state
    // (Figure 1 — no restart cost at T_b).
    start_computing(zone, 0);
  }
}

void Engine::on_restart_done(std::size_t zone) {
  ZoneRt& z = rt(zone);
  z.restart_event = 0;
  REDSPOT_CHECK(z.state == ZoneState::kRestarting);
  if (injector_.restart_fails()) {
    // The load failed. Retry from the newest verified checkpoint (it may
    // have advanced while this load was in flight), paying t_r again; a
    // store with nothing left to load degrades to a from-scratch start.
    ++result_.faults.restart_failures;
    record(now(), zone, TimelineKind::kRestartFailed);
    z.restart_target = store_.latest_progress();
    if (z.restart_target > 0) {
      z.restart_event = sim_.schedule_in(
          experiment_.costs.restart, [this, zone] { on_restart_done(zone); });
      record(now(), zone, TimelineKind::kRestartStart, "retry");
      return;
    }
    start_computing(zone, 0);
    return;
  }
  ++result_.restarts;
  record(now(), zone, TimelineKind::kRestartDone);
  start_computing(zone, z.restart_target);
}

void Engine::start_computing(std::size_t zone, Duration progress_base) {
  ZoneRt& z = rt(zone);
  z.state = ZoneState::kRunning;
  z.progress_base = progress_base;
  z.computing_since = now();
  const Duration remaining =
      std::max<Duration>(0, experiment_.app.total_compute - progress_base);
  sim_.cancel(z.completion_event);
  z.completion_event = sim_.schedule_in(
      remaining, [this, zone] { on_zone_completion(zone); });
  reschedule_policy_checkpoint();
}

// ---------------------------------------------------------------------------
// Checkpoints

void Engine::reschedule_policy_checkpoint() {
  sim_.cancel(scheduled_ckpt_event_);
  scheduled_ckpt_event_ = 0;
  if (done_ || on_demand_phase_) return;
  const SimTime t = config_.policy->schedule_next_checkpoint(*this);
  if (t == kNever) return;
  scheduled_ckpt_event_ = sim_.schedule_at(
      std::max(now(), t), [this] { on_scheduled_checkpoint(); });
}

void Engine::on_scheduled_checkpoint() {
  scheduled_ckpt_event_ = 0;
  if (done_ || on_demand_phase_ || ckpt_in_flight_) return;
  if (!policy_checkpoint_allowed()) return;
  start_checkpoint(std::nullopt);
}

bool Engine::policy_checkpoint_allowed() const {
  // A policy checkpoint started at or below the deadline margin would
  // postpone the on-demand switch by t_c without necessarily committing
  // anything new — repeated (e.g. Rising Edge fires every tick), that
  // accumulates an unbounded deadline deficit. Below the margin, only the
  // deadline trigger itself may checkpoint (it proves the gain exceeds
  // t_c first).
  return deadline_switch_time() > now();
}

void Engine::start_checkpoint(std::optional<std::size_t> target) {
  REDSPOT_CHECK(!ckpt_in_flight_);
  if (!target) target = leading_zone();
  if (!target) return;  // nothing running; rescheduled at the next restart
  ZoneRt& z = rt(*target);
  REDSPOT_CHECK(z.state == ZoneState::kRunning);

  // Freeze the zone's progress for the duration of the write.
  z.progress_base = zone_progress(*target);
  z.state = ZoneState::kCheckpointing;
  sim_.cancel(z.completion_event);
  z.completion_event = 0;

  ckpt_in_flight_ = true;
  ckpt_zone_ = *target;
  ckpt_value_ = iteration_aligned(experiment_.app, z.progress_base);
  ckpt_done_time_ = now() + experiment_.costs.checkpoint;
  ckpt_done_event_ =
      sim_.schedule_at(ckpt_done_time_, [this] { on_checkpoint_done(); });
  record(now(), *target, TimelineKind::kCheckpointStart,
         "progress=" + format_duration(ckpt_value_));
}

bool Engine::commit_in_flight_checkpoint() {
  REDSPOT_CHECK(ckpt_in_flight_);
  sim_.cancel(ckpt_done_event_);
  ckpt_done_event_ = 0;
  ckpt_in_flight_ = false;
  // Validate the finished write against the fault plan before publishing
  // it. Either failure mode leaves latest_progress() untouched, keeping
  // P_c monotone — the deadline margin's precondition — and re-arms the
  // deadline trigger, which may have been waiting on this write.
  if (injector_.checkpoint_write_fails(now())) {
    ++result_.faults.ckpt_write_failures;
    record(now(), ckpt_zone_, TimelineKind::kCheckpointFailed,
           injector_.store_unreachable(now()) ? "store-outage" : "io-error");
    reschedule_deadline_trigger();
    return false;
  }
  if (injector_.checkpoint_corrupts()) {
    // The write "succeeded" but post-write validation finds a corrupt
    // image: roll the commit back to the previous good checkpoint.
    store_.commit(now(), ckpt_value_);
    store_.invalidate_latest();
    ++result_.faults.ckpt_corruptions;
    record(now(), ckpt_zone_, TimelineKind::kCheckpointCorrupt,
           "progress=" + format_duration(ckpt_value_));
    reschedule_deadline_trigger();
    return false;
  }
  store_.commit(now(), ckpt_value_);
  ++result_.checkpoints_committed;
  record(now(), ckpt_zone_, TimelineKind::kCheckpointDone,
         "progress=" + format_duration(ckpt_value_));
  reschedule_deadline_trigger();
  return true;
}

void Engine::on_checkpoint_done() {
  const std::size_t zone = ckpt_zone_;
  const bool committed = commit_in_flight_checkpoint();

  // The checkpointing zone resumes computing from its frozen progress.
  start_computing(zone, rt(zone).progress_base);

  // Algorithm 1 lines 19-25: waiting zones restart from this checkpoint.
  // A failed commit gives them nothing new to load — they keep waiting
  // for the next verified one (or for reconcile() on a full outage).
  if (!committed) return;
  for (std::size_t z : config_.zones) {
    if (rt(z).state == ZoneState::kWaiting) request_instance(z);
  }
}

// ---------------------------------------------------------------------------
// Terminations

void Engine::cancel_zone_events(ZoneRt& z) {
  sim_.cancel(z.ready_event);
  sim_.cancel(z.restart_event);
  sim_.cancel(z.cycle_event);
  sim_.cancel(z.preboundary_event);
  sim_.cancel(z.completion_event);
  sim_.cancel(z.doom_event);
  sim_.cancel(z.emergency_ckpt_event);
  z.ready_event = z.restart_event = z.cycle_event = z.preboundary_event =
      z.completion_event = z.doom_event = z.emergency_ckpt_event = 0;
  z.doomed = false;
}

// Appendix-A variant: the market warns before terminating. The fault plan
// can drop the notice (abrupt 2013-style kill) or deliver it late, which
// shrinks the usable warning; the kill instant itself never moves.
void Engine::deliver_termination_notice(std::size_t zone) {
  if (injector_.notice_dropped()) {
    ++result_.faults.notices_dropped;
    record(now(), zone, TimelineKind::kNoticeDropped);
    terminate_out_of_bid(zone);
    return;
  }
  const Duration lag = injector_.notice_lag(options_.termination_notice);
  if (lag <= 0) {
    on_termination_notice(zone, options_.termination_notice);
    return;
  }
  // Late notice: the zone is already doomed (the price crossed the bid
  // now) but the engine only learns at now + lag, with the remaining
  // warning shortened accordingly.
  ZoneRt& z = rt(zone);
  z.doomed = true;
  ++result_.faults.notices_late;
  const Duration warning = options_.termination_notice - lag;
  z.doom_event = sim_.schedule_in(lag, [this, zone, warning] {
    ZoneRt& late = rt(zone);
    late.doom_event = 0;
    if (done_ || !zone_active(late)) return;
    on_termination_notice(zone, warning);
  });
}

// The doomed zone keeps computing through the notice; an emergency
// checkpoint lands exactly at the termination instant when the remaining
// warning can fit one (warning >= t_c).
void Engine::on_termination_notice(std::size_t zone, Duration warning) {
  ZoneRt& z = rt(zone);
  z.doomed = true;
  const SimTime doom_at = now() + warning;
  z.doom_event =
      sim_.schedule_at(doom_at, [this, zone] { on_doom(zone); });
  record(now(), zone, TimelineKind::kOutOfBid,
         "notice=" + format_duration(warning));
  const SimTime ckpt_start = doom_at - experiment_.costs.checkpoint;
  if (ckpt_start >= now() && policy_checkpoint_allowed()) {
    z.emergency_ckpt_event = sim_.schedule_at(ckpt_start, [this, zone] {
      ZoneRt& doomed_zone = rt(zone);
      doomed_zone.emergency_ckpt_event = 0;
      if (done_ || ckpt_in_flight_ ||
          doomed_zone.state != ZoneState::kRunning)
        return;
      start_checkpoint(zone);
    });
  }
}

void Engine::on_doom(std::size_t zone) {
  ZoneRt& z = rt(zone);
  z.doom_event = 0;
  if (done_ || !zone_active(z)) return;
  const bool had_active = any_zone_active();
  terminate_out_of_bid(zone);  // commits a just-finished write, bills free
  if (had_active && !any_zone_active()) ++result_.full_outages;
  reconcile();
}

void Engine::terminate_out_of_bid(std::size_t zone) {
  ZoneRt& z = rt(zone);
  REDSPOT_CHECK(zone_active(z));
  if (ckpt_in_flight_ && ckpt_zone_ == zone) {
    if (ckpt_done_time_ <= now()) {
      commit_in_flight_checkpoint();
    } else {
      // The write was cut off: nothing commits. Re-arm the deadline
      // trigger — it may have been waiting on this write.
      sim_.cancel(ckpt_done_event_);
      ckpt_done_event_ = 0;
      ckpt_in_flight_ = false;
      reschedule_deadline_trigger();
    }
  }
  if (z.state == ZoneState::kQueued) {
    // The request had not been fulfilled; nothing was billed.
  } else {
    ledger_.spot_terminated(zone, now(), TerminationCause::kOutOfBid);
    result_.spot_instance_seconds += now() - z.instance_start;
  }
  cancel_zone_events(z);
  z.state = ZoneState::kDown;
  z.manual_stop_pending = false;
  ++result_.out_of_bid_terminations;
  record(now(), zone, TimelineKind::kOutOfBid);
}

void Engine::user_terminate(std::size_t zone, bool at_boundary) {
  ZoneRt& z = rt(zone);
  if (!zone_active(z)) return;
  if (ckpt_in_flight_ && ckpt_zone_ == zone) {
    if (ckpt_done_time_ <= now()) {
      commit_in_flight_checkpoint();
    } else {
      sim_.cancel(ckpt_done_event_);
      ckpt_done_event_ = 0;
      ckpt_in_flight_ = false;
      if (!on_demand_phase_) reschedule_deadline_trigger();
    }
  }
  if (z.state == ZoneState::kQueued) {
    record(now(), zone, TimelineKind::kUserTerminated, "request-cancelled");
  } else {
    if (at_boundary) {
      ledger_.spot_stopped_at_boundary(zone);
    } else {
      ledger_.spot_terminated(zone, now(), TerminationCause::kUser);
    }
    result_.spot_instance_seconds += now() - z.instance_start;
    record(now(), zone, TimelineKind::kUserTerminated,
           at_boundary ? "at-boundary" : "mid-cycle");
  }
  cancel_zone_events(z);
  z.state = ZoneState::kDown;
  z.manual_stop_pending = false;
}

// ---------------------------------------------------------------------------
// Billing cycles and pre-boundary checks

void Engine::on_cycle_boundary(std::size_t zone) {
  ZoneRt& z = rt(zone);
  z.cycle_event = 0;
  if (done_) return;

  // Large-bid manual stop: the protective checkpoint (started at
  // boundary - t_c) completes exactly now; commit it, pay the full hour,
  // and sit out until the price recovers.
  if (z.manual_stop_pending) {
    if (ckpt_in_flight_ && ckpt_zone_ == zone && ckpt_done_time_ <= now())
      commit_in_flight_checkpoint();
    const bool had_active = any_zone_active();
    user_terminate(zone, /*at_boundary=*/true);
    z.state = ZoneState::kStopped;
    record(now(), zone, TimelineKind::kUserTerminated, "manual-stop");
    if (had_active && !any_zone_active()) ++result_.full_outages;
    reconcile();
    return;
  }

  if (strategy_->dynamic()) {
    consult_strategy(DecisionPoint::kCycleEnd);
    if (pending_config_) {
      const EngineConfig next = *pending_config_;
      apply_config(next, /*at_boundary_of=*/true, zone);
    }
  }
  if (done_ || on_demand_phase_) return;

  // The zone may have been terminated by the reconfiguration above.
  if (!ledger_.spot_running(zone) || !zone_active(z)) return;

  ledger_.cycle_boundary(zone, price(zone));
  z.cycle_event = sim_.schedule_at(ledger_.cycle_end(zone),
                                   [this, zone] { on_cycle_boundary(zone); });
  const SimTime pre = ledger_.cycle_end(zone) - experiment_.costs.checkpoint;
  sim_.cancel(z.preboundary_event);
  z.preboundary_event = 0;
  if ((config_.policy->wants_pre_boundary_checks() || strategy_->dynamic()) &&
      pre > now()) {
    z.preboundary_event =
        sim_.schedule_at(pre, [this, zone] { on_pre_boundary(zone); });
  }
}

void Engine::on_pre_boundary(std::size_t zone) {
  ZoneRt& z = rt(zone);
  z.preboundary_event = 0;
  if (done_ || on_demand_phase_) return;
  if (!zone_active(z)) return;

  // Large-bid: decide whether to ride the next hour or stop at the
  // boundary; stopping wants a checkpoint that completes exactly at it.
  if (config_.policy->wants_pre_boundary_checks() &&
      config_.policy->should_manual_stop(*this, zone)) {
    z.manual_stop_pending = true;
    if (!ckpt_in_flight_ && z.state == ZoneState::kRunning &&
        policy_checkpoint_allowed())
      start_checkpoint(zone);
    return;
  }

  // Adaptive: if a disruptive reconfiguration is pending, protect the
  // leading zone's progress with a checkpoint that lands on the boundary.
  if (strategy_->dynamic()) {
    consult_strategy(DecisionPoint::kPreBoundary);
    if (pending_config_ && !ckpt_in_flight_ &&
        z.state == ZoneState::kRunning && leading_zone() == zone &&
        policy_checkpoint_allowed() &&
        zone_progress(zone) > store_.latest_progress()) {
      start_checkpoint(zone);
    }
  }
}

// ---------------------------------------------------------------------------
// Strategy / configuration changes

void Engine::consult_strategy(DecisionPoint point) {
  auto next = strategy_->reconsider(*this, point);
  if (!next) return;
  if (next->same_as(config_)) {
    pending_config_.reset();
    return;
  }
  REDSPOT_CHECK(!next->zones.empty() && next->policy != nullptr &&
                next->bid > Money());
  if (config_is_non_disruptive(*next)) {
    // Rule 3: a change that keeps the bid and every active zone may be
    // adopted within the billing hour.
    apply_config(*next, /*at_boundary_of=*/false, 0);
    return;
  }
  if (point == DecisionPoint::kZoneTerminated) {
    // Rule 1: a termination is a natural reconfiguration point.
    apply_config(*next, /*at_boundary_of=*/false, 0);
    return;
  }
  // Rule 2: wait for the billing hour to end.
  pending_config_ = *next;
}

bool Engine::config_is_non_disruptive(const EngineConfig& next) const {
  if (next.bid != config_.bid) return false;
  for (std::size_t z : config_.zones) {
    if (zone_active(rt(z)) && !contains(next.zones, z)) return false;
  }
  return true;
}

void Engine::apply_config(const EngineConfig& next, bool at_boundary_of,
                          std::size_t boundary_zone) {
  const bool bid_changed = next.bid != config_.bid;
  const bool had_active = any_zone_active();
  for (std::size_t z : config_.zones) {
    ZoneRt& zone = rt(z);
    const bool kept = contains(next.zones, z) && !bid_changed;
    if (zone_active(zone) && !kept) {
      // A bid change requires cancelling the spot request (fixed-bid rule),
      // so even zones staying in the set must cycle through termination.
      user_terminate(z, at_boundary_of && z == boundary_zone);
    }
    if (!zone_active(zone)) {
      // Non-active states re-derive from the price at the next tick; a
      // stale kWaiting under a changed bid must not be restarted blindly.
      if (zone.state == ZoneState::kWaiting && bid_changed)
        zone.state = ZoneState::kDown;
      if (!contains(next.zones, z)) zone.state = ZoneState::kDown;
    }
  }
  for (std::size_t z : next.zones) {
    if (!contains(config_.zones, z)) rt(z).state = ZoneState::kDown;
  }
  config_ = next;
  pending_config_.reset();
  ++result_.config_changes;
  record(now(), 0, TimelineKind::kConfigChange,
         "bid=" + config_.bid.str() +
             " N=" + std::to_string(config_.zones.size()) + " policy=" +
             config_.policy->name());
  if (had_active && !any_zone_active()) ++result_.full_outages;

  // Newly eligible zones become waiting immediately (their prices are
  // known); reconcile may then start them.
  for (std::size_t z : config_.zones) {
    ZoneRt& zone = rt(z);
    if (zone.state == ZoneState::kDown && price(z) <= config_.bid)
      zone.state = ZoneState::kWaiting;
  }
  reschedule_policy_checkpoint();
  reconcile();
}

// ---------------------------------------------------------------------------
// Deadline guarantee and on-demand switch

SimTime Engine::deadline_switch_time() const {
  const Duration committed = store_.latest_progress();
  const Duration remaining = experiment_.app.total_compute - committed;
  const Duration restart = committed > 0 ? experiment_.costs.restart : 0;
  return experiment_.deadline_time() - remaining - restart -
         experiment_.costs.checkpoint;
}

void Engine::reschedule_deadline_trigger() {
  if (done_ || on_demand_phase_) return;
  sim_.cancel(deadline_event_);
  deadline_event_ = sim_.schedule_at(
      std::max(now(), deadline_switch_time()),
      [this] { on_deadline_trigger(); });
}

void Engine::on_deadline_trigger() {
  deadline_event_ = 0;
  if (done_ || on_demand_phase_) return;
  const SimTime due = deadline_switch_time();
  if (due > now()) {
    deadline_event_ =
        sim_.schedule_at(due, [this] { on_deadline_trigger(); });
    return;
  }
  // The committed-progress margin is exhausted. If a commit of the leading
  // zone's speculative progress would buy back more margin than the t_c it
  // costs, force one and stay on the spot market; the commit (or its abort
  // on an untimely failure) re-arms this trigger. Otherwise the spot market
  // can no longer meet the deadline: switch to on-demand (Algorithm 1,
  // line 11).
  if (ckpt_in_flight_) return;  // the in-flight commit/abort re-arms us
  const std::optional<std::size_t> leader = leading_zone();
  // The forced checkpoint is only safe while the margin is not yet
  // negative (due == now): if it dies mid-write, switching right after
  // still meets the deadline thanks to the reserved t_c. A negative margin
  // (we got here via an aborted write) forbids another gamble.
  if (due == now() && leader &&
      zone_progress(*leader) >
          store_.latest_progress() + experiment_.costs.checkpoint) {
    start_checkpoint(*leader);
    return;
  }
  begin_switch_to_on_demand();
}

void Engine::begin_switch_to_on_demand() {
  on_demand_phase_ = true;
  result_.switched_to_on_demand = true;
  record(now(), 0, TimelineKind::kSwitchToOnDemand);
  sim_.cancel(scheduled_ckpt_event_);
  scheduled_ckpt_event_ = 0;
  sim_.cancel(deadline_event_);
  deadline_event_ = 0;
  REDSPOT_CHECK(!ckpt_in_flight_);
  complete_on_demand_switch();
}

void Engine::complete_on_demand_switch() {
  for (std::size_t z : config_.zones) user_terminate(z, false);
  sim_.cancel(tick_event_);
  tick_event_ = 0;

  const Duration committed = store_.latest_progress();
  if (committed >= experiment_.app.total_compute) {
    finish(now(), true);
    return;
  }
  const Duration restart = committed > 0 ? experiment_.costs.restart : 0;
  const Duration od =
      restart + (experiment_.app.total_compute - committed);
  ledger_.on_demand_usage(now(), od, market_->on_demand_rate());
  result_.on_demand_seconds = od;
  const SimTime finish_at = now() + od;
  if (finish_at > experiment_.deadline_time() && options_.record_timeline) {
    std::fputs(result_.timeline_str().c_str(), stderr);  // debug aid
  }
  REDSPOT_CHECK_MSG(finish_at <= experiment_.deadline_time(),
                    "deadline guarantee violated by " << format_duration(
                        finish_at - experiment_.deadline_time()));
  sim_.schedule_at(finish_at, [this] { finish(now(), true); });
}

// ---------------------------------------------------------------------------
// Completion

void Engine::on_zone_completion(std::size_t zone) {
  ZoneRt& z = rt(zone);
  z.completion_event = 0;
  REDSPOT_CHECK(z.state == ZoneState::kRunning);
  REDSPOT_CHECK(zone_progress(zone) >= experiment_.app.total_compute);
  record(now(), zone, TimelineKind::kCompleted);
  for (std::size_t other : config_.zones) user_terminate(other, false);
  finish(now(), true);
}

void Engine::finish(SimTime at, bool completed) {
  done_ = true;
  result_.completed = completed;
  result_.finish_time = at;
  result_.met_deadline =
      completed && at <= experiment_.deadline_time();
  sim_.cancel(tick_event_);
  sim_.cancel(deadline_event_);
  sim_.cancel(scheduled_ckpt_event_);
  sim_.cancel(ckpt_done_event_);
  for (ZoneRt& z : zones_) cancel_zone_events(z);
}

// ---------------------------------------------------------------------------

RunResult run_on_demand_baseline(const Experiment& experiment, Money rate) {
  experiment.validate();
  RunResult r;
  const std::int64_t hours_billed =
      (experiment.app.total_compute + kHour - 1) / kHour;
  r.total_cost = rate * hours_billed;
  r.on_demand_cost = r.total_cost;
  r.on_demand_seconds = experiment.app.total_compute;
  r.completed = true;
  r.finish_time = experiment.start + experiment.app.total_compute;
  r.met_deadline = true;
  r.switched_to_on_demand = true;
  return r;
}

void hash_engine_options(HashStream& h, const EngineOptions& o) {
  h.u64(o.record_timeline);
  h.u64(o.record_line_items);
  h.i64(o.termination_notice);
  const FaultPlan& f = o.faults;
  h.f64(f.ckpt_write_failure_rate);
  h.f64(f.ckpt_corruption_rate);
  h.f64(f.restart_failure_rate);
  h.f64(f.request_rejection_rate);
  h.f64(f.notice_drop_rate);
  h.f64(f.notice_late_rate);
  h.i64(f.notice_max_lag);
  h.u64(f.store_outages.size());
  for (const StoreOutage& w : f.store_outages) {
    h.i64(w.start);
    h.i64(w.end);
  }
  h.i64(f.backoff.base);
  h.i64(f.backoff.cap);
  h.f64(f.backoff.jitter);
}

}  // namespace redspot
