// The run-wide in-flight checkpoint (at most one at a time).
//
// A checkpoint write occupies [begin, begin + write_cost); the coordinator
// owns its calendar event and the commit/abort settlement:
//
//   * commit() — the write finished; validate it against the fault plan
//     and publish to the store on success. Returns the outcome so the
//     engine can record and notify. Call when done_time() <= now (the
//     write had time to finish, even if its done-event has not fired yet —
//     a terminating zone commits a just-finished write this way).
//   * abort() — the write was cut off mid-flight; nothing publishes.
//
// The injector draw order inside commit() — write-failure then corruption
// — is part of the engine's RNG-stream contract; do not reorder.
#pragma once

#include <cstddef>

#include "ckpt/store.hpp"
#include "common/time.hpp"
#include "core/events/event_queue.hpp"
#include "fault/fault_injector.hpp"

namespace redspot {

class CheckpointCoordinator {
 public:
  bool in_flight() const { return in_flight_; }

  /// Zone whose progress is being written. Requires in_flight().
  std::size_t zone() const;

  /// Progress value the write captures. Requires in_flight().
  Duration value() const;

  /// When the write finishes. Requires in_flight().
  SimTime done_time() const;

  /// Starts a write of `value` for `zone`, scheduling `on_done` (the
  /// kCheckpointDone event) after `write_cost`. Requires !in_flight().
  void begin(EventQueue& queue, std::size_t zone, Duration value,
             Duration write_cost, EventQueue::Callback on_done);

  /// Settles a finished write: draws validation faults and commits to
  /// `store` on success (a corrupt write commits then rolls back, keeping
  /// the store's audit log complete). Clears the in-flight state.
  CheckpointCommit::Outcome commit(EventQueue& queue, FaultInjector& injector,
                                   CheckpointStore& store);

  /// Drops a cut-off write without publishing; no-op when idle.
  void abort(EventQueue& queue);

 private:
  bool in_flight_ = false;
  std::size_t zone_ = 0;
  Duration value_ = 0;
  SimTime done_time_ = 0;
  EventId done_event_ = 0;
};

}  // namespace redspot
