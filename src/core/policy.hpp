// Checkpoint-scheduling policy interface (Section 3.2).
//
// Algorithm 1 is generic in two functions — CheckpointCondition() and
// ScheduleNextCheckpoint() — and each policy of Section 4 is defined by
// them. The engine exposes its state to policies through EngineView, calls
// checkpoint_condition() after every price tick while an instance is
// executing, and calls schedule_next_checkpoint() after every checkpoint
// commit and restart (exactly the call sites of Algorithm 1).
//
// Two extra hooks support Large-bid (Section 7.2.2), which manually stops
// instances near the end of a billing hour: wants_pre_boundary_checks() /
// should_manual_stop() / should_resume().
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "common/money.hpp"
#include "common/time.hpp"
#include "core/experiment.hpp"
#include "market/regime.hpp"
#include "market/spot_market.hpp"

namespace redspot {

namespace batch {
class ZoneModelPool;
}  // namespace batch

/// Read-only view of the engine state, as seen by a policy.
class EngineView {
 public:
  virtual ~EngineView() = default;

  virtual SimTime now() const = 0;
  virtual const Experiment& experiment() const = 0;
  virtual const SpotMarket& market() const = 0;

  /// Current bid B.
  virtual Money bid() const = 0;

  /// Global zone indices in use (N = zone_ids().size()).
  virtual std::span<const std::size_t> zone_ids() const = 0;

  /// True when `zone` (global index) is executing the application.
  virtual bool zone_running(std::size_t zone) const = 0;

  /// True when any zone is executing.
  virtual bool any_zone_running() const = 0;

  /// Spot price of `zone` right now.
  virtual Money price(std::size_t zone) const = 0;

  /// Spot price of `zone` one sampling step ago (clamped at trace start).
  virtual Money previous_price(std::size_t zone) const = 0;

  /// Trailing price history of `zone`: [now - history_span, now), as a
  /// non-owning view into the market trace. Valid only within the engine
  /// step that produced it — materialize() to keep it longer.
  virtual PriceView history(std::size_t zone) const = 0;

  /// Minimum spot price of `zone` over the trailing history (S_min in the
  /// Threshold policy).
  virtual Money min_observed_price(std::size_t zone) const = 0;

  /// Committed (checkpointed) progress.
  virtual Duration committed_progress() const = 0;

  /// Current progress of one zone (frozen value while it checkpoints;
  /// checkpoint-base for inactive zones).
  virtual Duration zone_progress(std::size_t zone) const = 0;

  /// Progress of the furthest-ahead executing zone (== committed when
  /// nothing executes).
  virtual Duration leading_progress() const = 0;

  /// When the current compute segment began on the leading zone: the most
  /// recent of its restart completion / checkpoint completion. kNever when
  /// nothing executes. This is the Threshold policy's "execution time at B"
  /// reference point.
  virtual SimTime leading_compute_since() const = 0;

  /// End of the current billing cycle of `zone` (requires an open cycle).
  virtual SimTime billing_cycle_end(std::size_t zone) const = 0;

  /// The market rule set this run executes under. Policies consult it for
  /// billing-sensitive decisions (e.g. Large-bid's manual stop is
  /// pointless under per-second billing). Defaults to classic 2012.
  virtual const MarketRegime& regime() const { return MarketRegime::classic(); }
};

/// A checkpoint-scheduling policy.
class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// CheckpointCondition() — evaluated after each price tick while at least
  /// one zone executes and no checkpoint is in flight. Returning true
  /// starts a checkpoint immediately.
  virtual bool checkpoint_condition(const EngineView& view) = 0;

  /// ScheduleNextCheckpoint() — returns the absolute time of the next
  /// scheduled checkpoint, or kNever for purely reactive policies. Called
  /// after each checkpoint commit, each restart, and each config change.
  virtual SimTime schedule_next_checkpoint(const EngineView& view) = 0;

  /// Large-bid hooks. When wants_pre_boundary_checks() is true the engine
  /// consults should_manual_stop() at (cycle end - t_c) for every running
  /// zone; a true return checkpoints the zone and user-terminates it at the
  /// boundary. A stopped zone is re-requested once should_resume() is true
  /// (checked at price ticks).
  virtual bool wants_pre_boundary_checks() const { return false; }
  virtual bool should_manual_stop(const EngineView& view, std::size_t zone) {
    (void)view;
    (void)zone;
    return false;
  }
  virtual bool should_resume(const EngineView& view, std::size_t zone) {
    (void)view;
    (void)zone;
    return true;
  }

  /// Batched sweeps: route Markov fits through per-zone models shared
  /// across the batch group's engines instead of private ones. Pooled
  /// answers are bit-identical to private-model answers (see
  /// core/batch/model_pool.hpp), so this is purely a sharing knob. The
  /// pool must outlive the run; no-op for policies without models.
  virtual void use_model_pool(batch::ZoneModelPool* pool) { (void)pool; }
};

/// The fixed policies of the evaluation (Adaptive is a Strategy, not a
/// Policy — see core/adaptive/). The zoo entries after the paper's four
/// are appended so existing spec hashes keep their values.
enum class PolicyKind {
  kPeriodic,
  kMarkovDaly,
  kRisingEdge,
  kThreshold,
  kRandomizedBid,  ///< Bhuyan et al.: seeded bid draw + danger-band ckpts
  kIndexTrack,     ///< Shastri & Irwin: track the cheapest normalized lanes
};

std::string to_string(PolicyKind kind);

/// Instantiates a policy by kind with default parameters.
std::unique_ptr<Policy> make_policy(PolicyKind kind);

}  // namespace redspot
