#include "core/ckpt_coordinator.hpp"

#include "common/check.hpp"

namespace redspot {

std::size_t CheckpointCoordinator::zone() const {
  REDSPOT_CHECK(in_flight_);
  return zone_;
}

Duration CheckpointCoordinator::value() const {
  REDSPOT_CHECK(in_flight_);
  return value_;
}

SimTime CheckpointCoordinator::done_time() const {
  REDSPOT_CHECK(in_flight_);
  return done_time_;
}

void CheckpointCoordinator::begin(EventQueue& queue, std::size_t zone,
                                  Duration value, Duration write_cost,
                                  EventQueue::Callback on_done) {
  REDSPOT_CHECK(!in_flight_);
  in_flight_ = true;
  zone_ = zone;
  value_ = value;
  done_time_ = queue.now() + write_cost;
  done_event_ = queue.schedule_at(EventKind::kCheckpointDone, zone,
                                  done_time_, std::move(on_done));
}

CheckpointCommit::Outcome CheckpointCoordinator::commit(
    EventQueue& queue, FaultInjector& injector, CheckpointStore& store) {
  REDSPOT_CHECK(in_flight_);
  REDSPOT_CHECK(done_time_ <= queue.now());
  queue.cancel(done_event_);
  in_flight_ = false;
  if (injector.checkpoint_write_fails(queue.now()))
    return CheckpointCommit::Outcome::kWriteFailed;
  if (injector.checkpoint_corrupts()) {
    // The write "succeeded" but post-write validation finds a corrupt
    // image: roll the commit back to the previous good checkpoint.
    store.commit(queue.now(), value_);
    store.invalidate_latest();
    return CheckpointCommit::Outcome::kCorrupt;
  }
  store.commit(queue.now(), value_);
  return CheckpointCommit::Outcome::kCommitted;
}

void CheckpointCoordinator::abort(EventQueue& queue) {
  if (!in_flight_) return;
  queue.cancel(done_event_);
  in_flight_ = false;
}

}  // namespace redspot
