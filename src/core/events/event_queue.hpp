// The engine's typed event calendar.
//
// Same calendar semantics as sim/Simulation (which remains the generic,
// untyped core for micro-benchmarks and standalone models), plus the two
// things the engine decomposition needs: every entry carries its EventKind
// and zone for the observer layer, and cancel() takes the handle by
// reference and zeroes it — the engine's universal "cancel and forget"
// idiom, previously duplicated at every call site.
//
// Determinism contract (the tie-break the whole engine is built on):
// events at equal timestamps fire in scheduling order, strictly FIFO —
// never reordered by kind or zone. The engine derives its coincident-event
// discipline from *when* it schedules: a billing-cycle boundary is armed a
// full hour ahead while the price tick that could coincide with it is
// armed only one price step ahead, so the boundary always observes the
// pre-tick price; the deadline trigger is armed at every commit, so its
// order against a coincident tick reflects which was scheduled first.
// (A kind-priority tie-break would *break* byte-identity with the
// historical engine precisely because that relative order is
// history-dependent.) event_core_test pins this contract.
//
// Cancellation is lazy with heap compaction once cancelled entries
// outnumber live ones past a small floor — identical bounds to Simulation
// (see sim/simulation.hpp for the amortized-cost argument).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "core/events/event.hpp"
#include "core/events/observer.hpp"

namespace redspot {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  explicit EventQueue(SimTime start = 0) : now_(start) {}

  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now()). Returns a handle.
  EventId schedule_at(EventKind kind, std::size_t zone, SimTime t,
                      Callback cb);

  /// Schedules `cb` after `d` (>= 0) of simulated time.
  EventId schedule_in(EventKind kind, std::size_t zone, Duration d,
                      Callback cb) {
    return schedule_at(kind, zone, now_ + d, std::move(cb));
  }

  /// Cancels a pending event and zeroes the handle; no-op when the handle
  /// is 0 or the event already ran.
  void cancel(EventId& id);

  /// True when `id` is still pending.
  bool pending(EventId id) const;

  /// Dispatches the next event: advances the clock, notifies every
  /// observer (on_event), then runs the callback. Returns false when the
  /// calendar is empty.
  bool step();

  /// Attaches an observer notified on every dispatch. Must outlive the
  /// queue's use.
  void add_observer(EngineObserver* observer);

  /// Pending (non-cancelled) event count.
  std::size_t pending_count() const { return records_.size(); }

  /// Heap entries, including cancelled ones awaiting lazy removal.
  /// Bounded by max(2 * pending_count(), compaction floor).
  std::size_t backlog() const { return heap_.size(); }

  /// Total events dispatched so far.
  std::uint64_t executed_count() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO within a timestamp
    EventId id;
    // Heap ordering wants earliest-first with FIFO ties, so "less" means
    // later (std::*_heap build max-heaps).
    bool operator<(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  struct Record {
    EventKind kind;
    std::size_t zone;
    Callback cb;
  };

  /// Drops cancelled heap entries when they dominate the backlog.
  void maybe_compact();

  SimTime now_;
  EventId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;
  /// id -> record; an id absent here but present in the heap was cancelled
  /// (lazy deletion).
  std::unordered_map<EventId, Record> records_;
  std::vector<EngineObserver*> observers_;
};

}  // namespace redspot
