// The engine's typed event calendar.
//
// Same calendar semantics as sim/Simulation (which remains the generic,
// untyped core for micro-benchmarks and standalone models), plus the two
// things the engine decomposition needs: every entry carries its EventKind
// and zone for the observer layer, and cancel() takes the handle by
// reference and zeroes it — the engine's universal "cancel and forget"
// idiom, previously duplicated at every call site.
//
// Determinism contract (the tie-break the whole engine is built on):
// events at equal timestamps fire in scheduling order, strictly FIFO —
// never reordered by kind or zone. The engine derives its coincident-event
// discipline from *when* it schedules: a billing-cycle boundary is armed a
// full hour ahead while the price tick that could coincide with it is
// armed only one price step ahead, so the boundary always observes the
// pre-tick price; the deadline trigger is armed at every commit, so its
// order against a coincident tick reflects which was scheduled first.
// (A kind-priority tie-break would *break* byte-identity with the
// historical engine precisely because that relative order is
// history-dependent.) event_core_test pins this contract.
//
// Cancellation is lazy with heap compaction once cancelled entries
// outnumber live ones past a small floor — identical bounds to Simulation
// (see sim/simulation.hpp for the amortized-cost argument).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"
#include "core/events/event.hpp"
#include "core/events/observer.hpp"

namespace redspot {

/// Receiver for callback-less events (see EventQueue::set_sink): entries
/// scheduled by (kind, zone) alone dispatch here instead of through a
/// std::function, skipping the per-event closure construction on the hot
/// paths where the handler is a fixed member function anyway.
class EventSink {
 public:
  virtual void on_queue_event(EventKind kind, std::size_t zone) = 0;

 protected:
  ~EventSink() = default;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  explicit EventQueue(SimTime start = 0) : now_(start) {}

  SimTime now() const { return now_; }

  /// Registers the receiver for callback-less schedules. Must outlive the
  /// queue's use; required before the (kind, zone)-only overloads.
  void set_sink(EventSink* sink) { sink_ = sink; }

  /// Schedules `cb` at absolute time `t` (>= now()). Returns a handle.
  EventId schedule_at(EventKind kind, std::size_t zone, SimTime t,
                      Callback cb);

  /// Schedules `cb` after `d` (>= 0) of simulated time.
  EventId schedule_in(EventKind kind, std::size_t zone, Duration d,
                      Callback cb) {
    return schedule_at(kind, zone, now_ + d, std::move(cb));
  }

  /// Callback-less variants: the event dispatches through the sink as
  /// on_queue_event(kind, zone). Identical (time, seq) ordering to the
  /// callback form — only the dispatch mechanism differs.
  EventId schedule_at(EventKind kind, std::size_t zone, SimTime t);
  EventId schedule_in(EventKind kind, std::size_t zone, Duration d) {
    return schedule_at(kind, zone, now_ + d);
  }

  /// Cancels a pending event and zeroes the handle; no-op when the handle
  /// is 0 or the event already ran.
  void cancel(EventId& id);

  /// True when `id` is still pending.
  bool pending(EventId id) const;

  /// Dispatches the next event: advances the clock, notifies every
  /// observer (on_event), then runs the callback. Returns false when the
  /// calendar is empty.
  bool step();

  /// Timestamp of the next event step() would dispatch, or kNever when the
  /// calendar is empty. Drains cancelled heap tops as a side effect (the
  /// same entries step() would skip), so repeated peeks stay O(1) amortized.
  /// This is the batched lockstep driver's scheduling key — called once per
  /// dispatched event, hence inline.
  SimTime next_time() {
    while (!heap_.empty() && find(heap_.front().id) == nullptr) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
    }
    return heap_.empty() ? kNever : heap_.front().time;
  }

  /// Attaches an observer notified on every dispatch. Must outlive the
  /// queue's use.
  void add_observer(EngineObserver* observer);

  /// Pending (non-cancelled) event count.
  std::size_t pending_count() const { return live_; }

  /// Heap entries, including cancelled ones awaiting lazy removal.
  /// Bounded by max(2 * pending_count(), compaction floor).
  std::size_t backlog() const { return heap_.size(); }

  /// Total events dispatched so far.
  std::uint64_t executed_count() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO within a timestamp
    EventId id;
    // Heap ordering wants earliest-first with FIFO ties, so "less" means
    // later (std::*_heap build max-heaps).
    bool operator<(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  /// Pooled event record. Handles encode (generation << 32 | slot index);
  /// a freed slot bumps its generation on reuse, so a stale handle — a
  /// cancelled or already-run event still sitting in the heap — simply
  /// fails the generation check. The pool grows to the peak concurrent
  /// event count and then schedules allocation-free (the engine's lambdas
  /// fit std::function's inline buffer), which matters: the calendar is
  /// the per-event floor under every simulation, batched sweeps included.
  struct Slot {
    EventKind kind = EventKind::kPriceTick;
    std::size_t zone = 0;
    Callback cb;  ///< empty = dispatch via the sink (kind, zone)
    std::uint32_t gen = 0;  ///< starts at 1 on first use; 0 never matches
    bool live = false;
  };

  static constexpr std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }
  static constexpr std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// The slot behind a handle, or nullptr when the event is no longer
  /// pending (ran, cancelled, or the slot was reused).
  Slot* find(EventId id) {
    if (id == 0) return nullptr;
    const std::size_t slot = slot_of(id);
    if (slot >= slots_.size()) return nullptr;
    Slot& s = slots_[slot];
    if (!s.live || s.gen != gen_of(id)) return nullptr;
    return &s;
  }
  const Slot* find(EventId id) const {
    return const_cast<EventQueue*>(this)->find(id);
  }

  /// Returns a live slot to the free list (caller already moved the
  /// callback out or wants it dropped).
  void release(EventId id, Slot& slot);

  /// Shared tail of the schedule_at overloads: stamps the slot (the caller
  /// already set cb), allocates the handle, and pushes the heap entry.
  EventId arm(Slot& s, std::uint32_t slot, EventKind kind, std::size_t zone,
              SimTime t);

  /// Drops cancelled heap entries when they dominate the backlog.
  void maybe_compact();

  SimTime now_;
  EventSink* sink_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::vector<EngineObserver*> observers_;
};

}  // namespace redspot
