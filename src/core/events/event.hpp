// Typed engine events.
//
// Every event the engine schedules — price ticks, instance arrivals,
// checkpoint completions, billing-cycle boundaries, the deadline trigger —
// is tagged with an EventKind and the zone it concerns (kNoZone for global
// events). The tags exist for the observer layer: dispatch order is still
// strictly (time, scheduling sequence) FIFO, never kind-based, because the
// engine's determinism contract is "whoever scheduled first at an instant
// fires first" (see event_queue.hpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/time.hpp"

namespace redspot {

/// Handle for cancelling a scheduled event. 0 is never a valid id.
using EventId = std::uint64_t;

/// Zone tag for events that are not zone-scoped.
inline constexpr std::size_t kNoZone = static_cast<std::size_t>(-1);

/// Every event class the engine schedules.
enum class EventKind : std::uint8_t {
  kPriceTick,            ///< 5-minute spot-price sample (global)
  kInstanceReady,        ///< spot request fulfilled after the queue delay
  kRestartDone,          ///< checkpoint load finished (t_r elapsed)
  kScheduledCheckpoint,  ///< policy-scheduled checkpoint instant (global)
  kCheckpointDone,       ///< in-flight checkpoint write finished (t_c)
  kEmergencyCheckpoint,  ///< notice-driven write timed to end at the kill
  kCycleBoundary,        ///< billing hour ends for one zone
  kPreBoundary,          ///< t_c before a cycle boundary (stop/reconfigure)
  kLateNotice,           ///< delayed termination notice finally arrives
  kRebalanceNotice,      ///< capacity-rebalance warning (regime notice)
  kDoom,                 ///< announced out-of-bid kill instant
  kDeadlineTrigger,      ///< committed-progress margin exhausted (global)
  kZoneCompletion,       ///< a zone's remaining compute reaches zero
  kOnDemandFinish,       ///< on-demand phase completes the application
};

const char* to_string(EventKind kind);

/// One dispatched event, as seen by observers (EngineObserver::on_event).
struct Event {
  SimTime time = 0;
  EventKind kind = EventKind::kPriceTick;
  std::size_t zone = kNoZone;  ///< global zone id; kNoZone when global
  std::uint64_t seq = 0;       ///< scheduling sequence (the FIFO tie-break)
};

}  // namespace redspot
