// Structured per-event trace of one engine run.
//
// An EngineObserver that renders every hook into one stable text line,
// suitable for debugging, replay auditing, and golden-file comparison
// (event_trace_test pins one Fig-4 scenario per policy). The format is a
// contract — tools parse it — so changes to it are behaviour changes:
//
//   E <t> <event-kind> [z<zone>]          calendar event dispatched
//   T <t> z<zone> <from>-><to>            zone state transition
//   B <t> <item-kind> z<zone> <micros>    line item charged (micro-dollars)
//   C <t> z<zone> <outcome> <progress>    checkpoint write settled
//   F <t> <fault-kind> z<zone> [backoff=<s>]  injected fault took effect
//   R <t> cost=<micros> completed=<0|1> met=<0|1>  run finished
#pragma once

#include <string>
#include <vector>

#include "core/events/observer.hpp"

namespace redspot {

class EventTraceRecorder final : public EngineObserver {
 public:
  void on_event(const Event& event) override;
  void on_transition(SimTime t, std::size_t zone, ZoneState from,
                     ZoneState to) override;
  void on_billing(const LineItem& item) override;
  void on_checkpoint_commit(const CheckpointCommit& commit) override;
  void on_fault(const FaultEvent& fault) override;
  void on_finish(const RunResult& result) override;

  const std::vector<std::string>& lines() const { return lines_; }

  /// All lines joined with '\n' (trailing newline included).
  std::string str() const;

 private:
  std::vector<std::string> lines_;
};

}  // namespace redspot
