#include "core/events/event.hpp"

namespace redspot {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kPriceTick:
      return "price-tick";
    case EventKind::kInstanceReady:
      return "instance-ready";
    case EventKind::kRestartDone:
      return "restart-done";
    case EventKind::kScheduledCheckpoint:
      return "scheduled-checkpoint";
    case EventKind::kCheckpointDone:
      return "checkpoint-done";
    case EventKind::kEmergencyCheckpoint:
      return "emergency-checkpoint";
    case EventKind::kCycleBoundary:
      return "cycle-boundary";
    case EventKind::kPreBoundary:
      return "pre-boundary";
    case EventKind::kLateNotice:
      return "late-notice";
    case EventKind::kRebalanceNotice:
      return "rebalance-notice";
    case EventKind::kDoom:
      return "doom";
    case EventKind::kDeadlineTrigger:
      return "deadline-trigger";
    case EventKind::kZoneCompletion:
      return "zone-completion";
    case EventKind::kOnDemandFinish:
      return "on-demand-finish";
  }
  return "?";
}

}  // namespace redspot
