#include "core/events/observer.hpp"

namespace redspot {

const char* to_string(CheckpointCommit::Outcome outcome) {
  switch (outcome) {
    case CheckpointCommit::Outcome::kCommitted:
      return "committed";
    case CheckpointCommit::Outcome::kWriteFailed:
      return "write-failed";
    case CheckpointCommit::Outcome::kCorrupt:
      return "corrupt";
  }
  return "?";
}

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCkptWriteFailure:
      return "ckpt-write-failure";
    case FaultEvent::Kind::kCkptCorruption:
      return "ckpt-corruption";
    case FaultEvent::Kind::kRestartFailure:
      return "restart-failure";
    case FaultEvent::Kind::kRequestRejection:
      return "request-rejection";
    case FaultEvent::Kind::kNoticeDropped:
      return "notice-dropped";
    case FaultEvent::Kind::kNoticeLate:
      return "notice-late";
  }
  return "?";
}

void FaultStatsRecorder::on_fault(const FaultEvent& fault) {
  switch (fault.kind) {
    case FaultEvent::Kind::kCkptWriteFailure:
      ++stats_->ckpt_write_failures;
      break;
    case FaultEvent::Kind::kCkptCorruption:
      ++stats_->ckpt_corruptions;
      break;
    case FaultEvent::Kind::kRestartFailure:
      ++stats_->restart_failures;
      break;
    case FaultEvent::Kind::kRequestRejection:
      ++stats_->request_rejections;
      stats_->backoff_total += fault.backoff;
      break;
    case FaultEvent::Kind::kNoticeDropped:
      ++stats_->notices_dropped;
      break;
    case FaultEvent::Kind::kNoticeLate:
      ++stats_->notices_late;
      break;
  }
}

}  // namespace redspot
