#include "core/events/event_queue.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

namespace {

/// Below this backlog the cancelled fraction is irrelevant; skipping
/// compaction keeps tiny calendars allocation-stable.
constexpr std::size_t kCompactionFloor = 64;

}  // namespace

EventId EventQueue::schedule_at(EventKind kind, std::size_t zone, SimTime t,
                                Callback cb) {
  REDSPOT_CHECK_MSG(t >= now_, "scheduling into the past: t=" << t << " now="
                                                              << now_);
  REDSPOT_CHECK(cb != nullptr);
  const EventId id = next_id_++;
  heap_.push_back(Entry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end());
  records_.emplace(id, Record{kind, zone, std::move(cb)});
  return id;
}

void EventQueue::cancel(EventId& id) {
  if (records_.erase(id) > 0) maybe_compact();
  id = 0;
}

void EventQueue::maybe_compact() {
  // Every heap entry was pushed with a records_ entry and records_ only
  // shrinks via cancel or pop, so live = records_.size() and the
  // difference is exactly the cancelled entries still in the heap.
  const std::size_t live = records_.size();
  if (heap_.size() <= kCompactionFloor || heap_.size() - live <= live)
    return;
  std::erase_if(heap_, [this](const Entry& e) {
    return records_.find(e.id) == records_.end();
  });
  std::make_heap(heap_.begin(), heap_.end());
}

bool EventQueue::pending(EventId id) const {
  return records_.find(id) != records_.end();
}

void EventQueue::add_observer(EngineObserver* observer) {
  REDSPOT_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    auto it = records_.find(top.id);
    if (it == records_.end()) continue;  // cancelled
    Record rec = std::move(it->second);
    records_.erase(it);
    REDSPOT_CHECK(top.time >= now_);
    now_ = top.time;
    ++executed_;
    if (!observers_.empty()) {
      const Event event{now_, rec.kind, rec.zone, top.seq};
      for (EngineObserver* o : observers_) o->on_event(event);
    }
    rec.cb();
    return true;
  }
  return false;
}

}  // namespace redspot
