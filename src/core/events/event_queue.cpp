#include "core/events/event_queue.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

namespace {

/// Below this backlog the cancelled fraction is irrelevant; skipping
/// compaction keeps tiny calendars allocation-stable.
constexpr std::size_t kCompactionFloor = 64;

}  // namespace

void EventQueue::release(EventId id, Slot& slot) {
  slot.live = false;
  free_.push_back(slot_of(id));
  --live_;
}

EventId EventQueue::schedule_at(EventKind kind, std::size_t zone, SimTime t,
                                Callback cb) {
  REDSPOT_CHECK(cb != nullptr);
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  return arm(s, slot, kind, zone, t);
}

EventId EventQueue::schedule_at(EventKind kind, std::size_t zone, SimTime t) {
  REDSPOT_CHECK_MSG(sink_ != nullptr,
                    "callback-less schedule without a sink");
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Slot& s = slots_[slot];
  s.cb = nullptr;
  return arm(s, slot, kind, zone, t);
}

EventId EventQueue::arm(Slot& s, std::uint32_t slot, EventKind kind,
                        std::size_t zone, SimTime t) {
  REDSPOT_CHECK_MSG(t >= now_, "scheduling into the past: t=" << t << " now="
                                                              << now_);
  ++s.gen;  // invalidates every stale handle to this slot
  s.kind = kind;
  s.zone = zone;
  s.live = true;
  ++live_;
  const EventId id = (static_cast<EventId>(s.gen) << 32) | slot;
  heap_.push_back(Entry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end());
  return id;
}

void EventQueue::cancel(EventId& id) {
  if (Slot* s = find(id)) {
    s->cb = nullptr;  // drop any owned captures now, not at slot reuse
    release(id, *s);
    maybe_compact();
  }
  id = 0;
}

void EventQueue::maybe_compact() {
  // Every heap entry was pushed for a then-live slot and dies with it (run
  // or cancel), so live_ counts the live heap entries exactly and the
  // difference is the cancelled ones awaiting lazy removal.
  if (heap_.size() <= kCompactionFloor || heap_.size() - live_ <= live_)
    return;
  std::erase_if(heap_,
                [this](const Entry& e) { return find(e.id) == nullptr; });
  std::make_heap(heap_.begin(), heap_.end());
}

bool EventQueue::pending(EventId id) const { return find(id) != nullptr; }

void EventQueue::add_observer(EngineObserver* observer) {
  REDSPOT_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    Slot* s = find(top.id);
    if (s == nullptr) continue;  // cancelled
    const EventKind kind = s->kind;
    const std::size_t zone = s->zone;
    Callback cb;
    if (s->cb) cb = std::move(s->cb);
    release(top.id, *s);
    REDSPOT_CHECK(top.time >= now_);
    now_ = top.time;
    ++executed_;
    if (!observers_.empty()) {
      const Event event{now_, kind, zone, top.seq};
      for (EngineObserver* o : observers_) o->on_event(event);
    }
    if (cb) {
      cb();
    } else {
      sink_->on_queue_event(kind, zone);
    }
    return true;
  }
  return false;
}

}  // namespace redspot
