// Observer hooks over a running engine.
//
// EngineObserver is the one attachment surface for everything that watches
// a run without steering it: the event trace recorder, fault accounting,
// post-run auditing (fault/audit_observer.hpp), and future tooling. The
// engine fans out
//
//   on_event             every dispatched calendar event (from EventQueue)
//   on_transition        every zone state-machine transition
//   on_billing           every LineItem the moment it is charged
//   on_checkpoint_commit every settled checkpoint write (incl. failures)
//   on_fault             every injected fault taking effect
//   on_finish            the final RunResult, once, after totals settle
//
// Observers are notified in attachment order, synchronously, and must not
// mutate engine state. All hooks default to no-ops so an observer overrides
// only what it needs.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "core/events/event.hpp"
#include "core/run_result.hpp"
#include "core/zone/zone_state.hpp"
#include "market/billing.hpp"

namespace redspot {

/// A settled checkpoint write, validated at completion. Progress publishes
/// to the store only on kCommitted; the other outcomes leave committed
/// progress untouched (kCorrupt after a rollback).
struct CheckpointCommit {
  enum class Outcome { kCommitted, kWriteFailed, kCorrupt };
  SimTime at = 0;
  std::size_t zone = 0;
  Duration progress = 0;  ///< compute time the write captured
  Outcome outcome = Outcome::kCommitted;
};

const char* to_string(CheckpointCommit::Outcome outcome);

/// One injected fault taking effect (see fault/fault_plan.hpp).
struct FaultEvent {
  enum class Kind {
    kCkptWriteFailure,
    kCkptCorruption,
    kRestartFailure,
    kRequestRejection,
    kNoticeDropped,
    kNoticeLate,
  };
  Kind kind = Kind::kCkptWriteFailure;
  SimTime at = 0;
  std::size_t zone = 0;
  Duration backoff = 0;  ///< retry backoff (kRequestRejection only)
};

const char* to_string(FaultEvent::Kind kind);

class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void on_event(const Event& event) { (void)event; }
  virtual void on_transition(SimTime t, std::size_t zone, ZoneState from,
                             ZoneState to) {
    (void)t, (void)zone, (void)from, (void)to;
  }
  virtual void on_billing(const LineItem& item) { (void)item; }
  virtual void on_checkpoint_commit(const CheckpointCommit& commit) {
    (void)commit;
  }
  virtual void on_fault(const FaultEvent& fault) { (void)fault; }
  virtual void on_finish(const RunResult& result) { (void)result; }
};

/// Built-in observer accumulating FaultStats — the engine's own fault
/// accounting attaches through the observer layer like everything else.
class FaultStatsRecorder final : public EngineObserver {
 public:
  explicit FaultStatsRecorder(FaultStats* stats) : stats_(stats) {}
  void on_fault(const FaultEvent& fault) override;

 private:
  FaultStats* stats_;
};

}  // namespace redspot
