#include "core/events/trace_recorder.hpp"

#include <cstdio>

namespace redspot {

namespace {

using LL = long long;

}  // namespace

void EventTraceRecorder::on_event(const Event& event) {
  char buf[96];
  if (event.zone == kNoZone) {
    std::snprintf(buf, sizeof(buf), "E %lld %s", static_cast<LL>(event.time),
                  to_string(event.kind));
  } else {
    std::snprintf(buf, sizeof(buf), "E %lld %s z%zu",
                  static_cast<LL>(event.time), to_string(event.kind),
                  event.zone);
  }
  lines_.emplace_back(buf);
}

void EventTraceRecorder::on_transition(SimTime t, std::size_t zone,
                                       ZoneState from, ZoneState to) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "T %lld z%zu %s->%s", static_cast<LL>(t),
                zone, to_string(from), to_string(to));
  lines_.emplace_back(buf);
}

void EventTraceRecorder::on_billing(const LineItem& item) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "B %lld %s z%zu %lld",
                static_cast<LL>(item.charged_at),
                to_string(item.kind).c_str(), item.zone,
                static_cast<LL>(item.amount.micros()));
  lines_.emplace_back(buf);
}

void EventTraceRecorder::on_checkpoint_commit(const CheckpointCommit& commit) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "C %lld z%zu %s %lld",
                static_cast<LL>(commit.at), commit.zone,
                to_string(commit.outcome),
                static_cast<LL>(commit.progress));
  lines_.emplace_back(buf);
}

void EventTraceRecorder::on_fault(const FaultEvent& fault) {
  char buf[96];
  if (fault.kind == FaultEvent::Kind::kRequestRejection) {
    std::snprintf(buf, sizeof(buf), "F %lld %s z%zu backoff=%lld",
                  static_cast<LL>(fault.at), to_string(fault.kind),
                  fault.zone, static_cast<LL>(fault.backoff));
  } else {
    std::snprintf(buf, sizeof(buf), "F %lld %s z%zu",
                  static_cast<LL>(fault.at), to_string(fault.kind),
                  fault.zone);
  }
  lines_.emplace_back(buf);
}

void EventTraceRecorder::on_finish(const RunResult& result) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "R %lld cost=%lld completed=%d met=%d",
                static_cast<LL>(result.finish_time),
                static_cast<LL>(result.total_cost.micros()),
                result.completed ? 1 : 0, result.met_deadline ? 1 : 0);
  lines_.emplace_back(buf);
}

std::string EventTraceRecorder::str() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace redspot
