// Checkpoint choreography: policy-scheduled starts, the in-flight write
// (CheckpointCoordinator), and settlement — commit, rollback, or abort.
#include <algorithm>

#include "app/application.hpp"
#include "core/engine.hpp"

namespace redspot {

void Engine::reschedule_policy_checkpoint() {
  queue_.cancel(scheduled_ckpt_event_);
  if (done_ || on_demand_phase_) return;
  const SimTime t = config_.policy->schedule_next_checkpoint(*this);
  if (t == kNever) return;
  scheduled_ckpt_event_ = queue_.schedule_at(
      EventKind::kScheduledCheckpoint, kNoZone, std::max(now(), t));
}

void Engine::on_scheduled_checkpoint() {
  scheduled_ckpt_event_ = 0;
  if (done_ || on_demand_phase_ || coord_.in_flight()) return;
  if (!policy_checkpoint_allowed()) return;
  start_checkpoint(std::nullopt);
}

bool Engine::policy_checkpoint_allowed() const {
  // A policy checkpoint started at or below the deadline margin would
  // postpone the on-demand switch by t_c without necessarily committing
  // anything new — repeated (e.g. Rising Edge fires every tick), that
  // accumulates an unbounded deadline deficit. Below the margin, only the
  // deadline trigger itself may checkpoint (it proves the gain exceeds
  // t_c first).
  return monitor_.switch_time(store_.latest_progress()) > now();
}

void Engine::start_checkpoint(std::optional<std::size_t> target) {
  REDSPOT_CHECK(!coord_.in_flight());
  if (!target) target = leading_zone();
  if (!target) return;  // nothing running; rescheduled at the next restart
  ZoneMachine& z = zone_at(*target);

  // Freeze the zone's progress for the duration of the write.
  z.begin_checkpoint(now());
  queue_.cancel(z.completion_event);

  coord_.begin(queue_, *target,
               iteration_aligned(experiment_.app, z.progress_base()),
               experiment_.costs.checkpoint, [this] { on_checkpoint_done(); });
  record(now(), *target, TimelineKind::kCheckpointStart,
         [&] { return "progress=" + format_duration(coord_.value()); });
}

bool Engine::commit_in_flight_checkpoint() {
  const std::size_t zone = coord_.zone();
  const Duration value = coord_.value();
  // Validate the finished write against the fault plan before publishing
  // it. Either failure mode leaves latest_progress() untouched, keeping
  // P_c monotone — the deadline margin's precondition — and re-arms the
  // deadline trigger, which may have been waiting on this write.
  const CheckpointCommit::Outcome outcome =
      coord_.commit(queue_, injector_, store_);
  switch (outcome) {
    case CheckpointCommit::Outcome::kWriteFailed:
      notify_fault(FaultEvent::Kind::kCkptWriteFailure, zone);
      record(now(), zone, TimelineKind::kCheckpointFailed,
             injector_.store_unreachable(now()) ? "store-outage" : "io-error");
      break;
    case CheckpointCommit::Outcome::kCorrupt:
      notify_fault(FaultEvent::Kind::kCkptCorruption, zone);
      record(now(), zone, TimelineKind::kCheckpointCorrupt,
             [&] { return "progress=" + format_duration(value); });
      break;
    case CheckpointCommit::Outcome::kCommitted:
      ++result_.checkpoints_committed;
      record(now(), zone, TimelineKind::kCheckpointDone,
             [&] { return "progress=" + format_duration(value); });
      break;
  }
  notify_commit(CheckpointCommit{now(), zone, value, outcome});
  reschedule_deadline_trigger();
  return outcome == CheckpointCommit::Outcome::kCommitted;
}

void Engine::settle_zone_checkpoint(std::size_t zone) {
  if (!coord_.in_flight() || coord_.zone() != zone) return;
  if (coord_.done_time() <= now()) {
    commit_in_flight_checkpoint();
  } else {
    // The write was cut off: nothing commits. Re-arm the deadline
    // trigger — it may have been waiting on this write.
    coord_.abort(queue_);
    reschedule_deadline_trigger();
  }
}

void Engine::on_checkpoint_done() {
  const std::size_t zone = coord_.zone();
  const bool committed = commit_in_flight_checkpoint();

  // The checkpointing zone resumes computing from its frozen progress.
  start_computing(zone, zone_at(zone).progress_base());

  // Algorithm 1 lines 19-25: waiting zones restart from this checkpoint.
  // A failed commit gives them nothing new to load — they keep waiting
  // for the next verified one (or for reconcile() on a full outage).
  if (!committed) return;
  for (std::size_t z : config_.zones) {
    if (zone_at(z).state() == ZoneState::kWaiting) request_instance(z);
  }
}

}  // namespace redspot
