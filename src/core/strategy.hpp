// Strategy: who picks (bid, zone set, policy)?
//
// The policies of Section 4 run with a fixed configuration chosen up front
// (FixedStrategy). The Adaptive scheme of Section 7 re-selects the
// permutation (B, N, policy) at decision points — see
// core/adaptive/adaptive_runner.hpp. The engine consults the strategy at
// the paper's decision points:
//   (1) a zone was terminated out-of-bid,
//   (2) a billing hour ended (and, t_c earlier, a pre-boundary check so a
//       protective checkpoint can complete before a disruptive switch),
//   (3) every price tick — where the engine only applies configurations
//       that keep the bid and every active zone (the paper's rule 3).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/money.hpp"
#include "core/policy.hpp"

namespace redspot {

/// The running configuration: one permutation of (B, zones, policy).
struct EngineConfig {
  Money bid;
  /// Global zone indices; size() is the paper's N.
  std::vector<std::size_t> zones;
  /// Non-owning; must outlive the engine run (strategies own policies).
  Policy* policy = nullptr;

  bool same_as(const EngineConfig& o) const {
    return bid == o.bid && zones == o.zones && policy == o.policy;
  }
};

/// Where in the run a (re)configuration decision happens.
enum class DecisionPoint {
  kStart,
  kZoneTerminated,  ///< an instance went out-of-bid
  kPreBoundary,     ///< t_c before a billing-cycle end
  kCycleEnd,        ///< a billing hour ended
  kPriceTick,       ///< a 5-minute price step
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Configuration at experiment start.
  virtual EngineConfig initial(const EngineView& view) = 0;

  /// Re-decision at later points; nullopt keeps the current configuration.
  virtual std::optional<EngineConfig> reconsider(const EngineView& view,
                                                 DecisionPoint point) {
    (void)view;
    (void)point;
    return std::nullopt;
  }

  /// True when reconsider() can return a change — lets the engine skip
  /// scheduling decision events for fixed strategies.
  virtual bool dynamic() const { return false; }
};

/// A constant (bid, zones, policy) for the whole run.
class FixedStrategy final : public Strategy {
 public:
  FixedStrategy(Money bid, std::vector<std::size_t> zones,
                std::unique_ptr<Policy> policy)
      : policy_(std::move(policy)),
        config_{bid, std::move(zones), policy_.get()} {}

  EngineConfig initial(const EngineView&) override { return config_; }

 private:
  std::unique_ptr<Policy> policy_;
  EngineConfig config_;
};

}  // namespace redspot
