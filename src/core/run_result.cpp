#include "core/run_result.hpp"

#include <sstream>

namespace redspot {

std::string to_string(TimelineKind kind) {
  switch (kind) {
    case TimelineKind::kInstanceRequested:
      return "instance-requested";
    case TimelineKind::kInstanceRunning:
      return "instance-running";
    case TimelineKind::kOutOfBid:
      return "out-of-bid";
    case TimelineKind::kUserTerminated:
      return "user-terminated";
    case TimelineKind::kCheckpointStart:
      return "checkpoint-start";
    case TimelineKind::kCheckpointDone:
      return "checkpoint-done";
    case TimelineKind::kCheckpointFailed:
      return "checkpoint-failed";
    case TimelineKind::kCheckpointCorrupt:
      return "checkpoint-corrupt";
    case TimelineKind::kRestartStart:
      return "restart-start";
    case TimelineKind::kRestartDone:
      return "restart-done";
    case TimelineKind::kRestartFailed:
      return "restart-failed";
    case TimelineKind::kRequestRejected:
      return "request-rejected";
    case TimelineKind::kNoticeDropped:
      return "notice-dropped";
    case TimelineKind::kSwitchToOnDemand:
      return "switch-to-on-demand";
    case TimelineKind::kConfigChange:
      return "config-change";
    case TimelineKind::kCompleted:
      return "completed";
  }
  return "?";
}

std::string RunResult::timeline_str() const {
  std::ostringstream os;
  for (const TimelineEvent& e : timeline) {
    os << format_time(e.time) << "  zone " << e.zone << "  "
       << to_string(e.kind);
    if (!e.detail.empty()) os << "  (" << e.detail << ')';
    os << '\n';
  }
  return os.str();
}

}  // namespace redspot
