// Shared cache-resident trace view for batched sweeps (DESIGN.md §14).
//
// Every engine in a lockstep batch group walks the SAME market traces, and
// the Threshold policy's S_min query — min price over the trailing 2-day
// window — re-scans those shared samples once per engine per tick. A
// SharedTraceIndex precomputes a sparse-table range-minimum over each
// zone's samples once per market, turning every S_min query from an
// O(window) scan into two table loads.
//
// Bit-identity: prices are integer micro-dollars, and min over integers is
// associative with a unique value, so the sparse-table answer equals
// *std::min_element over the same span bit-for-bit. The index is immutable
// after construction and safe to share across threads and engines.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/money.hpp"
#include "trace/price_view.hpp"
#include "trace/zone_traces.hpp"

namespace redspot::batch {

/// Sparse-table (binary-lifting) range minimum over one sample array:
/// O(n log n) build, O(1) query, flat level-major storage.
class RangeMinIndex {
 public:
  void build(std::span<const Money> samples);

  /// Exact minimum over sample indices [lo, hi); requires lo < hi <= size.
  Money min_in(std::size_t lo, std::size_t hi) const;

  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
  std::size_t levels_ = 0;
  /// table_[k * n_ + i] = min over [i, i + 2^k), level-major so each
  /// query's two loads share a level row.
  std::vector<std::int64_t> table_;
};

/// One RangeMinIndex per market zone, addressed by the PriceViews the
/// engine hands out (views alias the zone trace, so the view's data
/// pointer locates its sample range in O(1)).
class SharedTraceIndex {
 public:
  explicit SharedTraceIndex(const ZoneTraceSet& traces);

  /// Minimum over the samples `view` covers; `view` must alias the trace
  /// of `zone` this index was built over.
  Money min_over(std::size_t zone, const PriceView& view) const;

  std::size_t num_zones() const { return zones_.size(); }

 private:
  struct ZoneIndex {
    const Money* base = nullptr;
    std::size_t size = 0;
    RangeMinIndex idx;
  };
  std::vector<ZoneIndex> zones_;
};

}  // namespace redspot::batch
