#include "core/batch/trace_index.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace redspot::batch {

void RangeMinIndex::build(std::span<const Money> samples) {
  n_ = samples.size();
  levels_ = n_ == 0 ? 0 : static_cast<std::size_t>(std::bit_width(n_));
  table_.assign(levels_ * n_, 0);
  for (std::size_t i = 0; i < n_; ++i) table_[i] = samples[i].micros();
  for (std::size_t k = 1; k < levels_; ++k) {
    const std::size_t half = std::size_t{1} << (k - 1);
    const std::int64_t* prev = table_.data() + (k - 1) * n_;
    std::int64_t* cur = table_.data() + k * n_;
    for (std::size_t i = 0; i + 2 * half <= n_; ++i)
      cur[i] = std::min(prev[i], prev[i + half]);
  }
}

Money RangeMinIndex::min_in(std::size_t lo, std::size_t hi) const {
  REDSPOT_CHECK(lo < hi && hi <= n_);
  const std::size_t k =
      static_cast<std::size_t>(std::bit_width(hi - lo)) - 1;
  const std::int64_t* row = table_.data() + k * n_;
  const std::int64_t a = row[lo];
  const std::int64_t b = row[hi - (std::size_t{1} << k)];
  return Money::from_micros(a < b ? a : b);
}

SharedTraceIndex::SharedTraceIndex(const ZoneTraceSet& traces) {
  zones_.resize(traces.num_zones());
  for (std::size_t z = 0; z < traces.num_zones(); ++z) {
    const std::span<const Money> samples = traces.zone(z).samples();
    zones_[z].base = samples.data();
    zones_[z].size = samples.size();
    zones_[z].idx.build(samples);
  }
}

Money SharedTraceIndex::min_over(std::size_t zone,
                                 const PriceView& view) const {
  REDSPOT_CHECK(zone < zones_.size());
  const ZoneIndex& z = zones_[zone];
  REDSPOT_CHECK_MSG(!view.empty(), "min over an empty window");
  REDSPOT_CHECK_MSG(view.data() >= z.base &&
                        view.data() + view.size() <= z.base + z.size,
                    "view does not alias the indexed trace");
  const std::size_t lo = static_cast<std::size_t>(view.data() - z.base);
  return z.idx.min_in(lo, lo + view.size());
}

}  // namespace redspot::batch
