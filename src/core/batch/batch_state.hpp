// Flat SoA state + branchless kernels of the batched sweep engine
// (DESIGN.md §14).
//
// The lockstep driver keeps NOTHING per engine on the heap at decision
// granularity: one contiguous array of next-event times is the whole
// scheduling state, and picking the engine to advance is a fused
// min/argmin reduction over it. The bid-grid × state-price inner loop of
// the model-pool prewarm is likewise a flat two-array sweep with a
// branchless bid-vs-price mask — no data-dependent branches, so both
// loops autovectorize.
//
// FP-determinism contract: this translation unit is compiled with
// -ffp-contract=off (enforced — the .cpp #errors without the matching
// REDSPOT_BATCH_FP_STRICT define that src/core/CMakeLists.txt sets
// alongside the flag), and every reduction here has a fixed left-to-right
// order, so batched results cannot drift from the scalar engine's through
// fused multiply-adds or reassociation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"

namespace redspot::batch {

/// SoA per-lane scheduling state of one lockstep group: next_time[i] is
/// the time of engine i's next calendar event, kNever once it finished.
struct BatchState {
  std::vector<SimTime> next_time;

  void resize(std::size_t n) { next_time.assign(n, 0); }
  std::size_t size() const { return next_time.size(); }
};

/// Fused min/argmin over next_time: the lane with the globally earliest
/// event, lowest index on ties (the FIFO discipline of the scalar sweep).
/// SIZE_MAX when every lane reads kNever (all engines finished).
/// Integer-only (SimTime), so it lives here inline — the FP-determinism
/// contract only binds the kernels doing double arithmetic, and the
/// lockstep driver calls this once per dispatched event.
inline std::size_t argmin_next(const BatchState& state) {
  const SimTime* times = state.next_time.data();
  const std::size_t n = state.next_time.size();
  SimTime best = kNever;
  std::size_t best_i = SIZE_MAX;
  for (std::size_t i = 0; i < n; ++i) {
    // Strict < keeps the lowest index on ties; conditional moves, not
    // branches, so the reduction stays flat.
    const bool better = times[i] < best;
    best = better ? times[i] : best;
    best_i = better ? i : best_i;
  }
  return best == kNever ? SIZE_MAX : best_i;
}

/// Plain min over next_time — the group's next event instant, kNever once
/// every lane finished. No index tracking, so the reduction is a bare
/// vectorizable min; the lockstep driver visits the lanes at that instant
/// in index order itself (one linear pass), which reproduces the
/// lowest-index FIFO tie rule of a per-event argmin.
inline SimTime min_next(const BatchState& state) {
  const SimTime* times = state.next_time.data();
  const std::size_t n = state.next_time.size();
  SimTime best = kNever;
  for (std::size_t i = 0; i < n; ++i) best = times[i] < best ? times[i] : best;
  return best;
}

/// Branchless bid-grid alive-state map: out_alive[j] is the largest state
/// index whose price is <= bids[j] (+1e-9 conversion tolerance), or -1
/// when the bid is below every state — exactly
/// MarkovModel::max_alive_state with -1 standing in for SIZE_MAX.
/// `state_prices` ascending; computed as a flat count of mask bits per
/// bid, so the inner loop is a vectorizable compare-and-accumulate.
void map_alive_states(std::span<const double> state_prices,
                      std::span<const Money> bids,
                      std::span<std::int32_t> out_alive);

}  // namespace redspot::batch
