// BatchedSweepEngine: N sweep configs advanced in lockstep over one
// shared view of the price trace (DESIGN.md §14).
//
// The scalar sweep runs one Engine at a time, so every config re-walks the
// same trace, re-slides its own Markov models, and re-scans the same
// 2-day windows. The batched engine instead advances all N lanes in
// global event-time order, one instant at a time — a branchless min over
// the SoA next-event array finds the group's earliest event time, and
// every lane with an event at that instant drains its burst in lane order
// — so the group shares, across every lane:
//
//   * one SharedTraceIndex: S_min queries are O(1) table loads into
//     cache-resident data instead of N × O(window) scans;
//   * one ZoneModelPool: each per-zone model slides ONCE per tick for the
//     whole group (windows are pure functions of (zone, now)), and its
//     (state, alive) memo dedupes the closed-form solves across lanes and
//     bids, prewarmed grid-wide through the branchless alive-state kernel.
//
// Each lane is still a full scalar Engine stepped incrementally
// (begin/step_one/finalize), so billing anchors, zone-machine
// transitions, checkpoint coordination, and observers behave exactly as
// in a run() call — divergent per-lane control flow costs nothing in
// correctness. Bit-identity of the shared state is by construction: every
// shared value is a pure function of inputs that do not depend on which
// lane asks (see trace_index.hpp / model_pool.hpp), so the batched sweep
// reproduces the scalar sweep's RunResults bit-for-bit for ANY lane
// interleaving. The time-ordered interleaving is a performance choice
// (models only slide forward), not a correctness requirement.
//
// Dispatch rule (the homogeneous-group contract): lanes must be fixed
// policies (PolicyKind) with can_batch() options — the all-zero fault
// plan. Adaptive and large-bid strategies, and faulted runs, take the
// scalar path; exp/sweep.cpp and ensemble/shard_exec.cpp enforce this.
#pragma once

#include <span>
#include <vector>

#include "core/batch/trace_index.hpp"
#include "core/engine.hpp"

namespace redspot::batch {

/// One lane of a batch group.
struct BatchConfig {
  Experiment experiment;
  PolicyKind policy = PolicyKind::kPeriodic;
  Money bid;
  std::vector<std::size_t> zones{0};
  /// Optional per-lane observer, attached before the lane begins (e.g. an
  /// AuditObserver); must outlive the run() call.
  EngineObserver* observer = nullptr;
};

class BatchedSweepEngine {
 public:
  /// Builds the shared trace index once; `market` must outlive the
  /// engine. The engine is immutable after construction, so one instance
  /// serves many concurrent run() calls (one per sweep task).
  explicit BatchedSweepEngine(const SpotMarket& market,
                              EngineOptions options = {});

  /// True when `options` qualify for the batched path: the all-zero fault
  /// plan (fault injection draws per-engine randomness on divergent
  /// control flow; those runs keep the scalar path). Any regime qualifies
  /// on its own — one engine's lanes all share options_, so a group is
  /// regime-homogeneous by construction.
  static bool can_batch(const EngineOptions& options);

  /// True when two option sets may share one lockstep group: both
  /// batchable AND the same market regime. Callers batching lanes across
  /// option sets (the head-to-head harness) gate on this; mixed regimes
  /// fall back to scalar runs.
  static bool can_batch(const EngineOptions& a, const EngineOptions& b);

  /// Runs every lane to completion in lockstep. Returns one RunResult per
  /// lane, in lane order — each bit-identical to what a scalar
  /// Engine::run() of the same config produces. Thread-safe.
  std::vector<RunResult> run(std::span<const BatchConfig> configs) const;

  const SharedTraceIndex& trace_index() const { return index_; }

 private:
  const SpotMarket* market_;
  EngineOptions options_;
  SharedTraceIndex index_;
};

}  // namespace redspot::batch
