#include "core/batch/model_pool.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/batch/batch_state.hpp"

namespace redspot::batch {

ZoneModelPool::ZoneModelPool(std::size_t max_states)
    : max_states_(max_states) {
  REDSPOT_CHECK(max_states_ >= 2);
}

void ZoneModelPool::set_bid_grid(std::span<const Money> bids) {
  bid_grid_.assign(bids.begin(), bids.end());
  std::sort(bid_grid_.begin(), bid_grid_.end());
  bid_grid_.erase(std::unique(bid_grid_.begin(), bid_grid_.end()),
                  bid_grid_.end());
  grid_alive_.resize(bid_grid_.size());
}

ZoneModelPool::ZoneSlot& ZoneModelPool::slot(std::size_t zone) {
  if (zones_.size() <= zone) zones_.resize(zone + 1);
  if (zones_[zone] == nullptr)
    zones_[zone] = std::make_unique<ZoneSlot>(max_states_);
  return *zones_[zone];
}

void ZoneModelPool::prewarm(ZoneSlot& z, Money price) {
  const MarkovModel& model = z.model.model();
  grid_prices_.assign(model.state_prices.begin(), model.state_prices.end());
  map_alive_states(grid_prices_, bid_grid_, grid_alive_);
  // One memoized solve per DISTINCT (state, alive) key: the grid is
  // ascending so alive states are non-decreasing, uptime is a pure
  // function of (current state, alive state), and bids sharing an alive
  // state therefore share the answer. Every grid bid's uptime lands in
  // warmed_uptime so lane queries are one array read.
  z.warmed_uptime.resize(bid_grid_.size());
  std::int32_t last_alive = INT32_MIN;
  Duration last_uptime = 0;
  for (std::size_t j = 0; j < bid_grid_.size(); ++j) {
    if (grid_alive_[j] != last_alive) {
      last_alive = grid_alive_[j];
      last_uptime = z.model.expected_uptime(price, bid_grid_[j]);
    }
    z.warmed_uptime[j] = last_uptime;
  }
}

Duration ZoneModelPool::expected_uptime(std::size_t zone,
                                        std::size_t max_states,
                                        const PriceView& history, Money price,
                                        Money bid) {
  REDSPOT_CHECK_MSG(max_states == max_states_,
                    "pooled policy max_states mismatch: " << max_states
                                                          << " vs pool "
                                                          << max_states_);
  ZoneSlot& z = slot(zone);
  z.model.observe(history);
  if (!bid_grid_.empty()) {
    const std::uint64_t refreshes = z.model.model_refreshes();
    if (z.warmed_refreshes != refreshes ||
        z.warmed_price_micros != price.micros()) {
      prewarm(z, price);
      z.warmed_refreshes = refreshes;
      z.warmed_price_micros = price.micros();
    }
    const auto it =
        std::lower_bound(bid_grid_.begin(), bid_grid_.end(), bid);
    if (it != bid_grid_.end() && *it == bid) {
      return z.warmed_uptime[static_cast<std::size_t>(
          it - bid_grid_.begin())];
    }
  }
  return z.model.expected_uptime(price, bid);
}

}  // namespace redspot::batch
