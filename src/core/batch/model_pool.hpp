// Per-zone Markov models shared across a lockstep batch group
// (DESIGN.md §14).
//
// Every engine in a batch group sees the same trace, and the history
// window a policy fits is a pure function of (zone, now): it does not
// depend on which engine asks. Because the group advances in global time
// order, the shared per-zone IncrementalMarkovModel only ever slides
// forward — N engines pay ONE slide per tick instead of N — and the
// (start state, alive state) uptime memo inside each model dedupes the
// closed-form solves across every lane and bid of the group.
//
// Bit-identity: IncrementalMarkovModel::observe(w) equals
// build_markov_model(w) bit-for-bit regardless of slide history (the §10
// property), and the memoized uptime equals the free-function solve
// bit-for-bit, so a pooled policy computes exactly the doubles a private
// per-engine model would — for ANY interleaving of the group's engines.
//
// The pool is single-threaded by construction (one pool per batch group,
// one group per sweep task), like the per-run policy models it replaces.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "markov/incremental.hpp"

namespace redspot::batch {

class ZoneModelPool {
 public:
  /// `max_states` must match the policies routed through the pool (both
  /// Markov policies default to 64); checked on every query.
  explicit ZoneModelPool(std::size_t max_states = 64);

  std::size_t max_states() const { return max_states_; }

  /// Registers the group's bid grid (any order; deduped ascending). With
  /// two or more distinct bids, each model refresh prewarms the uptime
  /// memo for the whole grid through the branchless alive-state kernel,
  /// so per-lane queries hit warm slots.
  void set_bid_grid(std::span<const Money> bids);

  /// observe(history) on the shared model of `zone`, then the memoized
  /// expected uptime — the pooled equivalent of the two calls a private
  /// policy model makes, bit-identical to them.
  Duration expected_uptime(std::size_t zone, std::size_t max_states,
                           const PriceView& history, Money price, Money bid);

 private:
  struct ZoneSlot {
    explicit ZoneSlot(std::size_t max_states) : model(max_states) {}
    IncrementalMarkovModel model;
    /// Refresh counter + price the grid was last prewarmed for; a stale
    /// pair means the model moved (or the price did) and the warmed
    /// answers below no longer apply.
    std::uint64_t warmed_refreshes = UINT64_MAX;
    std::int64_t warmed_price_micros = INT64_MIN;
    /// Parallel to bid_grid_: the model's expected uptime at the warmed
    /// (refreshes, price) for each grid bid — exactly what
    /// model.expected_uptime would return, captured once per refresh so
    /// per-lane queries are a single array read instead of a state lookup
    /// plus memo probe per consult.
    std::vector<Duration> warmed_uptime;
  };

  ZoneSlot& slot(std::size_t zone);
  void prewarm(ZoneSlot& z, Money price);

  std::size_t max_states_;
  std::vector<Money> bid_grid_;
  /// SoA scratch for the prewarm kernel: flat state prices and per-bid
  /// alive states (see batch_state.hpp).
  std::vector<double> grid_prices_;
  std::vector<std::int32_t> grid_alive_;
  /// Indexed by global zone id; unique_ptr keeps models address-stable.
  std::vector<std::unique_ptr<ZoneSlot>> zones_;
};

}  // namespace redspot::batch
