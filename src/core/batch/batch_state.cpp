// The batch FP kernel TU. Must be compiled with -ffp-contract=off: the
// matching define below is set by src/core/CMakeLists.txt alongside the
// flag, so dropping either breaks the build instead of silently breaking
// the batched-vs-scalar bit-identity contract. The integer argmin kernels
// live inline in the header — only double arithmetic needs this TU.
#ifndef REDSPOT_BATCH_FP_STRICT
#error "batch kernel TU requires -ffp-contract=off (src/core/CMakeLists.txt)"
#endif

#include "core/batch/batch_state.hpp"

#include "common/check.hpp"

namespace redspot::batch {

void map_alive_states(std::span<const double> state_prices,
                      std::span<const Money> bids,
                      std::span<std::int32_t> out_alive) {
  REDSPOT_CHECK(out_alive.size() == bids.size());
  const double* prices = state_prices.data();
  const std::size_t n = state_prices.size();
  for (std::size_t j = 0; j < bids.size(); ++j) {
    // Same tolerance expression as MarkovModel::max_alive_state; a plain
    // add, so -ffp-contract=off guarantees the identical double.
    const double cut = bids[j].to_double() + 1e-9;
    std::int32_t alive = -1;
    for (std::size_t i = 0; i < n; ++i)
      alive += static_cast<std::int32_t>(prices[i] <= cut);
    out_alive[j] = alive;
  }
}

}  // namespace redspot::batch
