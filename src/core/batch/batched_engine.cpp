#include "core/batch/batched_engine.hpp"

#include <memory>

#include "common/check.hpp"
#include "core/batch/batch_state.hpp"
#include "core/batch/model_pool.hpp"
#include "core/strategy.hpp"

namespace redspot::batch {

BatchedSweepEngine::BatchedSweepEngine(const SpotMarket& market,
                                       EngineOptions options)
    : market_(&market), options_(options), index_(market.traces()) {}

bool BatchedSweepEngine::can_batch(const EngineOptions& options) {
  return !options.faults.enabled();
}

bool BatchedSweepEngine::can_batch(const EngineOptions& a,
                                   const EngineOptions& b) {
  return can_batch(a) && can_batch(b) && a.regime == b.regime;
}

std::vector<RunResult> BatchedSweepEngine::run(
    std::span<const BatchConfig> configs) const {
  const std::size_t n = configs.size();
  std::vector<RunResult> results(n);
  if (n == 0) return results;
  REDSPOT_CHECK_MSG(can_batch(options_),
                    "batched sweep with non-batchable engine options");

  // Shared state of the group: one model pool, its bid grid spanning
  // every lane so the prewarm kernel covers the whole group.
  ZoneModelPool pool;
  std::vector<Money> bids;
  bids.reserve(n);
  for (const BatchConfig& c : configs) bids.push_back(c.bid);
  pool.set_bid_grid(bids);

  std::vector<std::unique_ptr<FixedStrategy>> strategies;
  std::vector<std::unique_ptr<Engine>> engines;
  strategies.reserve(n);
  engines.reserve(n);
  for (const BatchConfig& c : configs) {
    std::unique_ptr<Policy> policy = make_policy(c.policy);
    policy->use_model_pool(&pool);
    strategies.push_back(
        std::make_unique<FixedStrategy>(c.bid, c.zones, std::move(policy)));
    engines.push_back(std::make_unique<Engine>(*market_, c.experiment,
                                               *strategies.back(), options_));
    engines.back()->set_shared_trace(&index_);
    if (c.observer != nullptr) engines.back()->add_observer(c.observer);
  }

  BatchState state;
  state.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    engines[i]->begin();
    state.next_time[i] = engines[i]->next_event_time();
  }

  // Lockstep, one *instant* at a time: every lane with an event at the
  // group's earliest time t drains its whole same-instant burst, in lane
  // order — exactly the dispatch order a per-event argmin with the
  // lowest-index tie rule produces (lane i's burst at t all precedes lane
  // i+1's), but paying one linear pass per distinct instant instead of
  // one O(lanes) scan per dispatched event. Engines never schedule into
  // the past, so time only moves forward and the shared zone models slide
  // forward once per tick for the whole group. The pass folds the next
  // instant's min into the same loop: every lane it leaves behind is
  // strictly past t.
  SimTime t = min_next(state);
  while (t != kNever) {
    SimTime next_t = kNever;
    for (std::size_t i = 0; i < n; ++i) {
      SimTime ti = state.next_time[i];
      if (ti == t) {
        Engine& engine = *engines[i];
        do {
          engine.step_one();
          ti = engine.finished() ? kNever : engine.next_event_time();
        } while (ti == t);
        state.next_time[i] = ti;
      }
      next_t = ti < next_t ? ti : next_t;
    }
    t = next_t;
  }

  for (std::size_t i = 0; i < n; ++i) results[i] = engines[i]->finalize();
  return results;
}

}  // namespace redspot::batch
