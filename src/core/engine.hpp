// The scheduling engine — Algorithm 1 of the paper, event-driven.
//
// One Engine instance simulates one experiment run: a time-constrained HPC
// application executing on the spot market under a (possibly adaptive)
// strategy, with exact EC2 billing, queue delays, checkpoint/restart costs,
// and the deadline guarantee (switch to on-demand when the remaining slack
// can no longer absorb a checkpoint + restart + remaining compute).
//
// The engine is a thin orchestrator over four modules (see DESIGN.md §3):
//
//   core/events/          EventQueue — the typed (time, seq)-FIFO calendar
//                         every handler schedules into — plus the
//                         EngineObserver hook layer (add_observer).
//   core/zone/            ZoneMachine — per-zone state machine
//                         (kDown/kWaiting/kQueued/kRestarting/kRunning/
//                         kCheckpointing/kStopped) with checked transitions
//                         and per-zone progress accounting.
//   core/billing_ledger/  ZoneBilling — EC2 charging rules + billed
//                         up-time + live LineItem emission to observers.
//   core/deadline/        DeadlineMonitor — the margin
//                         M(t) = (deadline - t) - (C - P_c) - t_r[P_c>0] - t_c
//                         and the on-demand switchover trigger, re-armed on
//                         every checkpoint commit (P_c is monotone, so the
//                         trigger instant is exact between commits).
//
// The engine itself keeps only the cross-module choreography: Algorithm 1's
// handlers (price ticks, instance lifecycle, cycle boundaries, completion)
// and the CheckpointCoordinator for the single write that may be in flight.
// Everything that merely watches a run — fault accounting, run validation
// (fault/audit_observer.hpp), the event-trace recorder — attaches through
// EngineObserver rather than bespoke hooks.
//
// Reserving t_c in the margin lets the engine take one final checkpoint of
// the leading zone at the switch instant, capturing speculative progress
// without risking the deadline even if that zone dies mid-checkpoint.
// Under fault injection (EngineOptions::faults) P_c stays monotone because
// every commit is validated before publication: a failed or corrupt write
// leaves latest_progress() untouched (corrupt ones are rolled back via
// CheckpointStore::invalidate_latest) and re-arms the deadline trigger, so
// the reserved t_c still bounds the damage of the one write that can be in
// flight when the margin runs out — see DESIGN.md §7 for the argument.
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>
#include <vector>

#include "ckpt/store.hpp"
#include "common/check.hpp"
#include "common/random.hpp"
#include "core/billing_ledger/zone_billing.hpp"
#include "core/ckpt_coordinator.hpp"
#include "core/deadline/deadline_monitor.hpp"
#include "core/events/event_queue.hpp"
#include "core/events/observer.hpp"
#include "core/policy.hpp"
#include "core/run_result.hpp"
#include "core/strategy.hpp"
#include "core/zone/zone_machine.hpp"
#include "fault/fault_injector.hpp"
#include "market/regime.hpp"
#include "market/spot_market.hpp"

namespace redspot {

namespace batch {
class SharedTraceIndex;
}  // namespace batch

struct EngineOptions {
  bool record_timeline = false;
  bool record_line_items = false;
  /// Appendix-A what-if: EC2 warns `termination_notice` seconds before an
  /// out-of-bid termination instead of killing abruptly. The doomed zone
  /// keeps computing through the notice (still free if cut mid-hour) and
  /// the engine squeezes in an emergency checkpoint when the notice can
  /// fit one (notice >= t_c). 0 = the real 2013 market (no warning).
  Duration termination_notice = 0;
  /// Injected failure classes the paper assumes away (see fault/). The
  /// default all-zero plan is a strict no-op: runs reproduce the
  /// fault-free engine bit-for-bit.
  FaultPlan faults;
  /// The market rule set (market/regime.hpp): billing granularity and
  /// refund rule, rebalance-notice lead time, instance-type universe. The
  /// default classic-2012 regime reproduces the pre-regime engine
  /// bit-for-bit. Mutually exclusive with `termination_notice` (the
  /// Appendix-A ablation keeps its own notice path).
  MarketRegime regime;
};

/// Folds every result-affecting EngineOptions field into `h`. Shared by
/// EnsembleSpec::spec_hash and exp/sweep's journal keys so the same
/// options always fingerprint the same way.
class HashStream;
void hash_engine_options(HashStream& h, const EngineOptions& options);

class Engine final : public EngineView,
                     private ZoneTransitionSink,
                     private EventSink {
 public:
  /// `market` and `strategy` must outlive the engine.
  Engine(const SpotMarket& market, Experiment experiment, Strategy& strategy,
         EngineOptions options = {});

  /// Attaches an observer to the run: it sees every calendar event, zone
  /// transition, billing line item, checkpoint settlement, injected fault,
  /// and the final result. Must be called before run(); the observer must
  /// outlive it. Observers are notified in attachment order.
  void add_observer(EngineObserver* observer);

  /// Runs the experiment to completion. Call once.
  RunResult run();

  // --- incremental stepping (core/batch lockstep driver) --------------------
  // run() is exactly begin(); while (!finished()) step_one(); finalize() —
  // a stepped run is byte-identical to a run() call. The batched sweep
  // engine uses this to interleave many engines in global time order.

  /// Arms the calendar (initial config, first price tick, deadline
  /// trigger). Call once, instead of run().
  void begin();
  /// True once the run has completed; step_one() must not be called again.
  bool finished() const { return done_; }
  /// Timestamp of the next calendar event (kNever only when finished).
  SimTime next_event_time() { return queue_.next_time(); }
  /// Dispatches exactly one calendar event.
  void step_one();
  /// Seals and returns the result; requires finished(). Call once.
  RunResult finalize();

  /// Routes min_observed_price() through a shared O(1) range-min index
  /// over the market traces (bit-identical to the linear scan — see
  /// core/batch/trace_index.hpp). The index must be built over this
  /// engine's market and outlive the run. Call before begin()/run().
  void set_shared_trace(const batch::SharedTraceIndex* index) {
    shared_trace_ = index;
  }

  // --- EngineView ----------------------------------------------------------
  SimTime now() const override { return queue_.now(); }
  const Experiment& experiment() const override { return experiment_; }
  const SpotMarket& market() const override { return *market_; }
  Money bid() const override { return config_.bid; }
  std::span<const std::size_t> zone_ids() const override {
    return config_.zones;
  }
  // Per-decision predicates: consulted several times per calendar event,
  // so they live in the header.
  bool zone_running(std::size_t zone) const override {
    return zone_at(zone).running();
  }
  bool any_zone_running() const override {
    for (std::size_t z : config_.zones)
      if (zone_running(z)) return true;
    return false;
  }
  Money price(std::size_t zone) const override {
    return market_->spot_price(zone, now());
  }
  Money previous_price(std::size_t zone) const override;
  PriceView history(std::size_t zone) const override;
  Money min_observed_price(std::size_t zone) const override;
  Duration committed_progress() const override {
    return store_.latest_progress();
  }
  Duration zone_progress(std::size_t zone) const override;
  Duration leading_progress() const override;
  SimTime leading_compute_since() const override;
  SimTime billing_cycle_end(std::size_t zone) const override {
    return billing_.cycle_end(zone);
  }
  const MarketRegime& regime() const override { return options_.regime; }

 private:
  // --- event dispatch ------------------------------------------------------
  /// EventSink: calendar entries scheduled by (kind, zone) alone land here
  /// and fan out to the fixed handler for their kind — the hot-path events
  /// (ticks, lifecycle, boundaries) skip per-event closure construction
  /// this way. Handlers needing extra captures still schedule callbacks.
  void on_queue_event(EventKind kind, std::size_t zone) override;

  // --- event handlers (zone/engine_lifecycle.cpp unless noted) -------------
  void on_price_tick();
  void on_instance_ready(std::size_t zone);
  void on_restart_done(std::size_t zone);
  void on_scheduled_checkpoint();   // engine_checkpointing.cpp
  void on_checkpoint_done();        // engine_checkpointing.cpp
  void on_cycle_boundary(std::size_t zone);  // billing_ledger/engine_cycle_hooks.cpp
  void on_pre_boundary(std::size_t zone);    // billing_ledger/engine_cycle_hooks.cpp
  void on_deadline_trigger();       // deadline/engine_switchover.cpp
  void on_zone_completion(std::size_t zone);
  /// Handles a termination notice delivering `warning` seconds before the
  /// kill (warning < termination_notice when the notice arrived late).
  void on_termination_notice(std::size_t zone, Duration warning);
  /// Regime rebalance warning: flips the zone to kRebalanceWarned and
  /// reuses the notice machinery (doom + emergency checkpoint).
  void on_rebalance_notice(std::size_t zone);
  void on_doom(std::size_t zone);
  /// Dispatches the out-of-bid notice for `zone` at a price tick,
  /// injecting dropped/late notices when the fault plan says so.
  void deliver_termination_notice(std::size_t zone);

  // --- actions -------------------------------------------------------------
  void apply_initial_config();
  void request_instance(std::size_t zone);
  void start_computing(std::size_t zone, Duration progress_base);
  void terminate_out_of_bid(std::size_t zone);
  void user_terminate(std::size_t zone, bool at_boundary);
  void reconcile();
  bool policy_checkpoint_allowed() const;     // engine_checkpointing.cpp
  void reschedule_policy_checkpoint();        // engine_checkpointing.cpp
  void reschedule_deadline_trigger();         // deadline/engine_switchover.cpp
  void begin_switch_to_on_demand();           // deadline/engine_switchover.cpp
  void complete_on_demand_switch();           // deadline/engine_switchover.cpp
  void finish(SimTime at, bool completed);
  void consult_strategy(DecisionPoint point);           // engine_reconfigure.cpp
  bool config_is_non_disruptive(const EngineConfig& next) const;
  void apply_config(const EngineConfig& next, bool at_boundary_of,
                    std::size_t boundary_zone);

  // --- checkpoint settlement (engine_checkpointing.cpp) --------------------
  /// Finalizes the in-flight write: validates it against the injected
  /// fault plan and commits on success. Returns false when the write
  /// failed or was rolled back as corrupt (committed progress unchanged).
  bool commit_in_flight_checkpoint();
  /// Settles any write in flight on `zone` before its instance goes away:
  /// commits when the write had time to finish, aborts (and re-arms the
  /// deadline trigger) when it was cut off. No-op otherwise.
  void settle_zone_checkpoint(std::size_t zone);
  void start_checkpoint(std::optional<std::size_t> target);

  // --- helpers -------------------------------------------------------------
  ZoneMachine& zone_at(std::size_t zone) {
    REDSPOT_CHECK(zone < zones_.size());
    return zones_[zone];
  }
  const ZoneMachine& zone_at(std::size_t zone) const {
    REDSPOT_CHECK(zone < zones_.size());
    return zones_[zone];
  }
  bool any_zone_active() const {
    for (std::size_t z : config_.zones)
      if (zone_at(z).active()) return true;
    return false;
  }
  std::optional<std::size_t> leading_zone() const;  ///< best kRunning zone
  void record(SimTime t, std::size_t zone, TimelineKind kind,
              std::string detail = {});
  /// Lazy-detail variant: `detail()` is evaluated only when the timeline
  /// is actually recorded, keeping the string formatting (and its
  /// allocations) off the hot path of timeline-less sweep runs.
  template <typename DetailFn>
    requires std::invocable<DetailFn>
  void record(SimTime t, std::size_t zone, TimelineKind kind,
              DetailFn&& detail) {
    if (!options_.record_timeline) return;
    record(t, zone, kind, std::string(detail()));
  }

  // --- observer fan-out ----------------------------------------------------
  void on_zone_transition(std::size_t zone, ZoneState from,
                          ZoneState to) override;
  void notify_fault(FaultEvent::Kind kind, std::size_t zone,
                    Duration backoff = 0);
  void notify_commit(const CheckpointCommit& commit);

  const SpotMarket* market_;
  Experiment experiment_;
  Strategy* strategy_;
  EngineOptions options_;
  const batch::SharedTraceIndex* shared_trace_ = nullptr;

  EventQueue queue_;
  Rng queue_rng_;
  FaultInjector injector_;
  CheckpointStore store_;
  ZoneBilling billing_;
  EngineConfig config_;
  std::optional<EngineConfig> pending_config_;

  std::vector<ZoneMachine> zones_;  ///< indexed by GLOBAL zone id

  CheckpointCoordinator coord_;  ///< the at-most-one in-flight write
  DeadlineMonitor monitor_;      ///< declared after queue_ (references it)

  EventId scheduled_ckpt_event_ = 0;
  EventId tick_event_ = 0;

  bool on_demand_phase_ = false;
  bool done_ = false;
  bool ran_ = false;

  RunResult result_;
  FaultStatsRecorder fault_recorder_;  ///< declared after result_ (points in)
  std::vector<EngineObserver*> observers_;
};

/// Cost of the naive on-demand baseline: run C + nothing else at the fixed
/// rate, charged per started hour ($48 for the paper's 20 h experiment).
RunResult run_on_demand_baseline(const Experiment& experiment, Money rate);

/// Regime-aware baseline: per-second regimes prorate instead of rounding
/// up to started hours. The classic regime matches the overload above.
RunResult run_on_demand_baseline(const Experiment& experiment, Money rate,
                                 const MarketRegime& regime);

}  // namespace redspot
