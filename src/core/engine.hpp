// The scheduling engine — Algorithm 1 of the paper, event-driven.
//
// One Engine instance simulates one experiment run: a time-constrained HPC
// application executing on the spot market under a (possibly adaptive)
// strategy, with exact EC2 billing, queue delays, checkpoint/restart costs,
// and the deadline guarantee (switch to on-demand when the remaining slack
// can no longer absorb a checkpoint + restart + remaining compute).
//
// Zone life-cycle (superset of the paper's up/waiting/down):
//
//   kDown ──(S<=B at tick)──> kWaiting ──(checkpoint commit, or no zone
//   active)──> kQueued ──(queue delay)──> kRestarting ──(t_r, skipped when
//   starting from scratch)──> kRunning <──> kCheckpointing
//
//   any active state ──(S>B)──> kDown        [no charge for partial hour]
//   kRunning ──(Large-bid manual stop)──> kStopped ──(S<=L)──> kWaiting
//
// Deadline guarantee: committed progress P_c can only grow; the margin
//   M(t) = (deadline - t) - (C - P_c) - t_r[if P_c>0] - t_c
// decreases at rate 1 between checkpoint commits, so the switch instant is
// known exactly and is rescheduled only when P_c changes. Reserving t_c
// lets the engine take one final checkpoint of the leading zone at the
// switch, capturing speculative progress without risking the deadline even
// if that zone dies mid-checkpoint. (The paper's line 11 uses the leading
// progress directly; reserving the committed-progress margin makes the
// guarantee robust to a failure at the switch instant — see DESIGN.md.)
//
// Under fault injection (EngineOptions::faults) P_c stays monotone because
// every commit is validated before publication: a failed or corrupt write
// leaves latest_progress() untouched (corrupt ones are rolled back via
// CheckpointStore::invalidate_latest) and re-arms the deadline trigger, so
// the reserved t_c still bounds the damage of the one write that can be in
// flight when the margin runs out — see DESIGN.md §7 for the argument.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ckpt/store.hpp"
#include "common/random.hpp"
#include "core/policy.hpp"
#include "core/run_result.hpp"
#include "core/strategy.hpp"
#include "fault/fault_injector.hpp"
#include "market/billing.hpp"
#include "market/spot_market.hpp"
#include "sim/simulation.hpp"

namespace redspot {

struct EngineOptions {
  bool record_timeline = false;
  bool record_line_items = false;
  /// Appendix-A what-if: EC2 warns `termination_notice` seconds before an
  /// out-of-bid termination instead of killing abruptly. The doomed zone
  /// keeps computing through the notice (still free if cut mid-hour) and
  /// the engine squeezes in an emergency checkpoint when the notice can
  /// fit one (notice >= t_c). 0 = the real 2013 market (no warning).
  Duration termination_notice = 0;
  /// Injected failure classes the paper assumes away (see fault/). The
  /// default all-zero plan is a strict no-op: runs reproduce the
  /// fault-free engine bit-for-bit.
  FaultPlan faults;
};

/// Folds every result-affecting EngineOptions field into `h`. Shared by
/// EnsembleSpec::spec_hash and exp/sweep's journal keys so the same
/// options always fingerprint the same way.
class HashStream;
void hash_engine_options(HashStream& h, const EngineOptions& options);

class Engine final : public EngineView {
 public:
  /// `market` and `strategy` must outlive the engine.
  Engine(const SpotMarket& market, Experiment experiment, Strategy& strategy,
         EngineOptions options = {});

  /// Runs the experiment to completion. Call once.
  RunResult run();

  // --- EngineView ----------------------------------------------------------
  SimTime now() const override { return sim_.now(); }
  const Experiment& experiment() const override { return experiment_; }
  const SpotMarket& market() const override { return *market_; }
  Money bid() const override { return config_.bid; }
  std::span<const std::size_t> zone_ids() const override {
    return config_.zones;
  }
  bool zone_running(std::size_t zone) const override;
  bool any_zone_running() const override;
  Money price(std::size_t zone) const override;
  Money previous_price(std::size_t zone) const override;
  PriceView history(std::size_t zone) const override;
  Money min_observed_price(std::size_t zone) const override;
  Duration committed_progress() const override {
    return store_.latest_progress();
  }
  Duration zone_progress(std::size_t zone) const override;
  Duration leading_progress() const override;
  SimTime leading_compute_since() const override;
  SimTime billing_cycle_end(std::size_t zone) const override {
    return ledger_.cycle_end(zone);
  }

 private:
  /// Application-visible zone states (see file comment).
  enum class ZoneState {
    kDown,
    kWaiting,
    kQueued,
    kRestarting,
    kRunning,
    kCheckpointing,
    kStopped,  // policy-suspended (Large-bid)
  };

  struct ZoneRt {
    ZoneState state = ZoneState::kDown;
    Duration progress_base = 0;   ///< progress when compute last (re)started
    SimTime computing_since = 0;  ///< valid in kRunning
    Duration restart_target = 0;  ///< checkpoint progress being loaded
    SimTime instance_start = 0;   ///< when billing began (active states)
    int request_attempts = 0;     ///< consecutive rejected spot requests
    bool manual_stop_pending = false;
    bool doomed = false;          ///< termination notice received
    EventId doom_event = 0;
    EventId emergency_ckpt_event = 0;
    EventId ready_event = 0;
    EventId restart_event = 0;
    EventId cycle_event = 0;
    EventId preboundary_event = 0;
    EventId completion_event = 0;
  };

  // Event handlers.
  void on_price_tick();
  void on_instance_ready(std::size_t zone);
  void on_restart_done(std::size_t zone);
  void on_scheduled_checkpoint();
  void on_checkpoint_done();
  void on_cycle_boundary(std::size_t zone);
  void on_pre_boundary(std::size_t zone);
  void on_deadline_trigger();
  void on_zone_completion(std::size_t zone);
  /// Handles a termination notice delivering `warning` seconds before the
  /// kill (warning < termination_notice when the notice arrived late).
  void on_termination_notice(std::size_t zone, Duration warning);
  void on_doom(std::size_t zone);
  /// Dispatches the out-of-bid notice for `zone` at a price tick,
  /// injecting dropped/late notices when the fault plan says so.
  void deliver_termination_notice(std::size_t zone);

  // Actions.
  void apply_initial_config();
  void request_instance(std::size_t zone);
  void start_computing(std::size_t zone, Duration progress_base);
  void terminate_out_of_bid(std::size_t zone);
  void user_terminate(std::size_t zone, bool at_boundary);
  void reconcile();
  bool policy_checkpoint_allowed() const;
  void reschedule_policy_checkpoint();
  void reschedule_deadline_trigger();
  void begin_switch_to_on_demand();
  void complete_on_demand_switch();
  void finish(SimTime at, bool completed);
  void consult_strategy(DecisionPoint point);
  bool config_is_non_disruptive(const EngineConfig& next) const;
  void apply_config(const EngineConfig& next, bool at_boundary_of,
                    std::size_t boundary_zone);
  void cancel_zone_events(ZoneRt& z);

  // Helpers.
  ZoneRt& rt(std::size_t zone);
  const ZoneRt& rt(std::size_t zone) const;
  bool zone_active(const ZoneRt& z) const;
  bool any_zone_active() const;
  /// Finalizes the in-flight write: validates it against the injected
  /// fault plan and commits on success. Returns false when the write
  /// failed or was rolled back as corrupt (committed progress unchanged).
  bool commit_in_flight_checkpoint();
  void start_checkpoint(std::optional<std::size_t> target);
  std::optional<std::size_t> leading_zone() const;  ///< best kRunning zone
  SimTime deadline_switch_time() const;
  void record(SimTime t, std::size_t zone, TimelineKind kind,
              std::string detail = {});

  const SpotMarket* market_;
  Experiment experiment_;
  Strategy* strategy_;
  EngineOptions options_;

  Simulation sim_;
  Rng queue_rng_;
  FaultInjector injector_;
  CheckpointStore store_;
  BillingLedger ledger_;
  EngineConfig config_;
  std::optional<EngineConfig> pending_config_;

  std::vector<ZoneRt> zones_;  ///< indexed by GLOBAL zone id

  // Global in-flight checkpoint (at most one).
  bool ckpt_in_flight_ = false;
  std::size_t ckpt_zone_ = 0;
  Duration ckpt_value_ = 0;
  SimTime ckpt_done_time_ = 0;
  EventId ckpt_done_event_ = 0;

  EventId scheduled_ckpt_event_ = 0;
  EventId deadline_event_ = 0;
  EventId tick_event_ = 0;

  bool on_demand_phase_ = false;
  bool done_ = false;
  bool ran_ = false;

  RunResult result_;
};

/// Cost of the naive on-demand baseline: run C + nothing else at the fixed
/// rate, charged per started hour ($48 for the paper's 20 h experiment).
RunResult run_on_demand_baseline(const Experiment& experiment, Money rate);

}  // namespace redspot
