#include "core/billing_ledger/zone_billing.hpp"

#include "common/check.hpp"

namespace redspot {

void ZoneBilling::flush_new_items() {
  const std::vector<LineItem>& all = ledger_.items();
  if (!sink_) {
    emitted_ = all.size();
    return;
  }
  while (emitted_ < all.size()) sink_(all[emitted_++]);
}

void ZoneBilling::spot_started(std::size_t zone, SimTime t, Money rate) {
  if (starts_.size() <= zone) starts_.resize(zone + 1, 0);
  starts_[zone] = t;
  ledger_.spot_started(zone, t, rate);
  flush_new_items();
}

void ZoneBilling::cycle_boundary(std::size_t zone, Money next_rate) {
  ledger_.cycle_boundary(zone, next_rate);
  flush_new_items();
}

void ZoneBilling::spot_terminated(std::size_t zone, SimTime t,
                                  TerminationCause cause) {
  REDSPOT_CHECK(zone < starts_.size());
  spot_seconds_ += t - starts_[zone];
  ledger_.spot_terminated(zone, t, cause);
  flush_new_items();
}

void ZoneBilling::spot_stopped_at_boundary(std::size_t zone, SimTime t) {
  REDSPOT_CHECK(zone < starts_.size());
  spot_seconds_ += t - starts_[zone];
  ledger_.spot_stopped_at_boundary(zone);
  flush_new_items();
}

void ZoneBilling::on_demand_usage(SimTime start, Duration used, Money rate) {
  ledger_.on_demand_usage(start, used, rate);
  flush_new_items();
}

SimTime ZoneBilling::instance_start(std::size_t zone) const {
  REDSPOT_CHECK(zone < starts_.size());
  return starts_[zone];
}

}  // namespace redspot
