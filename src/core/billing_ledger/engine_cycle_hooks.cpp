// Billing-cycle choreography: hour boundaries (charge + reopen, manual
// stops, deferred reconfigurations) and the pre-boundary check t_c before
// each one. Pure charging rules live in ZoneBilling / market/billing; this
// file owns only their event-loop wiring.
#include "core/engine.hpp"

namespace redspot {

void Engine::on_cycle_boundary(std::size_t zone) {
  ZoneMachine& z = zone_at(zone);
  z.cycle_event = 0;
  if (done_) return;

  // Large-bid manual stop: the protective checkpoint (started at
  // boundary - t_c) completes exactly now; commit it (user_terminate
  // settles the write), pay the full hour, and sit out until the price
  // recovers.
  if (z.manual_stop_pending()) {
    const bool had_active = any_zone_active();
    user_terminate(zone, /*at_boundary=*/true);
    z.stop();
    record(now(), zone, TimelineKind::kUserTerminated, "manual-stop");
    if (had_active && !any_zone_active()) ++result_.full_outages;
    reconcile();
    return;
  }

  if (strategy_->dynamic()) {
    consult_strategy(DecisionPoint::kCycleEnd);
    if (pending_config_) {
      const EngineConfig next = *pending_config_;
      apply_config(next, /*at_boundary_of=*/true, zone);
    }
  }
  if (done_ || on_demand_phase_) return;

  // The zone may have been terminated by the reconfiguration above.
  if (!billing_.spot_running(zone) || !z.active()) return;

  billing_.cycle_boundary(zone, price(zone));
  z.cycle_event = queue_.schedule_at(EventKind::kCycleBoundary, zone,
                                     billing_.cycle_end(zone));
  const SimTime pre = billing_.cycle_end(zone) - experiment_.costs.checkpoint;
  queue_.cancel(z.preboundary_event);
  if ((config_.policy->wants_pre_boundary_checks() || strategy_->dynamic()) &&
      pre > now()) {
    z.preboundary_event =
        queue_.schedule_at(EventKind::kPreBoundary, zone, pre);
  }
}

void Engine::on_pre_boundary(std::size_t zone) {
  ZoneMachine& z = zone_at(zone);
  z.preboundary_event = 0;
  if (done_ || on_demand_phase_) return;
  if (!z.active()) return;

  // Large-bid: decide whether to ride the next hour or stop at the
  // boundary; stopping wants a checkpoint that completes exactly at it.
  if (config_.policy->wants_pre_boundary_checks() &&
      config_.policy->should_manual_stop(*this, zone)) {
    z.set_manual_stop_pending(true);
    if (!coord_.in_flight() && z.computing() && policy_checkpoint_allowed())
      start_checkpoint(zone);
    return;
  }

  // Adaptive: if a disruptive reconfiguration is pending, protect the
  // leading zone's progress with a checkpoint that lands on the boundary.
  if (strategy_->dynamic()) {
    consult_strategy(DecisionPoint::kPreBoundary);
    if (pending_config_ && !coord_.in_flight() &&
        z.computing() && leading_zone() == zone &&
        policy_checkpoint_allowed() &&
        zone_progress(zone) > store_.latest_progress()) {
      start_checkpoint(zone);
    }
  }
}

}  // namespace redspot
