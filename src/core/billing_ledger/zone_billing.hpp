// Per-zone billing-cycle accounting for one engine run.
//
// Wraps market/BillingLedger (the pure EC2 charging rules) with what the
// engine additionally needs per run: billed spot up-time accumulation
// (instance start to termination, per zone) and live emission of each new
// LineItem to a sink the instant it is charged — that is how observers get
// on_billing callbacks in event order rather than from a post-run dump.
//
// billing_ledger_test cross-checks every path against a bare BillingLedger
// driven with the same sequence.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "market/billing.hpp"

namespace redspot {

class ZoneBilling {
 public:
  using Sink = std::function<void(const LineItem&)>;

  /// Registers the line-item sink (may be empty to disable emission).
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Selects the regime billing rules (before any usage is reported).
  void set_rules(const BillingRules& rules) { ledger_.set_rules(rules); }
  const BillingRules& rules() const { return ledger_.rules(); }

  // --- lifecycle reports (see market/billing.hpp for charging rules) ----

  void spot_started(std::size_t zone, SimTime t, Money rate);
  bool spot_running(std::size_t zone) const {
    return ledger_.spot_running(zone);
  }
  SimTime cycle_end(std::size_t zone) const { return ledger_.cycle_end(zone); }
  void cycle_boundary(std::size_t zone, Money next_rate);
  void spot_terminated(std::size_t zone, SimTime t, TerminationCause cause);
  void spot_stopped_at_boundary(std::size_t zone, SimTime t);
  void on_demand_usage(SimTime start, Duration used, Money rate);

  // --- totals -----------------------------------------------------------

  Money total() const { return ledger_.total(); }
  Money spot_total() const { return ledger_.spot_total(); }
  Money on_demand_total() const { return ledger_.on_demand_total(); }
  const std::vector<LineItem>& items() const { return ledger_.items(); }

  /// Billed spot up-time summed over all zones (instance start to
  /// termination or boundary stop).
  Duration spot_seconds() const { return spot_seconds_; }

  /// When `zone`'s current instance started (set by spot_started).
  SimTime instance_start(std::size_t zone) const;

 private:
  void flush_new_items();

  BillingLedger ledger_;
  Sink sink_;
  std::vector<SimTime> starts_;  // indexed by zone, grown on demand
  Duration spot_seconds_ = 0;
  std::size_t emitted_ = 0;
};

}  // namespace redspot
