// Experiment configuration (Section 2.3).
//
// "The user specifies an experiment as a configuration of a number of
// nodes, problem size, execution time and job completion deadline." In the
// simulator that becomes: an application model (C), checkpoint/restart
// costs (t_c, t_r), a start instant on the price trace, and the deadline D
// (relative to the start, D >= C).
#pragma once

#include <cstdint>

#include "app/application.hpp"
#include "ckpt/cost_model.hpp"
#include "common/check.hpp"
#include "common/time.hpp"

namespace redspot {

struct Experiment {
  AppModel app;                      ///< C and iteration granularity
  CheckpointCosts costs;             ///< t_c and t_r
  SimTime start = 0;                 ///< experiment start (trace time)
  Duration deadline = 23 * kHour;    ///< D, relative to start; D >= C
  std::uint64_t seed = 1;            ///< stream for queue-delay draws
  Duration history_span = 2 * kDay;  ///< Markov/Adaptive bootstrap window

  /// T_l = D - C (Section 2.3).
  Duration slack() const { return deadline - app.total_compute; }

  /// Absolute deadline instant.
  SimTime deadline_time() const { return start + deadline; }

  void validate() const {
    REDSPOT_CHECK(app.total_compute > 0);
    REDSPOT_CHECK_MSG(deadline >= app.total_compute, "D must be >= C");
    REDSPOT_CHECK(costs.checkpoint > 0 && costs.restart > 0);
    REDSPOT_CHECK(history_span > 0);
  }

  /// The paper's experiment: C = 20 h; slack as a fraction of C (0.15 or
  /// 0.50); t_c = t_r of 300 or 900 s.
  static Experiment paper(SimTime start, double slack_fraction,
                          Duration checkpoint_cost,
                          std::uint64_t seed = 1) {
    Experiment e;
    e.app = AppModel::paper_default();
    e.costs = CheckpointCosts{checkpoint_cost, checkpoint_cost};
    e.start = start;
    e.deadline = e.app.total_compute +
                 hours(to_hours(e.app.total_compute) * slack_fraction);
    e.seed = seed;
    e.validate();
    return e;
  }
};

}  // namespace redspot
