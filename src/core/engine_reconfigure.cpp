// Strategy consults and configuration changes — the paper's three
// reconfiguration rules (Section 7.1) and the zone-set handover.
#include <algorithm>
#include <span>

#include "core/engine.hpp"

namespace redspot {

namespace {

bool contains(std::span<const std::size_t> xs, std::size_t v) {
  return std::find(xs.begin(), xs.end(), v) != xs.end();
}

}  // namespace

void Engine::consult_strategy(DecisionPoint point) {
  auto next = strategy_->reconsider(*this, point);
  if (!next) return;
  if (next->same_as(config_)) {
    pending_config_.reset();
    return;
  }
  REDSPOT_CHECK(!next->zones.empty() && next->policy != nullptr &&
                next->bid > Money());
  if (config_is_non_disruptive(*next)) {
    // Rule 3: a change that keeps the bid and every active zone may be
    // adopted within the billing hour.
    apply_config(*next, /*at_boundary_of=*/false, 0);
    return;
  }
  if (point == DecisionPoint::kZoneTerminated) {
    // Rule 1: a termination is a natural reconfiguration point.
    apply_config(*next, /*at_boundary_of=*/false, 0);
    return;
  }
  // Rule 2: wait for the billing hour to end.
  pending_config_ = *next;
}

bool Engine::config_is_non_disruptive(const EngineConfig& next) const {
  if (next.bid != config_.bid) return false;
  for (std::size_t z : config_.zones) {
    if (zone_at(z).active() && !contains(next.zones, z)) return false;
  }
  return true;
}

void Engine::apply_config(const EngineConfig& next, bool at_boundary_of,
                          std::size_t boundary_zone) {
  const bool bid_changed = next.bid != config_.bid;
  const bool had_active = any_zone_active();
  for (std::size_t z : config_.zones) {
    ZoneMachine& zone = zone_at(z);
    const bool kept = contains(next.zones, z) && !bid_changed;
    if (zone.active() && !kept) {
      // A bid change requires cancelling the spot request (fixed-bid rule),
      // so even zones staying in the set must cycle through termination.
      user_terminate(z, at_boundary_of && z == boundary_zone);
    }
    if (!zone.active()) {
      // Non-active states re-derive from the price at the next tick; a
      // stale kWaiting under a changed bid must not be restarted blindly.
      if (zone.state() == ZoneState::kWaiting && bid_changed)
        zone.force_down();
      if (!contains(next.zones, z)) zone.force_down();
    }
  }
  for (std::size_t z : next.zones) {
    if (!contains(config_.zones, z)) zone_at(z).force_down();
  }
  config_ = next;
  pending_config_.reset();
  ++result_.config_changes;
  record(now(), 0, TimelineKind::kConfigChange, [&] {
    return "bid=" + config_.bid.str() +
           " N=" + std::to_string(config_.zones.size()) + " policy=" +
           config_.policy->name();
  });
  if (had_active && !any_zone_active()) ++result_.full_outages;

  // Newly eligible zones become waiting immediately (their prices are
  // known); reconcile may then start them.
  for (std::size_t z : config_.zones) {
    ZoneMachine& zone = zone_at(z);
    if (zone.state() == ZoneState::kDown && price(z) <= config_.bid)
      zone.wake();
  }
  reschedule_policy_checkpoint();
  reconcile();
}

}  // namespace redspot
