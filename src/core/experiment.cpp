#include "core/experiment.hpp"

// Experiment is header-only today; this TU anchors the target and keeps a
// build error from appearing only at first use if the header rots.
namespace redspot {
namespace {
[[maybe_unused]] const Experiment& anchor() {
  static const Experiment e = Experiment::paper(0, 0.15, 300);
  return e;
}
}  // namespace
}  // namespace redspot
