// Zone lifecycle choreography: price ticks, instance acquisition, restart,
// termination (out-of-bid, notices, user), and completion — Algorithm 1's
// per-zone handlers, driving each ZoneMachine through its transitions.
#include <algorithm>

#include "core/engine.hpp"

namespace redspot {

void Engine::on_price_tick() {
  tick_event_ = 0;
  if (done_) return;

  const bool had_active = any_zone_active();
  bool terminated_any = false;
  for (std::size_t z : config_.zones) {
    ZoneMachine& zone = zone_at(z);
    const Money p = price(z);
    switch (zone.state()) {
      case ZoneState::kQueued:
      case ZoneState::kRestarting:
      case ZoneState::kRunning:
      case ZoneState::kCheckpointing:
      case ZoneState::kRebalanceWarned:
        if (p > config_.bid && !zone.doomed()) {
          if (options_.termination_notice > 0 && zone.running()) {
            deliver_termination_notice(z);
            if (zone.state() == ZoneState::kDown) terminated_any = true;
          } else if (options_.regime.rebalance_notice > 0 && zone.running()) {
            // Regime notice: the kill is announced via a typed
            // kRebalanceNotice event dispatched at this same instant
            // (after the tick's own handling, in FIFO order), so
            // observers see the warning as a first-class calendar event.
            zone.mark_doomed();
            zone.rebalance_event =
                queue_.schedule_at(EventKind::kRebalanceNotice, z, now());
          } else {
            terminate_out_of_bid(z);
            terminated_any = true;
          }
        }
        break;
      case ZoneState::kDown:
        if (p <= config_.bid) zone.wake();
        break;
      case ZoneState::kWaiting:
        if (p > config_.bid) zone.sleep();
        break;
      case ZoneState::kStopped:
        if (config_.policy->should_resume(*this, z)) zone.resume();
        break;
    }
  }
  if (had_active && !any_zone_active()) ++result_.full_outages;

  // The switch to on-demand cancels the tick chain, so a tick can never
  // observe the on-demand phase.
  REDSPOT_CHECK(!on_demand_phase_);

  if (strategy_->dynamic()) {
    consult_strategy(terminated_any ? DecisionPoint::kZoneTerminated
                                    : DecisionPoint::kPriceTick);
  }
  if (!done_ && !on_demand_phase_ && !coord_.in_flight() &&
      policy_checkpoint_allowed() && any_zone_running() &&
      config_.policy->checkpoint_condition(*this)) {
    start_checkpoint(std::nullopt);
  }
  reconcile();

  if (done_ || on_demand_phase_) return;
  const SimTime next = price_step_floor(now()) + market_->traces().step();
  if (next <= experiment_.deadline_time() && next < market_->trace_end()) {
    tick_event_ = queue_.schedule_at(EventKind::kPriceTick, kNoZone, next);
  }
}

void Engine::reconcile() {
  if (done_ || on_demand_phase_) return;
  if (any_zone_active()) return;
  // Algorithm 1 lines 29-35: with no instance up, every waiting zone
  // restarts from the previous checkpoint.
  for (std::size_t z : config_.zones) {
    if (zone_at(z).state() == ZoneState::kWaiting) request_instance(z);
  }
}

void Engine::request_instance(std::size_t zone) {
  ZoneMachine& z = zone_at(zone);
  z.request();
  const Duration delay = market_->sample_queue_delay(queue_rng_);
  result_.queue_delay_total += delay;
  z.ready_event = queue_.schedule_in(EventKind::kInstanceReady, zone, delay);
  record(now(), zone, TimelineKind::kInstanceRequested,
         [&] { return "delay=" + format_duration(delay); });
}

void Engine::on_instance_ready(std::size_t zone) {
  ZoneMachine& z = zone_at(zone);
  z.ready_event = 0;
  REDSPOT_CHECK(z.state() == ZoneState::kQueued);
  const Money rate = price(zone);
  if (rate > config_.bid) {
    // The price moved above the bid at this very instant (the tick event
    // carrying the termination is ordered after us): the request dies
    // unfulfilled.
    terminate_out_of_bid(zone);
    return;
  }
  if (injector_.request_rejected()) {
    // EC2 "insufficient capacity": the request is rejected at fulfilment.
    // Retry with exponential backoff + jitter, then re-queue; the zone
    // stays kQueued (no instance, nothing billed) throughout.
    const int attempt = z.note_rejected();
    const Duration backoff = injector_.backoff_delay(attempt);
    notify_fault(FaultEvent::Kind::kRequestRejection, zone, backoff);
    const Duration requeue = market_->sample_queue_delay(queue_rng_);
    result_.queue_delay_total += requeue;
    z.ready_event =
        queue_.schedule_in(EventKind::kInstanceReady, zone, backoff + requeue);
    record(now(), zone, TimelineKind::kRequestRejected,
           [&] { return "retry-in=" + format_duration(backoff + requeue); });
    return;
  }
  billing_.spot_started(zone, now(), rate);
  z.cycle_event = queue_.schedule_at(EventKind::kCycleBoundary, zone,
                                     billing_.cycle_end(zone));
  const SimTime pre = billing_.cycle_end(zone) - experiment_.costs.checkpoint;
  if ((config_.policy->wants_pre_boundary_checks() || strategy_->dynamic()) &&
      pre > now()) {
    z.preboundary_event =
        queue_.schedule_at(EventKind::kPreBoundary, zone, pre);
  }
  record(now(), zone, TimelineKind::kInstanceRunning,
         [&] { return "rate=" + rate.str(); });

  const Duration target = store_.latest_progress();
  if (target > 0) {
    z.begin_restart(target);
    z.restart_event = queue_.schedule_in(EventKind::kRestartDone, zone,
                                         experiment_.costs.restart);
    record(now(), zone, TimelineKind::kRestartStart);
  } else {
    // Nothing to load: the application starts from its initial state
    // (Figure 1 — no restart cost at T_b).
    start_computing(zone, 0);
  }
}

void Engine::on_restart_done(std::size_t zone) {
  ZoneMachine& z = zone_at(zone);
  z.restart_event = 0;
  REDSPOT_CHECK(z.state() == ZoneState::kRestarting);
  if (injector_.restart_fails()) {
    // The load failed. Retry from the newest verified checkpoint (it may
    // have advanced while this load was in flight), paying t_r again; a
    // store with nothing left to load degrades to a from-scratch start.
    notify_fault(FaultEvent::Kind::kRestartFailure, zone);
    record(now(), zone, TimelineKind::kRestartFailed);
    const Duration target = store_.latest_progress();
    if (target > 0) {
      z.retry_restart(target);
      z.restart_event = queue_.schedule_in(EventKind::kRestartDone, zone,
                                           experiment_.costs.restart);
      record(now(), zone, TimelineKind::kRestartStart, "retry");
      return;
    }
    start_computing(zone, 0);
    return;
  }
  ++result_.restarts;
  record(now(), zone, TimelineKind::kRestartDone);
  start_computing(zone, z.restart_target());
}

void Engine::start_computing(std::size_t zone, Duration progress_base) {
  ZoneMachine& z = zone_at(zone);
  z.begin_compute(now(), progress_base);
  const Duration remaining =
      std::max<Duration>(0, experiment_.app.total_compute - progress_base);
  queue_.cancel(z.completion_event);
  z.completion_event =
      queue_.schedule_in(EventKind::kZoneCompletion, zone, remaining);
  reschedule_policy_checkpoint();
}

// ---------------------------------------------------------------------------
// Terminations

// Appendix-A variant: the market warns before terminating. The fault plan
// can drop the notice (abrupt 2013-style kill) or deliver it late, which
// shrinks the usable warning; the kill instant itself never moves.
void Engine::deliver_termination_notice(std::size_t zone) {
  const FaultInjector::NoticeDelivery notice =
      injector_.notice_delivery(options_.termination_notice);
  if (notice.dropped) {
    notify_fault(FaultEvent::Kind::kNoticeDropped, zone);
    record(now(), zone, TimelineKind::kNoticeDropped);
    terminate_out_of_bid(zone);
    return;
  }
  if (notice.lag <= 0) {
    on_termination_notice(zone, options_.termination_notice);
    return;
  }
  // Late notice: the zone is already doomed (the price crossed the bid
  // now) but the engine only learns at now + lag, with the remaining
  // warning shortened accordingly.
  ZoneMachine& z = zone_at(zone);
  z.mark_doomed();
  notify_fault(FaultEvent::Kind::kNoticeLate, zone);
  const Duration warning = options_.termination_notice - notice.lag;
  z.doom_event = queue_.schedule_in(
      EventKind::kLateNotice, zone, notice.lag, [this, zone, warning] {
        ZoneMachine& late = zone_at(zone);
        late.doom_event = 0;
        if (done_ || !late.active()) return;
        on_termination_notice(zone, warning);
      });
}

// The doomed zone keeps computing through the notice; an emergency
// checkpoint lands exactly at the termination instant when the remaining
// warning can fit one (warning >= t_c).
void Engine::on_termination_notice(std::size_t zone, Duration warning) {
  ZoneMachine& z = zone_at(zone);
  z.mark_doomed();
  const SimTime doom_at = now() + warning;
  z.doom_event = queue_.schedule_at(EventKind::kDoom, zone, doom_at);
  record(now(), zone, TimelineKind::kOutOfBid,
         [&] { return "notice=" + format_duration(warning); });
  const SimTime ckpt_start = doom_at - experiment_.costs.checkpoint;
  if (ckpt_start >= now() && policy_checkpoint_allowed()) {
    z.emergency_ckpt_event = queue_.schedule_at(
        EventKind::kEmergencyCheckpoint, zone, ckpt_start, [this, zone] {
          ZoneMachine& doomed_zone = zone_at(zone);
          doomed_zone.emergency_ckpt_event = 0;
          if (done_ || coord_.in_flight() || !doomed_zone.computing()) return;
          start_checkpoint(zone);
        });
  }
}

// Regime rebalance warning: the zone flips to kRebalanceWarned (progress
// keeps accruing) and the notice machinery above schedules the doom and,
// when the lead time fits one, the emergency checkpoint.
void Engine::on_rebalance_notice(std::size_t zone) {
  ZoneMachine& z = zone_at(zone);
  z.rebalance_event = 0;
  if (done_ || !z.running() || z.rebalance_warned()) return;
  z.warn_rebalance();
  on_termination_notice(zone, options_.regime.rebalance_notice);
}

void Engine::on_doom(std::size_t zone) {
  ZoneMachine& z = zone_at(zone);
  z.doom_event = 0;
  if (done_ || !z.active()) return;
  const bool had_active = any_zone_active();
  terminate_out_of_bid(zone);  // commits a just-finished write, bills free
  if (had_active && !any_zone_active()) ++result_.full_outages;
  reconcile();
}

void Engine::terminate_out_of_bid(std::size_t zone) {
  ZoneMachine& z = zone_at(zone);
  REDSPOT_CHECK(z.active());
  settle_zone_checkpoint(zone);
  if (z.state() == ZoneState::kQueued) {
    // The request had not been fulfilled; nothing was billed.
  } else {
    billing_.spot_terminated(zone, now(), TerminationCause::kOutOfBid);
  }
  z.cancel_events(queue_);
  z.terminate();
  ++result_.out_of_bid_terminations;
  record(now(), zone, TimelineKind::kOutOfBid);
}

void Engine::user_terminate(std::size_t zone, bool at_boundary) {
  ZoneMachine& z = zone_at(zone);
  if (!z.active()) return;
  settle_zone_checkpoint(zone);
  if (z.state() == ZoneState::kQueued) {
    record(now(), zone, TimelineKind::kUserTerminated, "request-cancelled");
  } else {
    if (at_boundary) {
      billing_.spot_stopped_at_boundary(zone, now());
    } else {
      billing_.spot_terminated(zone, now(), TerminationCause::kUser);
    }
    record(now(), zone, TimelineKind::kUserTerminated,
           at_boundary ? "at-boundary" : "mid-cycle");
  }
  z.cancel_events(queue_);
  z.terminate();
}

// ---------------------------------------------------------------------------
// Completion

void Engine::on_zone_completion(std::size_t zone) {
  ZoneMachine& z = zone_at(zone);
  z.completion_event = 0;
  REDSPOT_CHECK(z.computing());
  REDSPOT_CHECK(zone_progress(zone) >= experiment_.app.total_compute);
  record(now(), zone, TimelineKind::kCompleted);
  for (std::size_t other : config_.zones) user_terminate(other, false);
  finish(now(), true);
}

}  // namespace redspot
