// Zone lifecycle states and the legal-transition relation.
//
// Extracted from the engine so the state machine is a first-class,
// unit-testable artifact. The diagram (superset of the paper's
// up/waiting/down):
//
//   kDown ──(S<=B at tick)──> kWaiting ──(checkpoint commit, or no zone
//   active)──> kQueued ──(queue delay)──> kRestarting ──(t_r, skipped when
//   starting from scratch)──> kRunning <──> kCheckpointing
//
//   any active state ──(S>B, completion, reconfiguration)──> kDown
//   kDown ──(Large-bid manual stop)──> kStopped ──(S<=L)──> kWaiting
//
// (The manual stop reaches kStopped via kDown: the boundary termination
// first tears the instance down, then the policy parks the zone.)
//
// Regimes with a rebalance notice (market/regime.hpp) add kRebalanceWarned:
// a kRunning zone whose kill was announced keeps computing there until the
// doom instant; kCheckpointing <-> kRebalanceWarned covers the emergency
// write and the compute resumed after it commits. Classic regimes never
// enter the state, keeping the 16-entry 2012 table intact as a subset.
#pragma once

#include <cstddef>
#include <cstdint>

namespace redspot {

/// Application-visible zone states.
enum class ZoneState : std::uint8_t {
  kDown,           ///< no instance; price above bid or zone not eligible
  kWaiting,        ///< price at/below bid; waiting for a restart condition
  kQueued,         ///< spot request filed, waiting for fulfilment
  kRestarting,     ///< instance up, loading the latest checkpoint (t_r)
  kRunning,         ///< computing
  kCheckpointing,   ///< compute frozen while a checkpoint writes (t_c)
  kStopped,         ///< policy-suspended (Large-bid manual stop)
  kRebalanceWarned, ///< computing under a rebalance notice (kill announced)
};

inline constexpr std::size_t kNumZoneStates = 8;

const char* to_string(ZoneState s);

/// True for states that hold (or are acquiring) a spot instance.
constexpr bool is_active(ZoneState s) {
  return s == ZoneState::kQueued || s == ZoneState::kRestarting ||
         s == ZoneState::kRunning || s == ZoneState::kCheckpointing ||
         s == ZoneState::kRebalanceWarned;
}

/// True for states where compute progress accrues with the clock.
constexpr bool is_computing(ZoneState s) {
  return s == ZoneState::kRunning || s == ZoneState::kRebalanceWarned;
}

/// The legal-transition relation of the zone machine. Every transition the
/// engine performs is asserted against this table, so an illegal hop fails
/// at the instant it happens rather than corrupting a run result.
bool transition_allowed(ZoneState from, ZoneState to);

}  // namespace redspot
