// Per-zone lifecycle state machine.
//
// Each availability zone a run uses is one ZoneMachine: the zone's state,
// its compute-progress accounting, and the handles of the calendar events
// that belong to it. Transitions go through named operations (wake, request,
// begin_compute, terminate, ...) that enforce the legal-transition table in
// zone_state.cpp — an illegal transition throws instead of silently
// corrupting a run. Every transition is reported to the ZoneTransitionSink
// (the engine), which fans it out to the observer layer.
//
// Progress accounting: progress_base_ is compute time completed as of
// computing_since_; while kRunning, progress() grows with the clock. A
// checkpoint freezes the base at the snapshot instant (begin_checkpoint),
// so progress during the write — which is lost if the zone dies — is never
// counted until compute resumes.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "core/events/event.hpp"
#include "core/zone/zone_state.hpp"

namespace redspot {

class EventQueue;

/// Receives every zone state transition (implemented by the engine).
class ZoneTransitionSink {
 public:
  virtual void on_zone_transition(std::size_t zone, ZoneState from,
                                  ZoneState to) = 0;

 protected:
  ~ZoneTransitionSink() = default;
};

class ZoneMachine {
 public:
  ZoneMachine(std::size_t id, ZoneTransitionSink* sink);

  std::size_t id() const { return id_; }
  ZoneState state() const { return state_; }

  /// Holds or is acquiring an instance (kQueued/kRestarting/kRunning/
  /// kCheckpointing).
  bool active() const { return is_active(state_); }

  /// Has a billed, running instance (kRunning, kCheckpointing or
  /// kRebalanceWarned).
  bool running() const {
    return state_ == ZoneState::kRunning ||
           state_ == ZoneState::kCheckpointing ||
           state_ == ZoneState::kRebalanceWarned;
  }

  /// Compute progress is accruing (kRunning or kRebalanceWarned).
  bool computing() const { return is_computing(state_); }

  // --- transitions (throw on a state not allowing them) -----------------

  /// Price dropped under the bid: kDown -> kWaiting.
  void wake();

  /// Price rose over the bid while unused: kWaiting -> kDown.
  void sleep();

  /// Spot request issued: kWaiting or kDown -> kQueued. Resets the
  /// rejected-request attempt counter.
  void request();

  /// Instance granted, restoring from a checkpoint: kQueued -> kRestarting.
  /// `target` is the committed progress the restore runs toward.
  void begin_restart(Duration target);

  /// Restart load failed; the retry stays in kRestarting but may aim at a
  /// different committed progress.
  void retry_restart(Duration target);

  /// Compute (re)starts at `now` with `progress_base` already done:
  /// kQueued, kRestarting or kCheckpointing -> kRunning.
  void begin_compute(SimTime now, Duration progress_base);

  /// Checkpoint write starts: kRunning or kRebalanceWarned ->
  /// kCheckpointing. Freezes progress_base_ at progress(now) — work during
  /// the write is at risk and only re-enters the count when compute
  /// resumes.
  void begin_checkpoint(SimTime now);

  /// Capacity-rebalance warning received (regime notice): kRunning ->
  /// kRebalanceWarned, or flag-only while kCheckpointing (the resume after
  /// the write lands in kRebalanceWarned). Requires running().
  void warn_rebalance();

  /// Instance gone (out-of-bid, user termination): any active state ->
  /// kDown. Clears the pending manual-stop flag.
  void terminate();

  /// Manual stop after termination: kDown -> kStopped (out of the market
  /// until the price recovers).
  void stop();

  /// Price recovered for a manually stopped zone: kStopped -> kWaiting.
  void resume();

  /// Forces an inactive zone (kWaiting/kStopped) to kDown; no-op when
  /// already kDown. Reconfiguration uses this to retire zones whose
  /// waiting state is stale under a new bid or zone set.
  void force_down();

  // --- progress ---------------------------------------------------------

  /// Compute time completed as of `now` (grows only while computing —
  /// kRunning or kRebalanceWarned).
  Duration progress(SimTime now) const {
    if (is_computing(state_))
      return progress_base_ + (now - computing_since_);
    return progress_base_;
  }

  Duration progress_base() const { return progress_base_; }
  SimTime computing_since() const { return computing_since_; }

  /// Committed progress a kRestarting zone is restoring toward.
  Duration restart_target() const { return restart_target_; }

  // --- request retry accounting ----------------------------------------

  /// Records a rejected spot request; returns the attempt number (1-based).
  int note_rejected() { return ++request_attempts_; }

  // --- flags ------------------------------------------------------------

  bool doomed() const { return doomed_; }
  void mark_doomed() { doomed_ = true; }

  /// A rebalance warning has been received for the current instance.
  bool rebalance_warned() const { return rebalance_warned_; }

  bool manual_stop_pending() const { return manual_stop_pending_; }
  void set_manual_stop_pending(bool pending) {
    manual_stop_pending_ = pending;
  }

  // --- calendar event handles ------------------------------------------
  // Owned by the zone so one call cancels everything on teardown; public
  // because the engine schedules into them directly.
  EventId ready_event = 0;        ///< kInstanceReady / kRestartDone retry
  EventId restart_event = 0;      ///< kRestartDone
  EventId cycle_event = 0;        ///< kCycleBoundary
  EventId preboundary_event = 0;  ///< kPreBoundary
  EventId completion_event = 0;   ///< kZoneCompletion
  EventId doom_event = 0;         ///< kDoom
  EventId emergency_ckpt_event = 0;  ///< kEmergencyCheckpoint
  EventId rebalance_event = 0;    ///< kRebalanceNotice

  /// Cancels every pending event of this zone and clears the doomed flag.
  void cancel_events(EventQueue& queue);

 private:
  void transition(ZoneState to);

  std::size_t id_;
  ZoneTransitionSink* sink_;
  ZoneState state_ = ZoneState::kDown;
  Duration progress_base_ = 0;
  SimTime computing_since_ = 0;
  Duration restart_target_ = 0;
  int request_attempts_ = 0;
  bool manual_stop_pending_ = false;
  bool doomed_ = false;
  bool rebalance_warned_ = false;
};

}  // namespace redspot
