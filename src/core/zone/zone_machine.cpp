#include "core/zone/zone_machine.hpp"

#include "common/check.hpp"
#include "core/events/event_queue.hpp"

namespace redspot {

ZoneMachine::ZoneMachine(std::size_t id, ZoneTransitionSink* sink)
    : id_(id), sink_(sink) {
  REDSPOT_CHECK(sink != nullptr);
}

void ZoneMachine::transition(ZoneState to) {
  REDSPOT_CHECK_MSG(transition_allowed(state_, to),
                    "zone " << id_ << ": illegal transition "
                            << to_string(state_) << " -> " << to_string(to));
  const ZoneState from = state_;
  state_ = to;
  sink_->on_zone_transition(id_, from, to);
}

void ZoneMachine::wake() {
  REDSPOT_CHECK(state_ == ZoneState::kDown);
  transition(ZoneState::kWaiting);
}

void ZoneMachine::sleep() {
  REDSPOT_CHECK(state_ == ZoneState::kWaiting);
  transition(ZoneState::kDown);
}

void ZoneMachine::request() {
  REDSPOT_CHECK(state_ == ZoneState::kWaiting ||
                state_ == ZoneState::kDown);
  request_attempts_ = 0;
  transition(ZoneState::kQueued);
}

void ZoneMachine::begin_restart(Duration target) {
  REDSPOT_CHECK(state_ == ZoneState::kQueued);
  restart_target_ = target;
  transition(ZoneState::kRestarting);
}

void ZoneMachine::retry_restart(Duration target) {
  REDSPOT_CHECK(state_ == ZoneState::kRestarting);
  restart_target_ = target;
}

void ZoneMachine::begin_compute(SimTime now, Duration progress_base) {
  REDSPOT_CHECK(state_ == ZoneState::kQueued ||
                state_ == ZoneState::kRestarting ||
                state_ == ZoneState::kCheckpointing);
  progress_base_ = progress_base;
  computing_since_ = now;
  // A zone resuming compute under a standing rebalance warning (e.g.
  // after its emergency write committed) stays in the warned state.
  transition(rebalance_warned_ ? ZoneState::kRebalanceWarned
                               : ZoneState::kRunning);
}

void ZoneMachine::begin_checkpoint(SimTime now) {
  REDSPOT_CHECK(computing());
  progress_base_ = progress(now);  // freeze before the state flips
  transition(ZoneState::kCheckpointing);
}

void ZoneMachine::warn_rebalance() {
  REDSPOT_CHECK(running());
  rebalance_warned_ = true;
  if (state_ == ZoneState::kRunning) transition(ZoneState::kRebalanceWarned);
  // kCheckpointing: flag only — begin_compute after the write lands in
  // kRebalanceWarned.
}

void ZoneMachine::terminate() {
  REDSPOT_CHECK(active());
  manual_stop_pending_ = false;
  rebalance_warned_ = false;
  transition(ZoneState::kDown);
}

void ZoneMachine::stop() {
  REDSPOT_CHECK(state_ == ZoneState::kDown);
  transition(ZoneState::kStopped);
}

void ZoneMachine::resume() {
  REDSPOT_CHECK(state_ == ZoneState::kStopped);
  transition(ZoneState::kWaiting);
}

void ZoneMachine::force_down() {
  if (state_ == ZoneState::kDown) return;
  REDSPOT_CHECK(!active());
  transition(ZoneState::kDown);
}

void ZoneMachine::cancel_events(EventQueue& queue) {
  queue.cancel(ready_event);
  queue.cancel(restart_event);
  queue.cancel(cycle_event);
  queue.cancel(preboundary_event);
  queue.cancel(completion_event);
  queue.cancel(doom_event);
  queue.cancel(emergency_ckpt_event);
  queue.cancel(rebalance_event);
  doomed_ = false;
  rebalance_warned_ = false;
}

}  // namespace redspot
