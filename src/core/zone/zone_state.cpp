#include "core/zone/zone_state.hpp"

namespace redspot {

const char* to_string(ZoneState s) {
  switch (s) {
    case ZoneState::kDown:
      return "down";
    case ZoneState::kWaiting:
      return "waiting";
    case ZoneState::kQueued:
      return "queued";
    case ZoneState::kRestarting:
      return "restarting";
    case ZoneState::kRunning:
      return "running";
    case ZoneState::kCheckpointing:
      return "checkpointing";
    case ZoneState::kStopped:
      return "stopped";
    case ZoneState::kRebalanceWarned:
      return "rebalance-warned";
  }
  return "?";
}

bool transition_allowed(ZoneState from, ZoneState to) {
  switch (from) {
    case ZoneState::kDown:
      // wake (price fell to the bid), direct request (reconcile), or the
      // Large-bid manual stop parking the zone after its teardown.
      return to == ZoneState::kWaiting || to == ZoneState::kQueued ||
             to == ZoneState::kStopped;
    case ZoneState::kWaiting:
      return to == ZoneState::kDown || to == ZoneState::kQueued;
    case ZoneState::kQueued:
      // Fulfilment leads to a restart (checkpoint to load) or straight to
      // compute (from scratch); termination kills the pending request.
      return to == ZoneState::kRestarting || to == ZoneState::kRunning ||
             to == ZoneState::kDown;
    case ZoneState::kRestarting:
      return to == ZoneState::kRunning || to == ZoneState::kDown;
    case ZoneState::kRunning:
      // A rebalance notice moves a computing zone to the warned state
      // without interrupting its progress.
      return to == ZoneState::kCheckpointing || to == ZoneState::kDown ||
             to == ZoneState::kRebalanceWarned;
    case ZoneState::kCheckpointing:
      // The write can both receive a warning mid-flight (resuming compute
      // lands in kRebalanceWarned) and be the emergency write of a warned
      // zone.
      return to == ZoneState::kRunning || to == ZoneState::kDown ||
             to == ZoneState::kRebalanceWarned;
    case ZoneState::kStopped:
      return to == ZoneState::kWaiting || to == ZoneState::kDown;
    case ZoneState::kRebalanceWarned:
      // The warned zone either starts its emergency checkpoint or dies at
      // the announced doom instant; the warning never rescinds.
      return to == ZoneState::kCheckpointing || to == ZoneState::kDown;
  }
  return false;
}

}  // namespace redspot
