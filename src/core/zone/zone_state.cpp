#include "core/zone/zone_state.hpp"

namespace redspot {

const char* to_string(ZoneState s) {
  switch (s) {
    case ZoneState::kDown:
      return "down";
    case ZoneState::kWaiting:
      return "waiting";
    case ZoneState::kQueued:
      return "queued";
    case ZoneState::kRestarting:
      return "restarting";
    case ZoneState::kRunning:
      return "running";
    case ZoneState::kCheckpointing:
      return "checkpointing";
    case ZoneState::kStopped:
      return "stopped";
  }
  return "?";
}

bool transition_allowed(ZoneState from, ZoneState to) {
  switch (from) {
    case ZoneState::kDown:
      // wake (price fell to the bid), direct request (reconcile), or the
      // Large-bid manual stop parking the zone after its teardown.
      return to == ZoneState::kWaiting || to == ZoneState::kQueued ||
             to == ZoneState::kStopped;
    case ZoneState::kWaiting:
      return to == ZoneState::kDown || to == ZoneState::kQueued;
    case ZoneState::kQueued:
      // Fulfilment leads to a restart (checkpoint to load) or straight to
      // compute (from scratch); termination kills the pending request.
      return to == ZoneState::kRestarting || to == ZoneState::kRunning ||
             to == ZoneState::kDown;
    case ZoneState::kRestarting:
      return to == ZoneState::kRunning || to == ZoneState::kDown;
    case ZoneState::kRunning:
      return to == ZoneState::kCheckpointing || to == ZoneState::kDown;
    case ZoneState::kCheckpointing:
      return to == ZoneState::kRunning || to == ZoneState::kDown;
    case ZoneState::kStopped:
      return to == ZoneState::kWaiting || to == ZoneState::kDown;
  }
  return false;
}

}  // namespace redspot
