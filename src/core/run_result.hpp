// Result of one simulated experiment run.
#pragma once

#include <string>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "market/billing.hpp"

namespace redspot {

/// Timeline entry kinds (for Figure 1/3-style renderings and debugging).
enum class TimelineKind {
  kInstanceRequested,
  kInstanceRunning,
  kOutOfBid,
  kUserTerminated,
  kCheckpointStart,
  kCheckpointDone,
  kRestartStart,
  kRestartDone,
  kSwitchToOnDemand,
  kConfigChange,
  kCompleted,
};

std::string to_string(TimelineKind kind);

struct TimelineEvent {
  SimTime time = 0;
  std::size_t zone = 0;  ///< global zone index; unused for global events
  TimelineKind kind = TimelineKind::kCompleted;
  std::string detail;
};

/// Everything the experiment harness needs from one run.
struct RunResult {
  // --- cost ---------------------------------------------------------------
  Money total_cost;          ///< the paper's "Cost per Instance"
  Money spot_cost;
  Money on_demand_cost;

  // --- outcome ------------------------------------------------------------
  bool completed = false;
  bool met_deadline = false;
  SimTime finish_time = 0;   ///< absolute completion instant

  // --- accounting ---------------------------------------------------------
  int checkpoints_committed = 0;
  int restarts = 0;                ///< restart operations completed
  int out_of_bid_terminations = 0;
  int full_outages = 0;            ///< transitions to "no zone active"
  Duration spot_instance_seconds = 0;  ///< sum over zones of billed up-time
  Duration on_demand_seconds = 0;
  Duration queue_delay_total = 0;
  bool switched_to_on_demand = false;
  int config_changes = 0;          ///< Adaptive permutation switches

  // --- optional detail (EngineConfig.record_*) -----------------------------
  std::vector<TimelineEvent> timeline;
  std::vector<LineItem> line_items;

  /// Renders the timeline as one line per event.
  std::string timeline_str() const;
};

}  // namespace redspot
