// Result of one simulated experiment run.
#pragma once

#include <string>
#include <vector>

#include "ckpt/store.hpp"
#include "common/money.hpp"
#include "common/time.hpp"
#include "market/billing.hpp"

namespace redspot {

/// Timeline entry kinds (for Figure 1/3-style renderings and debugging).
enum class TimelineKind {
  kInstanceRequested,
  kInstanceRunning,
  kOutOfBid,
  kUserTerminated,
  kCheckpointStart,
  kCheckpointDone,
  kCheckpointFailed,   ///< write reported failure (or store outage)
  kCheckpointCorrupt,  ///< write "succeeded" but validation rolled it back
  kRestartStart,
  kRestartDone,
  kRestartFailed,      ///< load failed; retried
  kRequestRejected,    ///< spot request rejected (insufficient capacity)
  kNoticeDropped,      ///< termination notice lost; abrupt kill
  kSwitchToOnDemand,
  kConfigChange,
  kCompleted,
};

std::string to_string(TimelineKind kind);

struct TimelineEvent {
  SimTime time = 0;
  std::size_t zone = 0;  ///< global zone index; unused for global events
  TimelineKind kind = TimelineKind::kCompleted;
  std::string detail;
};

/// Injected-fault events observed during one run (all zero when the
/// FaultPlan is disabled).
struct FaultStats {
  int ckpt_write_failures = 0;  ///< writes that failed (incl. outages)
  int ckpt_corruptions = 0;     ///< writes rolled back by validation
  int restart_failures = 0;     ///< loads that failed and were retried
  int request_rejections = 0;   ///< spot requests rejected + backed off
  int notices_dropped = 0;      ///< termination notices lost
  int notices_late = 0;         ///< termination notices delivered late
  Duration backoff_total = 0;   ///< total retry backoff waited

  bool any() const {
    return ckpt_write_failures || ckpt_corruptions || restart_failures ||
           request_rejections || notices_dropped || notices_late;
  }
};

/// Everything the experiment harness needs from one run.
struct RunResult {
  // --- cost ---------------------------------------------------------------
  Money total_cost;          ///< the paper's "Cost per Instance"
  Money spot_cost;
  Money on_demand_cost;

  // --- outcome ------------------------------------------------------------
  bool completed = false;
  bool met_deadline = false;
  SimTime finish_time = 0;   ///< absolute completion instant

  // --- accounting ---------------------------------------------------------
  int checkpoints_committed = 0;
  int restarts = 0;                ///< restart operations completed
  int out_of_bid_terminations = 0;
  int full_outages = 0;            ///< transitions to "no zone active"
  Duration spot_instance_seconds = 0;  ///< sum over zones of billed up-time
  Duration on_demand_seconds = 0;
  Duration queue_delay_total = 0;
  bool switched_to_on_demand = false;
  int config_changes = 0;          ///< Adaptive permutation switches

  // --- robustness ----------------------------------------------------------
  FaultStats faults;               ///< injected-fault events survived
  Duration committed_progress = 0; ///< final verified checkpoint progress
  /// Full store sequence, including entries invalidated by validation —
  /// lets RunValidator audit progress monotonicity and rollbacks.
  std::vector<Checkpoint> checkpoint_log;

  // --- optional detail (EngineConfig.record_*) -----------------------------
  std::vector<TimelineEvent> timeline;
  std::vector<LineItem> line_items;

  /// Renders the timeline as one line per event.
  std::string timeline_str() const;
};

}  // namespace redspot
