// Deadline-trigger choreography and the switch to on-demand (Algorithm 1,
// line 11). The margin arithmetic and the trigger decision are the pure
// functions in deadline_monitor.hpp; this file owns their wiring into the
// run: re-arming on commits, the final forced checkpoint, and the
// switchover itself.
#include <cstdio>

#include "core/engine.hpp"

namespace redspot {

void Engine::reschedule_deadline_trigger() {
  if (done_ || on_demand_phase_) return;
  monitor_.rearm(store_.latest_progress());
}

void Engine::on_deadline_trigger() {
  if (done_ || on_demand_phase_) return;
  const Duration committed = store_.latest_progress();
  if (monitor_.switch_time(committed) > now()) {
    // A commit since arming moved the switch instant out; chase it.
    monitor_.rearm(committed);
    return;
  }
  std::optional<std::size_t> leader = leading_zone();
  std::optional<Duration> leader_progress;
  bool leader_doomed = false;
  if (leader) {
    leader_progress = zone_progress(*leader);
    leader_doomed = zone_at(*leader).doomed();
  }
  switch (decide_at_trigger(monitor_.params(), committed, now(),
                            coord_.in_flight(), leader_progress,
                            leader_doomed)) {
    case DeadlineAction::kWait:
      // The in-flight commit (or its abort on an untimely failure)
      // re-arms this trigger.
      return;
    case DeadlineAction::kForceCheckpoint:
      // Committing the leader's speculative progress buys back more
      // margin than the t_c it costs: force one and stay on spot.
      start_checkpoint(leader);
      return;
    case DeadlineAction::kSwitchToOnDemand:
      begin_switch_to_on_demand();
      return;
  }
}

void Engine::begin_switch_to_on_demand() {
  on_demand_phase_ = true;
  result_.switched_to_on_demand = true;
  record(now(), 0, TimelineKind::kSwitchToOnDemand);
  queue_.cancel(scheduled_ckpt_event_);
  monitor_.disarm();
  REDSPOT_CHECK(!coord_.in_flight());
  complete_on_demand_switch();
}

void Engine::complete_on_demand_switch() {
  for (std::size_t z : config_.zones) user_terminate(z, false);
  queue_.cancel(tick_event_);

  const Duration committed = store_.latest_progress();
  if (committed >= experiment_.app.total_compute) {
    finish(now(), true);
    return;
  }
  const Duration restart = committed > 0 ? experiment_.costs.restart : 0;
  const Duration od =
      restart + (experiment_.app.total_compute - committed);
  billing_.on_demand_usage(now(), od, market_->on_demand_rate());
  result_.on_demand_seconds = od;
  const SimTime finish_at = now() + od;
  if (finish_at > experiment_.deadline_time() && options_.record_timeline) {
    std::fputs(result_.timeline_str().c_str(), stderr);  // debug aid
  }
  REDSPOT_CHECK_MSG(finish_at <= experiment_.deadline_time(),
                    "deadline guarantee violated by " << format_duration(
                        finish_at - experiment_.deadline_time()));
  queue_.schedule_at(EventKind::kOnDemandFinish, kNoZone, finish_at,
                     [this] { finish(now(), true); });
}

}  // namespace redspot
