// Deadline-margin monitoring and the on-demand switchover decision.
//
// The paper's deadline guarantee (Section 3.3): with C_r compute remaining
// beyond the last committed checkpoint, a checkpoint write costing t_c and
// a restart costing t_r, the margin at time `now` against deadline T is
//
//   M = (T - now) - (C_r + t_c + t_r)
//
// Once M hits zero the run must leave the spot market for on-demand or it
// can no longer guarantee completion. switch_time() is the instant M
// reaches zero given current committed progress; it moves later with every
// commit, so the monitor is re-armed after each one. The t_c term covers a
// final protective checkpoint; t_r is owed only when there is committed
// progress to restore.
//
// decide_at_trigger() is the pure decision at the armed instant (exercised
// directly by deadline_test): wait out an in-flight write, force a final
// checkpoint when a running zone has banked enough unprotected progress to
// be worth protecting, otherwise switch.
#pragma once

#include <functional>
#include <optional>

#include "common/time.hpp"
#include "core/events/event_queue.hpp"

namespace redspot {

/// The run-wide constants the margin formula needs.
struct DeadlineParams {
  Duration total_compute = 0;    ///< C: total compute the app needs
  Duration checkpoint_cost = 0;  ///< t_c
  Duration restart_cost = 0;     ///< t_r
  SimTime deadline = 0;          ///< T: absolute deadline instant
  /// Rebalance-notice lead time of the market regime (0 when kills land
  /// unannounced). It does NOT shrink the margin's t_c reserve — the
  /// reserve must still absorb a forced write that dies mid-flight and
  /// the wait for an in-flight write at the trigger — but it changes the
  /// trigger decision: see decide_at_trigger().
  Duration notice_lead = 0;
};

/// Latest instant the run may stay on spot with `committed` progress.
SimTime deadline_switch_time(const DeadlineParams& params,
                             Duration committed);

/// Margin M at `now` (negative means the guarantee is already blown).
Duration deadline_margin(const DeadlineParams& params, Duration committed,
                         SimTime now);

enum class DeadlineAction {
  kWait,              ///< checkpoint in flight; its commit re-arms us
  kForceCheckpoint,   ///< protect a leader's unprotected progress first
  kSwitchToOnDemand,  ///< margin exhausted; leave the spot market
};

/// Decision at the trigger instant. `leader_progress` is the best live
/// progress of any running zone, if one exists; `leader_doomed` is true
/// when that zone's kill has been announced (rebalance-warned under a
/// notice regime, or an Appendix-A doomed zone). With a notice regime
/// (params.notice_lead > 0) the announcement changes the gamble's odds:
/// a doomed leader can die before the forced write commits, so it never
/// gambles; an undoomed leader's kill must be announced at least
/// notice_lead ahead, so when notice_lead >= t_c the forced write is
/// guaranteed to finish and ANY unprotected progress is worth banking.
DeadlineAction decide_at_trigger(const DeadlineParams& params,
                                 Duration committed, SimTime now,
                                 bool ckpt_in_flight,
                                 std::optional<Duration> leader_progress,
                                 bool leader_doomed = false);

/// Owns the deadline-trigger calendar event: armed at switch_time (clamped
/// to now) and re-armed on every checkpoint commit.
class DeadlineMonitor {
 public:
  DeadlineMonitor(EventQueue& queue, DeadlineParams params,
                  std::function<void()> on_trigger);

  const DeadlineParams& params() const { return params_; }

  SimTime switch_time(Duration committed) const {
    return deadline_switch_time(params_, committed);
  }
  Duration margin(Duration committed) const {
    return deadline_margin(params_, committed, queue_.now());
  }

  /// (Re-)arms the trigger for the given committed progress.
  void rearm(Duration committed);

  /// Cancels the trigger (switchover under way; no more spot decisions).
  void disarm();

  bool armed() const { return event_ != 0; }

 private:
  EventQueue& queue_;
  DeadlineParams params_;
  std::function<void()> on_trigger_;
  EventId event_ = 0;
};

}  // namespace redspot
