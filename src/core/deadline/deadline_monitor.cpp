#include "core/deadline/deadline_monitor.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

SimTime deadline_switch_time(const DeadlineParams& params,
                             Duration committed) {
  const Duration remaining = params.total_compute - committed;
  const Duration restart = committed > 0 ? params.restart_cost : 0;
  return params.deadline - remaining - restart - params.checkpoint_cost;
}

Duration deadline_margin(const DeadlineParams& params, Duration committed,
                         SimTime now) {
  return deadline_switch_time(params, committed) - now;
}

DeadlineAction decide_at_trigger(const DeadlineParams& params,
                                 Duration committed, SimTime now,
                                 bool ckpt_in_flight,
                                 std::optional<Duration> leader_progress,
                                 bool leader_doomed) {
  // An in-flight write settles (commit or abort) and re-arms the trigger;
  // deciding before it lands would double-count its t_c.
  if (ckpt_in_flight) return DeadlineAction::kWait;
  const SimTime due = deadline_switch_time(params, committed);
  // Under a notice regime a leader whose kill is already announced may die
  // before a forced write commits — the gamble's upside is gone while the
  // downside (burning the reserve) remains, so switch instead.
  if (params.notice_lead > 0 && leader_doomed)
    return DeadlineAction::kSwitchToOnDemand;
  // A forced checkpoint is only safe while the margin is not yet negative
  // (due == now): if it dies mid-write, switching right after still meets
  // the deadline thanks to the reserved t_c. A negative margin (reached
  // via an aborted write) forbids another gamble. And it must buy more
  // margin than the t_c it costs, else it only postpones the inevitable —
  // unless the regime announces kills at least t_c ahead, in which case an
  // unannounced (undoomed) leader's write is guaranteed to commit and any
  // positive gain is free.
  const Duration required_gain =
      params.notice_lead >= params.checkpoint_cost ? 0
                                                   : params.checkpoint_cost;
  if (due == now && leader_progress &&
      *leader_progress > committed + required_gain) {
    return DeadlineAction::kForceCheckpoint;
  }
  return DeadlineAction::kSwitchToOnDemand;
}

DeadlineMonitor::DeadlineMonitor(EventQueue& queue, DeadlineParams params,
                                 std::function<void()> on_trigger)
    : queue_(queue), params_(params), on_trigger_(std::move(on_trigger)) {
  REDSPOT_CHECK(on_trigger_ != nullptr);
}

void DeadlineMonitor::rearm(Duration committed) {
  queue_.cancel(event_);
  event_ = queue_.schedule_at(EventKind::kDeadlineTrigger, kNoZone,
                              std::max(queue_.now(), switch_time(committed)),
                              [this] {
                                event_ = 0;
                                on_trigger_();
                              });
}

void DeadlineMonitor::disarm() { queue_.cancel(event_); }

}  // namespace redspot
