// Randomized-bid policy (after Bhuyan et al., PAPERS.md): the bid is not
// a fixed point on the grid but a seeded draw from a distribution skewed
// toward the on-demand ceiling — high enough to survive most excursions,
// randomized so the (adversarial-market) optimum is a distribution, not a
// point.
//
// The draw happens at configuration time (draw_bid), because a run's bid
// is fixed by its FixedStrategy; the policy's runtime half hedges the
// randomness: a low draw sits closer to the price process, so beyond the
// Periodic hour-boundary schedule it checkpoints reactively whenever a
// rising tick enters the danger band [safety * B, B] — the same
// trigger-shape as Threshold's price condition, but anchored to the drawn
// bid instead of (S_min + B) / 2.
#pragma once

#include <cstdint>

#include "core/policy.hpp"

namespace redspot {

class RandomizedBidPolicy final : public Policy {
 public:
  /// `safety` is the danger-band edge as a fraction of the bid.
  explicit RandomizedBidPolicy(double safety = 0.8) : safety_(safety) {}

  /// The configuration-time half: draws the run's bid from (lo, hi],
  /// deterministic in `seed`, with density skewed toward `hi` (truncated-
  /// exponential inverse CDF; quantized to the $0.001 grid).
  static Money draw_bid(std::uint64_t seed, Money lo, Money hi);

  std::string name() const override { return "randomized-bid"; }
  bool checkpoint_condition(const EngineView& view) override;
  SimTime schedule_next_checkpoint(const EngineView& view) override;

 private:
  double safety_;
};

}  // namespace redspot
