#include "core/policies/threshold.hpp"

#include <algorithm>

#include "core/batch/model_pool.hpp"
#include "core/policies/rising_edge.hpp"

namespace redspot {

bool ThresholdPolicy::checkpoint_condition(const EngineView& view) {
  for (std::size_t zone : view.zone_ids()) {
    if (!view.zone_running(zone) || !rising_edge(view, zone)) continue;
    // PriceThresh = average of the minimum observed price and the bid.
    const Money price_thresh = Money::from_micros(
        (view.min_observed_price(zone).micros() + view.bid().micros()) / 2);
    if (view.price(zone) >= price_thresh) return true;
  }
  return false;
}

SimTime ThresholdPolicy::schedule_next_checkpoint(const EngineView& view) {
  const SimTime since = view.leading_compute_since();
  if (since == kNever) return kNever;
  // TimeThresh: probabilistic average up-time of the leading zone at B.
  Duration best_uptime = 0;
  for (std::size_t zone : view.zone_ids()) {
    if (!view.zone_running(zone)) continue;
    if (pool_ != nullptr) {
      best_uptime = std::max(
          best_uptime,
          pool_->expected_uptime(zone, max_states_, view.history(zone),
                                 view.price(zone), view.bid()));
      continue;
    }
    if (models_.size() <= zone)
      models_.resize(zone + 1, IncrementalMarkovModel(max_states_));
    IncrementalMarkovModel& model = models_[zone];
    model.observe(view.history(zone));
    best_uptime = std::max(
        best_uptime, model.expected_uptime(view.price(zone), view.bid()));
  }
  if (best_uptime <= 0) return kNever;
  // "execution time at B" exceeds TimeThresh at since + TimeThresh.
  return std::max(view.now() + 1, since + best_uptime);
}

}  // namespace redspot
