#include "core/policies/markov_daly.hpp"

#include "ckpt/daly.hpp"
#include "core/batch/model_pool.hpp"

namespace redspot {

bool MarkovDalyPolicy::checkpoint_condition(const EngineView&) {
  return false;  // schedule-driven, like Periodic
}

Duration MarkovDalyPolicy::combined_uptime(const EngineView& view) const {
  Duration total = 0;
  for (std::size_t zone : view.zone_ids()) {
    if (!view.zone_running(zone)) continue;
    if (pool_ != nullptr) {
      total += pool_->expected_uptime(zone, max_states_, view.history(zone),
                                      view.price(zone), view.bid());
      continue;
    }
    if (models_.size() <= zone)
      models_.resize(zone + 1, IncrementalMarkovModel(max_states_));
    IncrementalMarkovModel& model = models_[zone];
    model.observe(view.history(zone));
    total += model.expected_uptime(view.price(zone), view.bid());
  }
  return total;
}

SimTime MarkovDalyPolicy::schedule_next_checkpoint(const EngineView& view) {
  if (!view.any_zone_running()) return kNever;
  const Duration uptime = combined_uptime(view);
  if (uptime <= 0) return kNever;  // nothing expected to survive a step
  const Duration interval =
      daly_interval(view.experiment().costs.checkpoint, uptime);
  return view.now() + interval;
}

}  // namespace redspot
