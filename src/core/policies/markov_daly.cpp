#include "core/policies/markov_daly.hpp"

#include <vector>

#include "ckpt/daly.hpp"
#include "markov/model.hpp"
#include "markov/uptime.hpp"

namespace redspot {

bool MarkovDalyPolicy::checkpoint_condition(const EngineView&) {
  return false;  // schedule-driven, like Periodic
}

Duration MarkovDalyPolicy::combined_uptime(const EngineView& view) const {
  std::vector<Duration> per_zone;
  for (std::size_t zone : view.zone_ids()) {
    if (!view.zone_running(zone)) continue;
    const MarkovModel model =
        build_markov_model(view.history(zone), max_states_);
    per_zone.push_back(
        expected_uptime(model, view.price(zone), view.bid()));
  }
  return combined_expected_uptime(per_zone);
}

SimTime MarkovDalyPolicy::schedule_next_checkpoint(const EngineView& view) {
  if (!view.any_zone_running()) return kNever;
  const Duration uptime = combined_uptime(view);
  if (uptime <= 0) return kNever;  // nothing expected to survive a step
  const Duration interval =
      daly_interval(view.experiment().costs.checkpoint, uptime);
  return view.now() + interval;
}

}  // namespace redspot
