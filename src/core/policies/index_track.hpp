// Index-tracking policy (after Shastri & Irwin's Cloud Index Tracking,
// PAPERS.md): treat the configured lanes as a market index and keep the
// application on the `target_active` lanes whose *normalized* price
// (price / lane scale) is currently lowest, rebalancing at hour
// granularity.
//
// The mechanics reuse the Large-bid manual-stop hooks: at each
// pre-boundary check a running lane that has fallen out of the index is
// checkpointed and user-terminated at its boundary; a stopped lane is
// re-requested as soon as it re-enters the index. Multi-type regimes
// supply per-lane scales (market/universe.hpp lane_scale) so a cheap
// instance type is compared on equal footing with an expensive one; the
// default all-ones scale makes the policy a plain cheapest-zones tracker
// on classic single-type markets.
#pragma once

#include <cstddef>
#include <vector>

#include "core/policy.hpp"

namespace redspot {

class IndexTrackPolicy final : public Policy {
 public:
  /// Keeps the `target_active` cheapest normalized lanes running.
  /// `lane_scale[global zone index]` divides that lane's price; empty
  /// means all lanes at scale 1.
  explicit IndexTrackPolicy(std::size_t target_active = 1,
                            std::vector<double> lane_scale = {})
      : target_active_(target_active), lane_scale_(std::move(lane_scale)) {}

  std::string name() const override { return "index-track"; }
  bool checkpoint_condition(const EngineView&) override { return false; }
  SimTime schedule_next_checkpoint(const EngineView& view) override;

  bool wants_pre_boundary_checks() const override { return true; }
  bool should_manual_stop(const EngineView& view, std::size_t zone) override;
  bool should_resume(const EngineView& view, std::size_t zone) override;

  /// True when `zone` is among the target_active cheapest normalized
  /// lanes of the view's zone set right now (ties break to the lower
  /// zone index, so the index is always exactly determined).
  bool in_index(const EngineView& view, std::size_t zone) const;

 private:
  double normalized(const EngineView& view, std::size_t zone) const;

  std::size_t target_active_;
  std::vector<double> lane_scale_;
};

}  // namespace redspot
