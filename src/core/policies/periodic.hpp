// Periodic policy (Section 4.1): checkpoint at hour boundaries.
//
// ScheduleNextCheckpoint() places the next checkpoint so that it completes
// exactly at the end of the current billing hour (T_s = hour - t_c); since
// a partial hour forfeited to EC2 is free, committing just before each paid
// boundary maximizes the progress locked in per dollar.
#pragma once

#include "core/policy.hpp"

namespace redspot {

class PeriodicPolicy final : public Policy {
 public:
  std::string name() const override { return "periodic"; }
  bool checkpoint_condition(const EngineView& view) override;
  SimTime schedule_next_checkpoint(const EngineView& view) override;
};

}  // namespace redspot
