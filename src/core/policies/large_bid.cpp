#include "core/policies/large_bid.hpp"

// LargeBidPolicy is header-only; this TU anchors the build target entry.
namespace redspot {}
