#include "core/policies/randomized_bid.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/random.hpp"

namespace redspot {

namespace {

/// Skew of the bid distribution: density proportional to e^{kSkew x} on
/// [0, 1], so ~2/3 of the mass lands in the upper half of (lo, hi].
constexpr double kSkew = 2.0;

}  // namespace

Money RandomizedBidPolicy::draw_bid(std::uint64_t seed, Money lo, Money hi) {
  REDSPOT_CHECK(lo < hi);
  Rng rng(seed, /*stream=*/0xB1D);
  const double u = rng.uniform();
  // Inverse CDF of the truncated exponential on [0, 1].
  const double x = std::log(1.0 + u * (std::exp(kSkew) - 1.0)) / kSkew;
  const double dollars =
      lo.to_double() + (hi.to_double() - lo.to_double()) * x;
  const Money bid = Money::from_micros(std::llround(dollars * 1000.0) * 1000);
  return std::clamp(bid, lo, hi);
}

bool RandomizedBidPolicy::checkpoint_condition(const EngineView& view) {
  // Rising tick into the danger band on any executing zone.
  const Money band = Money::from_micros(static_cast<std::int64_t>(
      static_cast<double>(view.bid().micros()) * safety_));
  for (std::size_t zone : view.zone_ids()) {
    if (!view.zone_running(zone)) continue;
    const Money p = view.price(zone);
    if (p > view.previous_price(zone) && p >= band) return true;
  }
  return false;
}

SimTime RandomizedBidPolicy::schedule_next_checkpoint(const EngineView& view) {
  // Periodic hour-boundary backstop: commit the leading zone's progress
  // just before its paid boundary.
  SimTime boundary = kNever;
  Duration best_progress = -1;
  for (std::size_t zone : view.zone_ids()) {
    if (!view.zone_running(zone)) continue;
    const Duration p = view.zone_progress(zone);
    if (p > best_progress) {
      best_progress = p;
      boundary = view.billing_cycle_end(zone);
    }
  }
  if (boundary == kNever) return kNever;
  SimTime t = boundary - view.experiment().costs.checkpoint;
  while (t <= view.now()) t += kHour;
  return t;
}

}  // namespace redspot
