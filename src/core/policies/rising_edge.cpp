#include "core/policies/rising_edge.hpp"

namespace redspot {

bool rising_edge(const EngineView& view, std::size_t zone) {
  return view.price(zone) > view.previous_price(zone);
}

bool RisingEdgePolicy::checkpoint_condition(const EngineView& view) {
  for (std::size_t zone : view.zone_ids()) {
    if (view.zone_running(zone) && rising_edge(view, zone)) return true;
  }
  return false;
}

}  // namespace redspot
