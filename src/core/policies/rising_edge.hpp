// Rising Edge policy (Section 4.3): checkpoint on any upward spot-price
// movement in an executing zone — the price may be about to cross the bid,
// so save progress now. ScheduleNextCheckpoint() is a no-op.
#pragma once

#include "core/policy.hpp"

namespace redspot {

class RisingEdgePolicy final : public Policy {
 public:
  std::string name() const override { return "rising-edge"; }
  bool checkpoint_condition(const EngineView& view) override;
  SimTime schedule_next_checkpoint(const EngineView&) override {
    return kNever;
  }
};

/// True when `zone`'s price moved upward at the current sampling step.
bool rising_edge(const EngineView& view, std::size_t zone);

}  // namespace redspot
