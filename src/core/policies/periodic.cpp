#include "core/policies/periodic.hpp"

#include <algorithm>

namespace redspot {

bool PeriodicPolicy::checkpoint_condition(const EngineView&) {
  return false;  // purely schedule-driven: CheckpointCondition is T == T_s
}

SimTime PeriodicPolicy::schedule_next_checkpoint(const EngineView& view) {
  // The relevant hour boundary is the leading zone's: its progress is what
  // a checkpoint commits, and its paid hour is the one to lock in.
  SimTime boundary = kNever;
  Duration best_progress = -1;
  for (std::size_t zone : view.zone_ids()) {
    if (!view.zone_running(zone)) continue;
    const Duration p = view.zone_progress(zone);
    if (p > best_progress) {
      best_progress = p;
      boundary = view.billing_cycle_end(zone);
    }
  }
  if (boundary == kNever) return kNever;
  SimTime t = boundary - view.experiment().costs.checkpoint;
  // A boundary closer than t_c cannot be met; target the following one.
  while (t <= view.now()) t += kHour;
  return t;
}

}  // namespace redspot
