// Markov-Daly policy (Section 4.2, Appendix B).
//
// ScheduleNextCheckpoint():
//   1. expected up-time E[Tu] of each executing zone from a Markov chain
//      fitted to the trailing 2-day price history;
//   2. combined E[Tu] = sum over executing zones (independent zones);
//   3. next checkpoint after daly_interval(E[Tu], t_c) of compute.
#pragma once

#include <cstddef>
#include <vector>

#include "core/policy.hpp"
#include "markov/incremental.hpp"

namespace redspot {

class MarkovDalyPolicy final : public Policy {
 public:
  /// `max_states` bounds the Markov state space (see markov/model.hpp).
  explicit MarkovDalyPolicy(std::size_t max_states = 64)
      : max_states_(max_states) {}

  std::string name() const override { return "markov-daly"; }
  bool checkpoint_condition(const EngineView& view) override;
  SimTime schedule_next_checkpoint(const EngineView& view) override;
  void use_model_pool(batch::ZoneModelPool* pool) override { pool_ = pool; }

  /// Combined expected up-time at the view's bid over its executing zones
  /// (exposed for tests and the Threshold policy).
  Duration combined_uptime(const EngineView& view) const;

 private:
  std::size_t max_states_;
  /// Batched runs share per-zone models group-wide through the pool
  /// (bit-identical to the private models below).
  batch::ZoneModelPool* pool_ = nullptr;
  /// Per-zone sliding models (global zone id). Policies are per-run objects
  /// (see exp/sweep), so this cache is single-threaded by construction.
  mutable std::vector<IncrementalMarkovModel> models_;
};

}  // namespace redspot
