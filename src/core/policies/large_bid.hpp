// Large-bid policy (Section 7.2.2, after Khatua & Mukherjee).
//
// The user bids an amount B so large (here $100) that out-of-bid
// termination is practically impossible, and instead controls cost with a
// secondary threshold L: when the spot price sits above L near the end of
// a billing hour, the instance is checkpointed and manually terminated
// (paying that hour in full — user termination), then re-requested once
// the price falls back to L or below. Strictly single-zone. With
// L = "no threshold" this is the Naive variant of Figure 6, which simply
// rides every price spike.
#pragma once

#include "core/policy.hpp"

namespace redspot {

class LargeBidPolicy final : public Policy {
 public:
  /// `threshold` is L. Use no_threshold() for the Naive variant.
  explicit LargeBidPolicy(Money threshold) : threshold_(threshold) {}

  /// The bid the paper uses to make termination "extremely unlikely".
  static Money large_bid() { return Money::dollars(100.0); }

  /// L above every observable price: never stop manually (Naive).
  static Money no_threshold() { return large_bid(); }

  Money threshold() const { return threshold_; }

  std::string name() const override { return "large-bid"; }
  bool checkpoint_condition(const EngineView&) override { return false; }
  SimTime schedule_next_checkpoint(const EngineView&) override {
    return kNever;
  }

  bool wants_pre_boundary_checks() const override { return true; }
  bool should_manual_stop(const EngineView& view, std::size_t zone) override {
    // Per-second billing removes the full-hour commitment the manual stop
    // exists to dodge: a user termination then pays only seconds used, so
    // riding the spike while keeping progress strictly dominates a stop
    // that forfeits progress and waits out a re-request queue delay.
    if (view.regime().billing.granularity == BillingGranularity::kPerSecond)
      return false;
    return view.price(zone) > threshold_;
  }
  bool should_resume(const EngineView& view, std::size_t zone) override {
    return view.price(zone) <= threshold_;
  }

 private:
  Money threshold_;
};

}  // namespace redspot
