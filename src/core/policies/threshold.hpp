// Threshold policy (Section 4.4, after Jung et al.): tames Rising Edge's
// checkpoint churn with two thresholds.
//
//   1. Price threshold: checkpoint on a rising edge only when the price has
//      already climbed past PriceThresh = (S_min + B) / 2 — edges far below
//      the bid are harmless.
//   2. Time threshold: checkpoint once the zone has executed at bid B for
//      longer than TimeThresh, the zone's probabilistic average up-time
//      (estimated with the same Markov machinery as Markov-Daly), since an
//      interruption is then "due".
//
// Condition 1 is event-driven (checkpoint_condition); condition 2 is a
// scheduled deadline measured from the last restart/checkpoint
// (schedule_next_checkpoint), which evaluates it exactly rather than at
// 5-minute polls.
#pragma once

#include <cstddef>
#include <vector>

#include "core/policy.hpp"
#include "markov/incremental.hpp"

namespace redspot {

class ThresholdPolicy final : public Policy {
 public:
  explicit ThresholdPolicy(std::size_t max_states = 64)
      : max_states_(max_states) {}

  std::string name() const override { return "threshold"; }
  bool checkpoint_condition(const EngineView& view) override;
  SimTime schedule_next_checkpoint(const EngineView& view) override;
  void use_model_pool(batch::ZoneModelPool* pool) override { pool_ = pool; }

 private:
  std::size_t max_states_;
  /// Batched runs share per-zone models group-wide (bit-identical).
  batch::ZoneModelPool* pool_ = nullptr;
  /// Per-zone sliding models (global zone id); per-run object, so
  /// single-threaded by construction.
  std::vector<IncrementalMarkovModel> models_;
};

}  // namespace redspot
