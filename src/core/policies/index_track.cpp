#include "core/policies/index_track.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

double IndexTrackPolicy::normalized(const EngineView& view,
                                    std::size_t zone) const {
  double scale = 1.0;
  if (!lane_scale_.empty()) {
    REDSPOT_CHECK(zone < lane_scale_.size());
    scale = lane_scale_[zone];
    REDSPOT_CHECK(scale > 0.0);
  }
  return view.price(zone).to_double() / scale;
}

bool IndexTrackPolicy::in_index(const EngineView& view,
                                std::size_t zone) const {
  const double mine = normalized(view, zone);
  std::size_t cheaper = 0;
  for (std::size_t other : view.zone_ids()) {
    if (other == zone) continue;
    const double theirs = normalized(view, other);
    if (theirs < mine || (theirs == mine && other < zone)) ++cheaper;
  }
  return cheaper < target_active_;
}

bool IndexTrackPolicy::should_manual_stop(const EngineView& view,
                                          std::size_t zone) {
  return !in_index(view, zone);
}

bool IndexTrackPolicy::should_resume(const EngineView& view,
                                     std::size_t zone) {
  return in_index(view, zone);
}

SimTime IndexTrackPolicy::schedule_next_checkpoint(const EngineView& view) {
  // Hour-boundary commits, like Periodic: progress must be locked in
  // before a rebalance can retire the leading lane at its boundary.
  SimTime boundary = kNever;
  Duration best_progress = -1;
  for (std::size_t zone : view.zone_ids()) {
    if (!view.zone_running(zone)) continue;
    const Duration p = view.zone_progress(zone);
    if (p > best_progress) {
      best_progress = p;
      boundary = view.billing_cycle_end(zone);
    }
  }
  if (boundary == kNever) return kNever;
  SimTime t = boundary - view.experiment().costs.checkpoint;
  while (t <= view.now()) t += kHour;
  return t;
}

}  // namespace redspot
