// Remaining-cost estimator for Adaptive (Section 7.1).
//
// For each permutation of (bid B, zone subset Z, policy), predict from the
// trailing history:
//   * progress rate r — compute seconds gained per wall second on the spot
//     market: combined availability x checkpoint efficiency, minus rollback
//     losses from full outages;
//   * cost rate c — dollars per wall hour: sum over zones of availability x
//     expected paid price (hour-start pricing averages to this);
// then apply Inequality (1): if the configuration cannot finish C_r within
// T_r at rate r, part of the remaining run moves to on-demand. The
// prediction is c x (spot time) + on-demand rate x (started on-demand
// hours), and Adaptive adopts the cheapest permutation.
#pragma once

#include <string>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "core/adaptive/history_stats.hpp"
#include "core/policy.hpp"

namespace redspot {

/// One evaluated permutation.
struct PermutationEstimate {
  Money bid;
  std::vector<std::size_t> zones;
  PolicyKind policy = PolicyKind::kPeriodic;

  double progress_rate = 0.0;    ///< r, in [0, 1]
  double cost_rate = 0.0;        ///< c, dollars per wall-hour on spot
  Duration spot_seconds = 0;     ///< predicted time on spot
  Duration on_demand_seconds = 0;
  Money predicted_cost;          ///< total predicted remaining cost

  std::string str() const;
};

/// Inputs that do not come from the history window.
struct EstimatorInputs {
  Duration remaining_compute = 0;  ///< C_r = C - P
  Duration remaining_time = 0;     ///< T_r = deadline - now
  Duration checkpoint_cost = 300;  ///< t_c
  Duration restart_cost = 300;     ///< t_r
  Duration mean_queue_delay = 300; ///< recovery penalty per outage
  Money on_demand_rate = Money::dollars(2.40);
  /// Spot price of each zone right now, dollars. When non-empty, the first
  /// predicted hour of each selected zone is priced at its current price
  /// (hour-start pricing locks it) instead of the historical mean — this is
  /// what lets Adaptive walk away from a zone that just entered an
  /// expensive regime.
  std::vector<double> current_prices;
};

/// Evaluates one permutation against the history snapshot.
PermutationEstimate estimate_permutation(const HistoryStats& hist,
                                         std::size_t bid_idx,
                                         const std::vector<std::size_t>& zones,
                                         PolicyKind policy,
                                         const EstimatorInputs& in);

/// Evaluates every permutation of (bid grid) x (non-empty zone subsets up
/// to max_zones) x (policies) and returns them sorted by predicted cost
/// ascending (ties: fewer zones, then lower bid).
std::vector<PermutationEstimate> evaluate_permutations(
    const HistoryStats& hist, std::size_t max_zones,
    const std::vector<PolicyKind>& policies, const EstimatorInputs& in);

}  // namespace redspot
