#include "core/adaptive/adaptive_runner.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

std::vector<Money> paper_bid_grid() {
  std::vector<Money> grid;
  for (Money b = Money::cents(27); b <= Money::dollars(3.07);
       b += Money::cents(20)) {
    grid.push_back(b);
  }
  return grid;
}

AdaptiveStrategy::AdaptiveStrategy() : AdaptiveStrategy(Options{}) {}

AdaptiveStrategy::AdaptiveStrategy(Options options)
    : options_(std::move(options)) {
  REDSPOT_CHECK(!options_.bid_grid.empty());
  REDSPOT_CHECK(!options_.candidate_policies.empty());
  for (PolicyKind kind : options_.candidate_policies) {
    REDSPOT_CHECK_MSG(kind == PolicyKind::kPeriodic ||
                          kind == PolicyKind::kMarkovDaly,
                      "Adaptive candidates are Periodic and Markov-Daly");
  }
  periodic_ = make_policy(PolicyKind::kPeriodic);
  markov_daly_ = make_policy(PolicyKind::kMarkovDaly);
}

namespace {

EstimatorInputs make_inputs(const EngineView& view,
                            Duration mean_queue_delay) {
  const Experiment& exp = view.experiment();
  EstimatorInputs in;
  in.remaining_compute = exp.app.total_compute - view.leading_progress();
  in.remaining_time = exp.deadline_time() - view.now();
  in.checkpoint_cost = exp.costs.checkpoint;
  in.restart_cost = exp.costs.restart;
  in.mean_queue_delay = mean_queue_delay;
  in.on_demand_rate = view.market().on_demand_rate();
  in.current_prices.reserve(view.market().num_zones());
  for (std::size_t z = 0; z < view.market().num_zones(); ++z)
    in.current_prices.push_back(view.price(z).to_double());
  return in;
}

}  // namespace

const HistoryStats& AdaptiveStrategy::current_stats(const EngineView& view) {
  const Experiment& exp = view.experiment();
  const SimTime from = view.now() - exp.history_span;
  if (!hist_) {
    hist_.emplace(view.market().traces(), from, view.now(),
                  options_.bid_grid);
  } else {
    hist_->advance(view.market().traces(), from, view.now());
  }
  return *hist_;
}

PermutationEstimate AdaptiveStrategy::choose(const EngineView& view) {
  const HistoryStats& hist = current_stats(view);
  const EstimatorInputs in = make_inputs(view, options_.mean_queue_delay);
  std::vector<PermutationEstimate> ranked = evaluate_permutations(
      hist, options_.max_zones, options_.candidate_policies, in);
  REDSPOT_CHECK(!ranked.empty());
  return ranked.front();
}

EngineConfig AdaptiveStrategy::to_config(
    const PermutationEstimate& e) const {
  Policy* policy = e.policy == PolicyKind::kPeriodic ? periodic_.get()
                                                     : markov_daly_.get();
  return EngineConfig{e.bid, e.zones, policy};
}

EngineConfig AdaptiveStrategy::initial(const EngineView& view) {
  choice_ = choose(view);
  return to_config(*choice_);
}

std::optional<EngineConfig> AdaptiveStrategy::reconsider(
    const EngineView& view, DecisionPoint point) {
  (void)point;
  PermutationEstimate best = choose(view);
  REDSPOT_CHECK(choice_.has_value());
  const bool same_permutation = best.bid == choice_->bid &&
                                best.zones == choice_->zones &&
                                best.policy == choice_->policy;
  if (same_permutation) {
    choice_ = best;  // refresh the prediction
    return std::nullopt;
  }
  // Hysteresis: re-estimate the incumbent against the same window — the
  // stats choose() just slid to now() — and only move when the challenger
  // is clearly cheaper.
  const HistoryStats& hist = *hist_;
  const EstimatorInputs in = make_inputs(view, options_.mean_queue_delay);

  std::size_t incumbent_bid_idx = options_.bid_grid.size();
  for (std::size_t b = 0; b < options_.bid_grid.size(); ++b) {
    if (options_.bid_grid[b] == choice_->bid) {
      incumbent_bid_idx = b;
      break;
    }
  }
  REDSPOT_CHECK(incumbent_bid_idx < options_.bid_grid.size());
  const PermutationEstimate incumbent = estimate_permutation(
      hist, incumbent_bid_idx, choice_->zones, choice_->policy, in);

  double challenger_cost = best.predicted_cost.to_double();
  if (options_.charge_switch_penalty) {
    const Experiment& exp = view.experiment();
    const Duration lost = exp.costs.checkpoint + exp.costs.restart +
                          options_.mean_queue_delay;
    challenger_cost += in.on_demand_rate.to_double() *
                       static_cast<double>(lost) /
                       static_cast<double>(kHour);
  }
  const double threshold =
      incumbent.predicted_cost.to_double() * options_.switch_ratio;
  if (challenger_cost >= threshold) {
    return std::nullopt;  // not clearly better: keep the incumbent
  }
  choice_ = best;
  return to_config(best);
}

}  // namespace redspot
