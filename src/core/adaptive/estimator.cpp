#include "core/adaptive/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ckpt/daly.hpp"
#include "common/check.hpp"

namespace redspot {

namespace {

/// Policy-dependent checkpoint interval for the prediction.
Duration predicted_interval(const HistoryStats& hist, std::size_t bid_idx,
                            const std::vector<std::size_t>& zones,
                            PolicyKind policy, Duration checkpoint_cost) {
  switch (policy) {
    case PolicyKind::kPeriodic:
      return kHour - checkpoint_cost;
    case PolicyKind::kMarkovDaly: {
      // Combined expected up-time ~ sum of empirical mean up-spells
      // (Section 4.2's independence argument), fed to Daly's equation.
      double combined = 0.0;
      for (std::size_t z : zones)
        combined += hist.stats(z, bid_idx).mean_up_spell;
      if (combined < 1.0) return kHour - checkpoint_cost;
      return daly_interval(checkpoint_cost,
                           static_cast<Duration>(combined));
    }
    case PolicyKind::kRisingEdge:
    case PolicyKind::kThreshold:
    case PolicyKind::kRandomizedBid:
    case PolicyKind::kIndexTrack:
      // Reactive policies checkpoint roughly once per price movement;
      // approximate with the per-zone interruption spacing.
      return kHour - checkpoint_cost;
  }
  return kHour - checkpoint_cost;
}

}  // namespace

std::string PermutationEstimate::str() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "bid=%s N=%zu policy=%s r=%.3f c=%.3f/h cost=%s", bid
                    .str()
                    .c_str(),
                zones.size(), to_string(policy).c_str(), progress_rate,
                cost_rate, predicted_cost.str().c_str());
  return buf;
}

PermutationEstimate estimate_permutation(
    const HistoryStats& hist, std::size_t bid_idx,
    const std::vector<std::size_t>& zones, PolicyKind policy,
    const EstimatorInputs& in) {
  REDSPOT_CHECK(!zones.empty());
  REDSPOT_CHECK(in.remaining_time >= 0);

  PermutationEstimate e;
  e.bid = hist.bid_grid()[bid_idx];
  e.zones = zones;
  e.policy = policy;

  const Duration interval =
      predicted_interval(hist, bid_idx, zones, policy, in.checkpoint_cost);
  const double efficiency =
      static_cast<double>(interval) /
      static_cast<double>(interval + in.checkpoint_cost);

  const double avail = hist.combined_availability(zones, bid_idx);
  const double outage_rate = hist.full_outage_rate(zones, bid_idx);
  // Expected loss per full outage: half a checkpoint interval of rolled-
  // back work plus the restart and re-acquisition latency.
  const double loss_per_outage =
      static_cast<double>(interval) / 2.0 +
      static_cast<double>(in.restart_cost + in.mean_queue_delay);
  const double raw_rate =
      avail * efficiency -
      outage_rate * loss_per_outage / static_cast<double>(kHour);
  e.progress_rate = std::clamp(raw_rate, 0.0, 1.0);

  // Long-run dollars per wall hour, and the rate the first hour would lock
  // in given current prices (zones currently out-of-bid cost nothing until
  // they come back).
  double cost_rate = 0.0;
  double first_hour_rate = 0.0;
  const double bid_dollars = e.bid.to_double() + 1e-9;
  for (std::size_t z : zones) {
    const ZoneBidStats& st = hist.stats(z, bid_idx);
    cost_rate += st.availability * st.mean_paid_price;
    if (z < in.current_prices.size() && in.current_prices[z] <= bid_dollars) {
      first_hour_rate += in.current_prices[z];
    } else if (in.current_prices.empty()) {
      first_hour_rate += st.availability * st.mean_paid_price;
    }
  }
  e.cost_rate = cost_rate;

  // Inequality (1): can the spot market alone deliver C_r within T_r?
  const double cr = static_cast<double>(in.remaining_compute);
  const Duration reserve = in.checkpoint_cost + in.restart_cost;
  const double tr_avail =
      static_cast<double>(std::max<Duration>(0, in.remaining_time - reserve));
  const double r = e.progress_rate;

  double spot_s = 0.0;
  double od_s = 0.0;
  if (r > 1e-6 && r * tr_avail >= cr) {
    spot_s = cr / r;
  } else {
    // Split: run on spot until the deadline forces the switch, then finish
    // on-demand: r*t_spot + (T_r - t_spot - reserve) = C_r.
    if (r < 1.0 - 1e-9) {
      spot_s = (tr_avail - cr) / (1.0 - r);
      spot_s = std::clamp(spot_s, 0.0, tr_avail);
    }
    const double od_compute = std::max(0.0, cr - r * spot_s);
    od_s = od_compute + static_cast<double>(in.restart_cost);
  }
  e.spot_seconds = static_cast<Duration>(std::llround(spot_s));
  e.on_demand_seconds = static_cast<Duration>(std::llround(od_s));

  const double first_hour_s =
      std::min(spot_s, static_cast<double>(kHour));
  const double later_s = spot_s - first_hour_s;
  Money cost = Money::dollars(
      (first_hour_rate * first_hour_s + cost_rate * later_s) /
      static_cast<double>(kHour));
  if (od_s > 0.0)
    cost += in.on_demand_rate * started_hours(e.on_demand_seconds);
  e.predicted_cost = cost;
  return e;
}

std::vector<PermutationEstimate> evaluate_permutations(
    const HistoryStats& hist, std::size_t max_zones,
    const std::vector<PolicyKind>& policies, const EstimatorInputs& in) {
  const std::size_t z_total = std::min(hist.num_zones(), max_zones);
  REDSPOT_CHECK(z_total > 0);
  // All non-empty subsets of the first z_total zones.
  std::vector<std::vector<std::size_t>> subsets;
  const std::size_t limit = std::size_t{1} << z_total;
  for (std::size_t mask = 1; mask < limit; ++mask) {
    std::vector<std::size_t> subset;
    for (std::size_t z = 0; z < z_total; ++z)
      if (mask & (std::size_t{1} << z)) subset.push_back(z);
    subsets.push_back(std::move(subset));
  }

  std::vector<PermutationEstimate> all;
  all.reserve(hist.bid_grid().size() * subsets.size() * policies.size());
  for (std::size_t b = 0; b < hist.bid_grid().size(); ++b) {
    for (const auto& subset : subsets) {
      for (PolicyKind policy : policies) {
        all.push_back(estimate_permutation(hist, b, subset, policy, in));
      }
    }
  }
  std::sort(all.begin(), all.end(),
            [](const PermutationEstimate& a, const PermutationEstimate& b) {
              if (a.predicted_cost != b.predicted_cost)
                return a.predicted_cost < b.predicted_cost;
              if (a.zones.size() != b.zones.size())
                return a.zones.size() < b.zones.size();
              return a.bid < b.bid;
            });
  return all;
}

}  // namespace redspot
