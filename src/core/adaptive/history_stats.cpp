#include "core/adaptive/history_stats.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace redspot {

HistoryStats::HistoryStats(const ZoneTraceSet& traces, SimTime from,
                           SimTime to, std::vector<Money> bid_grid)
    : bid_grid_(std::move(bid_grid)) {
  REDSPOT_CHECK(!bid_grid_.empty());
  // Ascending threshold order (stable for duplicate bids): each sample is
  // "up" for the contiguous sorted-bid suffix [cut_of(s), end).
  order_.resize(bid_grid_.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::stable_sort(order_.begin(), order_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return bid_grid_[a] < bid_grid_[b];
                   });
  sorted_thr_.resize(bid_grid_.size());
  for (std::size_t k = 0; k < order_.size(); ++k) {
    // Tolerate the micro-dollar -> double conversion (same threshold the
    // historical per-bid scan used).
    sorted_thr_[k] = bid_grid_[order_[k]].to_double() + 1e-9;
  }
  rebuild(traces, from, to);
}

std::size_t HistoryStats::cut_of(double s) const {
  return static_cast<std::size_t>(std::distance(
      sorted_thr_.begin(),
      std::lower_bound(sorted_thr_.begin(), sorted_thr_.end(), s)));
}

double HistoryStats::hours() const {
  return static_cast<double>(window_length_) / static_cast<double>(kHour);
}

void HistoryStats::rebuild(const ZoneTraceSet& traces, SimTime from,
                           SimTime to) {
  step_ = traces.step();
  const PriceSeries& s0 = traces.zone(0);
  from = std::max(from, s0.start());
  to = std::min(to, s0.end());
  REDSPOT_CHECK_MSG(from < to, "empty window request");
  const std::size_t lo = s0.index_of(from);
  const std::size_t hi =
      static_cast<std::size_t>((to - s0.start() + step_ - 1) / step_);

  base_.resize(traces.num_zones());
  for (std::size_t z = 0; z < traces.num_zones(); ++z)
    base_[z] = traces.zone(z).samples().data();
  series_start_ = s0.start();
  series_size_ = s0.size();
  abs_lo_ = lo;
  n_ = hi - lo;
  window_length_ = static_cast<Duration>(n_) * step_;

  const std::size_t nbids = bid_grid_.size();
  counters_.assign(base_.size(), std::vector<BidCounters>(nbids));
  first_cut_.assign(base_.size(), 0);
  for (std::size_t z = 0; z < base_.size(); ++z) {
    std::vector<BidCounters>& row = counters_[z];
    std::size_t prev_cut = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      const Money m = base_[z][abs_lo_ + i];
      const std::size_t cut = cut_of(m.to_double());
      for (std::size_t k = cut; k < nbids; ++k) {
        ++row[k].up;
        row[k].paid_micros += m.micros();
      }
      if (i == 0) {
        first_cut_[z] = cut;
      } else if (cut < prev_cut) {  // down -> up for bids in [cut, prev_cut)
        for (std::size_t k = cut; k < prev_cut; ++k) ++row[k].starts;
      } else if (cut > prev_cut) {  // up -> down for bids in [prev_cut, cut)
        for (std::size_t k = prev_cut; k < cut; ++k) ++row[k].interrupts;
      }
      prev_cut = cut;
    }
  }
  refresh_stats();
  combined_memo_.clear();
  ++full_rebuilds_;
}

bool HistoryStats::try_advance(const ZoneTraceSet& traces, SimTime from,
                               SimTime to) {
  if (traces.num_zones() != base_.size()) return false;
  if (traces.step() != step_) return false;
  const PriceSeries& s0 = traces.zone(0);
  // A live trace grows at the right edge; as long as the storage base is
  // unchanged (pre-reserved growth) the counters slide over it exactly as
  // over a static trace. Shrinkage means different storage: rebuild.
  if (s0.start() != series_start_ || s0.size() < series_size_) return false;
  for (std::size_t z = 0; z < base_.size(); ++z)
    if (traces.zone(z).samples().data() != base_[z]) return false;

  from = std::max(from, s0.start());
  to = std::min(to, s0.end());
  if (from >= to) return false;  // let rebuild() raise the usual error
  const std::size_t lo = s0.index_of(from);
  const std::size_t hi =
      static_cast<std::size_t>((to - s0.start() + step_ - 1) / step_);
  const std::size_t old_hi = abs_lo_ + n_;
  if (lo < abs_lo_ || hi < old_hi) return false;  // backward move
  if (lo >= old_hi) return false;                 // no overlap
  if (lo == abs_lo_ && hi == old_hi) {  // same window: keep memo
    series_size_ = s0.size();
    return true;
  }

  const std::size_t nbids = bid_grid_.size();
  for (std::size_t z = 0; z < base_.size(); ++z) {
    std::vector<BidCounters>& row = counters_[z];
    const Money* s = base_[z];
    // Evict [abs_lo_, lo): the evicted samples are still readable from the
    // borrowed trace storage.
    for (std::size_t i = abs_lo_; i < lo; ++i) {
      const std::size_t cut = cut_of(s[i].to_double());
      for (std::size_t k = cut; k < nbids; ++k) {
        --row[k].up;
        row[k].paid_micros -= s[i].micros();
      }
      const std::size_t next_cut = cut_of(s[i + 1].to_double());
      if (next_cut < cut) {
        for (std::size_t k = next_cut; k < cut; ++k) --row[k].starts;
      } else if (next_cut > cut) {
        for (std::size_t k = cut; k < next_cut; ++k) --row[k].interrupts;
      }
    }
    first_cut_[z] = cut_of(s[lo].to_double());
    // Append [old_hi, hi).
    for (std::size_t i = old_hi; i < hi; ++i) {
      const std::size_t prev_cut = cut_of(s[i - 1].to_double());
      const std::size_t cut = cut_of(s[i].to_double());
      for (std::size_t k = cut; k < nbids; ++k) {
        ++row[k].up;
        row[k].paid_micros += s[i].micros();
      }
      if (cut < prev_cut) {
        for (std::size_t k = cut; k < prev_cut; ++k) ++row[k].starts;
      } else if (cut > prev_cut) {
        for (std::size_t k = prev_cut; k < cut; ++k) ++row[k].interrupts;
      }
    }
  }
  abs_lo_ = lo;
  n_ = hi - lo;
  series_size_ = s0.size();
  window_length_ = static_cast<Duration>(n_) * step_;
  refresh_stats();
  combined_memo_.clear();
  ++incremental_advances_;
  return true;
}

void HistoryStats::advance(const ZoneTraceSet& traces, SimTime from,
                           SimTime to) {
  if (!try_advance(traces, from, to)) rebuild(traces, from, to);
}

void HistoryStats::refresh_stats() {
  const std::size_t nbids = bid_grid_.size();
  const double h = hours();
  stats_.assign(base_.size(), std::vector<ZoneBidStats>(nbids));
  for (std::size_t z = 0; z < base_.size(); ++z) {
    for (std::size_t k = 0; k < nbids; ++k) {
      const BidCounters& c = counters_[z][k];
      const std::int64_t spells =
          c.starts + (k >= first_cut_[z] ? 1 : 0);
      ZoneBidStats& st = stats_[z][order_[k]];
      st.availability =
          static_cast<double>(c.up) / static_cast<double>(n_);
      st.mean_paid_price =
          c.up > 0 ? (static_cast<double>(c.paid_micros) / 1e6) /
                         static_cast<double>(c.up)
                   : 0.0;
      st.interruptions_per_hour =
          h > 0 ? static_cast<double>(c.interrupts) / h : 0.0;
      st.mean_up_spell =
          spells > 0 ? static_cast<double>(c.up) *
                           static_cast<double>(step_) /
                           static_cast<double>(spells)
                     : 0.0;
    }
  }
}

const ZoneBidStats& HistoryStats::stats(std::size_t zone,
                                        std::size_t bid_idx) const {
  REDSPOT_CHECK(zone < stats_.size());
  REDSPOT_CHECK(bid_idx < bid_grid_.size());
  return stats_[zone][bid_idx];
}

void HistoryStats::fill_combined(std::uint64_t mask,
                                 const std::vector<std::size_t>& zones,
                                 CombinedEntry& out) const {
  const std::size_t nbids = bid_grid_.size();
  out.mask = mask;
  std::vector<std::int64_t> up(nbids, 0);
  std::vector<std::int64_t> outages(nbids, 0);
  std::size_t prev_cut = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    // Any zone up at bid B <=> the cheapest subset zone is within B.
    double m = sample_dollars(zones[0], abs_lo_ + i);
    for (std::size_t j = 1; j < zones.size(); ++j)
      m = std::min(m, sample_dollars(zones[j], abs_lo_ + i));
    const std::size_t cut = cut_of(m);
    for (std::size_t k = cut; k < nbids; ++k) ++up[k];
    if (i > 0 && cut > prev_cut) {  // any-up -> none-up
      for (std::size_t k = prev_cut; k < cut; ++k) ++outages[k];
    }
    prev_cut = cut;
  }
  const double h = hours();
  out.availability.resize(nbids);
  out.outage_rate.resize(nbids);
  for (std::size_t k = 0; k < nbids; ++k) {
    out.availability[order_[k]] =
        static_cast<double>(up[k]) / static_cast<double>(n_);
    out.outage_rate[order_[k]] =
        h > 0 ? static_cast<double>(outages[k]) / h : 0.0;
  }
}

const HistoryStats::CombinedEntry& HistoryStats::combined_entry(
    const std::vector<std::size_t>& zones) const {
  REDSPOT_CHECK(!zones.empty());
  std::uint64_t mask = 0;
  for (std::size_t z : zones) {
    REDSPOT_CHECK(z < base_.size());
    if (z < 64) mask |= std::uint64_t{1} << z;
  }
  // Memoize per mask (a duplicate or reordered zone list is the same
  // subset). Zones beyond 63 would alias masks; fall back to a fresh
  // un-cached entry in that unlikely case.
  const bool cacheable =
      std::all_of(zones.begin(), zones.end(),
                  [](std::size_t z) { return z < 64; });
  if (cacheable) {
    for (const CombinedEntry& e : combined_memo_)
      if (e.mask == mask) return e;
  }
  combined_memo_.emplace_back();
  fill_combined(cacheable ? mask : 0, zones, combined_memo_.back());
  if (!cacheable) combined_memo_.back().mask = ~std::uint64_t{0};
  return combined_memo_.back();
}

double HistoryStats::combined_availability(
    const std::vector<std::size_t>& zones, std::size_t bid_idx) const {
  REDSPOT_CHECK(bid_idx < bid_grid_.size());
  return combined_entry(zones).availability[bid_idx];
}

double HistoryStats::full_outage_rate(const std::vector<std::size_t>& zones,
                                      std::size_t bid_idx) const {
  REDSPOT_CHECK(bid_idx < bid_grid_.size());
  return combined_entry(zones).outage_rate[bid_idx];
}

}  // namespace redspot
