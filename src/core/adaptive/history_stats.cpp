#include "core/adaptive/history_stats.hpp"

#include "common/check.hpp"

namespace redspot {

HistoryStats::HistoryStats(const ZoneTraceSet& traces, SimTime from,
                           SimTime to, std::vector<Money> bid_grid)
    : bid_grid_(std::move(bid_grid)), step_(traces.step()) {
  REDSPOT_CHECK(!bid_grid_.empty());
  const ZoneTraceSet window = traces.window(from, to);
  window_length_ =
      static_cast<Duration>(window.zone(0).size()) * step_;
  samples_.reserve(window.num_zones());
  for (std::size_t z = 0; z < window.num_zones(); ++z)
    samples_.push_back(window.zone(z).to_doubles());

  const double hours =
      static_cast<double>(window_length_) / static_cast<double>(kHour);
  stats_.resize(samples_.size());
  for (std::size_t z = 0; z < samples_.size(); ++z) {
    stats_[z].resize(bid_grid_.size());
    const std::vector<double>& s = samples_[z];
    for (std::size_t b = 0; b < bid_grid_.size(); ++b) {
      const double bid = bid_grid_[b].to_double() + 1e-9;
      std::size_t up = 0;
      double paid_sum = 0.0;
      std::size_t interruptions = 0;
      std::size_t spells = 0;
      bool prev_up = false;
      for (std::size_t i = 0; i < s.size(); ++i) {
        const bool is_up = s[i] <= bid;
        if (is_up) {
          ++up;
          paid_sum += s[i];
          if (!prev_up) ++spells;
        } else if (prev_up) {
          ++interruptions;
        }
        prev_up = is_up;
      }
      ZoneBidStats& st = stats_[z][b];
      st.availability = s.empty()
                            ? 0.0
                            : static_cast<double>(up) /
                                  static_cast<double>(s.size());
      st.mean_paid_price = up > 0 ? paid_sum / static_cast<double>(up) : 0.0;
      st.interruptions_per_hour =
          hours > 0 ? static_cast<double>(interruptions) / hours : 0.0;
      st.mean_up_spell =
          spells > 0 ? static_cast<double>(up) * static_cast<double>(step_) /
                           static_cast<double>(spells)
                     : 0.0;
    }
  }
}

const ZoneBidStats& HistoryStats::stats(std::size_t zone,
                                        std::size_t bid_idx) const {
  REDSPOT_CHECK(zone < stats_.size());
  REDSPOT_CHECK(bid_idx < bid_grid_.size());
  return stats_[zone][bid_idx];
}

double HistoryStats::combined_availability(
    const std::vector<std::size_t>& zones, std::size_t bid_idx) const {
  REDSPOT_CHECK(!zones.empty());
  REDSPOT_CHECK(bid_idx < bid_grid_.size());
  const double bid = bid_grid_[bid_idx].to_double() + 1e-9;
  const std::size_t n = samples_[0].size();
  std::size_t up = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t z : zones) {
      REDSPOT_CHECK(z < samples_.size());
      if (samples_[z][i] <= bid) {
        ++up;
        break;
      }
    }
  }
  return n > 0 ? static_cast<double>(up) / static_cast<double>(n) : 0.0;
}

double HistoryStats::full_outage_rate(const std::vector<std::size_t>& zones,
                                      std::size_t bid_idx) const {
  REDSPOT_CHECK(!zones.empty());
  REDSPOT_CHECK(bid_idx < bid_grid_.size());
  const double bid = bid_grid_[bid_idx].to_double() + 1e-9;
  const std::size_t n = samples_[0].size();
  std::size_t outages = 0;
  bool prev_any = false;
  for (std::size_t i = 0; i < n; ++i) {
    bool any = false;
    for (std::size_t z : zones) {
      if (samples_[z][i] <= bid) {
        any = true;
        break;
      }
    }
    if (prev_any && !any) ++outages;
    prev_any = any;
  }
  const double hours =
      static_cast<double>(window_length_) / static_cast<double>(kHour);
  return hours > 0 ? static_cast<double>(outages) / hours : 0.0;
}

}  // namespace redspot
