// Trailing-history statistics for the Adaptive policy (Section 7.1).
//
// At each decision point Adaptive "simulates cost and computation for each
// permutation of B, N, and policy" over the price history. HistoryStats is
// that replay's engine room: one snapshot of the trailing window, from
// which availability, expected paid price, interruption rates, full-outage
// rates and mean up-spell lengths can be read for any (bid, zone-subset)
// without re-touching the trace.
#pragma once

#include <cstddef>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "trace/zone_traces.hpp"

namespace redspot {

/// Per (zone, bid) statistics over the window.
struct ZoneBidStats {
  double availability = 0.0;     ///< fraction of samples with S <= B
  double mean_paid_price = 0.0;  ///< E[S | S <= B] in dollars (0 if never up)
  double interruptions_per_hour = 0.0;  ///< up->down transitions per hour
  double mean_up_spell = 0.0;    ///< mean length of an up-run, seconds
};

class HistoryStats {
 public:
  /// Snapshots [from, to) of `traces` and precomputes per-zone stats for
  /// every bid in `bid_grid`.
  HistoryStats(const ZoneTraceSet& traces, SimTime from, SimTime to,
               std::vector<Money> bid_grid);

  std::size_t num_zones() const { return samples_.size(); }
  const std::vector<Money>& bid_grid() const { return bid_grid_; }
  Duration window_length() const { return window_length_; }

  const ZoneBidStats& stats(std::size_t zone, std::size_t bid_idx) const;

  /// Fraction of the window during which at least one zone of `zones` has
  /// S <= bid_grid()[bid_idx].
  double combined_availability(const std::vector<std::size_t>& zones,
                               std::size_t bid_idx) const;

  /// Any-up -> none-up transitions per hour for the subset (the events
  /// that force a rollback to the previous checkpoint).
  double full_outage_rate(const std::vector<std::size_t>& zones,
                          std::size_t bid_idx) const;

 private:
  std::vector<std::vector<double>> samples_;  ///< [zone][step], dollars
  std::vector<Money> bid_grid_;
  Duration step_;
  Duration window_length_;
  std::vector<std::vector<ZoneBidStats>> stats_;  ///< [zone][bid]
};

}  // namespace redspot
