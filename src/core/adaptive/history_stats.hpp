// Trailing-history statistics for the Adaptive policy (Section 7.1).
//
// At each decision point Adaptive "simulates cost and computation for each
// permutation of B, N, and policy" over the price history. HistoryStats is
// that replay's engine room: one snapshot of the trailing window, from
// which availability, expected paid price, interruption rates, full-outage
// rates and mean up-spell lengths can be read for any (bid, zone-subset)
// without re-touching the trace.
//
// Internals (DESIGN.md §10): all per-(zone, bid) aggregates are held as
// exact integer counters — up-sample counts, paid micro-dollar sums,
// interior spell-start / interruption pair counts — filled by ONE fused
// pass per zone over the window. Because the bid thresholds are processed
// in ascending order, each sample contributes to a contiguous bid range
// [cut, end) found by binary search, so one pass covers the whole grid.
// The same counters slide under advance(): evicted and appended samples
// adjust them exactly, and integer arithmetic makes the slid state equal
// the from-scratch state bit-for-bit (property-tested). Subset statistics
// (combined availability / full-outage rate) are memoized per zone
// bitmask and invalidated whenever the window moves.
//
// Lifetime: HistoryStats BORROWS the trace storage passed to the
// constructor and to advance() — the ZoneTraceSet must outlive it (true
// for the engine's market traces, which live for the whole run).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "trace/zone_traces.hpp"

namespace redspot {

/// Per (zone, bid) statistics over the window.
struct ZoneBidStats {
  double availability = 0.0;     ///< fraction of samples with S <= B
  double mean_paid_price = 0.0;  ///< E[S | S <= B] in dollars (0 if never up)
  double interruptions_per_hour = 0.0;  ///< up->down transitions per hour
  double mean_up_spell = 0.0;    ///< mean length of an up-run, seconds
};

class HistoryStats {
 public:
  /// Snapshots [from, to) of `traces` and precomputes per-zone stats for
  /// every bid in `bid_grid`. Borrows `traces` (see file comment).
  HistoryStats(const ZoneTraceSet& traces, SimTime from, SimTime to,
               std::vector<Money> bid_grid);

  /// Slides the window to [from, to). When `traces` is the same storage
  /// and the window moved forward with overlap, the counters are adjusted
  /// incrementally in O(samples moved); otherwise everything is rebuilt.
  /// Either way the resulting state equals a fresh construction exactly.
  void advance(const ZoneTraceSet& traces, SimTime from, SimTime to);

  std::size_t num_zones() const { return base_.size(); }
  const std::vector<Money>& bid_grid() const { return bid_grid_; }
  Duration window_length() const { return window_length_; }

  const ZoneBidStats& stats(std::size_t zone, std::size_t bid_idx) const;

  /// Fraction of the window during which at least one zone of `zones` has
  /// S <= bid_grid()[bid_idx].
  double combined_availability(const std::vector<std::size_t>& zones,
                               std::size_t bid_idx) const;

  /// Any-up -> none-up transitions per hour for the subset (the events
  /// that force a rollback to the previous checkpoint).
  double full_outage_rate(const std::vector<std::size_t>& zones,
                          std::size_t bid_idx) const;

  // Introspection for tests and benchmarks.
  std::uint64_t full_rebuilds() const { return full_rebuilds_; }
  std::uint64_t incremental_advances() const { return incremental_advances_; }

 private:
  /// Exact window aggregates for one (zone, sorted-bid) pair.
  struct BidCounters {
    std::int64_t up = 0;           ///< samples with S <= B
    std::int64_t paid_micros = 0;  ///< sum of S over up samples, micro-$
    std::int64_t starts = 0;       ///< interior down->up pairs
    std::int64_t interrupts = 0;   ///< interior up->down pairs
  };
  /// Memoized subset statistics, per original bid index.
  struct CombinedEntry {
    std::uint64_t mask = 0;
    std::vector<double> availability;
    std::vector<double> outage_rate;
  };

  void rebuild(const ZoneTraceSet& traces, SimTime from, SimTime to);
  bool try_advance(const ZoneTraceSet& traces, SimTime from, SimTime to);
  void refresh_stats();
  /// First sorted-bid position whose threshold admits `s` (S <= B).
  std::size_t cut_of(double s) const;
  double sample_dollars(std::size_t zone, std::size_t abs_i) const {
    return base_[zone][abs_i].to_double();
  }
  void fill_combined(std::uint64_t mask, const std::vector<std::size_t>& zones,
                     CombinedEntry& out) const;
  const CombinedEntry& combined_entry(
      const std::vector<std::size_t>& zones) const;
  double hours() const;

  std::vector<Money> bid_grid_;
  std::vector<double> sorted_thr_;   ///< bid + 1e-9, ascending
  std::vector<std::size_t> order_;   ///< sorted position -> original index
  Duration step_ = kPriceStep;
  Duration window_length_ = 0;

  // Identity of the borrowed window: per-zone storage base plus the
  // absolute sample range [abs_lo_, abs_lo_ + n_).
  std::vector<const Money*> base_;
  SimTime series_start_ = 0;
  std::size_t series_size_ = 0;
  std::size_t abs_lo_ = 0;
  std::size_t n_ = 0;

  std::vector<std::vector<BidCounters>> counters_;  ///< [zone][sorted bid]
  std::vector<std::size_t> first_cut_;              ///< per zone
  std::vector<std::vector<ZoneBidStats>> stats_;    ///< [zone][original bid]

  /// Lazily filled per subset mask; cleared whenever the window moves.
  /// Mutable: HistoryStats is a per-strategy, single-threaded object.
  mutable std::vector<CombinedEntry> combined_memo_;

  std::uint64_t full_rebuilds_ = 0;
  std::uint64_t incremental_advances_ = 0;
};

}  // namespace redspot
