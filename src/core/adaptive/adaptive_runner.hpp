// The Adaptive policy (Section 7).
//
// Adaptive owns one instance of each candidate fixed policy and, at every
// engine decision point, re-evaluates all permutations of
//   bid B in {$0.27 .. $3.07 step $0.20} x N in {1, 2, 3} x
//   policy in {Periodic, Markov-Daly}
// against the trailing price history (bootstrapped from the pre-experiment
// history at start). It adopts the permutation with the least predicted
// remaining cost, with a small hysteresis so that marginal differences do
// not trigger disruptive reconfigurations; the engine enforces the paper's
// adoption rules (terminated zone / hour boundary / non-disruptive).
//
// Edge and Threshold are excluded as candidates (end of Section 6), as is
// Large-bid, which has no cost bound (Section 7.2.2).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/adaptive/estimator.hpp"
#include "core/policy.hpp"
#include "core/strategy.hpp"

namespace redspot {

/// The paper's bid grid: $0.27 to $3.07 in steps of $0.20 (Section 5).
std::vector<Money> paper_bid_grid();

class AdaptiveStrategy final : public Strategy {
 public:
  struct Options {
    std::vector<Money> bid_grid = paper_bid_grid();
    std::vector<PolicyKind> candidate_policies = {PolicyKind::kPeriodic,
                                                  PolicyKind::kMarkovDaly};
    std::size_t max_zones = 3;
    /// Adopt a different permutation only when its predicted cost is below
    /// this fraction of the incumbent's prediction (hysteresis).
    double switch_ratio = 0.93;
    Duration mean_queue_delay = 300;
    /// A disruptive switch (bid change) really costs: a protective
    /// checkpoint, instance termination, re-acquisition and restart. The
    /// challenger's prediction is charged that time at the on-demand rate
    /// so near-ties never trigger churn.
    bool charge_switch_penalty = true;
  };

  AdaptiveStrategy();  // default Options
  explicit AdaptiveStrategy(Options options);

  EngineConfig initial(const EngineView& view) override;
  std::optional<EngineConfig> reconsider(const EngineView& view,
                                         DecisionPoint point) override;
  bool dynamic() const override { return true; }

  /// The estimate backing the last decision (for tests/diagnostics).
  const std::optional<PermutationEstimate>& last_choice() const {
    return choice_;
  }

 private:
  PermutationEstimate choose(const EngineView& view);
  /// The trailing-window stats, slid (or rebuilt) to end at view.now().
  const HistoryStats& current_stats(const EngineView& view);
  EngineConfig to_config(const PermutationEstimate& e) const;

  Options options_;
  std::unique_ptr<Policy> periodic_;
  std::unique_ptr<Policy> markov_daly_;
  std::optional<PermutationEstimate> choice_;
  /// Persistent window stats, slid incrementally between decision points.
  /// Borrows the market's traces — valid because the market outlives the
  /// run, and advance() detects (and rebuilds on) a different market.
  std::optional<HistoryStats> hist_;
};

}  // namespace redspot
