#include "core/policy.hpp"

#include "common/check.hpp"
#include "core/policies/index_track.hpp"
#include "core/policies/markov_daly.hpp"
#include "core/policies/periodic.hpp"
#include "core/policies/randomized_bid.hpp"
#include "core/policies/rising_edge.hpp"
#include "core/policies/threshold.hpp"

namespace redspot {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPeriodic:
      return "periodic";
    case PolicyKind::kMarkovDaly:
      return "markov-daly";
    case PolicyKind::kRisingEdge:
      return "rising-edge";
    case PolicyKind::kThreshold:
      return "threshold";
    case PolicyKind::kRandomizedBid:
      return "randomized-bid";
    case PolicyKind::kIndexTrack:
      return "index-track";
  }
  return "?";
}

std::unique_ptr<Policy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPeriodic:
      return std::make_unique<PeriodicPolicy>();
    case PolicyKind::kMarkovDaly:
      return std::make_unique<MarkovDalyPolicy>();
    case PolicyKind::kRisingEdge:
      return std::make_unique<RisingEdgePolicy>();
    case PolicyKind::kThreshold:
      return std::make_unique<ThresholdPolicy>();
    case PolicyKind::kRandomizedBid:
      return std::make_unique<RandomizedBidPolicy>();
    case PolicyKind::kIndexTrack:
      return std::make_unique<IndexTrackPolicy>();
  }
  REDSPOT_CHECK_FAIL("unknown PolicyKind");
}

}  // namespace redspot
