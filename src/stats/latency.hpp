// Thread-safe latency tracking for the serve daemon and bench_serve.
//
// Wraps two P² streaming quantile estimators (stats/streaming.hpp) behind
// one mutex: pool threads record() nanosecond samples as they answer
// advise requests, and the stats line / benchmark reads p50/p99 without
// ever storing the samples. O(1) memory at any request volume.
#pragma once

#include <cstdint>
#include <mutex>

#include "stats/streaming.hpp"

namespace redspot {

class LatencyRecorder {
 public:
  LatencyRecorder() : p50_(0.50), p99_(0.99) {}

  void record(double nanos) {
    std::lock_guard lock(mutex_);
    ++count_;
    sum_ += nanos;
    p50_.add(nanos);
    p99_.add(nanos);
  }

  std::uint64_t count() const {
    std::lock_guard lock(mutex_);
    return count_;
  }

  /// Estimated median latency in ns; 0 before the first record().
  double p50_ns() const {
    std::lock_guard lock(mutex_);
    return count_ > 0 ? p50_.value() : 0.0;
  }

  /// Estimated 99th-percentile latency in ns; 0 before the first record().
  double p99_ns() const {
    std::lock_guard lock(mutex_);
    return count_ > 0 ? p99_.value() : 0.0;
  }

  double mean_ns() const {
    std::lock_guard lock(mutex_);
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

 private:
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  P2Quantile p50_;
  P2Quantile p99_;
};

}  // namespace redspot
