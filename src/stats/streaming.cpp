#include "stats/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/random.hpp"
#include "stats/descriptive.hpp"

namespace redspot {

P2Quantile::P2Quantile(double q) : q_(q) {
  REDSPOT_CHECK(q > 0.0 && q < 1.0);
}

void P2Quantile::init_markers() {
  // First five samples, sorted, become the markers.
  std::sort(h_, h_ + 5);
  for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
  want_[0] = 1;
  want_[1] = 1 + 2 * q_;
  want_[2] = 1 + 4 * q_;
  want_[3] = 3 + 2 * q_;
  want_[4] = 5;
  dwant_[0] = 0;
  dwant_[1] = q_ / 2;
  dwant_[2] = q_;
  dwant_[3] = (1 + q_) / 2;
  dwant_[4] = 1;
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    h_[n_++] = x;
    if (n_ == 5) init_markers();
    return;
  }

  // Locate the cell containing x and update the extreme markers.
  int k;
  if (x < h_[0]) {
    h_[0] = x;
    k = 0;
  } else if (x >= h_[4]) {
    h_[4] = std::max(h_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= h_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1;
  for (int i = 0; i < 5; ++i) want_[i] += dwant_[i];
  ++n_;

  // Adjust the three interior markers toward their desired positions with
  // the parabolic (P²) formula, falling back to linear when the parabola
  // would cross a neighbour.
  for (int i = 1; i <= 3; ++i) {
    const double d = want_[i] - pos_[i];
    if ((d >= 1 && pos_[i + 1] - pos_[i] > 1) ||
        (d <= -1 && pos_[i - 1] - pos_[i] < -1)) {
      const double s = d < 0 ? -1.0 : 1.0;
      const double hp = h_[i] +
                        s / (pos_[i + 1] - pos_[i - 1]) *
                            ((pos_[i] - pos_[i - 1] + s) *
                                 (h_[i + 1] - h_[i]) /
                                 (pos_[i + 1] - pos_[i]) +
                             (pos_[i + 1] - pos_[i] - s) *
                                 (h_[i] - h_[i - 1]) /
                                 (pos_[i] - pos_[i - 1]));
      if (h_[i - 1] < hp && hp < h_[i + 1]) {
        h_[i] = hp;
      } else {
        h_[i] = h_[i] + s * (h_[i + (d < 0 ? -1 : 1)] - h_[i]) /
                            (pos_[i + (d < 0 ? -1 : 1)] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  REDSPOT_CHECK(n_ > 0);
  if (n_ < 5) {
    double sorted[5];
    std::copy(h_, h_ + n_, sorted);
    std::sort(sorted, sorted + n_);
    return quantile_sorted({sorted, n_}, q_);
  }
  return h_[2];
}

double P2Quantile::quantile_at(double p) const {
  // Markers define a piecewise-linear inverse CDF: marker i sits at
  // cumulative fraction (pos_[i] - 1) / (n - 1).
  const double denom = static_cast<double>(n_ - 1);
  if (p <= 0.0) return h_[0];
  if (p >= 1.0) return h_[4];
  for (int i = 0; i < 4; ++i) {
    const double f0 = (pos_[i] - 1) / denom;
    const double f1 = (pos_[i + 1] - 1) / denom;
    if (p <= f1) {
      if (f1 <= f0) return h_[i + 1];
      const double t = (p - f0) / (f1 - f0);
      return h_[i] + t * (h_[i + 1] - h_[i]);
    }
  }
  return h_[4];
}

void P2Quantile::merge(const P2Quantile& other) {
  REDSPOT_CHECK(q_ == other.q_);
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  if (other.n_ < 5) {
    // Exact: replay the other side's buffered samples in arrival order.
    for (std::size_t i = 0; i < other.n_; ++i) add(other.h_[i]);
    return;
  }
  if (n_ < 5) {
    // Fold our buffer into a copy of the initialized side (arrival order).
    P2Quantile combined = other;
    for (std::size_t i = 0; i < n_; ++i) combined.add(h_[i]);
    *this = combined;
    return;
  }

  // Both initialized: rebuild markers from the count-weighted average of
  // the two inverse CDFs (the 1-Wasserstein barycenter of the two marker
  // sketches), evaluated at the five desired cumulative fractions.
  const double wa = static_cast<double>(n_);
  const double wb = static_cast<double>(other.n_);
  const double fracs[5] = {0.0, q_ / 2, q_, (1 + q_) / 2, 1.0};
  double combined_h[5];
  for (int i = 0; i < 5; ++i) {
    combined_h[i] = (wa * quantile_at(fracs[i]) +
                     wb * other.quantile_at(fracs[i])) /
                    (wa + wb);
  }
  // Enforce monotonicity against rounding.
  for (int i = 1; i < 5; ++i)
    combined_h[i] = std::max(combined_h[i], combined_h[i - 1]);

  n_ += other.n_;
  const double dn = static_cast<double>(n_ - 1);
  for (int i = 0; i < 5; ++i) {
    h_[i] = combined_h[i];
    pos_[i] = 1 + fracs[i] * dn;
    want_[i] = pos_[i];
  }
  // dwant_ is invariant (depends only on q_).
}

PoissonBootstrap::PoissonBootstrap(std::size_t replicates, std::uint64_t seed)
    : seed_(seed), sum_w_(replicates, 0.0), sum_wx_(replicates, 0.0) {
  REDSPOT_CHECK(replicates >= 2);
}

namespace {

/// Poisson(1) draw from a uniform via the inverse CDF; k <= 12 covers the
/// distribution far beyond double precision.
int poisson1_from_uniform(double u) {
  double p = std::exp(-1.0);  // P(K = 0)
  double cdf = p;
  int k = 0;
  while (u >= cdf && k < 12) {
    ++k;
    p /= static_cast<double>(k);
    cdf += p;
  }
  return k;
}

}  // namespace

void PoissonBootstrap::add(std::uint64_t index, double x) {
  ++n_;
  for (std::size_t b = 0; b < sum_w_.size(); ++b) {
    // Counter-based weight: one SplitMix64 cascade keyed by
    // (seed, index, b); no state is carried between observations.
    std::uint64_t s = seed_ ^ (0x9E3779B97F4A7C15ULL * (index + 1));
    (void)splitmix64(s);
    s ^= 0xD1B54A32D192ED03ULL * (static_cast<std::uint64_t>(b) + 1);
    const std::uint64_t bits = splitmix64(s);
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
    const int w = poisson1_from_uniform(u);
    if (w == 0) continue;
    sum_w_[b] += static_cast<double>(w);
    sum_wx_[b] += static_cast<double>(w) * x;
  }
}

void PoissonBootstrap::merge(const PoissonBootstrap& other) {
  REDSPOT_CHECK(sum_w_.size() == other.sum_w_.size());
  n_ += other.n_;
  for (std::size_t b = 0; b < sum_w_.size(); ++b) {
    sum_w_[b] += other.sum_w_[b];
    sum_wx_[b] += other.sum_wx_[b];
  }
}

std::pair<double, double> PoissonBootstrap::mean_ci(
    double level, double fallback_mean) const {
  REDSPOT_CHECK(n_ > 0);
  REDSPOT_CHECK(level > 0.0 && level < 1.0);
  std::vector<double> means(sum_w_.size());
  for (std::size_t b = 0; b < sum_w_.size(); ++b) {
    means[b] = sum_w_[b] > 0.0 ? sum_wx_[b] / sum_w_[b] : fallback_mean;
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - level) / 2.0;
  return {quantile_sorted(means, alpha), quantile_sorted(means, 1.0 - alpha)};
}

std::pair<double, double> wilson_interval(std::size_t hits, std::size_t n,
                                          double level) {
  REDSPOT_CHECK(hits <= n);
  REDSPOT_CHECK(level > 0.0 && level < 1.0);
  if (n == 0) return {0.0, 0.0};
  const double z = probit(1.0 - (1.0 - level) / 2.0);
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(hits) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double centre = p + z2 / (2.0 * nn);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  return {std::max(0.0, (centre - margin) / denom),
          std::min(1.0, (centre + margin) / denom)};
}

double probit(double p) {
  REDSPOT_CHECK(p > 0.0 && p < 1.0);
  // Acklam's rational approximation in three regions.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace redspot
