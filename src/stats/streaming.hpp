// Streaming (single-pass, mergeable) estimators for the ensemble layer.
//
// The Monte-Carlo ensemble (src/ensemble/) folds thousands of replication
// results into O(1)-memory accumulators, so every estimator here is
// single-pass and supports an explicit merge() used to combine per-shard
// accumulators in shard order. All operations are pure floating-point
// functions of their inputs: given a fixed shard partition, a merged result
// is bit-identical on every thread count.
//
//   * P2Quantile — the P² algorithm of Jain & Chlamtac (CACM 1985): five
//     markers track one quantile without storing samples. merge() combines
//     two estimators by averaging their inverse CDFs (a quantile-domain
//     barycenter) — an approximation, but a deterministic one.
//   * PoissonBootstrap — the online bootstrap (Oza & Russell): replicate b
//     weights observation i by a Poisson(1) draw that depends only on
//     (seed, i, b), so weights are reproducible regardless of processing
//     order and replicate sums merge by addition.
//   * wilson_interval — closed-form binomial CI for event rates
//     (deadline misses).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace redspot {

/// Streaming estimate of a single quantile q via the P² algorithm.
/// Exact for the first 5 observations, O(1) memory thereafter.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);

  std::size_t count() const { return n_; }

  /// Current estimate. Requires count() > 0.
  double value() const;

  /// Folds `other` into this estimator. When either side still buffers its
  /// first samples the merge is exact; otherwise the combined marker state
  /// is rebuilt from the count-weighted average of the two inverse CDFs.
  /// Deterministic: merging the same states always yields the same bits.
  void merge(const P2Quantile& other);

 private:
  void init_markers();
  /// Piecewise-linear inverse CDF through the markers at cumulative
  /// fraction p in [0, 1]. Requires n_ >= 5.
  double quantile_at(double p) const;

  double q_;
  std::size_t n_ = 0;
  // For n_ < 5, h_ holds the raw samples in arrival order; afterwards the
  // five marker heights. pos_ are the 1-based marker positions, want_ the
  // desired positions, dwant_ their per-observation increments.
  double h_[5] = {0, 0, 0, 0, 0};
  double pos_[5] = {0, 0, 0, 0, 0};
  double want_[5] = {0, 0, 0, 0, 0};
  double dwant_[5] = {0, 0, 0, 0, 0};
};

/// Streaming bootstrap CI for the mean. Replicate weights are a pure
/// function of (seed, observation index, replicate), so accumulation order
/// does not matter and merge() is exact (sums add).
class PoissonBootstrap {
 public:
  /// `replicates` resampled means; `seed` fixes the weight stream.
  PoissonBootstrap(std::size_t replicates, std::uint64_t seed);

  /// Accounts observation `index` with value `x` in every replicate.
  void add(std::uint64_t index, double x);

  /// Adds `other`'s replicate sums to ours (requires equal replicate
  /// counts; the seeds must match for the result to be a valid bootstrap
  /// of one stream — merging distinct streams treats them as one sample).
  void merge(const PoissonBootstrap& other);

  std::size_t replicates() const { return sum_w_.size(); }
  std::size_t count() const { return n_; }

  /// Percentile CI of the resampled means at confidence `level` (e.g.
  /// 0.95). Replicates that sampled nothing fall back to `fallback_mean`
  /// (the full-sample mean). Requires count() > 0.
  std::pair<double, double> mean_ci(double level, double fallback_mean) const;

 private:
  std::uint64_t seed_;
  std::size_t n_ = 0;
  std::vector<double> sum_w_;
  std::vector<double> sum_wx_;
};

/// Wilson score interval for a binomial proportion: `hits` successes out
/// of `n` trials at confidence `level` in (0, 1). Returns {0, 0} for n == 0.
std::pair<double, double> wilson_interval(std::size_t hits, std::size_t n,
                                          double level);

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.2e-9). Requires p in (0, 1).
double probit(double p);

}  // namespace redspot
