// Time-series helpers for the VAR analysis (Section 3.1) and trace
// characterization: lagged views, autocorrelation, and the Akaike
// information criterion used to pick the VAR lag order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace redspot {

/// Sample autocorrelation at `lag` (0 <= lag < xs.size()).
/// Returns 0 when the series has zero variance.
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// First differences: d[i] = xs[i+1] - xs[i].
std::vector<double> first_difference(std::span<const double> xs);

/// Akaike information criterion for a model with log-likelihood `log_lik`
/// and `num_params` free parameters: AIC = 2k - 2 ln L.
double aic(double log_lik, std::size_t num_params);

/// Multivariate-regression AIC used for VAR(p) lag selection:
///   AIC(p) = ln det(Sigma_hat) + 2 p K^2 / T
/// where Sigma_hat is the ML residual covariance (divides by T), K the
/// series dimension and T the effective sample count.
double var_aic(double log_det_sigma, std::size_t lag_order,
               std::size_t dimension, std::size_t effective_samples);

}  // namespace redspot
