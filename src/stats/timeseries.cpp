#include "stats/timeseries.hpp"

#include "common/check.hpp"
#include "stats/descriptive.hpp"

namespace redspot {

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  REDSPOT_CHECK(lag < xs.size());
  const double m = mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  if (denom == 0.0) return 0.0;
  double num = 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i)
    num += (xs[i] - m) * (xs[i + lag] - m);
  return num / denom;
}

std::vector<double> first_difference(std::span<const double> xs) {
  if (xs.size() < 2) return {};
  std::vector<double> d(xs.size() - 1);
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) d[i] = xs[i + 1] - xs[i];
  return d;
}

double aic(double log_lik, std::size_t num_params) {
  return 2.0 * static_cast<double>(num_params) - 2.0 * log_lik;
}

double var_aic(double log_det_sigma, std::size_t lag_order,
               std::size_t dimension, std::size_t effective_samples) {
  REDSPOT_CHECK(effective_samples > 0);
  const double k2p = static_cast<double>(lag_order) *
                     static_cast<double>(dimension) *
                     static_cast<double>(dimension);
  return log_det_sigma +
         2.0 * k2p / static_cast<double>(effective_samples);
}

}  // namespace redspot
