// Fixed-bin histogram, used for price-distribution reporting and for the
// queue-delay calibration bench.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace redspot {

/// Histogram over [lo, hi) with equal-width bins; out-of-range samples land
/// in saturating underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t num_bins);

  void add(double x);

  std::size_t num_bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  /// Inclusive-exclusive bounds of a bin.
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// ASCII rendering, one line per bin, bar width scaled to `width` chars.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace redspot
