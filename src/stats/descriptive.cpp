#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace redspot {

double mean(std::span<const double> xs) {
  REDSPOT_CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  REDSPOT_CHECK(!xs.empty());
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  REDSPOT_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  REDSPOT_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_sorted(std::span<const double> sorted, double q) {
  REDSPOT_CHECK(!sorted.empty());
  REDSPOT_CHECK(q >= 0.0 && q <= 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

std::string FiveNumberSummary::str(int precision) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.*f/%.*f/%.*f/%.*f/%.*f", precision, min,
                precision, q1, precision, median, precision, q3, precision,
                max);
  return buf;
}

FiveNumberSummary five_number_summary(std::span<const double> xs) {
  REDSPOT_CHECK(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  FiveNumberSummary s;
  s.min = sorted.front();
  s.q1 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.5);
  s.q3 = quantile_sorted(sorted, 0.75);
  s.max = sorted.back();
  s.mean = mean(xs);
  s.count = xs.size();
  return s;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace redspot
