// Descriptive statistics.
//
// The paper reports every policy comparison as a boxplot of per-experiment
// costs (Figures 4-6) and characterizes the volatility windows by mean and
// variance of spot prices (Section 5). FiveNumberSummary reproduces the
// boxplot statistics; quantile() uses the common linear-interpolation
// definition (type 7, the R default).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace redspot {

double mean(std::span<const double> xs);

/// Sample variance (divides by n-1); 0 for n < 2.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolation quantile of unsorted data, q in [0, 1].
double quantile(std::span<const double> xs, double q);

/// Quantile of data already sorted ascending (no copy).
double quantile_sorted(std::span<const double> sorted, double q);

double median(std::span<const double> xs);

/// Boxplot statistics: min / Q1 / median / Q3 / max plus mean and count.
struct FiveNumberSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;

  double iqr() const { return q3 - q1; }

  /// One-line rendering "min/q1/med/q3/max" with the given precision.
  std::string str(int precision = 2) const;
};

/// Computes the summary of `xs` (must be non-empty).
FiveNumberSummary five_number_summary(std::span<const double> xs);

/// Running (streaming) mean/variance via Welford's algorithm.
class RunningStats {
 public:
  void add(double x);
  /// Folds `other` into this accumulator (Chan et al.'s pairwise update).
  /// Exact up to floating-point rounding and deterministic: merging the
  /// same pair of states always produces the same bits.
  void merge(const RunningStats& other);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace redspot
