#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace redspot {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo),
      hi_(hi),
      bin_width_((hi - lo) / static_cast<double>(num_bins)),
      counts_(num_bins, 0) {
  REDSPOT_CHECK(hi > lo);
  REDSPOT_CHECK(num_bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  bin = std::min(bin, counts_.size() - 1);  // guard FP edge at hi_
  ++counts_[bin];
}

std::size_t Histogram::count(std::size_t bin) const {
  REDSPOT_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  REDSPOT_CHECK(bin < counts_.size());
  return lo_ + bin_width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + bin_width_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[128];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(counts_[b] * width / peak);
    std::snprintf(line, sizeof(line), "[%8.3f, %8.3f) %8zu |", bin_lo(b),
                  bin_hi(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ > 0) out += "underflow: " + std::to_string(underflow_) + "\n";
  if (overflow_ > 0) out += "overflow: " + std::to_string(overflow_) + "\n";
  return out;
}

}  // namespace redspot
