// Graceful-interruption flag for long runs.
//
// redspot-sim installs SIGINT/SIGTERM handlers that set a process-wide
// atomic flag; the ensemble runner polls it between shards (via
// parallel_for_shards' stop option) so an interrupted run stops claiming
// new shards, drains in-flight work, journals what finished and exits
// cleanly instead of discarding hours of completed replications. A second
// signal while the drain is in progress force-exits immediately — the
// escape hatch when a shard hangs.
#pragma once

#include <atomic>

namespace redspot {

/// Installs SIGINT/SIGTERM handlers that set interrupt_flag(). Idempotent.
/// The first signal requests a graceful stop; a second one _exits(130).
void install_interrupt_handlers();

/// The process-wide stop flag (set by the signal handlers; never cleared
/// by them). Safe to poll from any thread.
const std::atomic<bool>& interrupt_flag();

/// True once a SIGINT/SIGTERM has been received.
bool interrupt_requested();

/// Clears the flag (tests and repeated CLI runs only).
void reset_interrupt_flag();

}  // namespace redspot
