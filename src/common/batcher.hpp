// Key-coalescing asynchronous request batcher over ThreadPool.
//
// The serve layer funnels many tenants' requests at a small set of shared
// models. Batcher<Key, Item> gives that fan-in three guarantees:
//
//   * Per-key serialization — at most ONE batch per key executes at any
//     moment, so the batch function may mutate key-owned state (slide a
//     model, fill a memo) without locking it. Distinct keys run
//     concurrently on the pool.
//   * Coalescing — items submitted while a key's batch is executing gather
//     into the NEXT batch: N queued same-key requests cost one batch
//     dispatch (and, in the serve advisor, one model resolution), not N.
//   * FIFO fairness — items of one key are delivered in submission order,
//     batch after batch; a steady stream against one key cannot reorder or
//     starve items within any key.
//
// The batch function runs on pool threads; Batcher never runs it inline.
// drain() blocks until every submitted item has been delivered — used for
// graceful shutdown (finish in-flight advice before exiting) and by tests.
//
// Exceptions: a batch function that throws loses that batch's items but
// not the batcher — the key unlocks, later submissions run normally, and
// the first exception is rethrown from the next drain() (mirroring
// ThreadPool::wait_idle).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace redspot {

/// Counters for observability (serve stats line, tests, bench).
struct BatcherStats {
  std::uint64_t submitted = 0;  ///< items accepted
  std::uint64_t delivered = 0;  ///< items handed to the batch function
  std::uint64_t batches = 0;    ///< batch-function invocations
  std::uint64_t max_batch = 0;  ///< largest single batch
};

template <typename Key, typename Item, typename KeyHash = std::hash<Key>>
class Batcher {
 public:
  using BatchFn = std::function<void(const Key&, std::vector<Item>&&)>;

  /// `fn` is invoked on pool threads with the key and its coalesced items,
  /// under the per-key exclusivity guarantee above.
  Batcher(ThreadPool& pool, BatchFn fn) : pool_(pool), fn_(std::move(fn)) {
    REDSPOT_CHECK(fn_ != nullptr);
  }

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Destruction requires quiescence: callers drain() first (the serve
  /// shutdown path does), otherwise in-flight batches would race the
  /// member teardown.
  ~Batcher() { drain_nothrow(); }

  /// Enqueues one item for `key`; schedules a batch unless one is already
  /// running for that key (in which case the running batch's completion
  /// will pick this item up).
  void submit(const Key& key, Item item) {
    std::unique_lock lock(mutex_);
    KeyState& ks = keys_[key];
    ks.pending.push_back(std::move(item));
    ++stats_.submitted;
    ++outstanding_;
    if (!ks.running) {
      ks.running = true;
      schedule_locked(key);
    }
  }

  /// Blocks until every submitted item has been delivered, then rethrows
  /// the first batch-function exception since the last drain (if any).
  void drain() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [&] { return outstanding_ == 0; });
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

  BatcherStats stats() const {
    std::unique_lock lock(mutex_);
    return stats_;
  }

  /// Items submitted but not yet delivered — the live queue depth. The
  /// serve layer's load-shedding gate compares this against its bound
  /// before admitting work.
  std::uint64_t pending() const {
    std::unique_lock lock(mutex_);
    return outstanding_;
  }

 private:
  struct KeyState {
    std::vector<Item> pending;
    bool running = false;
  };

  /// Submits the pool task that will run the key's next batch. Requires
  /// mutex_ held and ks.running already true.
  void schedule_locked(const Key& key) {
    pool_.submit([this, key] { run_batch(key); });
  }

  void run_batch(const Key& key) {
    std::vector<Item> batch;
    {
      std::unique_lock lock(mutex_);
      KeyState& ks = keys_.at(key);
      batch.swap(ks.pending);
      ++stats_.batches;
      if (batch.size() > stats_.max_batch) stats_.max_batch = batch.size();
    }
    const std::size_t n = batch.size();
    try {
      fn_(key, std::move(batch));
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    std::unique_lock lock(mutex_);
    stats_.delivered += n;
    outstanding_ -= n;
    KeyState& ks = keys_.at(key);
    if (!ks.pending.empty()) {
      schedule_locked(key);  // coalesced arrivals: next batch
    } else {
      ks.running = false;
    }
    if (outstanding_ == 0) idle_.notify_all();
  }

  /// Destructor-safe drain: waits for quiescence, swallows batch errors
  /// (they were only reachable through drain(), which the owner skipped).
  void drain_nothrow() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [&] { return outstanding_ == 0; });
  }

  ThreadPool& pool_;
  BatchFn fn_;

  mutable std::mutex mutex_;
  std::condition_variable idle_;
  std::unordered_map<Key, KeyState, KeyHash> keys_;
  std::uint64_t outstanding_ = 0;
  std::exception_ptr error_;
  BatcherStats stats_;
};

}  // namespace redspot
