#include "common/money.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace redspot {

Money Money::dollars(double d) {
  REDSPOT_CHECK_MSG(std::isfinite(d), "Money::dollars(" << d << ")");
  return from_micros(std::llround(d * 1e6));
}

Money Money::scaled(double k) const {
  REDSPOT_CHECK_MSG(std::isfinite(k), "Money::scaled(" << k << ")");
  return from_micros(std::llround(static_cast<double>(micros_) * k));
}

Money Money::parse(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
    ++i;
  bool negative = false;
  if (i < text.size() && (text[i] == '-' || text[i] == '+')) {
    negative = text[i] == '-';
    ++i;
  }
  if (i < text.size() && text[i] == '$') ++i;
  std::int64_t whole = 0;
  bool any_digit = false;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    whole = whole * 10 + (text[i] - '0');
    any_digit = true;
    ++i;
  }
  std::int64_t frac = 0;
  if (i < text.size() && text[i] == '.') {
    ++i;
    std::int64_t scale = 100'000;  // first fractional digit is 1e-1 dollars
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      frac += (text[i] - '0') * scale;
      scale /= 10;
      any_digit = true;
      ++i;
    }
  }
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
    ++i;
  REDSPOT_CHECK_MSG(any_digit && i == text.size(),
                    "Money::parse(\"" << text << "\")");
  const std::int64_t micros = whole * 1'000'000 + frac;
  return from_micros(negative ? -micros : micros);
}

std::string Money::str() const {
  std::int64_t m = micros_;
  const char* sign = "";
  if (m < 0) {
    sign = "-";
    m = -m;
  }
  const std::int64_t whole = m / 1'000'000;
  std::int64_t frac = m % 1'000'000;
  char buf[48];
  if (frac % 10'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%s$%lld.%02lld", sign,
                  static_cast<long long>(whole),
                  static_cast<long long>(frac / 10'000));
  } else {
    // Trim trailing zeros beyond two decimals.
    int digits = 6;
    while (frac % 10 == 0) {
      frac /= 10;
      --digits;
    }
    std::snprintf(buf, sizeof(buf), "%s$%lld.%0*lld", sign,
                  static_cast<long long>(whole), digits,
                  static_cast<long long>(frac));
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, Money m) { return os << m.str(); }

namespace money_literals {

Money operator""_usd(long double d) {
  return Money::dollars(static_cast<double>(d));
}

Money operator""_usd(unsigned long long d) {
  return Money::from_micros(static_cast<std::int64_t>(d) * 1'000'000);
}

}  // namespace money_literals
}  // namespace redspot
