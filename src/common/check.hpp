// Always-on invariant checking for redspot.
//
// REDSPOT_CHECK is used for preconditions and internal invariants whose
// violation indicates a programming error. Checks stay enabled in release
// builds: the simulator is a measurement instrument, and a silently corrupted
// billing ledger is worse than a crash.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace redspot {

/// Thrown when a REDSPOT_CHECK fails.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail
}  // namespace redspot

/// Verifies `cond`; throws redspot::CheckFailure with location info otherwise.
#define REDSPOT_CHECK(cond)                                             \
  do {                                                                  \
    if (!(cond))                                                        \
      ::redspot::detail::check_failed(#cond, __FILE__, __LINE__, "");   \
  } while (false)

/// Unconditional failure, for use as a function terminator after an
/// exhaustive switch or search. Unlike REDSPOT_CHECK(false, ...), the
/// [[noreturn]] call is not hidden behind a conditional, so gcc's
/// -Werror=return-type stays satisfied even when sanitizer
/// instrumentation defeats dead-branch folding.
#define REDSPOT_CHECK_FAIL(stream_expr)                                 \
  ::redspot::detail::check_failed(                                      \
      "unreachable", __FILE__, __LINE__,                                \
      static_cast<std::ostringstream&&>(std::ostringstream{}            \
                                        << stream_expr)                 \
          .str())

/// As REDSPOT_CHECK but with a streamed message, e.g.
/// REDSPOT_CHECK_MSG(x > 0, "x=" << x).
#define REDSPOT_CHECK_MSG(cond, stream_expr)                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream redspot_check_os_;                             \
      redspot_check_os_ << stream_expr;                                 \
      ::redspot::detail::check_failed(#cond, __FILE__, __LINE__,        \
                                      redspot_check_os_.str());         \
    }                                                                   \
  } while (false)
