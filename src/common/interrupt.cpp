#include "common/interrupt.hpp"

#include <csignal>
#include <unistd.h>

namespace redspot {

namespace {

// The handler only touches lock-free atomics and _exit, all
// async-signal-safe.
std::atomic<bool> g_interrupted{false};

void on_signal(int /*signo*/) {
  if (g_interrupted.exchange(true, std::memory_order_acq_rel)) {
    _exit(130);  // second signal: the drain is stuck or the user insists
  }
}

}  // namespace

void install_interrupt_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

const std::atomic<bool>& interrupt_flag() { return g_interrupted; }

bool interrupt_requested() {
  return g_interrupted.load(std::memory_order_acquire);
}

void reset_interrupt_flag() {
  g_interrupted.store(false, std::memory_order_release);
}

}  // namespace redspot
