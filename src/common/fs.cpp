#include "common/fs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace redspot {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

std::string parent_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

int fsync_retry(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

}  // namespace

void write_fully(int fd, const void* data, std::size_t len,
                 const std::string& what) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal landed mid-write: resume
      fail("write failed", what);
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

bool read_fully(int fd, void* data, std::size_t len, const std::string& what) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal landed mid-read: resume
      fail("read failed", what);
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      errno = 0;
      throw std::runtime_error("short read (EOF after " + std::to_string(got) +
                               " of " + std::to_string(len) + " bytes) '" +
                               what + "'");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

int open_retry(const std::string& path, int flags, int mode) {
  int fd;
  do {
    fd = ::open(path.c_str(), flags, mode);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) fail("cannot open", path);
  return fd;
}

void fsync_file(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) fail("cannot flush", path);
  if (fsync_retry(fileno(f)) != 0) fail("cannot fsync", path);
}

void fsync_parent_dir(const std::string& path) {
  const std::string dir = parent_of(path);
  int fd;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) fail("cannot open directory", dir);
  const int rc = fsync_retry(fd);
  ::close(fd);
  if (rc != 0) fail("cannot fsync directory", dir);
}

void atomic_write_file(const std::string& path, const std::string& contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) fail("cannot open for writing", tmp);

  try {
    write_fully(fd, contents.data(), contents.size(), tmp);
  } catch (const std::runtime_error&) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (fsync_retry(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("cannot fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("cannot close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("cannot rename over", path);
  }
  fsync_parent_dir(path);
}

std::string read_file(const std::string& path) {
  // Raw read(2) with explicit EINTR handling: stdio's fread reports an
  // interrupted read as a generic error, which turned a harmless signal
  // into a spurious "read failed" for journal recovery under timers.
  const int fd = open_retry(path, O_RDONLY);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("read failed", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace redspot
