#include "common/fs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace redspot {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

std::string parent_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void fsync_file(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) fail("cannot flush", path);
  if (::fsync(fileno(f)) != 0) fail("cannot fsync", path);
}

void fsync_parent_dir(const std::string& path) {
  const std::string dir = parent_of(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail("cannot open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail("cannot fsync directory", dir);
}

void atomic_write_file(const std::string& path, const std::string& contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open for writing", tmp);

  const char* p = contents.data();
  std::size_t remaining = contents.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write failed", tmp);
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("cannot fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("cannot close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("cannot rename over", path);
  }
  fsync_parent_dir(path);
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail("cannot open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) fail("read failed", path);
  return out;
}

}  // namespace redspot
