// Pluggable stream transport: one interface, unix-socket and TCP backends.
//
// The fabric (src/fabric/) and the serve plane (src/serve/) both speak
// CRC-framed messages (common/frame.hpp) over a byte stream. This layer is
// the one place that owns the blocking connect/accept/read/write plumbing
// they used to duplicate: a `Stream` is a connected full-duplex byte pipe,
// a `Listener` hands out Streams, and an `Endpoint` names either kind —
//
//   unix:/tmp/fab.sock      (or a bare path, for compatibility)
//   tcp:HOST:PORT           (PORT 0 binds an ephemeral port; see
//                            Listener::local_endpoint())
//
// Semantics every implementation keeps, because the poll loops above rely
// on them:
//
//   * Streams are blocking; fd() exposes the descriptor so callers can
//     poll() for readability before read_some(). Listeners are
//     non-blocking: accept() returns nullptr when nothing is pending.
//   * write_all() sends every byte or throws (dead peer = EPIPE/
//     ECONNRESET surfaces as std::runtime_error, never SIGPIPE), resuming
//     across EINTR and short writes like the common/fs helpers.
//   * read_some() returns 0 on EOF and throws on real errors; EINTR is
//     retried internally.
//   * connect() returns nullptr — errno preserved — when the peer is not
//     there *yet* (ENOENT, ECONNREFUSED), which is a retry-with-backoff
//     condition for callers, not an error.
//
// The network's failure modes (drops, stalls, torn frames, duplicate
// deliveries, one-way partitions) are injected by wrapping a Stream in a
// FaultyStream (transport/fault.hpp); the protocol layers never know.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/frame.hpp"

namespace redspot::transport {

/// A parsed transport address: a unix-socket path or a TCP host:port.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;         ///< unix: filesystem path of the socket
  std::string host;         ///< tcp: numeric IP or hostname
  std::uint16_t port = 0;   ///< tcp: 0 = ephemeral (listen only)

  /// Canonical text form ("unix:PATH" / "tcp:HOST:PORT").
  std::string str() const;
};

/// Parses "unix:PATH", "tcp:HOST:PORT", or a bare filesystem path (treated
/// as unix for compatibility with pre-transport --socket flags). Returns
/// nullopt on malformed input (empty path, bad port, missing host).
std::optional<Endpoint> parse_endpoint(const std::string& text);

/// A connected, blocking, full-duplex byte stream.
class Stream {
 public:
  virtual ~Stream() = default;

  /// The underlying descriptor, for poll()-based readiness checks. Fault
  /// decorators return the inner stream's fd.
  virtual int fd() const = 0;

  /// Sends all of `data`, resuming across EINTR and short writes. Throws
  /// std::runtime_error on any failure including a dead peer.
  virtual void write_all(std::string_view data) = 0;

  /// Reads whatever is available (one read() call, EINTR-retried) into
  /// `dst`, up to `cap` bytes. Returns 0 on EOF. Throws on real errors.
  virtual std::size_t read_some(char* dst, std::size_t cap) = 0;

  /// Reads one read_some() worth of bytes into a frame buffer. Returns
  /// false on EOF — the peer is gone.
  bool read_into(FrameBuffer& buf);
};

/// A bound, non-blocking listener handing out connected Streams.
class Listener {
 public:
  virtual ~Listener() = default;

  virtual int fd() const = 0;

  /// Accepts one pending connection, or nullptr when none is pending (or
  /// the attempt was transiently interrupted). Throws on listener
  /// breakage. Accepted streams are blocking.
  virtual std::unique_ptr<Stream> accept() = 0;

  /// The actual bound address — resolves port 0 to the kernel-assigned
  /// ephemeral port, so in-process peers can dial it.
  virtual Endpoint local_endpoint() const = 0;
};

/// Binds and listens on `ep`, unlinking any stale unix socket first (a
/// crashed listener leaves one behind) and setting SO_REUSEADDR on TCP
/// (a crashed-and-restarted coordinator must rebind through TIME_WAIT).
/// Throws std::runtime_error on failure.
std::unique_ptr<Listener> listen(const Endpoint& ep, int backlog = 64);

/// Connects to `ep`. Returns nullptr (errno preserved) when the listener
/// is not there yet — ENOENT and ECONNREFUSED are reconnect-with-backoff
/// conditions. Throws std::runtime_error on unexpected failures.
std::unique_ptr<Stream> connect(const Endpoint& ep);

/// Sends one frame (header + payload) fully. Throws std::runtime_error on
/// any failure including a dead peer.
void send_frame(Stream& stream, std::string_view payload);

}  // namespace redspot::transport
