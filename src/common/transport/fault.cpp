#include "common/transport/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/hash.hpp"

namespace redspot::transport {

namespace {

/// The single draw underlying every fault decision: a 64-bit hash of
/// (seed, conn, byte_offset). Low bits decide *whether* a fault fires,
/// independent reshuffles decide which kind and its parameters, so the
/// same write position yields the same fault everywhere.
std::uint64_t draw(const NetFaultPlan& plan, std::uint64_t conn,
                   std::uint64_t byte_offset, std::uint64_t salt) {
  HashStream h;
  h.u64(plan.seed);
  h.u64(conn);
  h.u64(byte_offset);
  h.u64(salt);
  return h.digest();
}

double to_unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

std::optional<NetFaultPlan> parse_net_fault_plan(const std::string& text) {
  // SEED:RATE[:KINDS[:BUDGET]]
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = text.find(':', start);
    parts.push_back(text.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 2 || parts.size() > 4) return std::nullopt;

  NetFaultPlan plan;
  char* end = nullptr;
  plan.seed = std::strtoull(parts[0].c_str(), &end, 10);
  if (parts[0].empty() || *end != '\0') return std::nullopt;
  plan.rate = std::strtod(parts[1].c_str(), &end);
  if (parts[1].empty() || *end != '\0' || plan.rate < 0.0 || plan.rate > 1.0)
    return std::nullopt;

  if (parts.size() >= 3 && !parts[2].empty() && parts[2] != "*") {
    plan.kinds = 0;
    for (char c : parts[2]) {
      switch (c) {
        case 'c': plan.kinds |= fault_bit(FaultKind::kDropConn); break;
        case 'd': plan.kinds |= fault_bit(FaultKind::kDelay); break;
        case 't': plan.kinds |= fault_bit(FaultKind::kTruncate); break;
        case 'u': plan.kinds |= fault_bit(FaultKind::kDuplicate); break;
        case 'p': plan.kinds |= fault_bit(FaultKind::kPartition); break;
        default: return std::nullopt;
      }
    }
  }
  if (parts.size() == 4) {
    const unsigned long budget = std::strtoul(parts[3].c_str(), &end, 10);
    if (parts[3].empty() || *end != '\0') return std::nullopt;
    plan.max_faults = static_cast<std::uint32_t>(budget);
  }
  return plan;
}

std::optional<FaultKind> fault_at(const NetFaultPlan& plan, std::uint64_t conn,
                                  std::uint64_t byte_offset) {
  if (!plan.enabled()) return std::nullopt;
  if (to_unit(draw(plan, conn, byte_offset, 0x1)) >= plan.rate)
    return std::nullopt;
  // Pick uniformly among the enabled kinds; the selection draw is
  // independent of the fire/no-fire draw so narrowing `kinds` never
  // moves *where* faults land, only what they do.
  std::uint8_t enabled[5];
  std::uint8_t count = 0;
  for (std::uint8_t k = 0; k < 5; ++k)
    if (plan.kinds & (1u << k)) enabled[count++] = k;
  if (count == 0) return std::nullopt;
  const std::uint64_t pick = draw(plan, conn, byte_offset, 0x2) % count;
  return static_cast<FaultKind>(enabled[pick]);
}

FaultyStream::FaultyStream(std::unique_ptr<Stream> inner, Hook hook)
    : inner_(std::move(inner)), hook_(std::move(hook)) {}

void FaultyStream::write_all(std::string_view data) {
  if (broken_)
    throw std::runtime_error("transport: connection dropped by fault plan");
  const std::uint64_t offset = offset_;
  offset_ += data.size();
  if (partitioned_) return;  // one-way partition: writes vanish silently
  const std::optional<FaultAction> action =
      hook_ ? hook_(offset, data.size()) : std::nullopt;
  if (!action) {
    inner_->write_all(data);
    return;
  }
  switch (action->kind) {
    case FaultKind::kDropConn:
      broken_ = true;
      inner_.reset();  // close now → peer sees clean EOF
      throw std::runtime_error("transport: connection dropped by fault plan");
    case FaultKind::kDelay:
      if (action->delay_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(action->delay_ms));
      inner_->write_all(data);
      return;
    case FaultKind::kTruncate: {
      const std::size_t keep = std::min(action->truncate_at, data.size());
      if (keep > 0) inner_->write_all(data.substr(0, keep));
      broken_ = true;
      inner_.reset();  // torn frame then EOF: peer parks on kNeedMore
      throw std::runtime_error("transport: connection torn by fault plan");
    }
    case FaultKind::kDuplicate:
      inner_->write_all(data);
      inner_->write_all(data);
      return;
    case FaultKind::kPartition:
      partitioned_ = true;  // this write and all later ones disappear
      return;
  }
}

std::size_t FaultyStream::read_some(char* dst, std::size_t cap) {
  if (broken_)
    throw std::runtime_error("transport: connection dropped by fault plan");
  return inner_->read_some(dst, cap);
}

std::unique_ptr<Stream> NetFaultInjector::wrap(
    std::unique_ptr<Stream> stream) {
  if (!plan_.enabled()) return stream;
  const std::uint64_t conn =
      next_conn_.fetch_add(1, std::memory_order_relaxed);
  const NetFaultPlan plan = plan_;
  return std::make_unique<FaultyStream>(
      std::move(stream),
      [this, plan, conn](std::uint64_t offset,
                         std::size_t len) -> std::optional<FaultAction> {
        if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
        const std::optional<FaultKind> kind = fault_at(plan, conn, offset);
        if (!kind) return std::nullopt;
        // Budget check last: a write position either always or never has
        // a fault *scheduled*; the budget only bounds how many actually
        // fire, mirroring ChaosPlan's kill_attempts cap.
        std::uint32_t used = injected_.load(std::memory_order_relaxed);
        do {
          if (used >= plan.max_faults) return std::nullopt;
        } while (!injected_.compare_exchange_weak(
            used, used + 1, std::memory_order_relaxed));
        FaultAction action;
        action.kind = *kind;
        if (*kind == FaultKind::kTruncate)
          action.truncate_at = draw(plan, conn, offset, 0x3) % (len + 1);
        if (*kind == FaultKind::kDelay)
          action.delay_ms =
              1 + static_cast<std::uint32_t>(draw(plan, conn, offset, 0x4) %
                                             50);
        return action;
      });
}

}  // namespace redspot::transport
