// Deterministic network-fault injection for transport streams.
//
// The network analogue of the fabric's `ChaosPlan` (fault/chaos): every
// fault is a pure function of `(seed, conn, byte_offset)`, so a chaos run
// is exactly reproducible from its command line — no clocks, no global
// RNG state, no dependence on scheduling.
//
// Faults act at *write-operation* granularity. The protocol layers send
// one frame per write_all() call, so:
//
//   kDropConn   — the connection dies before the frame leaves; the peer
//                 sees clean EOF.
//   kDelay      — the frame arrives whole, but late (seeded millisecond
//                 stall before the write).
//   kTruncate   — a torn frame: a seeded prefix of the bytes is written,
//                 then the connection dies. The peer's FrameBuffer parks
//                 on kNeedMore until EOF — never a corrupt accept.
//   kDuplicate  — the frame is delivered twice back-to-back (retransmit
//                 double-delivery). Exercises the receiver's dedupe.
//   kPartition  — one-way partition: this frame and every later write on
//                 the stream vanish silently, while reads keep flowing.
//                 The receiver must detect the half-open peer by
//                 heartbeat deadline, not EOF.
//
// `NetFaultPlan` parses from "SEED:RATE[:KINDS[:BUDGET]]" (mirroring
// ChaosPlan's "seed:rate:attempts"); `NetFaultInjector` hands out
// per-connection FaultyStream wrappers and enforces a process-wide fault
// budget so every chaos schedule terminates.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/transport/transport.hpp"

namespace redspot::transport {

enum class FaultKind : std::uint8_t {
  kDropConn = 0,
  kDelay = 1,
  kTruncate = 2,
  kDuplicate = 3,
  kPartition = 4,
};

/// Bitmask helpers over FaultKind.
constexpr std::uint32_t fault_bit(FaultKind k) {
  return 1u << static_cast<std::uint8_t>(k);
}
constexpr std::uint32_t kAllFaultKinds =
    fault_bit(FaultKind::kDropConn) | fault_bit(FaultKind::kDelay) |
    fault_bit(FaultKind::kTruncate) | fault_bit(FaultKind::kDuplicate) |
    fault_bit(FaultKind::kPartition);

/// A seeded network-fault schedule. rate is the per-write fault
/// probability in [0,1]; kinds selects which fault kinds may fire;
/// max_faults bounds total injections process-wide so runs converge.
struct NetFaultPlan {
  std::uint64_t seed = 0;
  double rate = 0.0;
  std::uint32_t kinds = kAllFaultKinds;
  std::uint32_t max_faults = 8;

  bool enabled() const { return rate > 0.0 && kinds != 0 && max_faults > 0; }
};

/// Parses "SEED:RATE[:KINDS[:BUDGET]]". KINDS is a letter set —
/// c(ut)=drop, d(elay), t(runcate), u=duplicate, p(artition); "*" or
/// empty = all. Returns nullopt on malformed input.
std::optional<NetFaultPlan> parse_net_fault_plan(const std::string& text);

/// The fault (if any) scheduled for the write at `byte_offset` on
/// connection `conn`. Pure: same (plan, conn, byte_offset) → same answer,
/// on any host, in any process.
std::optional<FaultKind> fault_at(const NetFaultPlan& plan, std::uint64_t conn,
                                  std::uint64_t byte_offset);

/// A concrete injection decision for one write.
struct FaultAction {
  FaultKind kind = FaultKind::kDelay;
  std::size_t truncate_at = 0;  ///< kTruncate: bytes delivered before the cut
  std::uint32_t delay_ms = 0;   ///< kDelay: stall before delivery
};

/// A Stream decorator that injects faults on the write path. The decision
/// comes from a hook so tests can script exact schedules and the injector
/// can derive them from a NetFaultPlan. Reads pass through untouched —
/// fault symmetry comes from wrapping both ends' writers.
class FaultyStream final : public Stream {
 public:
  /// Called before each write with (byte_offset_of_this_write, length).
  /// Return nullopt to deliver the write untouched.
  using Hook = std::function<std::optional<FaultAction>(std::uint64_t offset,
                                                        std::size_t len)>;

  FaultyStream(std::unique_ptr<Stream> inner, Hook hook);

  int fd() const override { return inner_->fd(); }
  void write_all(std::string_view data) override;
  std::size_t read_some(char* dst, std::size_t cap) override;

  /// Bytes offered to write_all so far (pre-fault), i.e. the offset the
  /// next write's hook will see.
  std::uint64_t bytes_offered() const { return offset_; }

 private:
  std::unique_ptr<Stream> inner_;
  Hook hook_;
  std::uint64_t offset_ = 0;
  bool broken_ = false;       ///< kDropConn/kTruncate fired: all I/O fails
  bool partitioned_ = false;  ///< kPartition fired: writes vanish silently
};

/// Wraps streams of one process in seeded FaultyStreams, numbering
/// connections in wrap order and enforcing the plan's process-wide fault
/// budget. Injection can be armed late (arm()) so tests can complete
/// setup traffic cleanly before chaos begins.
class NetFaultInjector {
 public:
  explicit NetFaultInjector(NetFaultPlan plan, bool armed = true)
      : plan_(plan), armed_(armed) {}

  /// Decorates `stream`; no-op passthrough when the plan is disabled.
  std::unique_ptr<Stream> wrap(std::unique_ptr<Stream> stream);

  void arm() { armed_.store(true, std::memory_order_relaxed); }

  const NetFaultPlan& plan() const { return plan_; }
  std::uint32_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  NetFaultPlan plan_;
  std::atomic<std::uint64_t> next_conn_{0};
  std::atomic<std::uint32_t> injected_{0};
  std::atomic<bool> armed_;
};

}  // namespace redspot::transport
