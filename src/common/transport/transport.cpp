#include "common/transport/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace redspot::transport {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("transport: " + what + ": " + std::strerror(errno));
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("transport: unix path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("transport: bad tcp host (want a numeric IPv4 "
                             "address): " + ep.host);
  return addr;
}

void set_nonblocking(int fd, const std::string& what) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("fcntl " + what);
  }
}

/// A connected socket: identical code for unix and TCP — the transport
/// differences live entirely in address setup.
class FdStream final : public Stream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  ~FdStream() override {
    if (fd_ >= 0) ::close(fd_);
  }

  int fd() const override { return fd_; }

  void write_all(std::string_view data) override {
    std::size_t sent = 0;
    while (sent < data.size()) {
      // MSG_NOSIGNAL: a dead peer must surface as an error, not SIGPIPE.
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail("send");
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  std::size_t read_some(char* dst, std::size_t cap) override {
    ssize_t n;
    do {
      n = ::read(fd_, dst, cap);
    } while (n < 0 && errno == EINTR);
    if (n < 0) fail("read");
    return static_cast<std::size_t>(n);
  }

 private:
  int fd_ = -1;
};

class FdListener final : public Listener {
 public:
  FdListener(int fd, Endpoint bound) : fd_(fd), bound_(std::move(bound)) {}
  ~FdListener() override {
    if (fd_ >= 0) ::close(fd_);
    // The bound unix inode outlives the descriptor; remove it so the next
    // bind at this path does not need the stale-socket unlink.
    if (bound_.kind == Endpoint::Kind::kUnix) ::unlink(bound_.path.c_str());
  }

  int fd() const override { return fd_; }

  std::unique_ptr<Stream> accept() override {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      // The connecting peer may already be gone, or a signal interrupted
      // us; both mean "nothing to accept right now".
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK)
        return nullptr;
      fail("accept");
    }
    // Accepted fds stay blocking (Linux does not inherit O_NONBLOCK),
    // which is what the frame send/read helpers expect.
    return std::make_unique<FdStream>(fd);
  }

  Endpoint local_endpoint() const override { return bound_; }

 private:
  int fd_ = -1;
  Endpoint bound_;
};

}  // namespace

std::string Endpoint::str() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

std::optional<Endpoint> parse_endpoint(const std::string& text) {
  Endpoint ep;
  if (text.rfind("tcp:", 0) == 0) {
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) return std::nullopt;
    ep.kind = Endpoint::Kind::kTcp;
    ep.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos)
      return std::nullopt;
    const unsigned long port = std::strtoul(port_text.c_str(), nullptr, 10);
    if (port > 65535) return std::nullopt;
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  // "unix:PATH", or a bare path for compatibility with pre-transport
  // --socket flags.
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = text.rfind("unix:", 0) == 0 ? text.substr(5) : text;
  if (ep.path.empty()) return std::nullopt;
  return ep;
}

std::unique_ptr<Listener> listen(const Endpoint& ep, int backlog) {
  const int domain = ep.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");

  int rc = 0;
  Endpoint bound = ep;
  if (ep.kind == Endpoint::Kind::kUnix) {
    // A previous listener that crashed leaves its socket inode behind;
    // bind() would fail with EADDRINUSE even though nobody is listening.
    ::unlink(ep.path.c_str());
    const sockaddr_un addr = make_unix_addr(ep.path);
    rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } else {
    // SO_REUSEADDR: a crashed-and-restarted coordinator must rebind its
    // port through the predecessor's TIME_WAIT sockets.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = make_tcp_addr(ep);
    rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }
  if (rc < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("bind " + ep.str());
  }
  if (::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("listen " + ep.str());
  }
  if (ep.kind == Endpoint::Kind::kTcp && ep.port == 0) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail("getsockname " + ep.str());
    }
    bound.port = ntohs(actual.sin_port);
  }
  // Non-blocking listener: callers drain accept() until nullptr after a
  // poll() wakeup.
  set_nonblocking(fd, ep.str());
  return std::make_unique<FdListener>(fd, std::move(bound));
}

std::unique_ptr<Stream> connect(const Endpoint& ep) {
  const int domain = ep.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");

  int rc;
  if (ep.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = make_unix_addr(ep.path);
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
  } else {
    const sockaddr_in addr = make_tcp_addr(ep);
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
  }
  if (rc == 0) {
    if (ep.kind == Endpoint::Kind::kTcp) {
      // Request/response frames are latency-bound, not throughput-bound:
      // never let Nagle hold a 50-byte heartbeat hostage.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return std::make_unique<FdStream>(fd);
  }
  const int saved = errno;
  ::close(fd);
  errno = saved;
  if (saved == ENOENT || saved == ECONNREFUSED || saved == EAGAIN ||
      saved == ETIMEDOUT)
    return nullptr;
  fail("connect " + ep.str());
}

bool Stream::read_into(FrameBuffer& buf) {
  char chunk[64 * 1024];
  const std::size_t n = read_some(chunk, sizeof(chunk));
  if (n == 0) return false;
  buf.append(std::string_view(chunk, n));
  return true;
}

void send_frame(Stream& stream, std::string_view payload) {
  stream.write_all(encode_frame(payload));
}

}  // namespace redspot::transport
