// Shared fingerprinting primitives.
//
// HashStream is the order-sensitive 64-bit fingerprint accumulator used to
// key the ensemble result cache (EnsembleSpec::spec_hash), the sweep
// journal (exp/sweep's sweep_key) and the engine-option fingerprint. crc32
// is the IEEE 802.3 polynomial used to checksum journal records
// (src/journal/). Neither is cryptographic: they detect accidental
// corruption and distinguish configurations, nothing more.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/random.hpp"

namespace redspot {

/// Order-sensitive 64-bit fingerprint accumulator (SplitMix64 cascade).
class HashStream {
 public:
  void u64(std::uint64_t v) {
    state_ ^= v + 0x9E3779B97F4A7C15ULL + (state_ << 6) + (state_ >> 2);
    state_ = splitmix64(state_);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s)
      u64(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0x243F6A8885A308D3ULL;  // pi
};

/// CRC-32 (IEEE, reflected, init/xorout 0xFFFFFFFF) of `len` bytes.
std::uint32_t crc32(const void* data, std::size_t len);

}  // namespace redspot
