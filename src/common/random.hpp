// Deterministic random-number generation.
//
// Every stochastic component of redspot (synthetic traces, queue delays)
// draws from an explicitly seeded Rng. We implement the generator and the
// distributions ourselves rather than using <random>'s distributions, whose
// output is not specified by the standard and differs between library
// implementations — reproducibility of the experiment sweeps across
// toolchains is a requirement.
//
// Generator: xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <cstdint>

namespace redspot {

/// SplitMix64 step — used for seeding and for hashing stream ids.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic PRNG with explicit seeding and independent streams.
///
/// `Rng(seed, stream)` produces a sequence fully determined by (seed,
/// stream); distinct streams are statistically independent, which lets each
/// zone / each spot request own a private stream derived from the experiment
/// seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace redspot
