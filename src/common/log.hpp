// Minimal leveled logging.
//
// The simulator is mostly silent; logging exists for tracing engine
// decisions during debugging and for the timeline benches. Thread-safe:
// each message is formatted locally and emitted under a mutex.
#pragma once

#include <sstream>
#include <string>

namespace redspot {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded. Default: kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a message (already formatted) at `level`.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace redspot

#define REDSPOT_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::redspot::log_level())) { \
  } else                                                    \
    ::redspot::detail::LogLine(level)

#define LOG_DEBUG REDSPOT_LOG(::redspot::LogLevel::kDebug)
#define LOG_INFO REDSPOT_LOG(::redspot::LogLevel::kInfo)
#define LOG_WARN REDSPOT_LOG(::redspot::LogLevel::kWarn)
#define LOG_ERROR REDSPOT_LOG(::redspot::LogLevel::kError)
