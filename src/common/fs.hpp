// Crash-safe, signal-safe filesystem primitives.
//
// Everything redspot persists — exported trace CSVs, journal files — must
// survive a crash at any instant without leaving a half-written file that a
// later reader half-accepts. atomic_write_file implements the classic
// write-temp → fsync → rename protocol: after it returns, the destination
// holds the complete new contents; if the process dies at any point before
// that, the destination either does not exist or still holds its previous
// complete contents (the leftover temp file is ignorable garbage). Append
// durability for the run journal is handled separately in src/journal/ via
// fsync_file plus a checksummed record format that tolerates a torn tail.
//
// Every helper here also retries EINTR: redspot processes field real
// signals mid-I/O (SIGINT drains, the fabric's chaos SIGKILLs land on
// siblings, interval timers fire in tests), and a non-SA_RESTART handler
// turns a blocked read()/write() into a short transfer or an EINTR error.
// Those are not failures — the helpers resume the transfer, so callers
// never see a spurious exception or a torn buffer (common_test pins this
// with a deliberately hostile interval timer).
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>

namespace redspot {

/// write()s all `len` bytes of `data` to `fd`, resuming across EINTR and
/// short writes. Works on files, pipes and stream sockets (the journal and
/// the fabric wire protocol both frame on top of it). Throws
/// std::runtime_error on any real I/O failure, naming `what` in the
/// message.
void write_fully(int fd, const void* data, std::size_t len,
                 const std::string& what);

/// read()s exactly `len` bytes into `data`, resuming across EINTR and
/// short reads. Returns false on clean EOF before the first byte; throws
/// std::runtime_error on a real failure or on EOF mid-buffer (a torn
/// transfer the caller must not half-trust).
bool read_fully(int fd, void* data, std::size_t len, const std::string& what);

/// open(2) retrying EINTR. Returns the fd; throws std::runtime_error on
/// failure.
int open_retry(const std::string& path, int flags, int mode = 0644);

/// Atomically replaces `path` with `contents`: writes `path`.tmp.<pid>,
/// flushes it to disk, renames it over `path`, then syncs the parent
/// directory so the rename itself is durable. Throws std::runtime_error on
/// any I/O failure (the temp file is removed; `path` is untouched).
void atomic_write_file(const std::string& path, const std::string& contents);

/// fflush + fsync an open stdio stream. Throws std::runtime_error on
/// failure, naming `path` in the message.
void fsync_file(std::FILE* f, const std::string& path);

/// fsyncs the directory containing `path`, making a rename or creation of
/// `path` durable. Throws std::runtime_error on failure.
void fsync_parent_dir(const std::string& path);

/// Reads a whole file into a string. Throws std::runtime_error if the file
/// cannot be opened or read.
std::string read_file(const std::string& path);

}  // namespace redspot
