// Crash-safe filesystem primitives.
//
// Everything redspot persists — exported trace CSVs, journal files — must
// survive a crash at any instant without leaving a half-written file that a
// later reader half-accepts. atomic_write_file implements the classic
// write-temp → fsync → rename protocol: after it returns, the destination
// holds the complete new contents; if the process dies at any point before
// that, the destination either does not exist or still holds its previous
// complete contents (the leftover temp file is ignorable garbage). Append
// durability for the run journal is handled separately in src/journal/ via
// fsync_file plus a checksummed record format that tolerates a torn tail.
#pragma once

#include <cstdio>
#include <string>

namespace redspot {

/// Atomically replaces `path` with `contents`: writes `path`.tmp.<pid>,
/// flushes it to disk, renames it over `path`, then syncs the parent
/// directory so the rename itself is durable. Throws std::runtime_error on
/// any I/O failure (the temp file is removed; `path` is untouched).
void atomic_write_file(const std::string& path, const std::string& contents);

/// fflush + fsync an open stdio stream. Throws std::runtime_error on
/// failure, naming `path` in the message.
void fsync_file(std::FILE* f, const std::string& path);

/// fsyncs the directory containing `path`, making a rename or creation of
/// `path` durable. Throws std::runtime_error on failure.
void fsync_parent_dir(const std::string& path);

/// Reads a whole file into a string. Throws std::runtime_error if the file
/// cannot be opened or read.
std::string read_file(const std::string& path);

}  // namespace redspot
