// Exact monetary arithmetic.
//
// Spot-market billing must be exact: the paper's cost comparisons hinge on
// sums of hourly charges like $0.27 that have no finite binary
// representation. Money stores an integer count of micro-dollars (1e-6 $),
// giving an exact representation of every price on EC2's $0.001 grid and
// headroom for ~9.2e12 dollars.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/check.hpp"

namespace redspot {

/// An exact amount of US dollars (may be negative for adjustments).
class Money {
 public:
  /// Zero dollars.
  constexpr Money() = default;

  /// From an exact count of micro-dollars.
  static constexpr Money from_micros(std::int64_t micros) {
    Money m;
    m.micros_ = micros;
    return m;
  }

  /// From a dollar amount, rounded to the nearest micro-dollar.
  /// `Money::dollars(0.27)` is exactly 270000 micro-dollars.
  static Money dollars(double d);

  /// From whole cents.
  static constexpr Money cents(std::int64_t c) {
    return from_micros(c * 10'000);
  }

  /// Parses "1.23", "$1.23", "-0.27". Throws CheckFailure on bad input.
  static Money parse(const std::string& text);

  constexpr std::int64_t micros() const { return micros_; }

  /// Value in dollars as a double (for statistics, not billing).
  constexpr double to_double() const {
    return static_cast<double>(micros_) / 1e6;
  }

  /// Renders as "$1.23" (always two decimals, more if needed).
  std::string str() const;

  constexpr Money operator+(Money o) const {
    return from_micros(micros_ + o.micros_);
  }
  constexpr Money operator-(Money o) const {
    return from_micros(micros_ - o.micros_);
  }
  constexpr Money operator-() const { return from_micros(-micros_); }
  constexpr Money& operator+=(Money o) {
    micros_ += o.micros_;
    return *this;
  }
  constexpr Money& operator-=(Money o) {
    micros_ -= o.micros_;
    return *this;
  }

  /// Scales by an integer factor (e.g. hours billed).
  constexpr Money operator*(std::int64_t k) const {
    return from_micros(micros_ * k);
  }

  /// Scales by a real factor, rounding to nearest micro-dollar.
  Money scaled(double k) const;

  /// Ratio of two amounts (e.g. cost normalized to on-demand cost).
  constexpr double ratio(Money denom) const {
    REDSPOT_CHECK(denom.micros_ != 0);
    return static_cast<double>(micros_) / static_cast<double>(denom.micros_);
  }

  constexpr auto operator<=>(const Money&) const = default;

 private:
  std::int64_t micros_ = 0;
};

constexpr Money operator*(std::int64_t k, Money m) { return m * k; }

std::ostream& operator<<(std::ostream& os, Money m);

namespace money_literals {
/// `0.27_usd` — exact dollar literal.
Money operator""_usd(long double d);
/// `27_usd` — whole-dollar literal.
Money operator""_usd(unsigned long long d);
}  // namespace money_literals

}  // namespace redspot
