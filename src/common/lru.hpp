// Byte-accounted LRU cache core.
//
// Extracted from EnsembleCache so every bounded in-memory cache in the
// tree (ensemble results, the serve layer's shared-model registry) shares
// one audited eviction engine instead of three hand-rolled list+map
// pairs. Entries are byte-accounted — the caller supplies an approximate
// heap footprint at store time — and evicted in least-recently-used order
// once the configured capacity is exceeded.
//
// Semantics (unchanged from the original EnsembleCache core):
//   * lookup() hands out shared ownership, so an entry stays valid for its
//     holders even after eviction; a hit refreshes recency.
//   * store() is first-writer-wins: a racing second store of the same key
//     is dropped, so two threads that computed the same value agree on
//     which object everyone shares.
//   * an entry larger than the whole capacity is simply not retained.
//   * capacity 0 disables retention entirely (every store evicts).
//
// Thread-safe: one internal mutex serializes all operations. Values are
// handed out as shared_ptr<Value>; instantiate with `const V` when cached
// values must be immutable (EnsembleCache) and plain `V` when holders
// mutate them under their own discipline (the serve ModelRegistry, where
// per-entry exclusion comes from the request batcher).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace redspot {

/// Occupancy and traffic counters of an LruByteCache.
struct LruStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;           ///< approximate footprint of all entries
  std::size_t capacity_bytes = 0;  ///< eviction threshold
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruByteCache {
 public:
  explicit LruByteCache(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns the cached value for `key`, or nullptr (counts a miss).
  /// A hit moves the entry to most-recently-used.
  std::shared_ptr<Value> lookup(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    return it->second->value;
  }

  /// Stores `value` under `key` accounting `bytes` of footprint (first
  /// writer wins on a race), then evicts least-recently-used entries until
  /// within capacity. Returns the retained value: the given one, or the
  /// incumbent when a racing store got there first.
  std::shared_ptr<Value> store(const Key& key, std::shared_ptr<Value> value,
                               std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) return it->second->value;  // first writer wins
    lru_.push_front(Entry{key, std::move(value), bytes});
    index_.emplace(key, lru_.begin());
    bytes_ += bytes;
    evict_to_capacity();
    return lru_.empty() || lru_.front().key != key
               ? nullptr  // larger than the whole capacity: not retained
               : lru_.front().value;
  }

  /// lookup(), or on a miss store the result of `make()` (which must
  /// return shared_ptr<Value>) accounted at `bytes(value)`. `make` is
  /// called with the cache mutex held — it must not re-enter the cache.
  /// Returns the shared entry even when it was too large to retain.
  template <typename Make, typename Bytes>
  std::shared_ptr<Value> lookup_or_create(const Key& key, Make&& make,
                                          Bytes&& bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->value;
    }
    ++misses_;
    std::shared_ptr<Value> value = make();
    const std::size_t b = bytes(*value);
    lru_.push_front(Entry{key, value, b});
    index_.emplace(key, lru_.begin());
    bytes_ += b;
    evict_to_capacity();
    return value;
  }

  /// Sets the eviction threshold and evicts immediately if over it.
  void set_capacity_bytes(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_bytes_ = capacity;
    evict_to_capacity();
  }

  LruStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return LruStats{hits_,  misses_, evictions_,
                    lru_.size(), bytes_, capacity_bytes_};
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    bytes_ = 0;
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
  }

 private:
  struct Entry {
    Key key{};
    std::shared_ptr<Value> value;
    std::size_t bytes = 0;
  };

  /// Evicts LRU entries until bytes_ <= capacity_bytes_. Caller holds
  /// mutex_.
  void evict_to_capacity() {
    while (bytes_ > capacity_bytes_ && !lru_.empty()) {
      const Entry& victim = lru_.back();
      bytes_ -= victim.bytes;
      index_.erase(victim.key);
      lru_.pop_back();
      ++evictions_;
    }
  }

  mutable std::mutex mutex_;
  /// LRU order: front = most recently used, back = eviction candidate.
  std::list<Entry> lru_;
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index_;
  std::size_t capacity_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace redspot
