#include "common/random.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace redspot {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // Mix seed and stream so that nearby (seed, stream) pairs give unrelated
  // state. SplitMix64 is a strong enough mixer for this purpose.
  std::uint64_t sm = seed;
  (void)splitmix64(sm);
  sm ^= 0xA0761D6478BD642FULL * (stream + 1);
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro256++ must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  REDSPOT_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  REDSPOT_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  // Box-Muller, always drawing a fresh pair (no hidden state).
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  REDSPOT_CHECK(stddev >= 0);
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) {
  REDSPOT_CHECK(lambda > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

}  // namespace redspot
