#include "common/parallel.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace redspot {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  accepting_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    // An uncollected task exception cannot be rethrown from a destructor;
    // drop it (the submitting code chose not to wait_idle()).
    task_error_ = nullptr;
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  REDSPOT_CHECK(task != nullptr);
  REDSPOT_CHECK_MSG(accepting_.load(std::memory_order_acquire),
                    "submit() on a shut-down ThreadPool");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    REDSPOT_CHECK_MSG(!shutting_down_,
                      "submit() on a shut-down ThreadPool");
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (task_error_ != nullptr) {
    std::exception_ptr error = std::exchange(task_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (task_error_ == nullptr) task_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

namespace {

/// Message of the in-flight exception; call only from inside a catch.
std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// First-failure capture shared by the chunk dispatchers: once a chunk
/// throws, workers stop claiming (drain), and the original exception is
/// rethrown after wait_idle so its type survives intact.
struct FirstFailure {
  std::mutex mutex;
  std::exception_ptr error;
  std::atomic<bool> failed{false};

  void capture() {
    std::lock_guard<std::mutex> lock(mutex);
    if (error == nullptr) error = std::current_exception();
    failed.store(true, std::memory_order_release);
  }
};

/// Dynamic chunked dispatch shared by parallel_for and parallel_for_shards:
/// workers claim chunk indices [0, num_chunks) off one relaxed counter and
/// invoke `chunk(c)`. Submits at most pool.size() pool tasks. Stops
/// claiming new chunks on the first failure (or when `stop` is set),
/// drains what is in flight, then rethrows the first captured exception.
template <typename ChunkFn>
void dispatch_chunks(ThreadPool& pool, std::size_t num_chunks,
                     const std::atomic<bool>* stop, const ChunkFn& chunk) {
  FirstFailure failure;
  std::atomic<std::size_t> next{0};
  const std::size_t num_tasks = std::min(pool.size(), num_chunks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    pool.submit([&next, num_chunks, stop, &failure, &chunk] {
      for (;;) {
        if (failure.failed.load(std::memory_order_acquire)) return;
        if (stop != nullptr && stop->load(std::memory_order_acquire)) return;
        const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) return;
        try {
          chunk(c);
        } catch (...) {
          failure.capture();
          return;
        }
      }
    });
  }
  pool.wait_idle();
  if (failure.error != nullptr) std::rethrow_exception(failure.error);
}

/// Serial equivalent of dispatch_chunks (single-thread pools and trivial
/// ranges): same first-failure and stop semantics, no pool round-trip.
template <typename ChunkFn>
void run_chunks_serial(std::size_t num_chunks, const std::atomic<bool>* stop,
                       const ChunkFn& chunk) {
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) return;
    chunk(c);
  }
}

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Contiguous chunks claimed dynamically: ~4 chunks per worker keeps the
  // load balanced when iteration times vary (Adaptive runs dominate the
  // sweeps) while paying one atomic op per chunk, not per index.
  const std::size_t num_chunks = std::min(n, 4 * pool.size());
  const std::size_t chunk_len = (n + num_chunks - 1) / num_chunks;
  auto run_chunk = [begin, end, chunk_len, &body](std::size_t c) {
    const std::size_t lo = begin + c * chunk_len;
    const std::size_t hi = std::min(end, lo + chunk_len);
    for (std::size_t i = lo; i < hi; ++i) {
      try {
        body(i);
      } catch (...) {
        throw ParallelError("parallel_for body failed at index " +
                            std::to_string(i) + ": " +
                            describe_current_exception());
      }
    }
  };
  if (pool.size() == 1 || n == 1) {
    run_chunks_serial(num_chunks, nullptr, run_chunk);
    return;
  }
  dispatch_chunks(pool, num_chunks, nullptr, run_chunk);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(default_pool(), begin, end, body);
}

void parallel_for_shards(
    ThreadPool& pool, std::size_t n, std::size_t num_shards,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& shard) {
  parallel_for_shards(pool, n, num_shards, shard, ShardRunOptions{});
}

void parallel_for_shards(
    ThreadPool& pool, std::size_t n, std::size_t num_shards,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& shard,
    const ShardRunOptions& options) {
  REDSPOT_CHECK(num_shards > 0);
  auto run_shard = [n, num_shards, &shard, &options](std::size_t s) {
    const auto [lo, hi] = shard_bounds(n, num_shards, s);
    const std::size_t max_attempts = options.retry_budget + 1;
    for (std::size_t attempt = 1;; ++attempt) {
      try {
        shard(s, lo, hi);
        return;
      } catch (...) {
        if (attempt >= max_attempts) {
          throw ParallelError(
              "shard " + std::to_string(s) + " [" + std::to_string(lo) +
              ", " + std::to_string(hi) + ") failed after " +
              std::to_string(attempt) + " attempt(s): " +
              describe_current_exception());
        }
      }
    }
  };
  if (pool.size() == 1 || num_shards == 1) {
    run_chunks_serial(num_shards, options.stop, run_shard);
    return;
  }
  dispatch_chunks(pool, num_shards, options.stop, run_shard);
}

std::pair<std::size_t, std::size_t> shard_bounds(std::size_t n,
                                                 std::size_t num_shards,
                                                 std::size_t s) {
  REDSPOT_CHECK(num_shards > 0);
  REDSPOT_CHECK(s < num_shards);
  // Shard s covers [s*len, min(n, (s+1)*len)) with len = ceil(n/num_shards):
  // a pure function of (n, num_shards), never of the pool size.
  const std::size_t len = (n + num_shards - 1) / num_shards;
  const std::size_t lo = std::min(n, s * len);
  return {lo, std::min(n, lo + len)};
}

namespace {

/// Set once the default pool's static destructor has run; any later
/// default_pool() call is a programming error we can still diagnose.
std::atomic<bool> g_default_pool_destroyed{false};

}  // namespace

ThreadPool& default_pool() {
  REDSPOT_CHECK_MSG(!g_default_pool_destroyed.load(std::memory_order_acquire),
                    "default_pool() used after static destruction (no "
                    "submissions after main() returns)");
  static struct Holder {
    ThreadPool pool;
    ~Holder() { g_default_pool_destroyed.store(true, std::memory_order_release); }
  } holder;
  return holder.pool;
}

}  // namespace redspot
