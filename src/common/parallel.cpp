#include "common/parallel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  accepting_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  REDSPOT_CHECK(task != nullptr);
  REDSPOT_CHECK_MSG(accepting_.load(std::memory_order_acquire),
                    "submit() on a shut-down ThreadPool");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    REDSPOT_CHECK_MSG(!shutting_down_,
                      "submit() on a shut-down ThreadPool");
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

namespace {

/// Dynamic chunked dispatch shared by parallel_for and parallel_for_shards:
/// workers claim chunk indices [0, num_chunks) off one relaxed counter and
/// invoke `chunk(c)`. Submits at most pool.size() pool tasks.
template <typename ChunkFn>
void dispatch_chunks(ThreadPool& pool, std::size_t num_chunks,
                     const ChunkFn& chunk) {
  std::atomic<std::size_t> next{0};
  const std::size_t num_tasks = std::min(pool.size(), num_chunks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    pool.submit([&next, num_chunks, &chunk] {
      for (;;) {
        const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) return;
        chunk(c);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.size() == 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Contiguous chunks claimed dynamically: ~4 chunks per worker keeps the
  // load balanced when iteration times vary (Adaptive runs dominate the
  // sweeps) while paying one atomic op per chunk, not per index.
  const std::size_t num_chunks = std::min(n, 4 * pool.size());
  const std::size_t chunk_len = (n + num_chunks - 1) / num_chunks;
  dispatch_chunks(pool, num_chunks,
                  [begin, end, chunk_len, &body](std::size_t c) {
                    const std::size_t lo = begin + c * chunk_len;
                    const std::size_t hi = std::min(end, lo + chunk_len);
                    for (std::size_t i = lo; i < hi; ++i) body(i);
                  });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(default_pool(), begin, end, body);
}

void parallel_for_shards(
    ThreadPool& pool, std::size_t n, std::size_t num_shards,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& shard) {
  REDSPOT_CHECK(num_shards > 0);
  // Shard s covers [s*len, min(n, (s+1)*len)) with len = ceil(n/num_shards):
  // a pure function of (n, num_shards), never of the pool size.
  const std::size_t len = (n + num_shards - 1) / num_shards;
  auto run_shard = [n, len, &shard](std::size_t s) {
    const std::size_t lo = std::min(n, s * len);
    const std::size_t hi = std::min(n, lo + len);
    shard(s, lo, hi);
  };
  if (pool.size() == 1 || num_shards == 1) {
    for (std::size_t s = 0; s < num_shards; ++s) run_shard(s);
    return;
  }
  dispatch_chunks(pool, num_shards, run_shard);
}

namespace {

/// Set once the default pool's static destructor has run; any later
/// default_pool() call is a programming error we can still diagnose.
std::atomic<bool> g_default_pool_destroyed{false};

}  // namespace

ThreadPool& default_pool() {
  REDSPOT_CHECK_MSG(!g_default_pool_destroyed.load(std::memory_order_acquire),
                    "default_pool() used after static destruction (no "
                    "submissions after main() returns)");
  static struct Holder {
    ThreadPool pool;
    ~Holder() { g_default_pool_destroyed.store(true, std::memory_order_release); }
  } holder;
  return holder.pool;
}

}  // namespace redspot
