#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>

#include "common/check.hpp"

namespace redspot {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  REDSPOT_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    REDSPOT_CHECK(!shutting_down_);
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.size() == 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Dynamic scheduling over a shared atomic counter: simulation times vary
  // widely between experiments (Adaptive runs dominate), so static blocks
  // would leave threads idle.
  std::atomic<std::size_t> next{begin};
  const std::size_t num_tasks = std::min(pool.size(), n);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    pool.submit([&next, end, &body] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) return;
        body(i);
      }
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(default_pool(), begin, end, body);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace redspot
