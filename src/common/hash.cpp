#include "common/hash.hpp"

#include <array>

namespace redspot {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace redspot
