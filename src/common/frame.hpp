// Shared length-prefixed, CRC-32-checksummed frame codec.
//
// One wire format, two consumers: the durable run journal (src/journal/)
// appends frames to a file and recovers the intact prefix after a crash,
// and the distributed fabric (src/fabric/) sends the same frames over a
// stream socket and resynchronizes never — a corrupt frame drops the
// connection. The format:
//
//   frame := u32 payload_len , u32 crc32(payload) , payload
//
// (integers little-endian). Both consumers share the guarantee that a
// frame either yields its exact payload bytes or is rejected whole:
// truncation reads as "need more", a flipped bit or a forged length reads
// as corruption, and no decoder ever trusts half a frame.
//
// The little-endian byte primitives (put_* / ByteReader) are exposed too:
// journal record payloads and fabric wire messages are built from the same
// bounds-checked codec, so a malformed payload decodes to "reject", never
// to UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace redspot {

// --- little-endian byte primitives -----------------------------------------

void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_i32(std::string& out, std::int32_t v);
void put_i64(std::string& out, std::int64_t v);
void put_str(std::string& out, std::string_view s);  ///< u32 length + bytes

/// Bounds-checked sequential reader over a payload. Every accessor returns
/// false instead of reading past the end; decoders built on it are total.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t* v);
  bool u32(std::uint32_t* v);
  bool u64(std::uint64_t* v);
  bool i32(std::int32_t* v);
  bool i64(std::int64_t* v);
  /// u32 length followed by that many bytes.
  bool str(std::string* out);
  /// The unread remainder (e.g. a nested payload); consumes it.
  std::string_view rest();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- frame codec ------------------------------------------------------------

/// Bytes of the length + checksum header preceding every payload.
inline constexpr std::size_t kFrameHeaderSize = 8;

/// Upper bound a reader enforces on payload_len before allocating: a forged
/// length field must be rejected as corruption, not honored with a giant
/// allocation. Generous — the largest legitimate frame (a full ensemble
/// shard record) is a few hundred KiB.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

/// Appends one complete frame for `payload` to `out`.
void append_frame(std::string& out, std::string_view payload);

/// One complete frame for `payload`.
std::string encode_frame(std::string_view payload);

enum class FrameStatus {
  kOk,        ///< a complete, checksum-valid frame
  kNeedMore,  ///< buffer ends mid-header or mid-payload (truncation)
  kCorrupt,   ///< checksum mismatch or forged (oversized) length
};

/// Examines the frame starting at the front of `buf` without consuming it.
/// On kOk, *payload views the payload bytes inside `buf` and *frame_size is
/// the total frame length to consume. `max_payload` guards length fields.
FrameStatus peek_frame(std::string_view buf, std::string_view* payload,
                       std::size_t* frame_size,
                       std::size_t max_payload = kMaxFramePayload);

/// Incremental frame decoder for stream transports: append received bytes,
/// then drain complete frames. Corruption is sticky — once a frame fails
/// its checksum there is no resynchronization point, so every later call
/// reports kCorrupt and the connection must be dropped.
class FrameBuffer {
 public:
  explicit FrameBuffer(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void append(const char* data, std::size_t len);
  void append(std::string_view data) { append(data.data(), data.size()); }

  /// Extracts the next complete frame's payload into *payload. kNeedMore
  /// means "no complete frame buffered yet", not an error.
  FrameStatus next(std::string* payload);

  std::size_t buffered() const { return buf_.size() - pos_; }
  bool corrupt() const { return corrupt_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
  std::size_t max_payload_;
  bool corrupt_ = false;
};

}  // namespace redspot
