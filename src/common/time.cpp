#include "common/time.hpp"

#include <cstdio>

namespace redspot {

std::string format_time(SimTime t) {
  if (t == kNever) return "never";
  const char* sign = "";
  if (t < 0) {
    sign = "-";
    t = -t;
  }
  const std::int64_t days = t / kDay;
  const std::int64_t h = (t % kDay) / kHour;
  const std::int64_t m = (t % kHour) / kMinute;
  const std::int64_t s = t % kMinute;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%lld+%02lld:%02lld:%02lld", sign,
                static_cast<long long>(days), static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s));
  return buf;
}

std::string format_duration(Duration d) {
  if (d == kNever) return "forever";
  const char* sign = "";
  if (d < 0) {
    sign = "-";
    d = -d;
  }
  char buf[48];
  if (d >= kHour) {
    std::snprintf(buf, sizeof(buf), "%s%lldh%02lldm", sign,
                  static_cast<long long>(d / kHour),
                  static_cast<long long>((d % kHour) / kMinute));
  } else if (d >= kMinute) {
    std::snprintf(buf, sizeof(buf), "%s%lldm%02llds", sign,
                  static_cast<long long>(d / kMinute),
                  static_cast<long long>(d % kMinute));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%llds", sign,
                  static_cast<long long>(d));
  }
  return buf;
}

}  // namespace redspot
