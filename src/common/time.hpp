// Simulated-time primitives.
//
// All simulation time is measured in whole seconds from the epoch of the
// loaded price-trace set (for synthetic traces: 2012-12-01 00:00 UTC).
// Seconds granularity is exact for every quantity in the paper's model:
// prices change on a 5-minute grid, checkpoints cost 300/900 s, billing
// cycles are 3600 s.
#pragma once

#include <cstdint>
#include <string>

namespace redspot {

/// Absolute simulated time, in seconds since the trace epoch.
using SimTime = std::int64_t;

/// A span of simulated time, in seconds.
using Duration = std::int64_t;

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 3600;
inline constexpr Duration kDay = 24 * kHour;

/// The paper samples spot prices every 5 minutes (Section 5).
inline constexpr Duration kPriceStep = 5 * kMinute;

/// Sentinel for "no event scheduled" / "never".
inline constexpr SimTime kNever = INT64_MAX;

/// Converts fractional hours to a Duration, rounding to nearest second.
constexpr Duration hours(double h) {
  return static_cast<Duration>(h * static_cast<double>(kHour) + 0.5);
}

/// Duration expressed in fractional hours.
constexpr double to_hours(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kHour);
}

/// Start of the billing/trace hour containing `t`.
constexpr SimTime hour_floor(SimTime t) { return t - (t % kHour); }

/// First hour boundary strictly after `t`.
constexpr SimTime next_hour(SimTime t) { return hour_floor(t) + kHour; }

/// Start of the 5-minute price step containing `t`.
constexpr SimTime price_step_floor(SimTime t) { return t - (t % kPriceStep); }

/// Billing hours "started" by a usage span of `d` (>= 0) seconds — EC2
/// charges every started hour in full. The one rounding rule shared by the
/// billing ledger, the on-demand baseline, and the Adaptive estimator.
constexpr std::int64_t started_hours(Duration d) {
  return (d + kHour - 1) / kHour;
}

/// Renders `t` as "d+hh:mm:ss" for logs and timelines.
std::string format_time(SimTime t);

/// Renders a duration as e.g. "3h05m" / "42s".
std::string format_duration(Duration d);

}  // namespace redspot
