#include "common/frame.hpp"

#include <cstring>

#include "common/hash.hpp"

namespace redspot {

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

bool ByteReader::u8(std::uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<std::uint8_t>(static_cast<unsigned char>(data_[pos_]));
  ++pos_;
  return true;
}

bool ByteReader::u32(std::uint32_t* v) {
  if (remaining() < 4) return false;
  *v = 0;
  for (int i = 3; i >= 0; --i)
    *v = (*v << 8) |
         static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]);
  pos_ += 4;
  return true;
}

bool ByteReader::u64(std::uint64_t* v) {
  if (remaining() < 8) return false;
  *v = 0;
  for (int i = 7; i >= 0; --i)
    *v = (*v << 8) |
         static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]);
  pos_ += 8;
  return true;
}

bool ByteReader::i32(std::int32_t* v) {
  std::uint32_t u = 0;
  if (!u32(&u)) return false;
  *v = static_cast<std::int32_t>(u);
  return true;
}

bool ByteReader::i64(std::int64_t* v) {
  std::uint64_t u = 0;
  if (!u64(&u)) return false;
  *v = static_cast<std::int64_t>(u);
  return true;
}

bool ByteReader::str(std::string* out) {
  std::uint32_t len = 0;
  if (!u32(&len)) return false;
  if (remaining() < len) return false;
  out->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

std::string_view ByteReader::rest() {
  const std::string_view r = data_.substr(pos_);
  pos_ = data_.size();
  return r;
}

void append_frame(std::string& out, std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out.append(payload);
}

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  append_frame(out, payload);
  return out;
}

FrameStatus peek_frame(std::string_view buf, std::string_view* payload,
                       std::size_t* frame_size, std::size_t max_payload) {
  if (buf.size() < kFrameHeaderSize) return FrameStatus::kNeedMore;
  ByteReader header(buf.substr(0, kFrameHeaderSize));
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  header.u32(&len);
  header.u32(&crc);
  // A length past the reader's bound cannot be a real frame — treat it as
  // corruption immediately rather than waiting for 4 GiB that never comes.
  if (len > max_payload) return FrameStatus::kCorrupt;
  if (buf.size() - kFrameHeaderSize < len) return FrameStatus::kNeedMore;
  const std::string_view body = buf.substr(kFrameHeaderSize, len);
  if (crc32(body.data(), body.size()) != crc) return FrameStatus::kCorrupt;
  *payload = body;
  *frame_size = kFrameHeaderSize + len;
  return FrameStatus::kOk;
}

void FrameBuffer::append(const char* data, std::size_t len) {
  // Compact once the consumed prefix dominates, keeping append amortized
  // O(1) without unbounded growth on long-lived connections.
  if (pos_ > 0 && pos_ >= buf_.size() - pos_) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, len);
}

FrameStatus FrameBuffer::next(std::string* payload) {
  if (corrupt_) return FrameStatus::kCorrupt;
  std::string_view body;
  std::size_t frame_size = 0;
  const FrameStatus status = peek_frame(
      std::string_view(buf_).substr(pos_), &body, &frame_size, max_payload_);
  switch (status) {
    case FrameStatus::kOk:
      payload->assign(body.data(), body.size());
      pos_ += frame_size;
      return FrameStatus::kOk;
    case FrameStatus::kNeedMore:
      return FrameStatus::kNeedMore;
    case FrameStatus::kCorrupt:
      corrupt_ = true;
      return FrameStatus::kCorrupt;
  }
  return FrameStatus::kCorrupt;  // unreachable
}

}  // namespace redspot
