// Shared-memory parallelism for the experiment sweeps.
//
// Each experiment simulation is independent, so sweeps are embarrassingly
// parallel. ThreadPool is a plain work-stealing-free fixed pool (the tasks
// are coarse — one whole simulation each — so a single shared queue does not
// contend measurably), and parallel_for partitions an index range over it.
//
// parallel_for claims contiguous chunks (~4 per worker) off a shared atomic
// counter instead of single indices: load balance stays dynamic while the
// per-iteration dispatch cost drops to one relaxed fetch_add per chunk,
// which matters for small bodies (see BM_ParallelFor* in bench_micro).
//
// parallel_for_shards exists for deterministic reductions: the caller picks
// a fixed shard count, each shard covers a contiguous index range processed
// in order, and shard boundaries depend only on (n, num_shards) — never on
// the thread count — so per-shard accumulators can be merged in shard order
// to produce bit-identical results on any pool size (see src/ensemble/).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace redspot {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate the process (they indicate a bug, not an environment error).
  /// Submitting to a pool that has been shut down (explicitly or by its
  /// destructor) is a hard error (CheckFailure), never silent UB.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Drains the queue and joins all workers. Idempotent; called by the
  /// destructor. After shutdown, submit() throws CheckFailure.
  void shutdown();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  /// Lock-free mirror of shutting_down_ so submit() can fail loudly even
  /// when racing a concurrent (buggy) shutdown.
  std::atomic<bool> accepting_{true};
};

/// Runs `body(i)` for every i in [begin, end), partitioned across `pool`.
/// Blocks until all iterations complete. `body` must be safe to invoke
/// concurrently for distinct indices.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Convenience overload using a process-wide default pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Runs `shard(s, lo, hi)` for every shard s in [0, num_shards), where
/// [lo, hi) is the s-th of num_shards contiguous, ascending, disjoint
/// ranges covering [0, n) (trailing shards may be empty when
/// num_shards > n). Shard boundaries depend only on (n, num_shards), so a
/// reduction that accumulates per shard and merges in shard order is
/// bit-identical for every pool size. Blocks until all shards complete.
void parallel_for_shards(
    ThreadPool& pool, std::size_t n, std::size_t num_shards,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& shard);

/// The process-wide default pool (lazily constructed). Must not be used
/// after main() returns: static destruction tears the pool down, and any
/// later call is a hard error (CheckFailure), not silent UB.
ThreadPool& default_pool();

}  // namespace redspot
