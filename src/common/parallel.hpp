// Shared-memory parallelism for the experiment sweeps.
//
// Each experiment simulation is independent, so sweeps are embarrassingly
// parallel. ThreadPool is a plain work-stealing-free fixed pool (the tasks
// are coarse — one whole simulation each — so a single shared queue does not
// contend measurably), and parallel_for partitions an index range over it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace redspot {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate the process (they indicate a bug, not an environment error).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs `body(i)` for every i in [begin, end), partitioned across `pool`.
/// Blocks until all iterations complete. `body` must be safe to invoke
/// concurrently for distinct indices.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Convenience overload using a process-wide default pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// The process-wide default pool (lazily constructed).
ThreadPool& default_pool();

}  // namespace redspot
