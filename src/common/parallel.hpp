// Shared-memory parallelism for the experiment sweeps.
//
// Each experiment simulation is independent, so sweeps are embarrassingly
// parallel. ThreadPool is a plain work-stealing-free fixed pool (the tasks
// are coarse — one whole simulation each — so a single shared queue does not
// contend measurably), and parallel_for partitions an index range over it.
//
// parallel_for claims contiguous chunks (~4 per worker) off a shared atomic
// counter instead of single indices: load balance stays dynamic while the
// per-iteration dispatch cost drops to one relaxed fetch_add per chunk,
// which matters for small bodies (see BM_ParallelFor* in bench_micro).
//
// parallel_for_shards exists for deterministic reductions: the caller picks
// a fixed shard count, each shard covers a contiguous index range processed
// in order, and shard boundaries depend only on (n, num_shards) — never on
// the thread count — so per-shard accumulators can be merged in shard order
// to produce bit-identical results on any pool size (see src/ensemble/).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace redspot {

/// Thrown when a parallel_for / parallel_for_shards body failed: carries
/// the index (or shard) context and the original exception's message. The
/// first failure wins; in-flight work is drained before the rethrow, so
/// the pool stays usable afterwards.
class ParallelError : public std::runtime_error {
 public:
  explicit ParallelError(const std::string& what) : std::runtime_error(what) {}
};

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. An exception escaping a task is captured (first one
  /// wins), remaining queued work still drains, and the next wait_idle()
  /// rethrows it — a throwing task never terminates the process.
  /// Submitting to a pool that has been shut down (explicitly or by its
  /// destructor) is a hard error (CheckFailure), never silent UB.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception that escaped a task since the last wait_idle() (if
  /// any). The pool remains usable after the rethrow.
  void wait_idle();

  /// Drains the queue and joins all workers. Idempotent; called by the
  /// destructor. After shutdown, submit() throws CheckFailure.
  void shutdown();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  /// First exception that escaped a task; rethrown by wait_idle().
  std::exception_ptr task_error_;
  bool shutting_down_ = false;
  /// Lock-free mirror of shutting_down_ so submit() can fail loudly even
  /// when racing a concurrent (buggy) shutdown.
  std::atomic<bool> accepting_{true};
};

/// Runs `body(i)` for every i in [begin, end), partitioned across `pool`.
/// Blocks until all iterations complete. `body` must be safe to invoke
/// concurrently for distinct indices. If a body throws, no new chunks are
/// claimed, in-flight chunks drain, and the first failure is rethrown as a
/// ParallelError naming the failing index.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Convenience overload using a process-wide default pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Runs `shard(s, lo, hi)` for every shard s in [0, num_shards), where
/// [lo, hi) is the s-th of num_shards contiguous, ascending, disjoint
/// ranges covering [0, n) (trailing shards may be empty when
/// num_shards > n). Shard boundaries depend only on (n, num_shards), so a
/// reduction that accumulates per shard and merges in shard order is
/// bit-identical for every pool size. Blocks until all shards complete.
void parallel_for_shards(
    ThreadPool& pool, std::size_t n, std::size_t num_shards,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& shard);

/// Execution controls for parallel_for_shards.
struct ShardRunOptions {
  /// Extra attempts granted to a shard whose body throws: a shard runs at
  /// most retry_budget + 1 times. The body must therefore be idempotent
  /// (reset its outputs on entry). When the budget is exhausted the first
  /// failure is rethrown — after the drain — as one ParallelError carrying
  /// the shard index, its range and the attempt count.
  std::size_t retry_budget = 0;
  /// When non-null and set, no further shards are claimed (in-flight
  /// shards finish normally). The caller is responsible for knowing which
  /// shards ran; see EnsembleRunner's completion flags.
  const std::atomic<bool>* stop = nullptr;
};

/// As above, with a per-shard retry budget and a graceful-stop flag.
void parallel_for_shards(
    ThreadPool& pool, std::size_t n, std::size_t num_shards,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& shard,
    const ShardRunOptions& options);

/// The [lo, hi) index range of shard `s` in the fixed partition used by
/// parallel_for_shards — the single source of truth for shard boundaries,
/// also consulted when validating journaled shard records against a spec.
std::pair<std::size_t, std::size_t> shard_bounds(std::size_t n,
                                                 std::size_t num_shards,
                                                 std::size_t s);

/// The process-wide default pool (lazily constructed). Must not be used
/// after main() returns: static destruction tears the pool down, and any
/// later call is a hard error (CheckFailure), not silent UB.
ThreadPool& default_pool();

}  // namespace redspot
