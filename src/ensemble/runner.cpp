#include "ensemble/runner.hpp"

#include <optional>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "ensemble/cache.hpp"
#include "ensemble/shard_exec.hpp"
#include "exp/report.hpp"
#include "journal/journal.hpp"
#include "journal/run_record.hpp"
#include "stats/streaming.hpp"

namespace redspot {

ConfigSummary::ConfigSummary(std::string label,
                             StreamingSummaryOptions cost_options)
    : label_(std::move(label)), cost_(cost_options) {}

void ConfigSummary::fold(std::uint64_t replication, const RunResult& r) {
  cost_.add(replication, r.total_cost.to_double());
  restarts_.add(static_cast<double>(r.restarts));
  checkpoints_.add(static_cast<double>(r.checkpoints_committed));
  out_of_bid_.add(static_cast<double>(r.out_of_bid_terminations));
  if (!r.met_deadline) ++deadline_misses_;
  if (!r.completed) ++incomplete_;
  if (r.switched_to_on_demand) ++switched_;
  if (r.faults.any()) ++fault_affected_;
}

void ConfigSummary::merge(const ConfigSummary& other) {
  cost_.merge(other.cost_);
  restarts_.merge(other.restarts_);
  checkpoints_.merge(other.checkpoints_);
  out_of_bid_.merge(other.out_of_bid_);
  deadline_misses_ += other.deadline_misses_;
  incomplete_ += other.incomplete_;
  switched_ += other.switched_;
  fault_affected_ += other.fault_affected_;
}

double ConfigSummary::miss_rate() const {
  return count() == 0 ? 0.0
                      : static_cast<double>(deadline_misses_) /
                            static_cast<double>(count());
}

namespace {

CiRow ci_row(const ConfigSummary& s, double ci_level) {
  CiRow row;
  row.label = s.label();
  row.n = s.count();
  row.mean = s.cost().mean();
  const auto [lo, hi] = s.cost().mean_ci();
  row.ci_lo = lo;
  row.ci_hi = hi;
  row.q1 = s.cost().q1();
  row.median = s.cost().median();
  row.q3 = s.cost().q3();
  row.miss_rate = s.miss_rate();
  const auto [mlo, mhi] =
      wilson_interval(s.deadline_misses(), s.count(), ci_level);
  row.miss_lo = mlo;
  row.miss_hi = mhi;
  return row;
}

}  // namespace

std::string EnsembleResult::table(const std::string& title) const {
  std::vector<CiRow> rows;
  rows.reserve(configs.size() + groups.size());
  for (const ConfigSummary& s : configs) rows.push_back(ci_row(s, ci_level));
  for (const ConfigSummary& s : groups) rows.push_back(ci_row(s, ci_level));
  return ci_table(title, rows, ci_level);
}

EnsembleRunner::EnsembleRunner(EnsembleSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

EnsembleResult EnsembleRunner::run(ThreadPool& pool) const {
  return run(pool, EnsembleRunOptions{});
}

EnsembleResult EnsembleRunner::run(ThreadPool& pool,
                                   const EnsembleRunOptions& run_options) const {
  const std::uint64_t key = spec_.spec_hash();
  if (spec_.use_cache) {
    if (const auto hit = EnsembleCache::global().lookup(key)) {
      EnsembleResult result = *hit;
      result.from_cache = true;
      return result;
    }
  }

  // The executor owns shard semantics (compute, serialize, audit, fold).
  // This function only orchestrates: pick replay vs recompute per shard,
  // run shards on the pool, journal what was computed, reduce in order.
  const ShardExecutor exec(spec_, run_options.batch_width);

  // Intact journal records addressing this exact spec and shard partition.
  // Anything that does not match — foreign spec_hash, stale shard bounds,
  // wrong config count — is simply not replayable; the shard recomputes.
  std::vector<std::optional<EnsembleShardRecord>> replayable(spec_.num_shards);
  if (run_options.journal != nullptr) {
    for (const std::string& payload : run_options.journal->records()) {
      if (record_type(payload) != RecordType::kEnsembleShard) continue;
      std::optional<EnsembleShardRecord> rec = decode_ensemble_shard(payload);
      if (!rec || !exec.matches(*rec)) continue;
      replayable[static_cast<std::size_t>(rec->shard)] = std::move(rec);
    }
  }

  std::vector<ShardExecutor::Acc> shards(spec_.num_shards, exec.make_acc());

  enum : int { kNotRun = 0, kRecomputed = 1, kReplayed = 2 };
  std::vector<std::atomic<int>> shard_state(spec_.num_shards);

  parallel_for_shards(
      pool, spec_.replications, spec_.num_shards,
      [&](std::size_t shard, std::size_t, std::size_t) {
        // Retry- and replay-safe: rebuild this shard's outputs from
        // scratch on every attempt so nothing can be folded twice.
        shards[shard] = exec.make_acc();
        ShardExecutor::Acc& acc = shards[shard];

        if (replayable[shard].has_value()) {
          if (exec.audit(*replayable[shard])) {
            exec.fold(*replayable[shard], acc);
            shard_state[shard].store(kReplayed, std::memory_order_release);
            return;
          }
          // Checksum-intact but semantically corrupt (failed the replay
          // audit): never trust it — log and recompute.
          LOG_WARN << "journal: shard " << shard << " record failed the "
                   << "replay audit; recomputing";
        }

        // Live and replayed shards fold through the identical record path:
        // compute serializes, the fold consumes the codec-preserved
        // scalars, so a recomputed shard is bit-identical to a replayed
        // one by construction.
        const std::string payload = exec.compute(shard);
        const std::optional<EnsembleShardRecord> rec =
            decode_ensemble_shard(payload);
        REDSPOT_CHECK_MSG(rec.has_value() && exec.matches(*rec),
                          "self-computed shard record failed to decode");
        exec.fold(*rec, acc);
        // Write-ahead commit: the shard only counts once its record is
        // durable, so a crash between compute and append just recomputes.
        if (run_options.journal != nullptr)
          run_options.journal->append(payload);
        shard_state[shard].store(kRecomputed, std::memory_order_release);
      },
      ShardRunOptions{run_options.shard_retry_budget, run_options.stop});

  // Deterministic reduction: fold shards in shard (= replication) order.
  EnsembleResult result = exec.reduce(std::move(shards));

  std::size_t done = 0;
  std::size_t replayed = 0;
  for (std::size_t s = 0; s < spec_.num_shards; ++s) {
    const int state = shard_state[s].load(std::memory_order_acquire);
    if (state != kNotRun) ++done;
    if (state == kReplayed) ++replayed;
  }
  result.interrupted = done < spec_.num_shards;

  // Interrupted results are partial: never cache them.
  if (spec_.use_cache && !result.interrupted)
    EnsembleCache::global().store(key, result);
  result.shards_replayed = replayed;
  result.shards_recomputed = done - replayed;
  return result;
}

EnsembleResult EnsembleRunner::run() const { return run(default_pool()); }

}  // namespace redspot
