#include "ensemble/runner.hpp"

#include <optional>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "core/engine.hpp"
#include "ensemble/cache.hpp"
#include "ensemble/seeder.hpp"
#include "exp/report.hpp"
#include "fault/audit_observer.hpp"
#include "fault/run_validator.hpp"
#include "journal/journal.hpp"
#include "journal/run_record.hpp"
#include "market/spot_market.hpp"
#include "stats/streaming.hpp"
#include "trace/synthetic.hpp"

namespace redspot {

ConfigSummary::ConfigSummary(std::string label,
                             StreamingSummaryOptions cost_options)
    : label_(std::move(label)), cost_(cost_options) {}

void ConfigSummary::fold(std::uint64_t replication, const RunResult& r) {
  cost_.add(replication, r.total_cost.to_double());
  restarts_.add(static_cast<double>(r.restarts));
  checkpoints_.add(static_cast<double>(r.checkpoints_committed));
  out_of_bid_.add(static_cast<double>(r.out_of_bid_terminations));
  if (!r.met_deadline) ++deadline_misses_;
  if (!r.completed) ++incomplete_;
  if (r.switched_to_on_demand) ++switched_;
  if (r.faults.any()) ++fault_affected_;
}

void ConfigSummary::merge(const ConfigSummary& other) {
  cost_.merge(other.cost_);
  restarts_.merge(other.restarts_);
  checkpoints_.merge(other.checkpoints_);
  out_of_bid_.merge(other.out_of_bid_);
  deadline_misses_ += other.deadline_misses_;
  incomplete_ += other.incomplete_;
  switched_ += other.switched_;
  fault_affected_ += other.fault_affected_;
}

double ConfigSummary::miss_rate() const {
  return count() == 0 ? 0.0
                      : static_cast<double>(deadline_misses_) /
                            static_cast<double>(count());
}

namespace {

CiRow ci_row(const ConfigSummary& s, double ci_level) {
  CiRow row;
  row.label = s.label();
  row.n = s.count();
  row.mean = s.cost().mean();
  const auto [lo, hi] = s.cost().mean_ci();
  row.ci_lo = lo;
  row.ci_hi = hi;
  row.q1 = s.cost().q1();
  row.median = s.cost().median();
  row.q3 = s.cost().q3();
  row.miss_rate = s.miss_rate();
  const auto [mlo, mhi] =
      wilson_interval(s.deadline_misses(), s.count(), ci_level);
  row.miss_lo = mlo;
  row.miss_hi = mhi;
  return row;
}

}  // namespace

std::string EnsembleResult::table(const std::string& title) const {
  std::vector<CiRow> rows;
  rows.reserve(configs.size() + groups.size());
  for (const ConfigSummary& s : configs) rows.push_back(ci_row(s, ci_level));
  for (const ConfigSummary& s : groups) rows.push_back(ci_row(s, ci_level));
  return ci_table(title, rows, ci_level);
}

EnsembleRunner::EnsembleRunner(EnsembleSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

EnsembleResult EnsembleRunner::run(ThreadPool& pool) const {
  return run(pool, EnsembleRunOptions{});
}

EnsembleResult EnsembleRunner::run(ThreadPool& pool,
                                   const EnsembleRunOptions& run_options) const {
  const std::uint64_t key = spec_.spec_hash();
  if (spec_.use_cache) {
    if (const auto hit = EnsembleCache::global().lookup(key)) {
      EnsembleResult result = *hit;
      result.from_cache = true;
      return result;
    }
  }

  // Per-replication inputs shared by every shard. starts() is a pure
  // function of the scenario cell; the trace spec template is re-seeded per
  // replication and trimmed so only the evaluation window is synthesized.
  const Scenario scenario{spec_.window, spec_.slack_fraction,
                          spec_.checkpoint_cost, spec_.starts_grid};
  const std::vector<SimTime> starts = scenario.starts();
  const SyntheticTraceSpec trace_template =
      trimmed_spec(paper_trace_spec(0), window_end(spec_.window));
  const ReplicationSeeder seeder(spec_.seed);
  const InstanceType instance = cc2_instance();
  const std::size_t num_configs = spec_.configs.size();

  // Intact journal records addressing this exact spec and shard partition.
  // Anything that does not match — foreign spec_hash, stale shard bounds,
  // wrong config count — is simply not replayable; the shard recomputes.
  std::vector<std::optional<EnsembleShardRecord>> replayable(spec_.num_shards);
  if (run_options.journal != nullptr) {
    for (const std::string& payload : run_options.journal->records()) {
      if (record_type(payload) != RecordType::kEnsembleShard) continue;
      std::optional<EnsembleShardRecord> rec = decode_ensemble_shard(payload);
      if (!rec || rec->spec_hash != key) continue;
      if (rec->shard >= spec_.num_shards ||
          rec->num_configs != num_configs)
        continue;
      const auto [lo, hi] = shard_bounds(spec_.replications, spec_.num_shards,
                                         static_cast<std::size_t>(rec->shard));
      if (rec->lo != lo || rec->hi != hi) continue;
      replayable[static_cast<std::size_t>(rec->shard)] = std::move(rec);
    }
  }

  // One accumulator set per shard, pre-built so every shard carries
  // identical estimator options (the bootstrap seed is per config/group,
  // derived from the spec seed, and must agree across shards for the
  // shard merge to be a valid single-stream bootstrap).
  struct ShardAcc {
    std::vector<ConfigSummary> configs;
    std::vector<ConfigSummary> groups;
  };
  auto make_acc = [this, &seeder] {
    ShardAcc acc;
    auto opts = [this, &seeder](std::uint64_t stream) {
      return StreamingSummaryOptions{
          spec_.bootstrap_replicates, spec_.ci_level,
          seeder.seed(stream, SeedDomain::kBootstrap)};
    };
    for (std::size_t c = 0; c < spec_.configs.size(); ++c) {
      acc.configs.emplace_back(spec_.configs[c].display_label(), opts(c));
    }
    for (std::size_t g = 0; g < spec_.min_groups.size(); ++g) {
      acc.groups.emplace_back(spec_.min_groups[g].label,
                              opts(spec_.configs.size() + g));
    }
    return acc;
  };
  std::vector<ShardAcc> shards(spec_.num_shards, make_acc());

  // Fold helper shared verbatim by the live and replay paths: the fold
  // order (configs in index order, then min-groups, per replication) is
  // what makes a replayed shard bit-identical to a computed one.
  auto fold_replication = [this](ShardAcc& acc, std::size_t r,
                                 const RunResult* results) {
    for (std::size_t c = 0; c < spec_.configs.size(); ++c)
      acc.configs[c].fold(r, results[c]);
    for (std::size_t g = 0; g < spec_.min_groups.size(); ++g) {
      const MinGroup& group = spec_.min_groups[g];
      std::size_t best = group.members.front();
      for (const std::size_t m : group.members) {
        if (results[m].total_cost < results[best].total_cost) best = m;
      }
      acc.groups[g].fold(r, results[best]);
    }
  };

  auto make_experiment = [&](std::size_t r) {
    return Experiment::paper(starts[r % starts.size()], spec_.slack_fraction,
                             spec_.checkpoint_cost,
                             seeder.seed(r, SeedDomain::kQueueDelay));
  };

  // Re-audits and folds one journaled shard; returns false (leaving acc
  // dirty — the caller resets it) if any replayed run fails the audit.
  auto replay_shard = [&](const EnsembleShardRecord& rec,
                          ShardAcc& acc) -> bool {
    for (std::size_t r = static_cast<std::size_t>(rec.lo);
         r < static_cast<std::size_t>(rec.hi); ++r) {
      const RunResult* results =
          rec.runs.data() + (r - static_cast<std::size_t>(rec.lo)) * num_configs;
      const RunValidator validator(make_experiment(r), instance.on_demand_rate);
      for (std::size_t c = 0; c < num_configs; ++c) {
        if (!validator.audit(results[c], AuditMode::kReplay).empty())
          return false;
      }
      fold_replication(acc, r, results);
    }
    return true;
  };

  enum : int { kNotRun = 0, kRecomputed = 1, kReplayed = 2 };
  std::vector<std::atomic<int>> shard_state(spec_.num_shards);

  parallel_for_shards(
      pool, spec_.replications, spec_.num_shards,
      [&](std::size_t shard, std::size_t lo, std::size_t hi) {
        // Retry- and replay-safe: rebuild this shard's outputs from
        // scratch on every attempt so nothing can be folded twice.
        shards[shard] = make_acc();
        ShardAcc& acc = shards[shard];

        if (replayable[shard].has_value()) {
          if (replay_shard(*replayable[shard], acc)) {
            shard_state[shard].store(kReplayed, std::memory_order_release);
            return;
          }
          // Checksum-intact but semantically corrupt (failed the replay
          // audit): never trust it — log and recompute.
          LOG_WARN << "journal: shard " << shard << " record failed the "
                   << "replay audit; recomputing";
          shards[shard] = make_acc();
        }

        std::optional<ShardRecordBuilder> builder;
        if (run_options.journal != nullptr) {
          builder.emplace(key, shard, lo, hi,
                          static_cast<std::uint32_t>(num_configs));
        }
        std::vector<RunResult> results(spec_.configs.size());
        for (std::size_t r = lo; r < hi; ++r) {
          // This replication's independent substreams.
          SyntheticTraceSpec trace_spec = trace_template;
          trace_spec.seed = seeder.seed(r, SeedDomain::kTrace);
          const SpotMarket market(generate_traces(trace_spec), instance,
                                  QueueDelayModel());
          const Experiment experiment = make_experiment(r);
          AuditObserver audit(experiment, instance.on_demand_rate);
          for (std::size_t c = 0; c < spec_.configs.size(); ++c) {
            auto strategy = spec_.configs[c].make_strategy();
            Engine engine(market, experiment, *strategy, spec_.engine);
            engine.add_observer(&audit);
            results[c] = engine.run();
            if (builder.has_value()) builder->add_run(results[c]);
          }
          fold_replication(acc, r, results.data());
        }
        // Write-ahead commit: the shard only counts once its record is
        // durable, so a crash between compute and append just recomputes.
        if (builder.has_value()) run_options.journal->append(builder->payload());
        shard_state[shard].store(kRecomputed, std::memory_order_release);
      },
      ShardRunOptions{run_options.shard_retry_budget, run_options.stop});

  // Deterministic reduction: fold shards in shard (= replication) order.
  EnsembleResult result;
  result.ci_level = spec_.ci_level;
  ShardAcc merged = std::move(shards.front());
  for (std::size_t s = 1; s < shards.size(); ++s) {
    for (std::size_t c = 0; c < merged.configs.size(); ++c)
      merged.configs[c].merge(shards[s].configs[c]);
    for (std::size_t g = 0; g < merged.groups.size(); ++g)
      merged.groups[g].merge(shards[s].groups[g]);
  }
  result.configs = std::move(merged.configs);
  result.groups = std::move(merged.groups);

  std::size_t done = 0;
  std::size_t replayed = 0;
  for (std::size_t s = 0; s < spec_.num_shards; ++s) {
    const int state = shard_state[s].load(std::memory_order_acquire);
    if (state != kNotRun) ++done;
    if (state == kReplayed) ++replayed;
  }
  result.interrupted = done < spec_.num_shards;

  // Interrupted results are partial: never cache them.
  if (spec_.use_cache && !result.interrupted)
    EnsembleCache::global().store(key, result);
  result.shards_replayed = replayed;
  result.shards_recomputed = done - replayed;
  return result;
}

EnsembleResult EnsembleRunner::run() const { return run(default_pool()); }

}  // namespace redspot
