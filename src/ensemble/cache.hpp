// Process-wide ensemble result cache.
//
// Keyed by EnsembleSpec::spec_hash(): a sweep that revisits a cell it has
// already computed (the common case when benches scan bid grids or rerun a
// headline cell) gets the finished summaries back instead of re-simulating
// spec.replications × |configs| engine runs. Results are immutable once
// stored; lookups hand out shared ownership so entries stay valid across
// concurrent sweeps even after eviction. Thread-safe.
//
// The cache is bounded: entries are byte-accounted (an approximation of
// their heap footprint, dominated by the per-summary bootstrap replicate
// buffers) and evicted in least-recently-used order once the configured
// capacity is exceeded. A lookup hit refreshes recency; a store of an
// entry larger than the whole capacity is simply not retained. The
// accounting/eviction core is the shared LruByteCache (common/lru.hpp) —
// the serve-layer model registry runs on the same engine.
#pragma once

#include <cstdint>
#include <memory>

#include "common/lru.hpp"
#include "ensemble/runner.hpp"

namespace redspot {

class EnsembleCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;           ///< approximate footprint of all entries
    std::size_t capacity_bytes = 0;  ///< eviction threshold
  };

  /// Default capacity: generous for the paper sweeps (every figure's cells
  /// together stay far below this) yet bounded, so a long-lived process
  /// scanning thousands of cells cannot grow without limit.
  static constexpr std::size_t kDefaultCapacityBytes = 256u << 20;

  /// The process-wide cache used by EnsembleRunner.
  static EnsembleCache& global();

  /// Returns the cached result for `key`, or nullptr (counts a miss).
  /// A hit moves the entry to most-recently-used.
  std::shared_ptr<const EnsembleResult> lookup(std::uint64_t key);

  /// Stores `result` under `key` (first writer wins on a race), then
  /// evicts least-recently-used entries until within capacity.
  void store(std::uint64_t key, EnsembleResult result);

  /// Sets the eviction threshold and evicts immediately if over it.
  /// A capacity of 0 disables retention entirely (every store evicts).
  void set_capacity_bytes(std::size_t capacity);

  Stats stats() const;
  void clear();

 private:
  LruByteCache<std::uint64_t, const EnsembleResult> core_{
      kDefaultCapacityBytes};
};

}  // namespace redspot
