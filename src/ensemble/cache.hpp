// Process-wide ensemble result cache.
//
// Keyed by EnsembleSpec::spec_hash(): a sweep that revisits a cell it has
// already computed (the common case when benches scan bid grids or rerun a
// headline cell) gets the finished summaries back instead of re-simulating
// spec.replications × |configs| engine runs. Results are immutable once
// stored; lookups hand out shared ownership so entries stay valid across
// concurrent sweeps. Thread-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "ensemble/runner.hpp"

namespace redspot {

class EnsembleCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };

  /// The process-wide cache used by EnsembleRunner.
  static EnsembleCache& global();

  /// Returns the cached result for `key`, or nullptr (counts a miss).
  std::shared_ptr<const EnsembleResult> lookup(std::uint64_t key);

  /// Stores `result` under `key` (first writer wins on a race).
  void store(std::uint64_t key, EnsembleResult result);

  Stats stats() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const EnsembleResult>>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace redspot
