// Streaming summary of one ensemble metric distribution.
//
// Folds per-replication scalars (costs, in dollars) into O(1) memory:
// Welford mean/variance plus min/max (stats/descriptive.hpp), three P²
// quantile markers (q1 / median / q3 — the boxplot statistics the paper
// reports), and a Poisson-bootstrap CI for the mean (stats/streaming.hpp).
// Observations carry their replication index so bootstrap weights are
// reproducible regardless of accumulation order; merge() combines shard
// accumulators deterministically (see DESIGN.md §8).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "stats/descriptive.hpp"
#include "stats/streaming.hpp"

namespace redspot {

struct StreamingSummaryOptions {
  std::size_t bootstrap_replicates = 200;
  double ci_level = 0.95;
  /// Fixes the bootstrap weight stream; derive via ReplicationSeeder.
  std::uint64_t bootstrap_seed = 0;
};

/// Single-pass, mergeable summary of a scalar distribution.
class StreamingSummary {
 public:
  explicit StreamingSummary(StreamingSummaryOptions options = {});

  /// Accounts observation `index` (its replication number) with value `x`.
  void add(std::uint64_t index, double x);

  /// Folds `other` into this summary. Mean/variance/min/max merge exactly;
  /// quantiles merge via the P² marker barycenter (approximate but
  /// deterministic). Requires identical bootstrap replicate counts and CI
  /// level.
  void merge(const StreamingSummary& other);

  std::size_t count() const { return welford_.count(); }
  double mean() const { return welford_.mean(); }
  double variance() const { return welford_.variance(); }
  double stddev() const { return welford_.stddev(); }
  double min() const { return welford_.min(); }
  double max() const { return welford_.max(); }
  double q1() const { return q1_.value(); }
  double median() const { return q2_.value(); }
  double q3() const { return q3_.value(); }

  /// Bootstrap percentile CI for the mean at the configured level.
  /// Requires count() > 0.
  std::pair<double, double> mean_ci() const;

  const StreamingSummaryOptions& options() const { return options_; }

 private:
  StreamingSummaryOptions options_;
  RunningStats welford_;
  P2Quantile q1_{0.25};
  P2Quantile q2_{0.5};
  P2Quantile q3_{0.75};
  PoissonBootstrap bootstrap_;
};

}  // namespace redspot
