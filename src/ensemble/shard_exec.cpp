#include "ensemble/shard_exec.hpp"

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "core/batch/batched_engine.hpp"
#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "exp/scenario.hpp"
#include "fault/audit_observer.hpp"
#include "fault/run_validator.hpp"
#include "market/spot_market.hpp"

namespace redspot {

ShardExecutor::ShardExecutor(const EnsembleSpec& spec,
                             std::size_t batch_width)
    : spec_(spec),
      spec_hash_(spec.spec_hash()),
      batch_width_(batch_width),
      trace_template_(
          trimmed_spec(paper_trace_spec(0), window_end(spec.window))),
      seeder_(spec.seed),
      instance_(cc2_instance()) {
  // starts() is a pure function of the scenario cell; the trace spec
  // template is re-seeded per replication and trimmed so only the
  // evaluation window is synthesized.
  const Scenario scenario{spec_.window, spec_.slack_fraction,
                          spec_.checkpoint_cost, spec_.starts_grid};
  starts_ = scenario.starts();
  // Fixed-policy configs run through the batched lockstep engine when the
  // engine options qualify; adaptive / large-bid lanes stay scalar.
  if (batch_width_ >= 2 &&
      batch::BatchedSweepEngine::can_batch(spec_.engine)) {
    for (std::size_t c = 0; c < spec_.configs.size(); ++c) {
      if (spec_.configs[c].kind == EnsembleConfig::Kind::kFixedPolicy)
        batchable_.push_back(c);
    }
    if (batchable_.size() < 2) batchable_.clear();
  }
}

std::pair<std::size_t, std::size_t> ShardExecutor::bounds(
    std::size_t s) const {
  return shard_bounds(spec_.replications, spec_.num_shards, s);
}

ShardExecutor::Acc ShardExecutor::make_acc() const {
  Acc acc;
  // Identical estimator options on every shard: the bootstrap seed is per
  // config/group, derived from the spec seed, and must agree across shards
  // for the shard merge to be a valid single-stream bootstrap.
  auto opts = [this](std::uint64_t stream) {
    return StreamingSummaryOptions{spec_.bootstrap_replicates, spec_.ci_level,
                                   seeder_.seed(stream,
                                                SeedDomain::kBootstrap)};
  };
  for (std::size_t c = 0; c < spec_.configs.size(); ++c)
    acc.configs.emplace_back(spec_.configs[c].display_label(), opts(c));
  for (std::size_t g = 0; g < spec_.min_groups.size(); ++g)
    acc.groups.emplace_back(spec_.min_groups[g].label,
                            opts(spec_.configs.size() + g));
  return acc;
}

Experiment ShardExecutor::make_experiment(std::size_t r) const {
  return Experiment::paper(starts_[r % starts_.size()], spec_.slack_fraction,
                           spec_.checkpoint_cost,
                           seeder_.seed(r, SeedDomain::kQueueDelay));
}

std::string ShardExecutor::compute(std::size_t s,
                                   const ProgressFn& progress) const {
  const auto [lo, hi] = bounds(s);
  ShardRecordBuilder builder(spec_hash_, s, lo, hi,
                             static_cast<std::uint32_t>(num_configs()));
  std::vector<RunResult> results(spec_.configs.size());
  std::vector<char> is_batched(spec_.configs.size(), 0);
  for (const std::size_t c : batchable_) is_batched[c] = 1;
  for (std::size_t r = lo; r < hi; ++r) {
    // This replication's independent substreams.
    SyntheticTraceSpec trace_spec = trace_template_;
    trace_spec.seed = seeder_.seed(r, SeedDomain::kTrace);
    const SpotMarket market(generate_traces(trace_spec), instance_,
                            QueueDelayModel());
    const Experiment experiment = make_experiment(r);
    AuditObserver audit_obs(experiment, instance_.on_demand_rate,
                            AuditMode::kFull, spec_.engine.regime);
    // Fixed-policy lanes advance in lockstep over this replication's
    // trace (bit-identical to the scalar runs below — the observer only
    // acts per finished result, so lane interleaving is invisible to it).
    if (!batchable_.empty()) {
      const batch::BatchedSweepEngine batcher(market, spec_.engine);
      for (std::size_t g = 0; g < batchable_.size(); g += batch_width_) {
        const std::size_t end =
            std::min(g + batch_width_, batchable_.size());
        std::vector<batch::BatchConfig> lanes;
        lanes.reserve(end - g);
        for (std::size_t k = g; k < end; ++k) {
          const EnsembleConfig& cfg = spec_.configs[batchable_[k]];
          lanes.push_back(batch::BatchConfig{experiment, cfg.policy, cfg.bid,
                                             cfg.zones, &audit_obs});
        }
        const std::vector<RunResult> runs = batcher.run(lanes);
        for (std::size_t k = g; k < end; ++k)
          results[batchable_[k]] = runs[k - g];
      }
    }
    // Scalar lanes (adaptive, large-bid, or batching disabled), then the
    // canonical add_run order: configs in index order, per replication.
    for (std::size_t c = 0; c < spec_.configs.size(); ++c) {
      if (is_batched[c] == 0) {
        auto strategy = spec_.configs[c].make_strategy();
        Engine engine(market, experiment, *strategy, spec_.engine);
        engine.add_observer(&audit_obs);
        results[c] = engine.run();
      }
      builder.add_run(results[c]);
    }
    if (progress) progress(r - lo + 1);
  }
  return builder.payload();
}

bool ShardExecutor::matches(const EnsembleShardRecord& rec) const {
  if (rec.spec_hash != spec_hash_) return false;
  if (rec.shard >= spec_.num_shards) return false;
  if (rec.num_configs != num_configs()) return false;
  const auto [lo, hi] = bounds(static_cast<std::size_t>(rec.shard));
  return rec.lo == lo && rec.hi == hi;
}

bool ShardExecutor::audit(const EnsembleShardRecord& rec) const {
  const std::size_t configs = num_configs();
  for (std::size_t r = static_cast<std::size_t>(rec.lo);
       r < static_cast<std::size_t>(rec.hi); ++r) {
    const RunResult* results =
        rec.runs.data() + (r - static_cast<std::size_t>(rec.lo)) * configs;
    const RunValidator validator(make_experiment(r), instance_.on_demand_rate);
    for (std::size_t c = 0; c < configs; ++c) {
      if (!validator.audit(results[c], AuditMode::kReplay).empty())
        return false;
    }
  }
  return true;
}

void ShardExecutor::fold(const EnsembleShardRecord& rec, Acc& acc) const {
  REDSPOT_CHECK_MSG(matches(rec), "folding a foreign shard record");
  const std::size_t configs = num_configs();
  for (std::size_t r = static_cast<std::size_t>(rec.lo);
       r < static_cast<std::size_t>(rec.hi); ++r) {
    const RunResult* results =
        rec.runs.data() + (r - static_cast<std::size_t>(rec.lo)) * configs;
    // The canonical fold order — configs in index order, then min-groups,
    // per replication — is what makes every consumer bit-identical.
    for (std::size_t c = 0; c < configs; ++c)
      acc.configs[c].fold(r, results[c]);
    for (std::size_t g = 0; g < spec_.min_groups.size(); ++g) {
      const MinGroup& group = spec_.min_groups[g];
      std::size_t best = group.members.front();
      for (const std::size_t m : group.members) {
        if (results[m].total_cost < results[best].total_cost) best = m;
      }
      acc.groups[g].fold(r, results[best]);
    }
  }
}

EnsembleResult ShardExecutor::reduce(std::vector<Acc>&& shards) const {
  REDSPOT_CHECK(!shards.empty());
  EnsembleResult result;
  result.ci_level = spec_.ci_level;
  Acc merged = std::move(shards.front());
  for (std::size_t s = 1; s < shards.size(); ++s) {
    for (std::size_t c = 0; c < merged.configs.size(); ++c)
      merged.configs[c].merge(shards[s].configs[c]);
    for (std::size_t g = 0; g < merged.groups.size(); ++g)
      merged.groups[g].merge(shards[s].groups[g]);
  }
  result.configs = std::move(merged.configs);
  result.groups = std::move(merged.groups);
  return result;
}

}  // namespace redspot
