#include "ensemble/streaming.hpp"

#include "common/check.hpp"

namespace redspot {

StreamingSummary::StreamingSummary(StreamingSummaryOptions options)
    : options_(options),
      bootstrap_(options.bootstrap_replicates, options.bootstrap_seed) {
  REDSPOT_CHECK(options.ci_level > 0.0 && options.ci_level < 1.0);
}

void StreamingSummary::add(std::uint64_t index, double x) {
  welford_.add(x);
  q1_.add(x);
  q2_.add(x);
  q3_.add(x);
  bootstrap_.add(index, x);
}

void StreamingSummary::merge(const StreamingSummary& other) {
  REDSPOT_CHECK(options_.bootstrap_replicates ==
                other.options_.bootstrap_replicates);
  REDSPOT_CHECK(options_.ci_level == other.options_.ci_level);
  welford_.merge(other.welford_);
  q1_.merge(other.q1_);
  q2_.merge(other.q2_);
  q3_.merge(other.q3_);
  bootstrap_.merge(other.bootstrap_);
}

std::pair<double, double> StreamingSummary::mean_ci() const {
  return bootstrap_.mean_ci(options_.ci_level, welford_.mean());
}

}  // namespace redspot
