// ShardExecutor: the single source of truth for what one ensemble shard
// computes, how it is serialized, and how it folds into a summary.
//
// A shard is the unit of distribution, durability and recovery: shard s
// covers the fixed replication range shard_bounds(replications, num_shards,
// s), its simulation is a pure function of the EnsembleSpec, and its
// serialized form is exactly one kEnsembleShard journal record. Every
// consumer — the in-process EnsembleRunner, the crash-resume journal
// replay, and the distributed fabric's coordinator/worker fleet — goes
// through this one class:
//
//   compute(s)          -> the shard's canonical record payload
//   matches/audit(rec)  -> is this record trustworthy for this spec?
//   fold(rec, acc)      -> accumulate it (canonical order)
//   reduce(accs)        -> merge per-shard accumulators in shard order
//
// Because fold consumes only codec-preserved integer scalars and reduce
// merges in fixed shard order, the final EnsembleResult is bit-identical
// no matter which process computed which shard, in what order, how many
// times work was reassigned, or how often anything crashed in between.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ensemble/runner.hpp"
#include "ensemble/seeder.hpp"
#include "ensemble/spec.hpp"
#include "journal/run_record.hpp"
#include "market/instance_type.hpp"
#include "trace/synthetic.hpp"

namespace redspot {

class ShardExecutor {
 public:
  /// Default lanes per lockstep group when batching fixed-policy configs.
  static constexpr std::size_t kDefaultBatchWidth = 8;

  /// `spec` must be validated and outlive the executor. `batch_width` is
  /// the execution-only lockstep group size for the spec's fixed-policy
  /// configs (core/batch): < 2 disables batching. It must never affect
  /// results (batched lanes are bit-identical to scalar runs), so it is
  /// deliberately NOT part of spec_hash.
  explicit ShardExecutor(const EnsembleSpec& spec,
                         std::size_t batch_width = kDefaultBatchWidth);

  const EnsembleSpec& spec() const { return spec_; }
  std::uint64_t spec_hash() const { return spec_hash_; }
  std::size_t num_shards() const { return spec_.num_shards; }
  std::size_t num_configs() const { return spec_.configs.size(); }

  /// Replication range [lo, hi) of shard `s` (the fixed partition).
  std::pair<std::size_t, std::size_t> bounds(std::size_t s) const;

  /// Per-shard accumulator set; every shard must start from an identical
  /// one (same estimator options and bootstrap seeds) for the shard merge
  /// to be a valid single-stream reduction.
  struct Acc {
    std::vector<ConfigSummary> configs;
    std::vector<ConfigSummary> groups;
  };
  Acc make_acc() const;

  /// Called after each completed replication with the count of
  /// replications finished so far in this shard — the fabric worker's
  /// heartbeat/chaos hook. Must not throw.
  using ProgressFn = std::function<void(std::size_t replications_done)>;

  /// Simulates shard `s` and returns its canonical kEnsembleShard record
  /// payload (journal format == wire format). Deterministic: depends only
  /// on (spec, s). Throws on simulation/audit failure.
  std::string compute(std::size_t s, const ProgressFn& progress = {}) const;

  /// True when `rec` addresses this exact spec and shard partition
  /// (spec_hash, shard index, replication bounds, config count). A foreign
  /// or stale record is simply not replayable.
  bool matches(const EnsembleShardRecord& rec) const;

  /// Re-audits every run of a matching record (AuditMode::kReplay). A
  /// checksum-intact but semantically corrupt record fails here and must
  /// be recomputed, never trusted.
  bool audit(const EnsembleShardRecord& rec) const;

  /// Folds a matching record into `acc` in the canonical order (configs in
  /// index order, then min-groups, per replication ascending).
  void fold(const EnsembleShardRecord& rec, Acc& acc) const;

  /// Merges per-shard accumulators in shard order into an EnsembleResult
  /// (summaries + ci_level; provenance fields are the caller's).
  EnsembleResult reduce(std::vector<Acc>&& shards) const;

 private:
  Experiment make_experiment(std::size_t r) const;

  const EnsembleSpec& spec_;
  std::uint64_t spec_hash_;
  std::size_t batch_width_;
  /// Indices into spec_.configs eligible for the batched path (fixed
  /// policies); empty when the engine options disqualify the spec.
  std::vector<std::size_t> batchable_;
  std::vector<SimTime> starts_;
  SyntheticTraceSpec trace_template_;
  ReplicationSeeder seeder_;
  InstanceType instance_;
};

}  // namespace redspot
