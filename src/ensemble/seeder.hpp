// Counter-based seed derivation for ensemble replications.
//
// Every replication of an ensemble owns independent RNG substreams — one
// per randomness domain (trace synthesis, queue delays, bootstrap
// weights). Seeds are a pure function of (base seed, replication index,
// domain): no generator state is shared or advanced between replications,
// so any subset of replications can run on any thread in any order and
// still draw exactly the streams it would draw in a serial sweep. This is
// the "seed sequence" side of the determinism contract (DESIGN.md §8).
#pragma once

#include <cstdint>

namespace redspot {

/// Names one randomness consumer inside a replication.
enum class SeedDomain : std::uint64_t {
  kTrace = 1,      ///< synthetic trace realization
  kQueueDelay = 2, ///< engine spot-request queue delays
  kBootstrap = 3,  ///< streaming-summary bootstrap weights
};

/// Stateless counter-based seed sequence over (replication, domain).
class ReplicationSeeder {
 public:
  explicit ReplicationSeeder(std::uint64_t base_seed) : base_(base_seed) {}

  std::uint64_t base_seed() const { return base_; }

  /// Seed for `domain` of replication `replication`. Pure function;
  /// distinct (replication, domain) pairs give statistically independent
  /// seeds (SplitMix64 cascade).
  std::uint64_t seed(std::uint64_t replication, SeedDomain domain) const;

 private:
  std::uint64_t base_;
};

}  // namespace redspot
