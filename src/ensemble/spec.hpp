// Ensemble specification: what to replicate, how many times, and how.
//
// An EnsembleSpec names one scenario cell (volatility window, slack,
// checkpoint cost), a set of strategy configurations to evaluate, and a
// replication plan. Each replication r synthesizes its own trace
// realization from a ReplicationSeeder substream, starts at one of the
// scenario's overlapping chunk offsets (r mod starts_grid), and runs every
// configuration against the same realization — so cross-configuration
// comparisons are paired, exactly like the paper's per-chunk boxplots.
//
// spec_hash() fingerprints every field that affects the numerical result;
// it keys the EnsembleCache so identical sweeps are never recomputed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/money.hpp"
#include "core/engine.hpp"
#include "core/policy.hpp"
#include "core/strategy.hpp"
#include "exp/scenario.hpp"

namespace redspot {

/// One strategy configuration evaluated by the ensemble.
struct EnsembleConfig {
  enum class Kind { kFixedPolicy, kAdaptive, kLargeBid };

  Kind kind = Kind::kFixedPolicy;
  PolicyKind policy = PolicyKind::kPeriodic;  ///< kFixedPolicy only
  Money bid = Money::cents(81);               ///< kFixedPolicy only
  std::vector<std::size_t> zones{0};          ///< kFixedPolicy / kLargeBid
  Money threshold = Money::cents(81);         ///< kLargeBid only
  /// Display label; empty derives one from the fields.
  std::string label;

  std::string display_label() const;

  /// Fresh strategy instance for one run (strategies are stateful).
  std::unique_ptr<Strategy> make_strategy() const;
};

/// Derived metric: per replication, the minimum cost over a set of member
/// configurations (the paper's "best-case redundancy-based policy").
struct MinGroup {
  std::string label;
  std::vector<std::size_t> members;  ///< indices into EnsembleSpec::configs
};

struct EnsembleSpec {
  // --- scenario cell -------------------------------------------------------
  VolatilityWindow window = VolatilityWindow::kHigh;
  double slack_fraction = 0.15;
  Duration checkpoint_cost = 300;

  // --- replication plan ----------------------------------------------------
  std::uint64_t seed = 42;
  std::size_t replications = 1000;
  /// Number of overlapping chunk starts the window is divided into;
  /// replication r starts at chunk r % starts_grid (the paper's 80).
  std::size_t starts_grid = 80;
  /// Fixed shard count for deterministic parallel reduction. Must not
  /// depend on the executing pool's size.
  std::size_t num_shards = 64;

  // --- estimators ----------------------------------------------------------
  std::size_t bootstrap_replicates = 200;
  double ci_level = 0.95;

  // --- what to run ---------------------------------------------------------
  EngineOptions engine;
  std::vector<EnsembleConfig> configs;
  std::vector<MinGroup> min_groups;

  /// Consult/populate the process-wide EnsembleCache.
  bool use_cache = true;

  /// Throws CheckFailure on malformed specs (no configs, out-of-range
  /// group members, zero replications, ...).
  void validate() const;

  /// Fingerprint of every result-affecting field (not use_cache).
  std::uint64_t spec_hash() const;
};

}  // namespace redspot
