#include "ensemble/seeder.hpp"

#include "common/random.hpp"

namespace redspot {

std::uint64_t ReplicationSeeder::seed(std::uint64_t replication,
                                      SeedDomain domain) const {
  // Two chained SplitMix64 steps with odd multipliers decorrelate nearby
  // (replication, domain) pairs; the same construction Rng uses for its
  // stream parameter.
  std::uint64_t s = base_ ^ (0x9E3779B97F4A7C15ULL * (replication + 1));
  (void)splitmix64(s);
  s ^= 0xA0761D6478BD642FULL * (static_cast<std::uint64_t>(domain) + 1);
  return splitmix64(s);
}

}  // namespace redspot
