#include "ensemble/cache.hpp"

namespace redspot {

namespace {

/// Approximate heap footprint of one summary: the struct itself, the label
/// string, and the bootstrap replicate accumulators (two doubles per
/// replicate — sums and weights — which dominate for the default 200).
std::size_t approx_bytes(const ConfigSummary& s) {
  return sizeof(ConfigSummary) + s.label().capacity() +
         2 * s.cost().options().bootstrap_replicates * sizeof(double);
}

std::size_t approx_bytes(const EnsembleResult& r) {
  std::size_t bytes = sizeof(EnsembleResult);
  for (const ConfigSummary& s : r.configs) bytes += approx_bytes(s);
  for (const ConfigSummary& s : r.groups) bytes += approx_bytes(s);
  return bytes;
}

}  // namespace

EnsembleCache& EnsembleCache::global() {
  static EnsembleCache cache;
  return cache;
}

std::shared_ptr<const EnsembleResult> EnsembleCache::lookup(
    std::uint64_t key) {
  return core_.lookup(key);
}

void EnsembleCache::store(std::uint64_t key, EnsembleResult result) {
  auto entry = std::make_shared<const EnsembleResult>(std::move(result));
  const std::size_t bytes = approx_bytes(*entry);
  core_.store(key, std::move(entry), bytes);
}

void EnsembleCache::set_capacity_bytes(std::size_t capacity) {
  core_.set_capacity_bytes(capacity);
}

EnsembleCache::Stats EnsembleCache::stats() const {
  const LruStats s = core_.stats();
  return Stats{s.hits,    s.misses, s.evictions,
               s.entries, s.bytes,  s.capacity_bytes};
}

void EnsembleCache::clear() { core_.clear(); }

}  // namespace redspot
