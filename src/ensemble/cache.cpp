#include "ensemble/cache.hpp"

namespace redspot {

namespace {

/// Approximate heap footprint of one summary: the struct itself, the label
/// string, and the bootstrap replicate accumulators (two doubles per
/// replicate — sums and weights — which dominate for the default 200).
std::size_t approx_bytes(const ConfigSummary& s) {
  return sizeof(ConfigSummary) + s.label().capacity() +
         2 * s.cost().options().bootstrap_replicates * sizeof(double);
}

std::size_t approx_bytes(const EnsembleResult& r) {
  std::size_t bytes = sizeof(EnsembleResult);
  for (const ConfigSummary& s : r.configs) bytes += approx_bytes(s);
  for (const ConfigSummary& s : r.groups) bytes += approx_bytes(s);
  return bytes;
}

}  // namespace

EnsembleCache& EnsembleCache::global() {
  static EnsembleCache cache;
  return cache;
}

std::shared_ptr<const EnsembleResult> EnsembleCache::lookup(
    std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->result;
}

void EnsembleCache::store(std::uint64_t key, EnsembleResult result) {
  auto entry = std::make_shared<const EnsembleResult>(std::move(result));
  const std::size_t bytes = approx_bytes(*entry);
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(key) != index_.end()) return;  // first writer wins
  lru_.push_front(Entry{key, std::move(entry), bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += bytes;
  evict_to_capacity();
}

void EnsembleCache::set_capacity_bytes(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_bytes_ = capacity;
  evict_to_capacity();
}

void EnsembleCache::evict_to_capacity() {
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

EnsembleCache::Stats EnsembleCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_,  evictions_,
               lru_.size(),     bytes_,     capacity_bytes_};
}

void EnsembleCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

}  // namespace redspot
