#include "ensemble/cache.hpp"

namespace redspot {

EnsembleCache& EnsembleCache::global() {
  static EnsembleCache cache;
  return cache;
}

std::shared_ptr<const EnsembleResult> EnsembleCache::lookup(
    std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void EnsembleCache::store(std::uint64_t key, EnsembleResult result) {
  auto entry = std::make_shared<const EnsembleResult>(std::move(result));
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.try_emplace(key, std::move(entry));
}

EnsembleCache::Stats EnsembleCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, entries_.size()};
}

void EnsembleCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace redspot
