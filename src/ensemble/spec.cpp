#include "ensemble/spec.hpp"

#include "common/check.hpp"
#include "common/hash.hpp"
#include "core/adaptive/adaptive_runner.hpp"
#include "core/policies/large_bid.hpp"

namespace redspot {

std::string EnsembleConfig::display_label() const {
  if (!label.empty()) return label;
  switch (kind) {
    case Kind::kAdaptive:
      return "adaptive";
    case Kind::kLargeBid:
      return "large-bid L=" + threshold.str();
    case Kind::kFixedPolicy:
      break;
  }
  std::string zs;
  for (std::size_t z : zones) {
    if (!zs.empty()) zs += ",";
    zs += std::to_string(z);
  }
  return to_string(policy) + " " + bid.str() + " z{" + zs + "}";
}

std::unique_ptr<Strategy> EnsembleConfig::make_strategy() const {
  switch (kind) {
    case Kind::kAdaptive:
      return std::make_unique<AdaptiveStrategy>();
    case Kind::kLargeBid:
      REDSPOT_CHECK(zones.size() == 1);
      return std::make_unique<FixedStrategy>(
          LargeBidPolicy::large_bid(), zones,
          std::make_unique<LargeBidPolicy>(threshold));
    case Kind::kFixedPolicy:
      REDSPOT_CHECK(!zones.empty());
      return std::make_unique<FixedStrategy>(bid, zones,
                                             make_policy(policy));
  }
  REDSPOT_CHECK_FAIL("unknown EnsembleConfig::Kind");
}

void EnsembleSpec::validate() const {
  REDSPOT_CHECK(replications > 0);
  REDSPOT_CHECK(starts_grid > 0);
  REDSPOT_CHECK(num_shards > 0);
  REDSPOT_CHECK(bootstrap_replicates >= 2);
  REDSPOT_CHECK(ci_level > 0.0 && ci_level < 1.0);
  REDSPOT_CHECK_MSG(!configs.empty(), "ensemble spec has no configs");
  for (const EnsembleConfig& c : configs) {
    if (c.kind != EnsembleConfig::Kind::kAdaptive)
      REDSPOT_CHECK(!c.zones.empty());
  }
  for (const MinGroup& g : min_groups) {
    REDSPOT_CHECK_MSG(!g.members.empty(), "empty min-group");
    for (std::size_t m : g.members)
      REDSPOT_CHECK_MSG(m < configs.size(), "min-group member out of range");
  }
  engine.faults.validate();
}

namespace {

void hash_config(HashStream& h, const EnsembleConfig& c) {
  h.u64(static_cast<std::uint64_t>(c.kind));
  h.u64(static_cast<std::uint64_t>(c.policy));
  h.i64(c.bid.micros());
  h.i64(c.threshold.micros());
  h.u64(c.zones.size());
  for (std::size_t z : c.zones) h.u64(z);
  // The label is presentation-only but part of the rendered summary, which
  // the cache returns verbatim — hash it so relabelled sweeps do not alias.
  h.str(c.display_label());
}

}  // namespace

std::uint64_t EnsembleSpec::spec_hash() const {
  HashStream h;
  h.u64(static_cast<std::uint64_t>(window));
  h.f64(slack_fraction);
  h.i64(checkpoint_cost);
  h.u64(seed);
  h.u64(replications);
  h.u64(starts_grid);
  h.u64(num_shards);
  h.u64(bootstrap_replicates);
  h.f64(ci_level);
  hash_engine_options(h, engine);
  h.u64(configs.size());
  for (const EnsembleConfig& c : configs) hash_config(h, c);
  h.u64(min_groups.size());
  for (const MinGroup& g : min_groups) {
    h.str(g.label);
    h.u64(g.members.size());
    for (std::size_t m : g.members) h.u64(m);
  }
  return h.digest();
}

}  // namespace redspot
