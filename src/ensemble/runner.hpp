// EnsembleRunner: deterministic replicated Monte-Carlo sweeps.
//
// Runs every configuration of an EnsembleSpec over N independent trace
// realizations and streams the RunResults into O(configs) summary
// accumulators — per-replication results are folded and discarded, never
// stored. Execution is sharded over a ThreadPool with a fixed shard
// partition (parallel_for_shards): shard s accumulates its contiguous
// replication range in index order, and shard accumulators are merged in
// shard order afterwards, so the summary is bit-identical for any thread
// count. A process-wide result cache keyed by (spec hash) skips
// recomputation across sweeps. See DESIGN.md §8.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/run_result.hpp"
#include "ensemble/spec.hpp"
#include "ensemble/streaming.hpp"
#include "stats/descriptive.hpp"

namespace redspot {

class RunJournal;

/// Streaming summary of every replication of one configuration (or one
/// min-group): the cost distribution plus outcome and robustness counters.
class ConfigSummary {
 public:
  ConfigSummary() = default;
  ConfigSummary(std::string label, StreamingSummaryOptions cost_options);

  /// Folds replication `replication`'s audited result.
  void fold(std::uint64_t replication, const RunResult& r);

  /// Merges another shard's accumulator (call in shard order).
  void merge(const ConfigSummary& other);

  const std::string& label() const { return label_; }
  const StreamingSummary& cost() const { return cost_; }
  std::size_t count() const { return cost_.count(); }
  std::uint64_t deadline_misses() const { return deadline_misses_; }
  double miss_rate() const;
  std::uint64_t incomplete() const { return incomplete_; }
  std::uint64_t switched_to_on_demand() const { return switched_; }
  /// Replications in which at least one injected fault fired.
  std::uint64_t fault_affected() const { return fault_affected_; }
  const RunningStats& restarts() const { return restarts_; }
  const RunningStats& checkpoints() const { return checkpoints_; }
  const RunningStats& out_of_bid() const { return out_of_bid_; }

 private:
  std::string label_;
  StreamingSummary cost_;
  RunningStats restarts_;
  RunningStats checkpoints_;
  RunningStats out_of_bid_;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t incomplete_ = 0;
  std::uint64_t switched_ = 0;
  std::uint64_t fault_affected_ = 0;
};

struct EnsembleResult {
  std::vector<ConfigSummary> configs;  ///< parallel to spec.configs
  std::vector<ConfigSummary> groups;   ///< parallel to spec.min_groups
  double ci_level = 0.95;
  bool from_cache = false;

  // --- provenance of this run (not part of the summary contract) ----------
  /// Shards restored intact from the run journal vs. actually simulated.
  /// replay + recompute == spec.num_shards on a completed run.
  std::size_t shards_replayed = 0;
  std::size_t shards_recomputed = 0;
  /// True when a graceful stop ended the run before every shard finished;
  /// the summaries then cover only the completed shards and the result is
  /// neither cached nor comparable to a full run.
  bool interrupted = false;

  /// Summary rows (configs then groups) rendered via exp/report's
  /// ci_table. Deterministic: the string is part of the bit-identical
  /// contract bench_ensemble and ensemble_test compare across pools.
  std::string table(const std::string& title) const;
};

/// Durability / interruption controls for one EnsembleRunner::run call.
struct EnsembleRunOptions {
  /// When set, completed shards are appended to this journal as they
  /// finish, and shards already journaled under the same spec_hash (with
  /// matching shard bounds, checksum-intact and passing the replay audit)
  /// are folded from the journal instead of being re-simulated. Replay is
  /// bit-identical to recomputation: the journal stores the exact scalars
  /// ConfigSummary::fold consumes, folded in the exact live order.
  RunJournal* journal = nullptr;
  /// When set (e.g. by a SIGINT handler — common/interrupt.hpp), no new
  /// shards are claimed; in-flight shards finish and are journaled, then
  /// run() returns with interrupted == true.
  const std::atomic<bool>* stop = nullptr;
  /// Extra attempts for a shard whose body throws (see ShardRunOptions);
  /// the shard accumulator and journal record are rebuilt from scratch on
  /// each attempt, so a retry cannot double-fold.
  std::size_t shard_retry_budget = 1;
  /// Lockstep lanes per batched group for fixed-policy configs; < 2
  /// forces the scalar path. Mirrors ShardExecutor::kDefaultBatchWidth
  /// (shard_exec.hpp includes this header, so no cross-reference here).
  /// Execution-only: results are bit-identical for every width, so it is
  /// not part of spec_hash.
  std::size_t batch_width = 8;
};

class EnsembleRunner {
 public:
  explicit EnsembleRunner(EnsembleSpec spec);

  const EnsembleSpec& spec() const { return spec_; }

  /// Runs the ensemble on `pool`. The result depends only on the spec,
  /// never on the pool size — and, with a journal, never on how many
  /// crashes or interruptions the run was resumed across.
  EnsembleResult run(ThreadPool& pool) const;
  EnsembleResult run(ThreadPool& pool, const EnsembleRunOptions& options) const;

  /// Convenience overload using the process-wide default pool.
  EnsembleResult run() const;

 private:
  EnsembleSpec spec_;
};

}  // namespace redspot
