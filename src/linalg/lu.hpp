// LU decomposition with partial pivoting.
//
// Used to solve the VAR normal equations and to compute the log-determinant
// of residual covariance matrices for AIC lag selection.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace redspot {

/// PA = LU factorization of a square matrix, with solve / determinant.
class LuDecomposition {
 public:
  /// Factors `a` (must be square). Singular matrices are detected lazily:
  /// `singular()` reports it and solve() refuses.
  explicit LuDecomposition(const Matrix& a);

  bool singular() const { return singular_; }

  /// Solves A x = b. Requires !singular() and b.size() == n.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves A X = B column-by-column. Requires !singular().
  Matrix solve(const Matrix& b) const;

  /// det(A). Zero when singular.
  double determinant() const;

  /// log |det(A)| — stable for matrices whose determinant under/overflows.
  /// Requires !singular().
  double log_abs_determinant() const;

  /// A^{-1}. Requires !singular().
  Matrix inverse() const;

 private:
  std::size_t n_ = 0;
  Matrix lu_;                   // combined L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
  bool singular_ = false;
};

/// Convenience: solves A x = b directly. Throws CheckFailure when singular.
std::vector<double> solve(const Matrix& a, const std::vector<double>& b);

/// Lower-triangular Cholesky factor L with A = L L^T. Requires a square,
/// symmetric, positive-definite `a` (throws CheckFailure otherwise); used
/// to color independent normals with a target correlation matrix in the
/// multi-type price universe.
Matrix cholesky_lower(const Matrix& a);

namespace detail {

/// Factors the row-major n x n matrix `lu` in place (PA = LU, partial
/// pivoting); fills `perm` and flips `*perm_sign` per row swap. Returns
/// whether the matrix is singular. Exactly LuDecomposition's arithmetic,
/// exposed over caller-owned storage so hot paths can reuse buffers.
bool lu_factor_inplace(double* lu, std::size_t n, std::size_t* perm,
                       int* perm_sign);

/// Solves A x = b given a factorization from lu_factor_inplace. `x` must
/// not alias `b`.
void lu_solve_inplace(const double* lu, std::size_t n,
                      const std::size_t* perm, const double* b, double* x);

}  // namespace detail

}  // namespace redspot
