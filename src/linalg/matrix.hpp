// Small dense linear algebra.
//
// redspot needs linear algebra in two places: the Markov uptime model
// (probability-vector / transition-matrix products, Appendix B) and the
// vector auto-regression of Section 3.1 (OLS fits, covariance determinants
// for AIC). Problem sizes are tiny (state spaces < 256, VAR dimension 3), so
// a straightforward row-major dense implementation is the right tool; no
// external BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "common/check.hpp"

namespace redspot {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// From nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    REDSPOT_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    REDSPOT_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous row-major storage (for tight loops).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  Matrix transposed() const;

  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator*(double k) const;

  /// Matrix-vector product; v.size() must equal cols().
  std::vector<double> operator*(const std::vector<double>& v) const;

  /// Max-abs elementwise difference; matrices must be the same shape.
  double max_abs_diff(const Matrix& o) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  bool operator==(const Matrix& o) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// Row-vector times matrix: result_j = sum_i v_i * m(i, j).
std::vector<double> vec_mat(const std::vector<double>& v, const Matrix& m);

/// Dot product; vectors must have equal size.
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace redspot
