#include "linalg/lu.hpp"

#include <cmath>

namespace redspot {

LuDecomposition::LuDecomposition(const Matrix& a)
    : n_(a.rows()), lu_(a), perm_(a.rows()) {
  REDSPOT_CHECK_MSG(a.square(), "LU requires a square matrix");
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot: largest |value| in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == 0.0) {
      singular_ = true;
      continue;  // keep factoring the remaining columns for determinant = 0
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n_; ++j)
        std::swap(lu_(k, j), lu_(pivot, j));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double factor = lu_(i, k) * inv_pivot;
      lu_(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n_; ++j)
        lu_(i, j) -= factor * lu_(k, j);
    }
  }
}

std::vector<double> LuDecomposition::solve(const std::vector<double>& b) const {
  REDSPOT_CHECK_MSG(!singular_, "solve() on a singular matrix");
  REDSPOT_CHECK(b.size() == n_);
  std::vector<double> x(n_);
  // Forward substitution with permuted b (L has unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  REDSPOT_CHECK(b.rows() == n_);
  Matrix x(n_, b.cols());
  std::vector<double> col(n_);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n_; ++r) col[r] = b(r, c);
    const std::vector<double> sol = solve(col);
    for (std::size_t r = 0; r < n_; ++r) x(r, c) = sol[r];
  }
  return x;
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

double LuDecomposition::log_abs_determinant() const {
  REDSPOT_CHECK_MSG(!singular_, "log-determinant of a singular matrix");
  double acc = 0.0;
  for (std::size_t i = 0; i < n_; ++i) acc += std::log(std::fabs(lu_(i, i)));
  return acc;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(n_));
}

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
  return LuDecomposition(a).solve(b);
}

}  // namespace redspot
