#include "linalg/lu.hpp"

#include <cmath>

namespace redspot {

namespace detail {

bool lu_factor_inplace(double* lu, std::size_t n, std::size_t* perm,
                       int* perm_sign) {
  bool singular = false;
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  // The hot loops index the row-major storage directly: the checked
  // Matrix accessor costs more than the arithmetic at these sizes.
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |value| in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(lu[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu[i * n + k]);
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == 0.0) {
      singular = true;
      continue;  // keep factoring the remaining columns for determinant = 0
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu[k * n + j], lu[pivot * n + j]);
      std::swap(perm[k], perm[pivot]);
      *perm_sign = -*perm_sign;
    }
    const double inv_pivot = 1.0 / lu[k * n + k];
    const double* row_k = lu + k * n;
    for (std::size_t i = k + 1; i < n; ++i) {
      double* row_i = lu + i * n;
      const double factor = row_i[k] * inv_pivot;
      row_i[k] = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j)
        row_i[j] -= factor * row_k[j];
    }
  }
  return singular;
}

void lu_solve_inplace(const double* lu, std::size_t n,
                      const std::size_t* perm, const double* b, double* x) {
  // Forward substitution with permuted b (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = lu + i * n;
    double acc = b[perm[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= row[j] * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    const double* row = lu + ii * n;
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
    x[ii] = acc / row[ii];
  }
}

}  // namespace detail

LuDecomposition::LuDecomposition(const Matrix& a)
    : n_(a.rows()), lu_(a), perm_(a.rows()) {
  REDSPOT_CHECK_MSG(a.square(), "LU requires a square matrix");
  singular_ =
      detail::lu_factor_inplace(lu_.data(), n_, perm_.data(), &perm_sign_);
}

std::vector<double> LuDecomposition::solve(const std::vector<double>& b) const {
  REDSPOT_CHECK_MSG(!singular_, "solve() on a singular matrix");
  REDSPOT_CHECK(b.size() == n_);
  std::vector<double> x(n_);
  detail::lu_solve_inplace(lu_.data(), n_, perm_.data(), b.data(), x.data());
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  REDSPOT_CHECK(b.rows() == n_);
  Matrix x(n_, b.cols());
  std::vector<double> col(n_);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n_; ++r) col[r] = b(r, c);
    const std::vector<double> sol = solve(col);
    for (std::size_t r = 0; r < n_; ++r) x(r, c) = sol[r];
  }
  return x;
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

double LuDecomposition::log_abs_determinant() const {
  REDSPOT_CHECK_MSG(!singular_, "log-determinant of a singular matrix");
  double acc = 0.0;
  for (std::size_t i = 0; i < n_; ++i) acc += std::log(std::fabs(lu_(i, i)));
  return acc;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(n_));
}

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
  return LuDecomposition(a).solve(b);
}

Matrix cholesky_lower(const Matrix& a) {
  REDSPOT_CHECK_MSG(a.square(), "Cholesky of a non-square matrix");
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      REDSPOT_CHECK_MSG(std::fabs(a(i, j) - a(j, i)) <= 1e-9,
                        "Cholesky of a non-symmetric matrix");
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        REDSPOT_CHECK_MSG(sum > 0.0,
                          "Cholesky of a non-positive-definite matrix");
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

}  // namespace redspot
