#include "linalg/ols.hpp"

#include "linalg/lu.hpp"

namespace redspot {

namespace {

/// X'X (cols x cols), exploiting symmetry.
Matrix gram(const Matrix& x) {
  const std::size_t t = x.rows();
  const std::size_t k = x.cols();
  Matrix g(k, k);
  for (std::size_t row = 0; row < t; ++row) {
    const double* xr = x.data() + row * k;
    for (std::size_t i = 0; i < k; ++i) {
      const double xi = xr[i];
      if (xi == 0.0) continue;
      for (std::size_t j = i; j < k; ++j) g(i, j) += xi * xr[j];
    }
  }
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

}  // namespace

OlsFit ols_fit(const Matrix& x, const std::vector<double>& y) {
  REDSPOT_CHECK(x.rows() == y.size());
  REDSPOT_CHECK_MSG(x.rows() >= x.cols(), "underdetermined OLS system");
  const std::size_t t = x.rows();
  const std::size_t k = x.cols();

  const Matrix g = gram(x);
  std::vector<double> xty(k, 0.0);
  for (std::size_t row = 0; row < t; ++row) {
    const double* xr = x.data() + row * k;
    const double yr = y[row];
    for (std::size_t i = 0; i < k; ++i) xty[i] += xr[i] * yr;
  }

  LuDecomposition lu(g);
  REDSPOT_CHECK_MSG(!lu.singular(), "collinear OLS design matrix");

  OlsFit fit;
  fit.beta = lu.solve(xty);
  fit.residuals.resize(t);
  for (std::size_t row = 0; row < t; ++row) {
    const double* xr = x.data() + row * k;
    double pred = 0.0;
    for (std::size_t i = 0; i < k; ++i) pred += xr[i] * fit.beta[i];
    fit.residuals[row] = y[row] - pred;
    fit.rss += fit.residuals[row] * fit.residuals[row];
  }
  return fit;
}

MultiOlsFit ols_fit_multi(const Matrix& x, const Matrix& y) {
  REDSPOT_CHECK(x.rows() == y.rows());
  const std::size_t t = x.rows();
  const std::size_t k = x.cols();
  const std::size_t m = y.cols();

  const Matrix g = gram(x);
  LuDecomposition lu(g);
  REDSPOT_CHECK_MSG(!lu.singular(), "collinear OLS design matrix");

  // X'Y.
  Matrix xty(k, m);
  for (std::size_t row = 0; row < t; ++row) {
    const double* xr = x.data() + row * k;
    const double* yr = y.data() + row * m;
    for (std::size_t i = 0; i < k; ++i) {
      const double xi = xr[i];
      if (xi == 0.0) continue;
      for (std::size_t j = 0; j < m; ++j) xty(i, j) += xi * yr[j];
    }
  }

  MultiOlsFit fit;
  fit.beta = lu.solve(xty);
  fit.residuals = Matrix(t, m);
  for (std::size_t row = 0; row < t; ++row) {
    const double* xr = x.data() + row * k;
    for (std::size_t j = 0; j < m; ++j) {
      double pred = 0.0;
      for (std::size_t i = 0; i < k; ++i) pred += xr[i] * fit.beta(i, j);
      fit.residuals(row, j) = y(row, j) - pred;
    }
  }
  return fit;
}

}  // namespace redspot
