// Ordinary least squares.
//
// The VAR fit (Section 3.1 of the paper) is K independent OLS regressions
// of each zone's price on p lags of all zones' prices. Design matrices are
// short and wide-ish (T x (1 + K*p), T up to a year of 5-minute samples),
// solved via the normal equations — well-conditioned here because prices
// are bounded and lags are few.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace redspot {

/// Result of an OLS fit y ≈ X beta.
struct OlsFit {
  std::vector<double> beta;       ///< coefficient estimates, size X.cols()
  std::vector<double> residuals;  ///< y - X beta, size X.rows()
  double rss = 0.0;               ///< residual sum of squares
};

/// Fits y ≈ X beta by OLS via the normal equations.
/// Requires X.rows() == y.size() and X.rows() >= X.cols().
/// Throws CheckFailure when X'X is singular (collinear design).
OlsFit ols_fit(const Matrix& x, const std::vector<double>& y);

/// Multi-response OLS: fits Y ≈ X B column-by-column and returns B
/// (X.cols() x Y.cols()) plus the residual matrix (Y.rows() x Y.cols()).
struct MultiOlsFit {
  Matrix beta;
  Matrix residuals;
};
MultiOlsFit ols_fit_multi(const Matrix& x, const Matrix& y);

}  // namespace redspot
