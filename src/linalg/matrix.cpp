#include "linalg/matrix.hpp"

#include <cmath>
#include <ostream>

namespace redspot {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    REDSPOT_CHECK_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator+(const Matrix& o) const {
  REDSPOT_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix r = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] += o.data_[i];
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  REDSPOT_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix r = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] -= o.data_[i];
  return r;
}

Matrix Matrix::operator*(const Matrix& o) const {
  REDSPOT_CHECK_MSG(cols_ == o.rows_, "shape mismatch in Matrix::operator*");
  Matrix r(rows_, o.cols_);
  // i-k-j loop order keeps the inner loop contiguous in both r and o.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* orow = o.data() + k * o.cols_;
      double* rrow = r.data() + i * o.cols_;
      for (std::size_t j = 0; j < o.cols_; ++j) rrow[j] += a * orow[j];
    }
  }
  return r;
}

Matrix Matrix::operator*(double k) const {
  Matrix r = *this;
  for (auto& x : r.data_) x *= k;
  return r;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  REDSPOT_CHECK(v.size() == cols_);
  std::vector<double> r(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = data() + i * cols_;
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    r[i] = acc;
  }
  return r;
}

double Matrix::max_abs_diff(const Matrix& o) const {
  REDSPOT_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - o.data_[i]));
  return m;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << (r + 1 < m.rows() ? ";\n" : "]");
  }
  return os;
}

std::vector<double> vec_mat(const std::vector<double>& v, const Matrix& m) {
  REDSPOT_CHECK(v.size() == m.rows());
  std::vector<double> r(m.cols(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double a = v[i];
    if (a == 0.0) continue;
    const double* row = m.data() + i * m.cols();
    for (std::size_t j = 0; j < m.cols(); ++j) r[j] += a * row[j];
  }
  return r;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  REDSPOT_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace redspot
