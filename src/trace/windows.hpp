// Experiment-window extraction.
//
// Section 5: "We run 80 experiments over partially overlapping chunks in
// each spot price window." Given an evaluation window (e.g. March 2013) and
// the span one experiment may need (deadline D plus bootstrap history),
// this module produces the evenly spaced, overlapping experiment start
// times.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"

namespace redspot {

/// Start times for `count` experiments inside [window_start, window_end),
/// each needing `experiment_span` of trace after its start and
/// `history_span` of trace before it (for Markov/Adaptive bootstrap).
/// Starts are evenly spaced (overlapping when count * span exceeds the
/// window) and each start is aligned down to the 5-minute price grid.
///
/// Requires the window to fit at least one experiment.
std::vector<SimTime> experiment_starts(SimTime window_start,
                                       SimTime window_end,
                                       Duration experiment_span,
                                       Duration history_span,
                                       std::size_t count);

}  // namespace redspot
