#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "trace/calendar.hpp"

namespace redspot {

namespace {

/// Quantizes a raw dollar value to EC2's $0.001 price grid.
Money quantize(double dollars) {
  return Money::from_micros(std::llround(dollars * 1000.0) * 1000);
}

/// Per-zone generator state carried across months.
struct ZoneState {
  bool in_high = false;
  SimTime regime_until = 0;
  double deviation = 0.0;  // AR(1) deviation from the regime level
  SimTime spike_until = 0;
  double spike_price = 0.0;
  double published = -1.0;  // last published price; <0 = nothing yet
  bool was_spiking = false;
};

/// Expected dwell in the high regime so that its long-run fraction is f.
Duration high_mean_dwell(const ZoneMonthParams& p) {
  REDSPOT_CHECK(p.high_fraction >= 0.0 && p.high_fraction < 1.0);
  if (p.high_fraction == 0.0) return 0;
  const double ratio = p.high_fraction / (1.0 - p.high_fraction);
  return std::max<Duration>(
      kPriceStep, static_cast<Duration>(
                      static_cast<double>(p.calm_mean_dwell) * ratio));
}

Duration sample_dwell(Rng& rng, Duration mean) {
  if (mean <= 0) return kPriceStep;
  const double d = rng.exponential(1.0 / static_cast<double>(mean));
  return std::max<Duration>(kPriceStep, static_cast<Duration>(d));
}

}  // namespace

ZoneTraceSet generate_traces(const SyntheticTraceSpec& spec) {
  REDSPOT_CHECK(spec.num_zones > 0);
  REDSPOT_CHECK(!spec.params.empty());
  for (const auto& month : spec.params)
    REDSPOT_CHECK_MSG(month.size() == spec.num_zones,
                      "params row does not match num_zones");
  REDSPOT_CHECK(spec.floor <= spec.cap);

  const std::size_t num_months = spec.params.size();
  // Months beyond the built-in calendar reuse 30-day lengths; the paper span
  // (14 months) is fully covered by the calendar.
  SimTime span = 0;
  std::vector<SimTime> month_ends(num_months);
  for (std::size_t m = 0; m < num_months; ++m) {
    span += (m < kTraceMonths ? days_in_month(m) : 30) * kDay;
    month_ends[m] = span;
  }
  const auto num_steps = static_cast<std::size_t>(span / spec.step);

  if (spec.innovation_override != nullptr) {
    REDSPOT_CHECK_MSG(spec.innovation_override->size() == spec.num_zones,
                      "innovation_override zone count mismatch");
    for (const auto& row : *spec.innovation_override)
      REDSPOT_CHECK_MSG(row.size() == num_steps,
                        "innovation_override step count mismatch");
  }

  // The shared innovation stream models the weak common demand factor that
  // gives the real data its faint cross-zone dependence. An override
  // supplies its own correlation structure and skips it entirely.
  std::vector<double> shared(num_steps);
  if (spec.innovation_override == nullptr) {
    Rng common_rng(spec.seed, /*stream=*/0xC0FFEE);
    for (double& x : shared) x = common_rng.normal();
  }

  std::vector<PriceSeries> series;
  std::vector<std::string> names;
  series.reserve(spec.num_zones);

  for (std::size_t z = 0; z < spec.num_zones; ++z) {
    Rng rng(spec.seed, /*stream=*/1 + z);
    ZoneState st;
    st.regime_until = sample_dwell(rng, spec.params[0][z].calm_mean_dwell);

    std::vector<Money> samples(num_steps);
    std::size_t month = 0;
    for (std::size_t i = 0; i < num_steps; ++i) {
      const SimTime t = static_cast<SimTime>(i) * spec.step;
      while (month + 1 < num_months && t >= month_ends[month]) ++month;
      const ZoneMonthParams& p = spec.params[month][z];

      // Regime transitions (semi-Markov with exponential dwells). A month
      // with high_fraction == 0 forces the calm regime.
      bool regime_switched = false;
      if (p.high_fraction == 0.0) {
        if (st.in_high) {
          st.in_high = false;
          st.deviation = 0.0;
          st.regime_until = t + sample_dwell(rng, p.calm_mean_dwell);
          regime_switched = true;
        }
      } else if (t >= st.regime_until) {
        st.in_high = !st.in_high;
        st.deviation = 0.0;
        st.regime_until =
            t + sample_dwell(rng, st.in_high ? high_mean_dwell(p)
                                             : p.calm_mean_dwell);
        regime_switched = true;
      }

      const RegimeParams& regime = st.in_high ? p.high : p.calm;
      double innov;
      if (spec.innovation_override != nullptr) {
        innov = (*spec.innovation_override)[z][i];
      } else {
        const double own = rng.normal();
        innov = (1.0 - spec.cross_coupling) * own +
                spec.cross_coupling * shared[i];
      }
      st.deviation =
          regime.reversion * st.deviation + regime.innovation_sd * innov;
      const double latent = regime.level + st.deviation;

      // Poisson spike overlay.
      if (t >= st.spike_until && p.spikes.per_day_rate > 0.0) {
        const double p_start = p.spikes.per_day_rate *
                               static_cast<double>(spec.step) /
                               static_cast<double>(kDay);
        if (rng.bernoulli(p_start)) {
          st.spike_price = rng.uniform(p.spikes.mag_lo, p.spikes.mag_hi);
          st.spike_until = t + sample_dwell(rng, p.spikes.mean_duration);
        }
      }
      const bool spiking = t < st.spike_until;

      // Publish a new price only on regime/spike boundaries or with the
      // regime's change probability; otherwise the market holds the last
      // published price (spot prices are piecewise-constant in reality).
      const bool must_publish = st.published < 0.0 || regime_switched ||
                                spiking != st.was_spiking;
      if (must_publish || rng.bernoulli(regime.change_prob)) {
        double price = spiking ? std::max(latent, st.spike_price) : latent;
        price =
            std::clamp(price, spec.floor.to_double(), spec.cap.to_double());
        st.published = quantize(price).to_double();
      }
      st.was_spiking = spiking;
      samples[i] = Money::dollars(st.published);
    }
    series.emplace_back(0, spec.step, std::move(samples));
    names.push_back("zone-" + std::string(1, static_cast<char>('a' + z)));
  }

  ZoneTraceSet set(std::move(names), std::move(series));

  // Forced spikes are written last so they override everything (they model
  // specific historical events such as the $20.02 spike of Mar 13-14 2013).
  if (!spec.forced_spikes.empty()) {
    std::vector<PriceSeries> patched;
    std::vector<std::string> patched_names;
    for (std::size_t z = 0; z < set.num_zones(); ++z) {
      std::vector<Money> samples(set.zone(z).samples().begin(),
                                 set.zone(z).samples().end());
      for (const ForcedSpike& fs : spec.forced_spikes) {
        if (fs.zone != z) continue;
        REDSPOT_CHECK(fs.duration > 0);
        const SimTime end = fs.start + fs.duration;
        for (std::size_t i = 0; i < samples.size(); ++i) {
          const SimTime t = static_cast<SimTime>(i) * spec.step;
          if (t >= fs.start && t < end) samples[i] = fs.price;
        }
      }
      patched.emplace_back(0, spec.step, std::move(samples));
      patched_names.push_back(set.zone_name(z));
    }
    set = ZoneTraceSet(std::move(patched_names), std::move(patched));
  }
  return set;
}

SyntheticTraceSpec trimmed_spec(SyntheticTraceSpec spec, SimTime keep_until) {
  REDSPOT_CHECK(keep_until > 0);
  SimTime span = 0;
  std::size_t months = 0;
  while (span < keep_until && months < spec.params.size()) {
    span += (months < kTraceMonths ? days_in_month(months) : 30) * kDay;
    ++months;
  }
  REDSPOT_CHECK_MSG(span >= keep_until, "keep_until beyond the spec's span");
  spec.params.resize(months);
  std::erase_if(spec.forced_spikes,
                [span](const ForcedSpike& fs) { return fs.start >= span; });
  return spec;
}

SyntheticTraceSpec scaled_spec(SyntheticTraceSpec spec, double k) {
  REDSPOT_CHECK(k > 0.0);
  const auto scale_money = [k](Money m) {
    return Money::from_micros(
        std::llround(static_cast<double>(m.micros()) * k));
  };
  spec.floor = scale_money(spec.floor);
  spec.cap = scale_money(spec.cap);
  for (auto& month : spec.params) {
    for (ZoneMonthParams& p : month) {
      for (RegimeParams* r : {&p.calm, &p.high}) {
        r->level *= k;
        r->innovation_sd *= k;
      }
      p.spikes.mag_lo *= k;
      p.spikes.mag_hi *= k;
    }
  }
  for (ForcedSpike& fs : spec.forced_spikes) fs.price = scale_money(fs.price);
  return spec;
}

SyntheticTraceSpec paper_trace_spec(std::uint64_t seed) {
  SyntheticTraceSpec spec;
  spec.seed = seed;
  spec.num_zones = 3;
  spec.floor = Money::cents(27);
  spec.cap = Money::dollars(3.05);
  spec.cross_coupling = 0.05;

  // --- Calibration targets (Section 5 of the paper) -----------------------
  // Low-volatility month (March 2013): mean ~$0.30, var < 0.01, long
  // sojourns at the $0.27 floor so that a $0.27 bid is frequently "up".
  auto low_vol = [](std::size_t z) {
    ZoneMonthParams p;
    // Level slightly below the floor: the published price spends most of
    // its time pinned at $0.27, as the real March 2013 CC2 data did.
    p.calm = {0.264 + 0.003 * static_cast<double>(z), 0.012, 0.85, 0.10};
    p.high_fraction = 0.0;
    p.calm_mean_dwell = 8 * kHour;
    // Rare brief bumps — occasionally approaching $3.00, the spike
    // ceiling Section 5 cites as the reason to bid above $2.40 — drive
    // the occasional failure that separates the policies at t_c = 900 s.
    p.spikes = {0.25, 0.55, 2.60, 25 * kMinute};
    return p;
  };

  // High-volatility month (January 2013): zone means ~$0.70/$0.90/$1.12,
  // large variance, excursions approaching $3.00. Calm levels sit below the
  // $0.81 "sweet-spot" bid; high-regime levels sit well above it.
  auto high_vol = [](std::size_t z) {
    ZoneMonthParams p;
    const double calm_level[3] = {0.40, 0.46, 0.55};
    const double high_level[3] = {1.76, 2.15, 2.45};
    const double high_sd[3] = {0.14, 0.20, 0.26};
    const double frac[3] = {0.22, 0.26, 0.30};
    p.calm = {calm_level[z], 0.020, 0.80, 0.15};
    p.high = {high_level[z], high_sd[z], 0.85, 0.30};
    p.high_fraction = frac[z];
    p.calm_mean_dwell = 5 * kHour;
    p.spikes = {1.5, 2.0, 3.0, 40 * kMinute};
    return p;
  };

  // Moderately volatile month (the remaining months; also what the
  // queuing-delay study and VAR analysis sweep over).
  auto moderate = [](std::size_t z) {
    ZoneMonthParams p;
    p.calm = {0.30 + 0.012 * static_cast<double>(z), 0.015, 0.85};
    p.high = {1.05 + 0.15 * static_cast<double>(z), 0.10, 0.80};
    p.high_fraction = 0.10;
    p.calm_mean_dwell = 8 * kHour;
    p.spikes = {0.3, 1.2, 3.0, 30 * kMinute};
    return p;
  };

  // December 2012 (Figure 2's Dec 19 window) is noticeably volatile.
  auto dec2012 = [&](std::size_t z) {
    ZoneMonthParams p = moderate(z);
    p.high_fraction = 0.25;
    p.high.level = 1.15 + 0.20 * static_cast<double>(z);
    p.calm_mean_dwell = 4 * kHour;
    p.spikes = {1.0, 1.5, 3.0, 45 * kMinute};
    return p;
  };

  spec.params.resize(kTraceMonths);
  for (std::size_t m = 0; m < kTraceMonths; ++m) {
    spec.params[m].resize(spec.num_zones);
    for (std::size_t z = 0; z < spec.num_zones; ++z) {
      if (m == kHighVolatilityMonth) {
        spec.params[m][z] = high_vol(z);
      } else if (m == kLowVolatilityMonth) {
        spec.params[m][z] = low_vol(z);
      } else if (m == 0) {
        spec.params[m][z] = dec2012(z);
      } else {
        spec.params[m][z] = moderate(z);
      }
    }
  }

  // The $20.02 spike of March 13-14 2013 (Section 7.2.2): nine hours in one
  // zone, starting the evening of the 13th.
  spec.forced_spikes.push_back(ForcedSpike{
      .zone = 0,
      .start = day_start(kLowVolatilityMonth, 13) + 18 * kHour,
      .duration = 9 * kHour,
      .price = Money::dollars(20.02),
  });
  return spec;
}

ZoneTraceSet paper_traces(std::uint64_t seed) {
  return generate_traces(paper_trace_spec(seed));
}

}  // namespace redspot
