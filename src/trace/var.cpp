#include "trace/var.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "linalg/lu.hpp"
#include "linalg/ols.hpp"
#include "stats/timeseries.hpp"

namespace redspot {

VarFit fit_var(const std::vector<std::vector<double>>& series,
               std::size_t lag_order) {
  REDSPOT_CHECK(lag_order >= 1);
  REDSPOT_CHECK(!series.empty());
  const std::size_t k = series.size();
  const std::size_t t_total = series[0].size();
  for (const auto& s : series) REDSPOT_CHECK(s.size() == t_total);
  REDSPOT_CHECK_MSG(t_total > lag_order + k * lag_order + 1,
                    "too few samples for VAR(" << lag_order << ")");

  const std::size_t t_eff = t_total - lag_order;
  const std::size_t num_regressors = 1 + k * lag_order;

  Matrix x(t_eff, num_regressors);
  Matrix y(t_eff, k);
  for (std::size_t row = 0; row < t_eff; ++row) {
    const std::size_t t = row + lag_order;
    x(row, 0) = 1.0;  // intercept
    for (std::size_t l = 1; l <= lag_order; ++l)
      for (std::size_t j = 0; j < k; ++j)
        x(row, 1 + (l - 1) * k + j) = series[j][t - l];
    for (std::size_t j = 0; j < k; ++j) y(row, j) = series[j][t];
  }

  const MultiOlsFit ols = ols_fit_multi(x, y);

  VarFit fit;
  fit.lag_order = lag_order;
  fit.effective_samples = t_eff;
  fit.intercept.resize(k);
  for (std::size_t i = 0; i < k; ++i) fit.intercept[i] = ols.beta(0, i);
  fit.coefficients.reserve(lag_order);
  for (std::size_t l = 1; l <= lag_order; ++l) {
    Matrix a(k, k);
    for (std::size_t i = 0; i < k; ++i)       // equation (target series)
      for (std::size_t j = 0; j < k; ++j)     // regressor series
        a(i, j) = ols.beta(1 + (l - 1) * k + j, i);
    fit.coefficients.push_back(std::move(a));
  }

  // ML residual covariance.
  fit.residual_cov = Matrix(k, k);
  for (std::size_t row = 0; row < t_eff; ++row)
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j < k; ++j)
        fit.residual_cov(i, j) +=
            ols.residuals(row, i) * ols.residuals(row, j);
  fit.residual_cov = fit.residual_cov * (1.0 / static_cast<double>(t_eff));

  LuDecomposition lu(fit.residual_cov);
  // A singular residual covariance (perfectly collinear residuals) cannot
  // happen with noisy data; guard anyway with a -inf-avoiding floor.
  const double log_det =
      lu.singular() ? -1e9 : lu.log_abs_determinant();
  fit.aic = var_aic(log_det, lag_order, k, t_eff);
  return fit;
}

VarFit fit_var_aic(const std::vector<std::vector<double>>& series,
                   std::size_t max_lag) {
  REDSPOT_CHECK(max_lag >= 1);
  VarFit best;
  double best_aic = std::numeric_limits<double>::infinity();
  for (std::size_t p = 1; p <= max_lag; ++p) {
    VarFit fit = fit_var(series, p);
    if (fit.aic < best_aic) {
      best_aic = fit.aic;
      best = std::move(fit);
    }
  }
  return best;
}

std::vector<std::vector<double>> to_series(const ZoneTraceSet& traces) {
  std::vector<std::vector<double>> out;
  out.reserve(traces.num_zones());
  for (std::size_t z = 0; z < traces.num_zones(); ++z)
    out.push_back(traces.zone(z).to_doubles());
  return out;
}

CrossZoneEffects cross_zone_effects(const VarFit& fit) {
  CrossZoneEffects e;
  std::size_t n_within = 0;
  std::size_t n_cross = 0;
  for (const Matrix& a : fit.coefficients) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        if (i == j) {
          e.mean_abs_within += std::fabs(a(i, j));
          ++n_within;
        } else {
          e.mean_abs_cross += std::fabs(a(i, j));
          ++n_cross;
        }
      }
    }
  }
  if (n_within > 0) e.mean_abs_within /= static_cast<double>(n_within);
  if (n_cross > 0) e.mean_abs_cross /= static_cast<double>(n_cross);
  e.within_to_cross_ratio = e.mean_abs_cross > 0
                                ? e.mean_abs_within / e.mean_abs_cross
                                : std::numeric_limits<double>::infinity();
  return e;
}

Matrix residual_correlation(const VarFit& fit) {
  const Matrix& cov = fit.residual_cov;
  const std::size_t k = cov.rows();
  Matrix corr(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const double denom = std::sqrt(cov(i, i) * cov(j, j));
      corr(i, j) = i == j ? 1.0 : (denom > 0.0 ? cov(i, j) / denom : 0.0);
    }
  }
  return corr;
}

}  // namespace redspot
