#include "trace/calendar.hpp"

#include <array>

#include "common/check.hpp"

namespace redspot {

namespace {

// Dec 2012, Jan 2013, ..., Dec 2013, Jan 2014. 2013 is not a leap year.
constexpr std::array<int, kTraceMonths> kDays = {31, 31, 28, 31, 30, 31, 30,
                                                 31, 31, 30, 31, 30, 31, 31};

constexpr std::array<const char*, kTraceMonths> kNames = {
    "Dec 2012", "Jan 2013", "Feb 2013", "Mar 2013", "Apr 2013",
    "May 2013", "Jun 2013", "Jul 2013", "Aug 2013", "Sep 2013",
    "Oct 2013", "Nov 2013", "Dec 2013", "Jan 2014"};

}  // namespace

int days_in_month(std::size_t m) {
  REDSPOT_CHECK(m < kTraceMonths);
  return kDays[m];
}

SimTime month_start(std::size_t m) {
  REDSPOT_CHECK(m < kTraceMonths);
  SimTime t = 0;
  for (std::size_t i = 0; i < m; ++i) t += kDays[i] * kDay;
  return t;
}

SimTime month_end(std::size_t m) {
  return month_start(m) + days_in_month(m) * kDay;
}

Duration trace_span() { return month_end(kTraceMonths - 1); }

std::string month_name(std::size_t m) {
  REDSPOT_CHECK(m < kTraceMonths);
  return kNames[m];
}

SimTime day_start(std::size_t m, int day_of_month) {
  REDSPOT_CHECK(day_of_month >= 1 && day_of_month <= days_in_month(m));
  return month_start(m) + static_cast<SimTime>(day_of_month - 1) * kDay;
}

}  // namespace redspot
