#include "trace/price_series.hpp"

namespace redspot {

PriceSeries::PriceSeries(SimTime start, Duration step,
                         std::vector<Money> samples)
    : start_(start), step_(step), samples_(std::move(samples)) {
  REDSPOT_CHECK(step_ > 0);
  REDSPOT_CHECK_MSG(start_ % step_ == 0, "series start must align to step");
  REDSPOT_CHECK(!samples_.empty());
}

}  // namespace redspot
