#include "trace/price_series.hpp"

#include <algorithm>

namespace redspot {

PriceSeries::PriceSeries(SimTime start, Duration step,
                         std::vector<Money> samples)
    : start_(start), step_(step), samples_(std::move(samples)) {
  REDSPOT_CHECK(step_ > 0);
  REDSPOT_CHECK_MSG(start_ % step_ == 0, "series start must align to step");
  REDSPOT_CHECK(!samples_.empty());
}

SimTime PriceSeries::next_change(SimTime t) const {
  const Money current = at(t);
  for (std::size_t i = index_of(t) + 1; i < samples_.size(); ++i) {
    if (samples_[i] != current) return time_of(i);
  }
  return kNever;
}

Money PriceSeries::min_price() const {
  return *std::min_element(samples_.begin(), samples_.end());
}

Money PriceSeries::max_price() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

PriceSeries PriceSeries::window(SimTime from, SimTime to) const {
  from = std::max(from, start_);
  to = std::min(to, end());
  REDSPOT_CHECK_MSG(from < to, "empty window request");
  const std::size_t lo = index_of(from);
  // Round the right edge up to cover `to`.
  const std::size_t hi = static_cast<std::size_t>(
      (to - start_ + step_ - 1) / step_);
  std::vector<Money> sub(samples_.begin() + static_cast<std::ptrdiff_t>(lo),
                         samples_.begin() + static_cast<std::ptrdiff_t>(hi));
  return PriceSeries(time_of(lo), step_, std::move(sub));
}

std::vector<double> PriceSeries::to_doubles() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (Money m : samples_) out.push_back(m.to_double());
  return out;
}

}  // namespace redspot
