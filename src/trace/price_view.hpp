// Non-owning, zero-copy window over a price series.
//
// Every policy decision reads a trailing window of the price history. The
// owning PriceSeries::window() materializes that window — a heap
// allocation plus a memcpy per decision, which dominates the replay loop
// once ensembles run thousands of replications. A PriceView is the same
// window as (start, step, span) metadata over storage owned by someone
// else: constructing, slicing, and scanning one never allocates.
//
// Lifetime rule (DESIGN.md §10): a view borrows its samples. Views handed
// out by the engine (EngineView::history) are valid only within the engine
// step that produced them; anything that must outlive the step calls
// materialize() to get an owning PriceSeries back.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"

namespace redspot {

class PriceSeries;

/// Piecewise-constant price window on a fixed sampling grid, non-owning.
class PriceView {
 public:
  PriceView() = default;

  /// `start` must be aligned to `step`; `samples` non-empty and owned by
  /// storage that outlives the view.
  PriceView(SimTime start, Duration step, std::span<const Money> samples)
      : start_(start), step_(step), samples_(samples) {
    REDSPOT_CHECK(step_ > 0);
    REDSPOT_CHECK_MSG(start_ % step_ == 0, "view start must align to step");
    REDSPOT_CHECK(!samples_.empty());
  }

  SimTime start() const { return start_; }
  /// One past the last covered instant: start + step * size.
  SimTime end() const {
    return start_ + step_ * static_cast<std::int64_t>(samples_.size());
  }
  Duration step() const { return step_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Price in effect at instant `t`. Requires start() <= t < end().
  Money at(SimTime t) const { return samples_[index_of(t)]; }

  /// Sample by index.
  Money sample(std::size_t i) const {
    REDSPOT_CHECK(i < samples_.size());
    return samples_[i];
  }

  std::span<const Money> samples() const { return samples_; }

  /// Identity of the underlying storage (for incremental consumers that
  /// need to recognize a slid window over the same series).
  const Money* data() const { return samples_.data(); }

  /// Index of the sample covering `t`. Requires start() <= t < end().
  std::size_t index_of(SimTime t) const {
    REDSPOT_CHECK_MSG(t >= start_ && t < end(),
                      "t=" << t << " outside [" << start_ << "," << end()
                           << ")");
    return static_cast<std::size_t>((t - start_) / step_);
  }

  /// Time at which sample `i` takes effect.
  SimTime time_of(std::size_t i) const {
    REDSPOT_CHECK(i < samples_.size());
    return start_ + step_ * static_cast<std::int64_t>(i);
  }

  /// First instant strictly after `t` where the price differs from the
  /// price at `t`; kNever if the price never changes again in this window.
  /// Shared by PriceSeries::next_change (the owning path delegates here).
  SimTime next_change(SimTime t) const;

  /// Minimum price over the window, without allocating.
  Money min_price() const;
  /// Maximum price over the window, without allocating.
  Money max_price() const;

  /// Sub-view covering [from, to); bounds are clamped to the view span and
  /// aligned outward to the sampling grid. Requires a non-empty result.
  /// Same index arithmetic as PriceSeries::window, but no allocation.
  PriceView window(SimTime from, SimTime to) const;

  /// Owning copy of the window — the escape hatch for CSV export and tests
  /// that need the samples to outlive the underlying storage.
  PriceSeries materialize() const;

  /// Samples as doubles (for statistics / VAR). Allocates.
  std::vector<double> to_doubles() const;

 private:
  SimTime start_ = 0;
  Duration step_ = kPriceStep;
  std::span<const Money> samples_;
};

}  // namespace redspot
