#include "trace/availability.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot {

namespace {

/// Merges adjacent same-status ranges as they are appended.
void append_segment(std::vector<AvailabilitySegment>& segs, SimTime start,
                    SimTime end, bool up) {
  if (!segs.empty() && segs.back().up == up && segs.back().end == start) {
    segs.back().end = end;
    return;
  }
  segs.push_back(AvailabilitySegment{start, end, up});
}

}  // namespace

std::vector<AvailabilitySegment> availability_segments(
    const PriceSeries& series, Money bid, SimTime from, SimTime to) {
  from = std::max(from, series.start());
  to = std::min(to, series.end());
  REDSPOT_CHECK_MSG(from < to, "empty availability window");
  std::vector<AvailabilitySegment> segs;
  SimTime t = from;
  while (t < to) {
    const std::size_t i = series.index_of(t);
    const SimTime seg_end =
        std::min<SimTime>(to, series.time_of(i) + series.step());
    append_segment(segs, t, seg_end, series.sample(i) <= bid);
    t = seg_end;
  }
  return segs;
}

double availability_fraction(const PriceSeries& series, Money bid,
                             SimTime from, SimTime to) {
  Duration up = 0;
  Duration total = 0;
  for (const auto& seg : availability_segments(series, bid, from, to)) {
    total += seg.length();
    if (seg.up) up += seg.length();
  }
  REDSPOT_CHECK(total > 0);
  return static_cast<double>(up) / static_cast<double>(total);
}

std::vector<AvailabilitySegment> combined_segments(const ZoneTraceSet& traces,
                                                   Money bid, SimTime from,
                                                   SimTime to) {
  from = std::max(from, traces.start());
  to = std::min(to, traces.end());
  REDSPOT_CHECK_MSG(from < to, "empty availability window");
  std::vector<AvailabilitySegment> segs;
  const Duration step = traces.step();
  SimTime t = from;
  while (t < to) {
    const SimTime seg_end = std::min<SimTime>(
        to, t - ((t - traces.start()) % step) + step);
    bool any_up = false;
    for (std::size_t z = 0; z < traces.num_zones(); ++z) {
      if (traces.price(z, t) <= bid) {
        any_up = true;
        break;
      }
    }
    append_segment(segs, t, seg_end, any_up);
    t = seg_end;
  }
  return segs;
}

double combined_availability(const ZoneTraceSet& traces, Money bid,
                             SimTime from, SimTime to) {
  Duration up = 0;
  Duration total = 0;
  for (const auto& seg : combined_segments(traces, bid, from, to)) {
    total += seg.length();
    if (seg.up) up += seg.length();
  }
  REDSPOT_CHECK(total > 0);
  return static_cast<double>(up) / static_cast<double>(total);
}

double mean_zones_up(const ZoneTraceSet& traces, Money bid, SimTime from,
                     SimTime to) {
  double acc = 0.0;
  for (std::size_t z = 0; z < traces.num_zones(); ++z)
    acc += availability_fraction(traces.zone(z), bid, from, to);
  return acc;
}

std::string ascii_bar(const std::vector<AvailabilitySegment>& segments,
                      Duration resolution) {
  REDSPOT_CHECK(resolution > 0);
  REDSPOT_CHECK(!segments.empty());
  std::string bar;
  const SimTime start = segments.front().start;
  const SimTime end = segments.back().end;
  for (SimTime t = start; t < end; t += resolution) {
    // Status at the midpoint of this character cell.
    const SimTime probe = std::min<SimTime>(t + resolution / 2, end - 1);
    bool up = false;
    for (const auto& seg : segments) {
      if (probe >= seg.start && probe < seg.end) {
        up = seg.up;
        break;
      }
    }
    bar += up ? '#' : '.';
  }
  return bar;
}

}  // namespace redspot
