#include "trace/price_view.hpp"

#include <algorithm>

#include "trace/price_series.hpp"

namespace redspot {

SimTime PriceView::next_change(SimTime t) const {
  const Money current = at(t);
  for (std::size_t i = index_of(t) + 1; i < samples_.size(); ++i) {
    if (samples_[i] != current) return time_of(i);
  }
  return kNever;
}

Money PriceView::min_price() const {
  return *std::min_element(samples_.begin(), samples_.end());
}

Money PriceView::max_price() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

PriceView PriceView::window(SimTime from, SimTime to) const {
  from = std::max(from, start_);
  to = std::min(to, end());
  REDSPOT_CHECK_MSG(from < to, "empty window request");
  const std::size_t lo = index_of(from);
  // Round the right edge up to cover `to`.
  const std::size_t hi =
      static_cast<std::size_t>((to - start_ + step_ - 1) / step_);
  return PriceView(time_of(lo), step_, samples_.subspan(lo, hi - lo));
}

PriceSeries PriceView::materialize() const {
  return PriceSeries(start_, step_,
                     std::vector<Money>(samples_.begin(), samples_.end()));
}

std::vector<double> PriceView::to_doubles() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (Money m : samples_) out.push_back(m.to_double());
  return out;
}

}  // namespace redspot
