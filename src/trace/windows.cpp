#include "trace/windows.hpp"

#include "common/check.hpp"

namespace redspot {

std::vector<SimTime> experiment_starts(SimTime window_start,
                                       SimTime window_end,
                                       Duration experiment_span,
                                       Duration history_span,
                                       std::size_t count) {
  REDSPOT_CHECK(count > 0);
  REDSPOT_CHECK(experiment_span > 0);
  const SimTime first = window_start + history_span;
  const SimTime last = window_end - experiment_span;
  REDSPOT_CHECK_MSG(first <= last,
                    "window too small for one experiment: window=["
                        << window_start << "," << window_end << ") span="
                        << experiment_span << " history=" << history_span);
  std::vector<SimTime> starts;
  starts.reserve(count);
  if (count == 1) {
    starts.push_back(price_step_floor(first));
    return starts;
  }
  const double stride = static_cast<double>(last - first) /
                        static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    const SimTime t =
        first + static_cast<SimTime>(stride * static_cast<double>(i));
    starts.push_back(price_step_floor(t));
  }
  return starts;
}

}  // namespace redspot
