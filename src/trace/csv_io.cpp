#include "trace/csv_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "common/fs.hpp"

namespace redspot {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace CSV line " + std::to_string(line) + ": " +
                           what);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

}  // namespace

void write_csv(std::ostream& os, const ZoneTraceSet& traces) {
  os << "time";
  for (std::size_t z = 0; z < traces.num_zones(); ++z)
    os << ',' << traces.zone_name(z);
  os << '\n';
  const PriceSeries& first = traces.zone(0);
  for (std::size_t i = 0; i < first.size(); ++i) {
    os << first.time_of(i);
    for (std::size_t z = 0; z < traces.num_zones(); ++z) {
      const Money m = traces.zone(z).sample(i);
      // Dollars with three decimals (EC2 price grid).
      os << ',' << m.to_double();
    }
    os << '\n';
  }
}

void write_csv_file(const std::string& path, const ZoneTraceSet& traces) {
  // Render in memory, then publish atomically (write-temp → fsync →
  // rename): a crash mid-export can never leave a torn CSV at `path`.
  std::ostringstream buf;
  write_csv(buf, traces);
  if (!buf) throw std::runtime_error("write failed: " + path);
  atomic_write_file(path, buf.str());
}

ZoneTraceSet read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) fail(1, "missing header");
  std::vector<std::string> header = split_commas(line);
  if (header.size() < 2 || header[0] != "time")
    fail(1, "header must be 'time,<zone>,...'");
  const std::size_t num_zones = header.size() - 1;
  std::vector<std::string> names(header.begin() + 1, header.end());
  for (std::size_t z = 0; z < names.size(); ++z) {
    if (names[z].empty()) fail(1, "empty zone name in header");
    for (std::size_t other = 0; other < z; ++other) {
      if (names[other] == names[z])
        fail(1, "duplicate zone name '" + names[z] + "'");
    }
  }

  std::vector<std::vector<Money>> cols(num_zones);
  SimTime start = 0;
  Duration step = 0;
  SimTime prev_time = 0;
  std::size_t line_no = 1;
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_commas(line);
    if (fields.size() != num_zones + 1)
      fail(line_no, "expected " + std::to_string(num_zones + 1) + " fields");
    SimTime t;
    try {
      t = std::stoll(fields[0]);
    } catch (const std::exception&) {
      fail(line_no, "bad time '" + fields[0] + "'");
    }
    if (rows == 0) {
      start = t;
    } else if (t <= prev_time) {
      fail(line_no, "non-monotone time " + std::to_string(t) + " after " +
                        std::to_string(prev_time));
    } else if (rows == 1) {
      step = t - prev_time;
    } else if (t - prev_time != step) {
      fail(line_no, "irregular time step");
    }
    prev_time = t;
    for (std::size_t z = 0; z < num_zones; ++z) {
      Money price;
      try {
        // Money::parse rejects non-numeric text (including NaN/inf
        // spellings, which have no digits to parse).
        price = Money::parse(fields[z + 1]);
      } catch (const CheckFailure&) {
        fail(line_no, "bad price '" + fields[z + 1] + "'");
      }
      if (price < Money())
        fail(line_no, "negative price '" + fields[z + 1] + "'");
      cols[z].push_back(price);
    }
    ++rows;
  }
  if (rows < 2) fail(line_no, "need at least two data rows");

  std::vector<PriceSeries> series;
  series.reserve(num_zones);
  for (auto& col : cols) series.emplace_back(start, step, std::move(col));
  return ZoneTraceSet(std::move(names), std::move(series));
}

ZoneTraceSet read_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open: " + path);
  return read_csv(f);
}

}  // namespace redspot
