#include "trace/csv_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "common/fs.hpp"

namespace redspot {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace CSV line " + std::to_string(line) + ": " +
                           what);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

}  // namespace

void write_csv(std::ostream& os, const ZoneTraceSet& traces) {
  os << "time";
  for (std::size_t z = 0; z < traces.num_zones(); ++z)
    os << ',' << traces.zone_name(z);
  os << '\n';
  const PriceSeries& first = traces.zone(0);
  for (std::size_t i = 0; i < first.size(); ++i) {
    os << first.time_of(i);
    for (std::size_t z = 0; z < traces.num_zones(); ++z) {
      const Money m = traces.zone(z).sample(i);
      // Dollars with three decimals (EC2 price grid).
      os << ',' << m.to_double();
    }
    os << '\n';
  }
}

void write_csv_file(const std::string& path, const ZoneTraceSet& traces) {
  // Render in memory, then publish atomically (write-temp → fsync →
  // rename): a crash mid-export can never leave a torn CSV at `path`.
  std::ostringstream buf;
  write_csv(buf, traces);
  if (!buf) throw std::runtime_error("write failed: " + path);
  atomic_write_file(path, buf.str());
}

namespace {

// One lane block of a trace CSV: the whole file when untyped, one
// instance type's rows when the header carries `instance_type`.
struct LaneBlock {
  std::string type;  // empty for an untyped file
  std::vector<std::vector<Money>> cols;
  SimTime start = 0;
  Duration step = 0;
  SimTime prev_time = 0;
  std::size_t rows = 0;
};

}  // namespace

ZoneTraceSet read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) fail(1, "missing header");
  std::vector<std::string> header = split_commas(line);
  const bool typed = header.size() >= 2 && header[1] == "instance_type";
  // Index of the first price field in every row (after time, and after
  // the per-row type when the file is typed).
  const std::size_t first_price = typed ? 2 : 1;
  if (header.size() < first_price + 1 || header[0] != "time")
    fail(1, typed ? "header must be 'time,instance_type,<zone>,...'"
                  : "header must be 'time,<zone>,...'");
  const std::size_t num_zones = header.size() - first_price;
  std::vector<std::string> names(header.begin() + first_price, header.end());
  for (std::size_t z = 0; z < names.size(); ++z) {
    if (names[z].empty()) fail(1, "empty zone name in header");
    for (std::size_t other = 0; other < z; ++other) {
      if (names[other] == names[z])
        fail(1, "duplicate zone name '" + names[z] + "'");
    }
  }

  std::vector<LaneBlock> blocks;
  if (!typed) {
    blocks.emplace_back();
    blocks[0].cols.resize(num_zones);
  }
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_commas(line);
    const std::size_t want = num_zones + first_price;
    if (fields.size() != want) {
      // A file may be typed or untyped, never both — the off-by-one
      // arity is almost always a row of the other flavor, so say so.
      if (typed && fields.size() == want - 1)
        fail(line_no,
             "untyped row in a typed file (header has 'instance_type')");
      if (!typed && fields.size() == want + 1)
        fail(line_no,
             "typed row in an untyped file (header has no 'instance_type' "
             "column)");
      fail(line_no, "expected " + std::to_string(want) + " fields");
    }
    SimTime t;
    try {
      t = std::stoll(fields[0]);
    } catch (const std::exception&) {
      fail(line_no, "bad time '" + fields[0] + "'");
    }
    LaneBlock* blk;
    if (typed) {
      const std::string& type = fields[1];
      if (type.empty()) fail(line_no, "empty instance_type");
      blk = nullptr;
      for (LaneBlock& b : blocks) {
        if (b.type == type) {
          blk = &b;
          break;
        }
      }
      if (blk == nullptr) {
        blocks.emplace_back();
        blk = &blocks.back();
        blk->type = type;
        blk->cols.resize(num_zones);
      }
    } else {
      blk = &blocks[0];
    }
    // Time-grid checks are per block: typed files interleave the types'
    // rows, so only rows of the same type must advance on a fixed step.
    if (blk->rows == 0) {
      blk->start = t;
    } else if (t <= blk->prev_time) {
      fail(line_no, "non-monotone time " + std::to_string(t) + " after " +
                        std::to_string(blk->prev_time));
    } else if (blk->rows == 1) {
      blk->step = t - blk->prev_time;
    } else if (t - blk->prev_time != blk->step) {
      fail(line_no, "irregular time step");
    }
    blk->prev_time = t;
    for (std::size_t z = 0; z < num_zones; ++z) {
      Money price;
      try {
        // Money::parse rejects non-numeric text (including NaN/inf
        // spellings, which have no digits to parse).
        price = Money::parse(fields[z + first_price]);
      } catch (const CheckFailure&) {
        fail(line_no, "bad price '" + fields[z + first_price] + "'");
      }
      if (price < Money())
        fail(line_no, "negative price '" + fields[z + first_price] + "'");
      blk->cols[z].push_back(price);
    }
    ++blk->rows;
  }
  if (blocks.empty()) fail(line_no, "need at least two data rows");
  for (const LaneBlock& b : blocks) {
    if (b.rows < 2)
      fail(line_no, typed ? "instance type '" + b.type +
                                "' needs at least two data rows"
                          : "need at least two data rows");
  }
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    const LaneBlock& b = blocks[i];
    if (b.start != blocks[0].start || b.step != blocks[0].step ||
        b.rows != blocks[0].rows)
      fail(line_no, "instance type '" + b.type +
                        "' covers a different time grid than '" +
                        blocks[0].type + "'");
  }

  // Lanes are type-major in first-appearance order, named like the
  // generated universes: "<type>/<zone>" (plain "<zone>" when untyped).
  std::vector<std::string> lane_names;
  std::vector<PriceSeries> series;
  lane_names.reserve(blocks.size() * num_zones);
  series.reserve(blocks.size() * num_zones);
  for (LaneBlock& b : blocks) {
    for (std::size_t z = 0; z < num_zones; ++z) {
      lane_names.push_back(typed ? b.type + "/" + names[z] : names[z]);
      series.emplace_back(b.start, b.step, std::move(b.cols[z]));
    }
  }
  return ZoneTraceSet(std::move(lane_names), std::move(series));
}

ZoneTraceSet read_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open: " + path);
  return read_csv(f);
}

}  // namespace redspot
