// Importing real spot-price histories.
//
// AWS's DescribeSpotPriceHistory returns irregular (timestamp, price)
// change events per zone, not a fixed grid. This module resamples such
// event streams onto the simulator's 5-minute piecewise-constant grid —
// the exact preprocessing the paper applies to its 12-month history
// ("the state of spot prices in all zones is sampled at a 5-minute
// interval").
//
// Event CSV format (one header line, then one row per price change):
//   time,zone,price
//   0,us-east-1a,0.27
//   4812,us-east-1b,0.31
// Times are seconds since an arbitrary epoch; rows need not be sorted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "trace/zone_traces.hpp"

namespace redspot {

/// One observed price change.
struct PriceEvent {
  SimTime time = 0;
  Money price;
};

/// Resamples a zone's change events onto a fixed grid covering
/// [grid-aligned start, end). The price at a grid instant is the price of
/// the latest event at or before it; instants before the first event take
/// the first event's price (backfill). Requires at least one event and
/// start < end.
PriceSeries resample_events(std::vector<PriceEvent> events, SimTime start,
                            SimTime end, Duration step = kPriceStep);

/// Parses an event CSV (see file comment) and resamples every zone onto
/// the common grid spanning all observed events. Zones are ordered by
/// first appearance. Throws std::runtime_error with a line-numbered
/// message on malformed input.
ZoneTraceSet read_event_csv(std::istream& is, Duration step = kPriceStep);
ZoneTraceSet read_event_csv_file(const std::string& path,
                                 Duration step = kPriceStep);

}  // namespace redspot
