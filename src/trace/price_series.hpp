// Spot-price time series.
//
// Mirrors the paper's data model (Section 5): the spot price of one
// availability zone sampled on a fixed 5-minute grid, piecewise-constant
// between samples. All policies and the billing ledger observe prices only
// through this interface, so a real EC2 price history dropped in via CSV is
// interchangeable with the synthetic generator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "trace/price_view.hpp"

namespace redspot {

/// Piecewise-constant price series on a fixed sampling grid.
class PriceSeries {
 public:
  PriceSeries() = default;

  /// `start` must be aligned to `step`; `samples` non-empty.
  PriceSeries(SimTime start, Duration step, std::vector<Money> samples);

  SimTime start() const { return start_; }
  /// One past the last covered instant: start + step * size.
  SimTime end() const {
    return start_ + step_ * static_cast<std::int64_t>(samples_.size());
  }
  Duration step() const { return step_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Price in effect at instant `t`. Requires start() <= t < end().
  Money at(SimTime t) const {
    return samples_[index_of(t)];
  }

  /// Sample by index.
  Money sample(std::size_t i) const {
    REDSPOT_CHECK(i < samples_.size());
    return samples_[i];
  }

  std::span<const Money> samples() const { return samples_; }

  /// Index of the sample covering `t`. Requires start() <= t < end().
  std::size_t index_of(SimTime t) const {
    REDSPOT_CHECK_MSG(t >= start_ && t < end(),
                      "t=" << t << " outside [" << start_ << "," << end()
                           << ")");
    return static_cast<std::size_t>((t - start_) / step_);
  }

  /// Time at which sample `i` takes effect.
  SimTime time_of(std::size_t i) const {
    REDSPOT_CHECK(i < samples_.size());
    return start_ + step_ * static_cast<std::int64_t>(i);
  }

  /// Non-owning view over the whole series. Valid while this series is
  /// alive and unmodified.
  PriceView view() const { return PriceView(start_, step_, samples_); }

  /// Non-owning view covering [from, to); bounds are clamped to the series
  /// span and aligned outward to the sampling grid. Requires a non-empty
  /// result. Same slicing semantics as window(), without the copy.
  PriceView view(SimTime from, SimTime to) const {
    return view().window(from, to);
  }

  /// First instant strictly after `t` where the price differs from the
  /// price at `t`; kNever if the price never changes again in this series.
  /// Delegates to PriceView so owning and view paths share one scan.
  SimTime next_change(SimTime t) const { return view().next_change(t); }

  /// Minimum price over the whole series.
  Money min_price() const { return view().min_price(); }
  /// Maximum price over the whole series.
  Money max_price() const { return view().max_price(); }

  /// Sub-series covering [from, to); bounds are clamped to the series span
  /// and aligned outward to the sampling grid. Requires a non-empty result.
  /// Materializing copy; prefer view(from, to) on hot paths.
  PriceSeries window(SimTime from, SimTime to) const {
    return view(from, to).materialize();
  }

  /// Samples as doubles (for statistics / VAR).
  std::vector<double> to_doubles() const { return view().to_doubles(); }

  // --- Live growth (serve tick ingestion) ---------------------------------
  //
  // A live series grows at the right edge, one sample per tick. Borrowers
  // of the storage (HistoryStats, IncrementalMarkovModel) key their
  // incremental paths on the storage base pointer, so a grower should
  // reserve_total() its expected lifetime up front: an append within
  // capacity keeps every outstanding span valid, while a reallocating
  // append safely degrades borrowers to a full rebuild.

  /// Ensures capacity for `total` samples overall (not `total` more).
  void reserve_total(std::size_t total) { samples_.reserve(total); }
  std::size_t capacity() const { return samples_.capacity(); }

  /// Appends one sample at end(), extending the grid by one step.
  void append(Money price) { samples_.push_back(price); }

 private:
  SimTime start_ = 0;
  Duration step_ = kPriceStep;
  std::vector<Money> samples_;
};

}  // namespace redspot
