// Synthetic spot-price generator.
//
// The paper evaluates against 12+ months of real CC2 spot-price history
// (Dec 2012 - Jan 2014, three US-East zones, 5-minute sampling). That data
// is not redistributable, so we substitute a regime-switching generator
// calibrated to every statistic the paper publishes about the data:
//
//   * low-volatility window (March 2013): mean ~ $0.30, variance < 0.01,
//     long sojourns at the $0.27 floor (the paper's reference price);
//   * high-volatility window (January 2013): zone means $0.70-$1.12,
//     variance up to ~2.02, excursions approaching $3.00;
//   * occasional spikes up to ~$3.00 in any month (the reason the paper's
//     bid grid tops out at $3.07);
//   * one forced multi-hour spike to $20.02 on March 13-14, 2013 (the event
//     behind Large-bid's $183.75 worst case in Figure 6);
//   * cross-zone price movements that are nearly independent, with only a
//     weak common component (Section 3.1's VAR finding).
//
// Model: per zone, a two-regime (calm/high) semi-Markov chain with
// exponential dwell times; within a regime the price follows a mean-
// reverting AR(1) around the regime level, clamped to [floor, cap] and
// quantized to $0.001. Poisson spike overlays sit on top. Everything is
// deterministic in (seed, zone, month).
#pragma once

#include <cstdint>
#include <vector>

#include "common/money.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "trace/zone_traces.hpp"

namespace redspot {

/// One price regime: mean-reverting AR(1) around `level`.
///
/// Real spot prices are piecewise-constant: they jump a handful of times
/// per hour at most and hold in between. The AR(1) state advances every
/// step, but a new price is *published* only with probability
/// `change_prob` per 5-minute step (regime switches and spikes always
/// publish). This matters to the Rising-Edge policy, which reacts to every
/// published upward movement.
struct RegimeParams {
  double level = 0.30;          ///< long-run price level ($)
  double innovation_sd = 0.02;  ///< per-step innovation std-dev ($)
  double reversion = 0.8;       ///< AR(1) coefficient in [0, 1)
  double change_prob = 0.12;    ///< P(publish a new price) per step
};

/// Poisson spike overlay (rate may be zero to disable).
struct SpikeParams {
  double per_day_rate = 0.0;          ///< expected spikes per day
  double mag_lo = 1.5;                ///< spike price range ($)
  double mag_hi = 3.0;
  Duration mean_duration = 30 * kMinute;
};

/// Generator parameters for one (zone, month) cell.
struct ZoneMonthParams {
  RegimeParams calm;
  RegimeParams high;
  /// Long-run fraction of time in the high regime; 0 disables it.
  double high_fraction = 0.0;
  /// Expected dwell in the calm regime before switching high.
  Duration calm_mean_dwell = 8 * kHour;
  SpikeParams spikes;
};

/// A deterministic spike injected verbatim (bypasses the cap).
struct ForcedSpike {
  std::size_t zone = 0;
  SimTime start = 0;
  Duration duration = 0;
  Money price;
};

/// Complete specification of a synthetic trace set.
struct SyntheticTraceSpec {
  std::uint64_t seed = 42;
  std::size_t num_zones = 3;
  Duration step = kPriceStep;
  /// Lowest possible price; the paper's reference floor is $0.27.
  Money floor = Money::cents(27);
  /// Cap for the stochastic process (forced spikes may exceed it). The
  /// paper observes organic spikes up to ~$3.00.
  Money cap = Money::dollars(3.00);
  /// Weight of a shared cross-zone innovation component in [0, 1); small
  /// values reproduce the paper's "nearly independent zones" finding.
  double cross_coupling = 0.05;
  /// params[month][zone]; month count defines the generated span starting
  /// at the trace epoch.
  std::vector<std::vector<ZoneMonthParams>> params;
  std::vector<ForcedSpike> forced_spikes;
  /// When non-null, [zone][step] supplies every per-step innovation normal
  /// verbatim and the own/shared mixing is bypassed — callers bake whatever
  /// correlation structure they want into the values (the multi-type
  /// universe injects cross-type-correlated factors this way). Borrowed;
  /// must outlive generate_traces, with dimensions [num_zones][steps of
  /// the spec's span]. Null (the default) keeps the classic stream-for-
  /// stream generator bit-identical.
  const std::vector<std::vector<double>>* innovation_override = nullptr;
};

/// Generates the trace set described by `spec`.
ZoneTraceSet generate_traces(const SyntheticTraceSpec& spec);

/// Returns `spec` truncated to the fewest whole months covering
/// [0, keep_until): later months' parameters and forced spikes starting at
/// or after the kept span are dropped. The generator's per-zone streams
/// consume randomness strictly in step order, so the trimmed spec produces
/// bit-identical prices over the kept prefix — the ensemble layer uses this
/// to synthesize only the evaluation window of each replication.
SyntheticTraceSpec trimmed_spec(SyntheticTraceSpec spec, SimTime keep_until);

/// Returns `spec` with every dollar quantity scaled by `k` > 0: floor,
/// cap, regime levels and innovation std-devs, spike magnitudes, forced-
/// spike prices. Probabilities, dwells, and the driving randomness are
/// untouched, so the scaled spec replays the same sample path at k times
/// the price level (up to the $0.001 quantization grid) — the multi-type
/// universe derives cheaper instance types this way.
SyntheticTraceSpec scaled_spec(SyntheticTraceSpec spec, double k);

/// The calibrated 14-month, 3-zone specification reproducing the paper's
/// published data statistics (see file comment). `seed` varies the sample
/// path, not the calibration.
SyntheticTraceSpec paper_trace_spec(std::uint64_t seed = 42);

/// Convenience: generate_traces(paper_trace_spec(seed)).
ZoneTraceSet paper_traces(std::uint64_t seed = 42);

}  // namespace redspot
