// Zone availability analysis (Figure 2 of the paper).
//
// A zone is "up" at bid B whenever its spot price S satisfies S <= B. This
// module extracts the up/down segments of a window, computes per-zone and
// combined (any-zone-up) availability fractions, and renders the Figure-2
// style timeline bars.
#pragma once

#include <string>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "trace/zone_traces.hpp"

namespace redspot {

/// Maximal interval during which a zone's up/down status is constant.
struct AvailabilitySegment {
  SimTime start = 0;
  SimTime end = 0;  // exclusive
  bool up = false;

  Duration length() const { return end - start; }
};

/// Up/down segments of one zone over [from, to) at bid `bid`.
std::vector<AvailabilitySegment> availability_segments(
    const PriceSeries& series, Money bid, SimTime from, SimTime to);

/// Fraction of [from, to) during which S <= bid.
double availability_fraction(const PriceSeries& series, Money bid,
                             SimTime from, SimTime to);

/// Segments where at least one zone is up (the "Combined" bar of Figure 2).
std::vector<AvailabilitySegment> combined_segments(const ZoneTraceSet& traces,
                                                   Money bid, SimTime from,
                                                   SimTime to);

/// Fraction of [from, to) during which at least one zone is up.
double combined_availability(const ZoneTraceSet& traces, Money bid,
                             SimTime from, SimTime to);

/// Expected number of simultaneously-up zones over [from, to) — what a
/// redundancy-based policy pays for.
double mean_zones_up(const ZoneTraceSet& traces, Money bid, SimTime from,
                     SimTime to);

/// ASCII bar for a segment list: '#' for up, '.' for down; one char per
/// `resolution` of time.
std::string ascii_bar(const std::vector<AvailabilitySegment>& segments,
                      Duration resolution);

}  // namespace redspot
