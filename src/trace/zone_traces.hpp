// Multi-zone trace set.
//
// The paper runs against the three CC2 availability zones of US-East
// (Section 3.1); a ZoneTraceSet bundles one aligned PriceSeries per zone.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/price_series.hpp"

namespace redspot {

/// Aligned per-zone price series sharing start, step, and length.
class ZoneTraceSet {
 public:
  ZoneTraceSet() = default;

  /// All series must share start/step/size; names one per series.
  ZoneTraceSet(std::vector<std::string> zone_names,
               std::vector<PriceSeries> series);

  std::size_t num_zones() const { return series_.size(); }
  const std::string& zone_name(std::size_t zone) const;

  // Per-price-lookup accessors: on the engine's tick path, hence inline.
  const PriceSeries& zone(std::size_t zone) const {
    REDSPOT_CHECK(zone < series_.size());
    return series_[zone];
  }
  SimTime start() const {
    REDSPOT_CHECK(!series_.empty());
    return series_[0].start();
  }
  SimTime end() const {
    REDSPOT_CHECK(!series_.empty());
    return series_[0].end();
  }
  Duration step() const {
    REDSPOT_CHECK(!series_.empty());
    return series_[0].step();
  }

  /// Price of `zone` at instant `t`.
  Money price(std::size_t zone, SimTime t) const { return this->zone(zone).at(t); }

  /// Sub-window across all zones, [from, to).
  ZoneTraceSet window(SimTime from, SimTime to) const;

  /// Subset of zones, in the given order (zone indices into this set).
  ZoneTraceSet select_zones(const std::vector<std::size_t>& zones) const;

  /// Reserves capacity for `total` samples per zone (live ingestion; see
  /// PriceSeries::reserve_total on why growers pre-reserve).
  void reserve_total(std::size_t total);

  /// Appends one aligned sample per zone (prices[z] takes effect at the
  /// previous end()). Requires prices.size() == num_zones().
  void append_tick(const std::vector<Money>& prices);

 private:
  std::vector<std::string> names_;
  std::vector<PriceSeries> series_;
};

}  // namespace redspot
