// Vector auto-regression of zone prices (Section 3.1).
//
// The paper justifies redundancy by showing that spot-price movements in
// different zones are nearly independent: a VAR fit (lag order chosen by
// the Akaike criterion) has same-zone lagged-price coefficients 1-2 orders
// of magnitude larger than cross-zone ones. This module reproduces that
// analysis: VAR(p) estimation by per-equation OLS, AIC lag selection, and
// the within/cross effect-size comparison.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "trace/zone_traces.hpp"

namespace redspot {

/// A fitted VAR(p): x_t = c + sum_l A_l x_{t-l} + e_t.
struct VarFit {
  std::size_t lag_order = 0;
  /// A_1..A_p; A_l(i, j) is the effect of series j at lag l on series i.
  std::vector<Matrix> coefficients;
  std::vector<double> intercept;
  /// Maximum-likelihood residual covariance (divides by effective T).
  Matrix residual_cov;
  /// ln det(residual_cov) + 2 p K^2 / T (see stats/timeseries.hpp).
  double aic = 0.0;
  std::size_t effective_samples = 0;
};

/// Fits a VAR of the given lag order to K series of equal length.
/// Requires lag_order >= 1 and enough samples for the design matrix.
VarFit fit_var(const std::vector<std::vector<double>>& series,
               std::size_t lag_order);

/// Fits VAR(1..max_lag) and returns the fit minimizing AIC.
VarFit fit_var_aic(const std::vector<std::vector<double>>& series,
                   std::size_t max_lag);

/// Convenience: extracts per-zone sample vectors from a trace window.
std::vector<std::vector<double>> to_series(const ZoneTraceSet& traces);

/// Within-zone vs cross-zone lagged effect sizes of a fit.
struct CrossZoneEffects {
  double mean_abs_within = 0.0;  ///< average |A_l(i,i)|
  double mean_abs_cross = 0.0;   ///< average |A_l(i,j)|, i != j
  /// mean_abs_within / mean_abs_cross; the paper reports 1-2 orders of
  /// magnitude (ratio 10-100).
  double within_to_cross_ratio = 0.0;
};

CrossZoneEffects cross_zone_effects(const VarFit& fit);

/// Residual correlation matrix of a fit: residual_cov normalized by its
/// diagonal (unit diagonal; zero-variance series yield zero off-diagonals).
/// The multi-type universe's cross-type coupling shows up here — lanes of
/// correlated instance types have correlated VAR residuals even when the
/// lagged cross coefficients stay small.
Matrix residual_correlation(const VarFit& fit);

}  // namespace redspot
