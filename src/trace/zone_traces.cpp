#include "trace/zone_traces.hpp"

namespace redspot {

ZoneTraceSet::ZoneTraceSet(std::vector<std::string> zone_names,
                           std::vector<PriceSeries> series)
    : names_(std::move(zone_names)), series_(std::move(series)) {
  REDSPOT_CHECK(!series_.empty());
  REDSPOT_CHECK(names_.size() == series_.size());
  for (const PriceSeries& s : series_) {
    REDSPOT_CHECK_MSG(s.start() == series_[0].start() &&
                          s.step() == series_[0].step() &&
                          s.size() == series_[0].size(),
                      "zone series are not aligned");
  }
}

const std::string& ZoneTraceSet::zone_name(std::size_t zone) const {
  REDSPOT_CHECK(zone < names_.size());
  return names_[zone];
}

ZoneTraceSet ZoneTraceSet::window(SimTime from, SimTime to) const {
  std::vector<PriceSeries> sub;
  sub.reserve(series_.size());
  for (const PriceSeries& s : series_) sub.push_back(s.window(from, to));
  return ZoneTraceSet(names_, std::move(sub));
}

void ZoneTraceSet::reserve_total(std::size_t total) {
  for (PriceSeries& s : series_) s.reserve_total(total);
}

void ZoneTraceSet::append_tick(const std::vector<Money>& prices) {
  REDSPOT_CHECK(prices.size() == series_.size());
  for (std::size_t z = 0; z < series_.size(); ++z)
    series_[z].append(prices[z]);
}

ZoneTraceSet ZoneTraceSet::select_zones(
    const std::vector<std::size_t>& zones) const {
  std::vector<std::string> names;
  std::vector<PriceSeries> series;
  for (std::size_t z : zones) {
    REDSPOT_CHECK(z < series_.size());
    names.push_back(names_[z]);
    series.push_back(series_[z]);
  }
  return ZoneTraceSet(std::move(names), std::move(series));
}

}  // namespace redspot
