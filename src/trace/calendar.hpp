// Trace calendar.
//
// The paper's price history spans December 2012 through January 2014
// (Section 5). Simulation time is seconds since the trace epoch,
// 2012-12-01 00:00 UTC; this header maps calendar months of that span to
// [start, end) windows so experiments can name "March 2013" (the
// low-volatility window) or "January 2013" (the high-volatility window).
#pragma once

#include <cstddef>
#include <string>

#include "common/time.hpp"

namespace redspot {

/// Number of calendar months in the trace span (Dec 2012 .. Jan 2014).
inline constexpr std::size_t kTraceMonths = 14;

/// Month of the low-volatility evaluation window (March 2013, Section 5).
inline constexpr std::size_t kLowVolatilityMonth = 3;

/// Month of the high-volatility evaluation window (January 2013, Section 5).
inline constexpr std::size_t kHighVolatilityMonth = 1;

/// Days in trace month `m` (0 = Dec 2012).
int days_in_month(std::size_t m);

/// Start of trace month `m`, seconds since the epoch.
SimTime month_start(std::size_t m);

/// One past the end of trace month `m`.
SimTime month_end(std::size_t m);

/// Total length of the trace span.
Duration trace_span();

/// Human-readable name, e.g. "Mar 2013".
std::string month_name(std::size_t m);

/// Start of a given day-of-month (1-based) within trace month `m`.
SimTime day_start(std::size_t m, int day_of_month);

}  // namespace redspot
