// CSV import/export for trace sets.
//
// Format (one header line, then one row per sampling step):
//   time,<zone-name>,<zone-name>,...
//   0,0.270,0.271,0.270
//   300,0.270,0.275,0.270
// Times are seconds since the trace epoch and must advance by a constant
// step; prices are dollars. Real EC2 price histories resampled to a fixed
// grid can be dropped in through this path.
//
// Multi-type markets (DESIGN.md §15) add an optional `instance_type`
// column right after `time`; every data row then carries the type whose
// prices it holds, and rows group into one lane block per type:
//   time,instance_type,<zone-name>,...
//   0,cc2.8xlarge,0.270,0.271
//   0,m1.small,0.027,0.028
//   300,cc2.8xlarge,0.275,0.270
// Lanes come back named "<type>/<zone>" (the market/universe.hpp naming),
// type-major in first-appearance order; all types must cover the same
// time grid. A file may be typed or untyped, never both: a row with the
// wrong arity for its header is rejected with a line-numbered error.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/zone_traces.hpp"

namespace redspot {

/// Writes `traces` as CSV.
void write_csv(std::ostream& os, const ZoneTraceSet& traces);
void write_csv_file(const std::string& path, const ZoneTraceSet& traces);

/// Parses a trace-set CSV. Throws std::runtime_error with a line-numbered
/// message on malformed input.
ZoneTraceSet read_csv(std::istream& is);
ZoneTraceSet read_csv_file(const std::string& path);

}  // namespace redspot
