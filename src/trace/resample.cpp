#include "trace/resample.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"

namespace redspot {

PriceSeries resample_events(std::vector<PriceEvent> events, SimTime start,
                            SimTime end, Duration step) {
  REDSPOT_CHECK(!events.empty());
  REDSPOT_CHECK(step > 0);
  REDSPOT_CHECK(start < end);
  std::stable_sort(events.begin(), events.end(),
                   [](const PriceEvent& a, const PriceEvent& b) {
                     return a.time < b.time;
                   });
  const SimTime grid_start = start - (start % step) - (start % step < 0 ? step : 0);
  const auto num_steps =
      static_cast<std::size_t>((end - grid_start + step - 1) / step);
  REDSPOT_CHECK(num_steps > 0);

  std::vector<Money> samples(num_steps);
  std::size_t next_event = 0;
  Money current = events.front().price;  // backfill before the first event
  for (std::size_t i = 0; i < num_steps; ++i) {
    const SimTime t = grid_start + static_cast<SimTime>(i) * step;
    while (next_event < events.size() && events[next_event].time <= t) {
      current = events[next_event].price;
      ++next_event;
    }
    samples[i] = current;
  }
  return PriceSeries(grid_start, step, std::move(samples));
}

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("event CSV line " + std::to_string(line) + ": " +
                           what);
}

}  // namespace

ZoneTraceSet read_event_csv(std::istream& is, Duration step) {
  std::string line;
  if (!std::getline(is, line)) fail(1, "missing header");
  if (line != "time,zone,price")
    fail(1, "header must be 'time,zone,price'");

  std::vector<std::string> zone_order;
  std::map<std::string, std::vector<PriceEvent>> events;
  SimTime min_time = kNever;
  SimTime max_time = 0;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::size_t c1 = line.find(',');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : line.find(',', c1 + 1);
    if (c2 == std::string::npos) fail(line_no, "expected 3 fields");
    SimTime t;
    try {
      t = std::stoll(line.substr(0, c1));
    } catch (const std::exception&) {
      fail(line_no, "bad time");
    }
    const std::string zone = line.substr(c1 + 1, c2 - c1 - 1);
    if (zone.empty()) fail(line_no, "empty zone name");
    Money price;
    try {
      price = Money::parse(line.substr(c2 + 1));
    } catch (const CheckFailure&) {
      fail(line_no, "bad price");
    }
    if (events.find(zone) == events.end()) zone_order.push_back(zone);
    events[zone].push_back(PriceEvent{t, price});
    min_time = std::min(min_time, t);
    max_time = std::max(max_time, t);
  }
  if (zone_order.empty()) fail(line_no, "no events");

  const SimTime start = min_time - (min_time % step);
  const SimTime end = max_time + step;
  std::vector<PriceSeries> series;
  series.reserve(zone_order.size());
  for (const std::string& zone : zone_order)
    series.push_back(resample_events(events[zone], start, end, step));
  return ZoneTraceSet(zone_order, std::move(series));
}

ZoneTraceSet read_event_csv_file(const std::string& path, Duration step) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open: " + path);
  return read_event_csv(f, step);
}

}  // namespace redspot
