// Minimal unix-domain stream-socket helpers for the fabric.
//
// The fabric runs coordinator and workers on one host (the multi-process
// rung of the ROADMAP's fabric ladder; the protocol itself is
// transport-agnostic framed bytes, so a TCP transport can slot in without
// touching the message layer). Unix sockets give exact process-crash
// semantics — a SIGKILLed peer is an EOF/ECONNRESET, never a half-open
// mystery — which is precisely what the chaos tests exercise.
//
// Sends use MSG_NOSIGNAL (a dead peer must surface as an error, not
// SIGPIPE) and resume across EINTR and short writes, mirroring the
// common/fs helpers' signal-safety contract.
#pragma once

#include <string>
#include <string_view>

#include "common/frame.hpp"

namespace redspot::fabric {

/// Creates, binds and listens on a unix socket at `path`, unlinking any
/// stale socket first (a crashed coordinator leaves one behind). The
/// returned listener is non-blocking (drain accept_unix until -1);
/// accepted connections are blocking. Throws std::runtime_error on
/// failure.
int listen_unix(const std::string& path, int backlog = 64);

/// Connects to the unix socket at `path`. Returns the connected fd, or -1
/// (errno preserved) when the coordinator is not there yet — ENOENT and
/// ECONNREFUSED are reconnect-with-backoff conditions, not errors. Throws
/// std::runtime_error on unexpected failures.
int connect_unix(const std::string& path);

/// Accepts one pending connection. Returns -1 when none is pending or the
/// attempt was transiently interrupted. Throws on listener breakage.
int accept_unix(int listen_fd);

/// Sends one frame (header + payload) fully. Throws std::runtime_error on
/// any failure including a dead peer (EPIPE/ECONNRESET).
void send_frame(int fd, std::string_view payload);

/// Reads whatever is available into `buf` (one read() call, EINTR-retried).
/// Returns false on EOF — the peer is gone. Throws on real errors.
bool read_available(int fd, FrameBuffer& buf);

}  // namespace redspot::fabric
