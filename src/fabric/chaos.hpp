// ChaosPlan: deterministic worker-kill schedule for fabric testing.
//
// A worker launched with a chaos plan decides, purely from
// (plan seed, shard, attempt), whether to SIGKILL itself partway through
// computing that shard. Because the attempt counter is journal-backed on
// the coordinator and travels inside the lease grant, the schedule is a
// pure function of the run — rerunning the same chaos-laced run replays
// the same kills, and a coordinator that crashes and resumes hands out
// grants whose attempt numbers continue the original sequence.
//
// kill_attempts bounds how many times any single shard's computation may
// be murdered: once a shard's attempt exceeds it, should_kill is false
// forever, so every shard eventually completes and chaos runs terminate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace redspot::fabric {

struct ChaosPlan {
  std::uint64_t seed = 0;
  /// Probability that a given (shard, attempt) gets killed mid-compute.
  double kill_rate = 0.0;
  /// Attempts beyond this are never killed (termination guarantee).
  std::uint64_t kill_attempts = 2;

  bool enabled() const { return kill_rate > 0.0; }
};

/// True when the worker computing `shard` on its `attempt`-th grant
/// (1-based) should SIGKILL itself mid-shard.
bool should_kill(const ChaosPlan& plan, std::uint64_t shard,
                 std::uint64_t attempt);

/// Parses "seed:rate[:attempts]" (e.g. "7:0.5" or "7:1.0:1").
/// Returns nullopt on malformed input or rate outside [0, 1].
std::optional<ChaosPlan> parse_chaos_plan(const std::string& text);

}  // namespace redspot::fabric
