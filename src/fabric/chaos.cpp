#include "fabric/chaos.hpp"

#include <cstdlib>

#include "common/hash.hpp"

namespace redspot::fabric {

bool should_kill(const ChaosPlan& plan, std::uint64_t shard,
                 std::uint64_t attempt) {
  if (!plan.enabled()) return false;
  if (attempt > plan.kill_attempts) return false;
  HashStream h;
  h.str("fabric-chaos");
  h.u64(plan.seed);
  h.u64(shard);
  h.u64(attempt);
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(h.digest() >> 11) * 0x1.0p-53;
  return u < plan.kill_rate;
}

std::optional<ChaosPlan> parse_chaos_plan(const std::string& text) {
  const auto c1 = text.find(':');
  if (c1 == std::string::npos || c1 == 0) return std::nullopt;
  const auto c2 = text.find(':', c1 + 1);
  const std::string seed_s = text.substr(0, c1);
  const std::string rate_s = text.substr(
      c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
  if (rate_s.empty()) return std::nullopt;

  ChaosPlan plan;
  char* end = nullptr;
  plan.seed = std::strtoull(seed_s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  plan.kill_rate = std::strtod(rate_s.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  if (plan.kill_rate < 0.0 || plan.kill_rate > 1.0) return std::nullopt;
  if (c2 != std::string::npos) {
    const std::string att_s = text.substr(c2 + 1);
    if (att_s.empty()) return std::nullopt;
    plan.kill_attempts = std::strtoull(att_s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return std::nullopt;
  }
  return plan;
}

}  // namespace redspot::fabric
