#include "fabric/wire.hpp"

#include "common/frame.hpp"

namespace redspot::fabric {

namespace {

std::string header(MsgType t) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(t));
  return out;
}

/// Reader positioned after a verified type tag, or nullopt.
std::optional<ByteReader> open_msg(std::string_view payload, MsgType want) {
  ByteReader in(payload);
  std::uint32_t tag = 0;
  if (!in.u32(&tag) || tag != static_cast<std::uint32_t>(want))
    return std::nullopt;
  return in;
}

}  // namespace

std::optional<MsgType> msg_type(std::string_view payload) {
  ByteReader in(payload);
  std::uint32_t tag = 0;
  if (!in.u32(&tag)) return std::nullopt;
  switch (static_cast<MsgType>(tag)) {
    case MsgType::kHello:
    case MsgType::kWelcome:
    case MsgType::kReject:
    case MsgType::kLease:
    case MsgType::kPartial:
    case MsgType::kAck:
    case MsgType::kHeartbeat:
    case MsgType::kDone:
    case MsgType::kGoodbye:
      return static_cast<MsgType>(tag);
  }
  return std::nullopt;
}

std::string encode_hello(const HelloMsg& m) {
  std::string out = header(MsgType::kHello);
  put_u32(out, m.protocol);
  put_u64(out, m.spec_hash);
  put_u64(out, m.replications);
  put_u64(out, m.num_shards);
  put_u64(out, m.num_configs);
  put_u64(out, m.pid);
  return out;
}

std::optional<HelloMsg> decode_hello(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kHello);
  if (!in) return std::nullopt;
  HelloMsg m;
  if (!in->u32(&m.protocol) || !in->u64(&m.spec_hash) ||
      !in->u64(&m.replications) || !in->u64(&m.num_shards) ||
      !in->u64(&m.num_configs) || !in->u64(&m.pid) || !in->done())
    return std::nullopt;
  return m;
}

std::string encode_welcome(const WelcomeMsg& m) {
  std::string out = header(MsgType::kWelcome);
  put_u32(out, m.protocol);
  put_u64(out, m.spec_hash);
  put_u64(out, m.worker);
  return out;
}

std::optional<WelcomeMsg> decode_welcome(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kWelcome);
  if (!in) return std::nullopt;
  WelcomeMsg m;
  if (!in->u32(&m.protocol) || !in->u64(&m.spec_hash) || !in->u64(&m.worker) ||
      !in->done())
    return std::nullopt;
  return m;
}

std::string encode_reject(const RejectMsg& m) {
  std::string out = header(MsgType::kReject);
  put_str(out, m.reason);
  return out;
}

std::optional<RejectMsg> decode_reject(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kReject);
  if (!in) return std::nullopt;
  RejectMsg m;
  if (!in->str(&m.reason) || !in->done()) return std::nullopt;
  return m;
}

std::string encode_lease(const LeaseMsg& m) {
  std::string out = header(MsgType::kLease);
  put_u64(out, m.lease_id);
  put_u64(out, m.shard_lo);
  put_u64(out, m.shard_hi);
  put_u64(out, m.attempt);
  put_u64(out, m.duration_ms);
  return out;
}

std::optional<LeaseMsg> decode_lease(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kLease);
  if (!in) return std::nullopt;
  LeaseMsg m;
  if (!in->u64(&m.lease_id) || !in->u64(&m.shard_lo) || !in->u64(&m.shard_hi) ||
      !in->u64(&m.attempt) || !in->u64(&m.duration_ms) || !in->done())
    return std::nullopt;
  if (m.shard_hi <= m.shard_lo) return std::nullopt;
  return m;
}

std::string encode_partial(const PartialMsg& m) {
  std::string out = header(MsgType::kPartial);
  put_u64(out, m.lease_id);
  put_u64(out, m.shard);
  out.append(m.record);  // nested record runs to the end of the payload
  return out;
}

std::optional<PartialMsg> decode_partial(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kPartial);
  if (!in) return std::nullopt;
  PartialMsg m;
  if (!in->u64(&m.lease_id) || !in->u64(&m.shard)) return std::nullopt;
  m.record = std::string(in->rest());
  if (m.record.empty()) return std::nullopt;
  return m;
}

std::string encode_ack(const AckMsg& m) {
  std::string out = header(MsgType::kAck);
  put_u64(out, m.shard);
  put_u8(out, m.duplicate ? 1 : 0);
  return out;
}

std::optional<AckMsg> decode_ack(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kAck);
  if (!in) return std::nullopt;
  AckMsg m;
  std::uint8_t dup = 0;
  if (!in->u64(&m.shard) || !in->u8(&dup) || !in->done()) return std::nullopt;
  m.duplicate = dup != 0;
  return m;
}

std::string encode_heartbeat(const HeartbeatMsg& m) {
  std::string out = header(MsgType::kHeartbeat);
  put_u64(out, m.shard);
  put_u64(out, m.replications_done);
  return out;
}

std::optional<HeartbeatMsg> decode_heartbeat(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kHeartbeat);
  if (!in) return std::nullopt;
  HeartbeatMsg m;
  if (!in->u64(&m.shard) || !in->u64(&m.replications_done) || !in->done())
    return std::nullopt;
  return m;
}

std::string encode_done(const DoneMsg& m) {
  std::string out = header(MsgType::kDone);
  put_u64(out, m.shards_total);
  return out;
}

std::optional<DoneMsg> decode_done(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kDone);
  if (!in) return std::nullopt;
  DoneMsg m;
  if (!in->u64(&m.shards_total) || !in->done()) return std::nullopt;
  return m;
}

std::string encode_goodbye(const GoodbyeMsg& m) {
  std::string out = header(MsgType::kGoodbye);
  put_str(out, m.reason);
  return out;
}

std::optional<GoodbyeMsg> decode_goodbye(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kGoodbye);
  if (!in) return std::nullopt;
  GoodbyeMsg m;
  if (!in->str(&m.reason) || !in->done()) return std::nullopt;
  return m;
}

}  // namespace redspot::fabric
