#include "fabric/fabric.hpp"

#include <cerrno>
#include <ctime>

namespace redspot::fabric {

std::int64_t mono_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1'000'000;
}

void sleep_ms(std::int64_t ms) {
  timespec req{};
  req.tv_sec = ms / 1000;
  req.tv_nsec = (ms % 1000) * 1'000'000;
  timespec rem{};
  while (::nanosleep(&req, &rem) != 0 && errno == EINTR) req = rem;
}

}  // namespace redspot::fabric
