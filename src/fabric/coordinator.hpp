// Fabric coordinator: leases shards to a worker fleet, folds the partials.
//
// Single-threaded poll() loop over one transport listener (unix socket or
// TCP — common/transport) plus every connected worker. The coordinator
// owns no simulation code of its own —
// validation, folding and the final reduction all go through
// ShardExecutor, and each accepted partial is journaled verbatim as the
// kEnsembleShard record the worker produced, so:
//
//   * the final EnsembleResult is bit-identical to the in-process
//     EnsembleRunner whatever the worker count, death order or
//     reassignment interleaving (fold order is fixed by shard index);
//   * a coordinator that is SIGKILLed and restarted replays completed
//     shards from the journal exactly like a single-process resume, and
//     re-grants only the remainder;
//   * lease grants are journaled too (kFabricLease), so per-shard attempt
//     counters — the ChaosPlan's key — survive the restart.
//
// Liveness: if no worker is connected for fallback_wait_ms the
// coordinator logs a warning and finishes the run in-process via
// EnsembleRunner (journal-aware, so fleet-computed shards still count).
// It never hangs on an empty fleet.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ensemble/runner.hpp"
#include "ensemble/spec.hpp"
#include "fabric/fabric.hpp"

namespace redspot {
class RunJournal;
}

namespace redspot::fabric {

struct CoordinatorReport {
  EnsembleResult result;
  /// Shards folded from journal replay / received over the wire /
  /// computed by the in-process fallback.
  std::uint64_t shards_replayed = 0;
  std::uint64_t shards_from_fleet = 0;
  std::uint64_t shards_fallback = 0;
  std::uint64_t duplicate_partials = 0;
  std::uint64_t workers_seen = 0;
  std::uint64_t workers_lost = 0;
  bool used_fallback = false;
};

class Coordinator {
 public:
  /// `spec` must be validated and outlive the coordinator. `journal` may
  /// be null (no durability); when set, it is replayed on construction
  /// and appended to as partials arrive. The listener is bound here, in
  /// the constructor — callers may fork/spawn workers the moment this
  /// returns, and tcp:HOST:0 callers read the resolved port from
  /// endpoint(). Throws std::runtime_error on a bad or unbindable
  /// endpoint.
  Coordinator(const EnsembleSpec& spec, FabricOptions options,
              RunJournal* journal);
  ~Coordinator();

  /// The actual bound endpoint in canonical text form — resolves
  /// tcp:HOST:0 to the kernel-assigned port.
  std::string endpoint() const;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Runs to completion (all shards folded) and returns the report.
  /// Throws std::runtime_error on unrecoverable I/O failures.
  CoordinatorReport run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace redspot::fabric
