// Fabric wire protocol: typed messages over the shared frame codec.
//
// Every message travels as one CRC32 frame (common/frame.hpp — the same
// framing the run journal persists); the payload starts with a u32 message
// type. Decoders are total: any malformed payload yields nullopt and the
// receiver drops the connection — a fabric peer is never trusted halfway.
//
//   worker -> coordinator:  Hello, Heartbeat, Partial, Goodbye
//   coordinator -> worker:  Welcome, Reject, Lease, Ack, Done
//
// Flow: a worker connects and sends Hello carrying the spec fingerprint it
// was launched with; the coordinator either Rejects (mismatched spec or
// protocol) or Welcomes it and starts granting Leases (contiguous shard
// ranges with a wall-clock duration). The worker computes each leased
// shard in order and streams one Partial per shard — the payload of which
// is byte-for-byte a kEnsembleShard journal record, so the coordinator
// can validate, fold and journal it through the exact machinery the
// in-process runner uses. Heartbeats keep the lease alive between
// partials; Ack confirms receipt (a worker that dies after Partial but
// before Ack has still delivered — dedupe is by shard id + spec hash);
// Done tells the worker to exit cleanly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace redspot::fabric {

/// Bumped on any incompatible change; Hello/Welcome carry it and a
/// mismatch is a hard Reject.
inline constexpr std::uint32_t kProtocolVersion = 1;

enum class MsgType : std::uint32_t {
  kHello = 1,
  kWelcome = 2,
  kReject = 3,
  kLease = 4,
  kPartial = 5,
  kAck = 6,
  kHeartbeat = 7,
  kDone = 8,
  kGoodbye = 9,
};

/// Type tag of a message payload, or nullopt if too short / unknown.
std::optional<MsgType> msg_type(std::string_view payload);

/// Worker introduction: what it believes the run is. The coordinator
/// rejects on any mismatch — a worker launched with different ensemble
/// options must never contribute shards.
struct HelloMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::uint64_t spec_hash = 0;
  std::uint64_t replications = 0;
  std::uint64_t num_shards = 0;
  std::uint64_t num_configs = 0;
  std::uint64_t pid = 0;  ///< worker's pid (diagnostics only)
};

struct WelcomeMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::uint64_t spec_hash = 0;
  std::uint64_t worker = 0;  ///< coordinator-assigned session id
};

struct RejectMsg {
  std::string reason;
};

/// A lease on the contiguous shard range [shard_lo, shard_hi), valid for
/// duration_ms of wall clock from receipt. `attempt` is the 1-based count
/// of grants of shard_lo across the whole run (journal-backed), the key
/// ChaosPlan kill decisions use.
struct LeaseMsg {
  std::uint64_t lease_id = 0;
  std::uint64_t shard_lo = 0;
  std::uint64_t shard_hi = 0;
  std::uint64_t attempt = 0;
  std::uint64_t duration_ms = 0;
};

/// One completed shard: `record` is a kEnsembleShard journal record
/// payload (journal/run_record.hpp), validated and folded by the
/// coordinator through ShardExecutor.
struct PartialMsg {
  std::uint64_t lease_id = 0;
  std::uint64_t shard = 0;
  std::string record;
};

struct AckMsg {
  std::uint64_t shard = 0;
  bool duplicate = false;  ///< someone else completed it first
};

/// Liveness + progress. `shard`/`replications_done` describe the shard
/// currently computing (kNoShard when idle).
struct HeartbeatMsg {
  static constexpr std::uint64_t kNoShard = ~0ULL;
  std::uint64_t shard = kNoShard;
  std::uint64_t replications_done = 0;
};

struct DoneMsg {
  std::uint64_t shards_total = 0;
};

/// Worker's parting message when it cannot continue (shard threw, chaos
/// exhausted): lets the coordinator reclaim immediately instead of waiting
/// for the heartbeat timeout.
struct GoodbyeMsg {
  std::string reason;
};

std::string encode_hello(const HelloMsg& m);
std::string encode_welcome(const WelcomeMsg& m);
std::string encode_reject(const RejectMsg& m);
std::string encode_lease(const LeaseMsg& m);
std::string encode_partial(const PartialMsg& m);
std::string encode_ack(const AckMsg& m);
std::string encode_heartbeat(const HeartbeatMsg& m);
std::string encode_done(const DoneMsg& m);
std::string encode_goodbye(const GoodbyeMsg& m);

std::optional<HelloMsg> decode_hello(std::string_view payload);
std::optional<WelcomeMsg> decode_welcome(std::string_view payload);
std::optional<RejectMsg> decode_reject(std::string_view payload);
std::optional<LeaseMsg> decode_lease(std::string_view payload);
std::optional<PartialMsg> decode_partial(std::string_view payload);
std::optional<AckMsg> decode_ack(std::string_view payload);
std::optional<HeartbeatMsg> decode_heartbeat(std::string_view payload);
std::optional<DoneMsg> decode_done(std::string_view payload);
std::optional<GoodbyeMsg> decode_goodbye(std::string_view payload);

}  // namespace redspot::fabric
