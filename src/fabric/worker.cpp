#include "fabric/worker.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/log.hpp"
#include "common/random.hpp"
#include "common/transport/transport.hpp"
#include "ensemble/shard_exec.hpp"
#include "fabric/wire.hpp"
#include "fault/fault_plan.hpp"

namespace redspot::fabric {

namespace {

/// Computes one leased shard, heartbeating (and possibly dying) from the
/// progress callback, and streams the partial. Throws std::runtime_error
/// when the connection dies.
void compute_and_send(const ShardExecutor& exec, const FabricOptions& opt,
                      const ChaosPlan& chaos, transport::Stream& stream,
                      const LeaseMsg& lease, std::uint64_t shard) {
  const auto [lo, hi] = exec.bounds(static_cast<std::size_t>(shard));
  // Chaos verdict is fixed before compute starts: die after roughly half
  // the shard's replications, so the kill lands mid-shard — after work
  // has been done, before any partial escapes.
  const std::size_t kill_after =
      should_kill(chaos, shard, lease.attempt) ? (hi - lo + 1) / 2 : 0;

  std::int64_t last_hb = mono_ms();
  const std::string payload = exec.compute(
      static_cast<std::size_t>(shard), [&](std::size_t done) {
        if (kill_after != 0 && done >= kill_after) {
          // Simulated crash: no goodbye, no flush, exactly SIGKILL.
          ::raise(SIGKILL);
        }
        const std::int64_t now = mono_ms();
        if (now - last_hb < opt.heartbeat_interval_ms) return;
        last_hb = now;
        try {
          transport::send_frame(stream, encode_heartbeat({shard, done}));
        } catch (const std::runtime_error&) {
          // Coordinator gone mid-compute; the partial send below will
          // surface it. Progress callbacks must not throw.
        }
      });
  transport::send_frame(stream,
                        encode_partial({lease.lease_id, shard, payload}));
}

/// One connected session. Returns the worker exit code (0 done, 2
/// rejected), or -1 when the connection was lost and a reconnect is in
/// order. Sets *welcomed once the handshake succeeds.
int serve(const ShardExecutor& exec, const EnsembleSpec& spec,
          const FabricOptions& opt, const ChaosPlan& chaos,
          transport::Stream& stream, bool* welcomed) {
  try {
    HelloMsg hello;
    hello.spec_hash = exec.spec_hash();
    hello.replications = spec.replications;
    hello.num_shards = exec.num_shards();
    hello.num_configs = exec.num_configs();
    hello.pid = static_cast<std::uint64_t>(::getpid());
    transport::send_frame(stream, encode_hello(hello));
    // If the Hello (or the coordinator's Welcome) vanishes into a one-way
    // partition, no EOF ever comes; this deadline is the only way out.
    const std::int64_t handshake_deadline =
        mono_ms() + opt.handshake_timeout_ms;

    FrameBuffer in;
    while (true) {
      std::string frame;
      const FrameStatus status = in.next(&frame);
      if (status == FrameStatus::kCorrupt) return -1;
      if (status == FrameStatus::kNeedMore) {
        if (!*welcomed && mono_ms() >= handshake_deadline) {
          LOG_WARN << "fabric: handshake timed out; reconnecting";
          return -1;
        }
        // Idle workers must stay audibly alive: poll with a heartbeat
        // deadline instead of blocking on read forever.
        pollfd pfd{stream.fd(), POLLIN, 0};
        const int rc =
            ::poll(&pfd, 1, static_cast<int>(opt.heartbeat_interval_ms));
        if (rc < 0 && errno != EINTR) return -1;
        if (rc <= 0) {
          transport::send_frame(stream,
                                encode_heartbeat({HeartbeatMsg::kNoShard, 0}));
          continue;
        }
        if (!stream.read_into(in)) return -1;  // EOF
        continue;
      }

      const auto type = msg_type(frame);
      if (!type) return -1;
      switch (*type) {
        case MsgType::kWelcome: {
          const auto w = decode_welcome(frame);
          if (!w || w->spec_hash != exec.spec_hash()) return 2;
          *welcomed = true;
          break;
        }
        case MsgType::kReject: {
          const auto r = decode_reject(frame);
          LOG_WARN << "fabric: coordinator rejected this worker: "
                   << (r ? r->reason : std::string("malformed reject"));
          return 2;
        }
        case MsgType::kLease: {
          const auto lease = decode_lease(frame);
          if (!lease) return -1;
          for (std::uint64_t s = lease->shard_lo; s < lease->shard_hi; ++s)
            compute_and_send(exec, opt, chaos, stream, *lease, s);
          break;
        }
        case MsgType::kAck:
          break;  // receipt confirmed; nothing to do
        case MsgType::kDone:
          return 0;
        default:
          return -1;  // worker-bound protocol only
      }
    }
  } catch (const std::runtime_error& e) {
    LOG_WARN << "fabric: connection lost: " << e.what();
    return -1;
  }
}

}  // namespace

int run_worker(const EnsembleSpec& spec, const FabricOptions& options,
               const ChaosPlan& chaos) {
  const auto ep = transport::parse_endpoint(options.endpoint);
  if (!ep) {
    LOG_WARN << "fabric: bad endpoint: " << options.endpoint;
    return 1;
  }
  const ShardExecutor exec(spec, options.batch_width);
  // Jitter only desynchronizes reconnect stampedes; per-process seeding
  // is exactly what we want (shard results never depend on it).
  Rng rng(static_cast<std::uint64_t>(::getpid()), /*stream=*/0xFAB);

  int attempt = 1;
  std::int64_t give_up_at = mono_ms() + options.give_up_ms;
  while (true) {
    std::unique_ptr<transport::Stream> stream = transport::connect(*ep);
    if (stream) {
      if (options.net_fault != nullptr)
        stream = options.net_fault->wrap(std::move(stream));
      bool welcomed = false;
      const int rc =
          serve(exec, spec, options, chaos, *stream, &welcomed);
      stream.reset();
      if (rc >= 0) return rc;
      if (welcomed) {
        // A worker that was in the fleet gets a fresh patience budget:
        // the coordinator may be mid-restart.
        attempt = 1;
        give_up_at = mono_ms() + options.give_up_ms;
      }
    }
    if (mono_ms() >= give_up_at) {
      LOG_WARN << "fabric: no coordinator at " << options.endpoint
               << " after " << options.give_up_ms << " ms; giving up";
      return 1;
    }
    const Duration delay =
        backoff_delay(options.reconnect, attempt++, rng.uniform());
    sleep_ms(static_cast<std::int64_t>(delay));
  }
}

}  // namespace redspot::fabric
