#include "fabric/socket.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace redspot::fabric {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("fabric socket: " + what + ": " +
                           std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("fabric socket: path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  // A previous coordinator that crashed leaves its socket inode behind;
  // bind() would fail with EADDRINUSE even though nobody is listening.
  ::unlink(path.c_str());
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("bind " + path);
  }
  if (::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("listen " + path);
  }
  // Non-blocking listener: the coordinator drains accept() until EAGAIN
  // after a poll() wakeup. Accepted fds stay blocking (Linux does not
  // inherit the flag), which is what the frame send/read helpers expect.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("fcntl " + path);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  const sockaddr_un addr = make_addr(path);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) return fd;
  const int saved = errno;
  ::close(fd);
  errno = saved;
  if (saved == ENOENT || saved == ECONNREFUSED || saved == EAGAIN) return -1;
  fail("connect " + path);
}

int accept_unix(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) return fd;
  // The connecting peer may already be gone, or a signal interrupted us;
  // both mean "nothing to accept right now".
  if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
      errno == EWOULDBLOCK)
    return -1;
  fail("accept");
}

void send_frame(int fd, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool read_available(int fd, FrameBuffer& buf) {
  char chunk[64 * 1024];
  ssize_t n;
  do {
    n = ::read(fd, chunk, sizeof(chunk));
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail("read");
  if (n == 0) return false;
  buf.append(std::string_view(chunk, static_cast<std::size_t>(n)));
  return true;
}

}  // namespace redspot::fabric
