// Fabric worker: computes leased shards and streams the partials back.
//
// A worker is a deliberately simple, expendable process: one blocking
// unix-socket connection, one lease at a time, shards computed strictly
// in lease order through the same ShardExecutor the coordinator and the
// in-process runner use. Heartbeats ride the compute progress callback
// (sent at most every heartbeat_interval_ms), so a wedged simulation is
// indistinguishable from a dead worker — which is exactly the coordinator
// policy we want.
//
// Reconnects use the fault module's exponential backoff with jitter
// (interpreted in milliseconds); a worker that cannot reach a coordinator
// within give_up_ms exits nonzero rather than spinning forever. A
// ChaosPlan makes the worker SIGKILL itself mid-shard on schedule — the
// test fleet's fault injector.
#pragma once

#include "ensemble/spec.hpp"
#include "fabric/chaos.hpp"
#include "fabric/fabric.hpp"

namespace redspot::fabric {

/// Runs the worker loop to completion. Returns the process exit code:
/// 0 = coordinator said Done; 1 = could not reach a coordinator within
/// give_up_ms; 2 = coordinator rejected the handshake or broke protocol.
/// `spec` must be validated and describe the same run the coordinator
/// was started with (enforced via the spec-hash handshake).
int run_worker(const EnsembleSpec& spec, const FabricOptions& options,
               const ChaosPlan& chaos);

}  // namespace redspot::fabric
