// Shared fabric configuration and wall-clock helpers.
//
// Timing defaults are sized for the chaos tests' worst case — a 1-CPU
// machine running under ASan where one replication can take tens of
// milliseconds: heartbeats are cheap (send every 250 ms), death verdicts
// are conservative (2 s of silence), and a lease outlives any honest
// shard (10 s).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/transport/fault.hpp"
#include "fabric/lease.hpp"
#include "fault/fault_plan.hpp"

namespace redspot::fabric {

struct FabricOptions {
  /// Transport endpoint the coordinator listens on / workers dial:
  /// "unix:PATH", "tcp:HOST:PORT", or a bare unix-socket path.
  std::string endpoint;
  LeaseConfig lease;
  /// Coordinator: with zero workers connected for this long, give up on
  /// the fleet and finish the run in-process (never hang).
  std::int64_t fallback_wait_ms = 3'000;
  /// Worker: how often to heartbeat while computing.
  std::int64_t heartbeat_interval_ms = 250;
  /// Worker: total wall clock spent failing to (re)connect before exiting.
  std::int64_t give_up_ms = 20'000;
  /// Worker: abandon a connection whose handshake never completes within
  /// this budget and reconnect. Over a faulty network the Hello (or the
  /// Welcome) can vanish into a one-way partition; without this deadline
  /// a partitioned worker would wait for the Welcome forever.
  std::int64_t handshake_timeout_ms = 2'000;
  /// Worker: reconnect backoff (interpreted in milliseconds).
  BackoffPolicy reconnect{/*base=*/100, /*cap=*/2'000, /*jitter=*/0.5};
  /// Worker: optional seeded network-fault injector; every connection the
  /// worker makes is wrapped. Test instrumentation — null in production.
  transport::NetFaultInjector* net_fault = nullptr;
  /// Lockstep lanes per batched group when a shard runs its fixed-policy
  /// configs (ShardExecutor); < 2 forces the scalar path. Execution-only:
  /// shard records are bit-identical for every width.
  std::size_t batch_width = 8;
};

/// Monotonic wall clock in milliseconds (CLOCK_MONOTONIC; immune to
/// wall-time jumps — all lease/heartbeat arithmetic uses this).
std::int64_t mono_ms();

/// Sleeps for `ms`, resuming across EINTR.
void sleep_ms(std::int64_t ms);

}  // namespace redspot::fabric
