// LeaseTable: the coordinator's pure shard-ownership state machine.
//
// All policy questions — who may compute which shards, when a lease has
// expired, when a silent worker is declared dead, whether a partial is
// fresh or a duplicate — live here, over an abstract millisecond clock the
// caller advances. No I/O, no threads, no wall time: the lease-expiry
// edge cases (worker dies after sending a partial but before the ack, a
// duplicate partial arriving after reassignment, a lease expiring on the
// exact heartbeat boundary) are unit-testable with a fake clock.
//
// Boundary convention, pinned by tests: a lease is live strictly while
// now < expires_at — at now == expires_at it is already expired. A worker
// is dead once now - last_seen >= heartbeat_timeout. Expiry returns every
// unfinished shard of the lease to the pending pool and bumps each
// shard's attempt counter on the next grant, which is what keys the
// ChaosPlan and makes kill schedules reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace redspot::fabric {

struct LeaseConfig {
  std::int64_t lease_duration_ms = 10'000;
  std::int64_t heartbeat_timeout_ms = 2'000;
  /// Max contiguous shards per grant; 1 keeps reassignment granular.
  std::uint64_t shards_per_lease = 1;
};

class LeaseTable {
 public:
  LeaseTable(std::uint64_t num_shards, LeaseConfig config);

  // -- worker sessions ------------------------------------------------
  /// Registers a session; returns its id (1-based, never reused).
  std::uint64_t add_worker(std::int64_t now_ms);
  /// Drops a session (connection closed): live leases return to the pool.
  void remove_worker(std::uint64_t worker, std::int64_t now_ms);
  bool has_worker(std::uint64_t worker) const;
  /// Any message from the worker refreshes its liveness.
  void touch(std::uint64_t worker, std::int64_t now_ms);

  // -- grants ----------------------------------------------------------
  struct Grant {
    std::uint64_t lease_id = 0;
    std::uint64_t shard_lo = 0;
    std::uint64_t shard_hi = 0;
    std::uint64_t attempt = 0;  ///< grants of shard_lo so far, 1-based
  };
  /// Leases the lowest run of pending shards to `worker`, or nullopt when
  /// the pool is empty or the worker already holds a lease (one lease per
  /// worker keeps partial streams trivially ordered).
  std::optional<Grant> grant(std::uint64_t worker, std::int64_t now_ms);

  // -- partials --------------------------------------------------------
  enum class Partial {
    kAccepted,   ///< first completion: fold + journal + ack
    kDuplicate,  ///< shard already done (reassignment raced): ack only
    kInvalid,    ///< shard out of range: drop the sender
  };
  /// Records shard completion regardless of which worker computed it — a
  /// partial from an expired lease is still a valid result (dedupe is by
  /// shard id; the caller has already checked the spec hash).
  Partial complete(std::uint64_t shard, std::int64_t now_ms);

  // -- time ------------------------------------------------------------
  struct Expired {
    std::vector<std::uint64_t> dead_workers;  ///< heartbeat-timed-out ids
    std::uint64_t reclaimed_shards = 0;       ///< returned to the pool
  };
  /// Advances policy to `now_ms`: expires overdue leases, declares silent
  /// workers dead (removing them; the caller closes their connections).
  Expired tick(std::int64_t now_ms);
  /// Earliest instant tick() could change anything (lease expiry or
  /// heartbeat deadline), or nullopt when nothing is pending — feeds the
  /// coordinator's poll() timeout.
  std::optional<std::int64_t> next_deadline(std::int64_t now_ms) const;

  // -- journal warm-up -------------------------------------------------
  /// Marks a shard done during journal replay (no lease involved).
  void mark_done(std::uint64_t shard);
  /// Restores a shard's attempt counter from a journaled lease record so
  /// chaos decisions keep their sequence across a coordinator restart.
  void record_attempt(std::uint64_t shard, std::uint64_t attempt);

  // -- introspection ---------------------------------------------------
  std::uint64_t num_shards() const { return num_shards_; }
  std::uint64_t done_count() const { return done_; }
  bool all_done() const { return done_ == num_shards_; }
  std::uint64_t attempts(std::uint64_t shard) const;
  std::uint64_t live_workers() const;

 private:
  enum class ShardState : std::uint8_t { kPending, kLeased, kDone };

  struct Lease {
    std::uint64_t id = 0;
    std::uint64_t worker = 0;
    std::uint64_t shard_lo = 0;
    std::uint64_t shard_hi = 0;
    std::int64_t expires_at = 0;
    std::uint64_t remaining = 0;  ///< shards in range not yet done
  };

  struct Worker {
    std::uint64_t id = 0;
    std::int64_t last_seen = 0;
    bool alive = false;
  };

  void release_lease(std::size_t index);
  const Lease* lease_of(std::uint64_t worker) const;

  std::uint64_t num_shards_;
  LeaseConfig config_;
  std::vector<ShardState> state_;
  std::vector<std::uint64_t> attempts_;
  std::vector<Lease> leases_;
  std::vector<Worker> workers_;
  std::uint64_t next_worker_ = 1;
  std::uint64_t next_lease_ = 1;
  std::uint64_t done_ = 0;
};

}  // namespace redspot::fabric
