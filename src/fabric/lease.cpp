#include "fabric/lease.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redspot::fabric {

LeaseTable::LeaseTable(std::uint64_t num_shards, LeaseConfig config)
    : num_shards_(num_shards),
      config_(config),
      state_(num_shards, ShardState::kPending),
      attempts_(num_shards, 0) {
  REDSPOT_CHECK(num_shards > 0);
  REDSPOT_CHECK(config_.lease_duration_ms > 0);
  REDSPOT_CHECK(config_.heartbeat_timeout_ms > 0);
  REDSPOT_CHECK(config_.shards_per_lease > 0);
}

std::uint64_t LeaseTable::add_worker(std::int64_t now_ms) {
  Worker w;
  w.id = next_worker_++;
  w.last_seen = now_ms;
  w.alive = true;
  workers_.push_back(w);
  return w.id;
}

void LeaseTable::remove_worker(std::uint64_t worker, std::int64_t now_ms) {
  (void)now_ms;
  for (std::size_t i = leases_.size(); i-- > 0;)
    if (leases_[i].worker == worker) release_lease(i);
  workers_.erase(std::remove_if(workers_.begin(), workers_.end(),
                                [&](const Worker& w) { return w.id == worker; }),
                 workers_.end());
}

bool LeaseTable::has_worker(std::uint64_t worker) const {
  for (const Worker& w : workers_)
    if (w.id == worker) return true;
  return false;
}

void LeaseTable::touch(std::uint64_t worker, std::int64_t now_ms) {
  for (Worker& w : workers_)
    if (w.id == worker) {
      w.last_seen = std::max(w.last_seen, now_ms);
      return;
    }
}

const LeaseTable::Lease* LeaseTable::lease_of(std::uint64_t worker) const {
  for (const Lease& l : leases_)
    if (l.worker == worker) return &l;
  return nullptr;
}

std::optional<LeaseTable::Grant> LeaseTable::grant(std::uint64_t worker,
                                                   std::int64_t now_ms) {
  if (!has_worker(worker) || lease_of(worker) != nullptr) return std::nullopt;
  std::uint64_t lo = 0;
  while (lo < num_shards_ && state_[lo] != ShardState::kPending) ++lo;
  if (lo == num_shards_) return std::nullopt;
  std::uint64_t hi = lo;
  while (hi < num_shards_ && hi - lo < config_.shards_per_lease &&
         state_[hi] == ShardState::kPending)
    ++hi;

  Lease l;
  l.id = next_lease_++;
  l.worker = worker;
  l.shard_lo = lo;
  l.shard_hi = hi;
  l.expires_at = now_ms + config_.lease_duration_ms;
  l.remaining = hi - lo;
  for (std::uint64_t s = lo; s < hi; ++s) {
    state_[s] = ShardState::kLeased;
    ++attempts_[s];
  }
  leases_.push_back(l);
  return Grant{l.id, lo, hi, attempts_[lo]};
}

LeaseTable::Partial LeaseTable::complete(std::uint64_t shard,
                                         std::int64_t now_ms) {
  (void)now_ms;
  if (shard >= num_shards_) return Partial::kInvalid;
  if (state_[shard] == ShardState::kDone) return Partial::kDuplicate;
  state_[shard] = ShardState::kDone;
  ++done_;
  for (std::size_t i = 0; i < leases_.size(); ++i) {
    Lease& l = leases_[i];
    if (shard >= l.shard_lo && shard < l.shard_hi) {
      if (--l.remaining == 0) {
        leases_.erase(leases_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      break;
    }
  }
  return Partial::kAccepted;
}

void LeaseTable::release_lease(std::size_t index) {
  const Lease l = leases_[index];
  leases_.erase(leases_.begin() + static_cast<std::ptrdiff_t>(index));
  for (std::uint64_t s = l.shard_lo; s < l.shard_hi; ++s)
    if (state_[s] == ShardState::kLeased) state_[s] = ShardState::kPending;
}

LeaseTable::Expired LeaseTable::tick(std::int64_t now_ms) {
  Expired out;
  // Expired leases first: now == expires_at counts as expired.
  for (std::size_t i = leases_.size(); i-- > 0;) {
    if (now_ms >= leases_[i].expires_at) {
      out.reclaimed_shards += leases_[i].remaining;
      release_lease(i);
    }
  }
  // Then silent workers; their leases (if any survived above) go too.
  std::vector<std::uint64_t> dead;
  for (const Worker& w : workers_)
    if (now_ms - w.last_seen >= config_.heartbeat_timeout_ms)
      dead.push_back(w.id);
  for (std::uint64_t id : dead) {
    for (std::size_t i = leases_.size(); i-- > 0;)
      if (leases_[i].worker == id) {
        out.reclaimed_shards += leases_[i].remaining;
        release_lease(i);
      }
    remove_worker(id, now_ms);
  }
  out.dead_workers = std::move(dead);
  return out;
}

std::optional<std::int64_t> LeaseTable::next_deadline(
    std::int64_t now_ms) const {
  std::optional<std::int64_t> best;
  const auto consider = [&](std::int64_t t) {
    if (!best || t < *best) best = t;
  };
  for (const Lease& l : leases_) consider(l.expires_at);
  for (const Worker& w : workers_)
    consider(w.last_seen + config_.heartbeat_timeout_ms);
  if (best && *best < now_ms) best = now_ms;
  return best;
}

void LeaseTable::mark_done(std::uint64_t shard) {
  REDSPOT_CHECK(shard < num_shards_);
  if (state_[shard] == ShardState::kDone) return;
  REDSPOT_CHECK(state_[shard] == ShardState::kPending);
  state_[shard] = ShardState::kDone;
  ++done_;
}

void LeaseTable::record_attempt(std::uint64_t shard, std::uint64_t attempt) {
  REDSPOT_CHECK(shard < num_shards_);
  attempts_[shard] = std::max(attempts_[shard], attempt);
}

std::uint64_t LeaseTable::attempts(std::uint64_t shard) const {
  REDSPOT_CHECK(shard < num_shards_);
  return attempts_[shard];
}

std::uint64_t LeaseTable::live_workers() const { return workers_.size(); }

}  // namespace redspot::fabric
