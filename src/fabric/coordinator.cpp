#include "fabric/coordinator.hpp"

#include <poll.h>

#include <cerrno>

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/transport/transport.hpp"
#include "ensemble/shard_exec.hpp"
#include "fabric/wire.hpp"
#include "journal/journal.hpp"
#include "journal/run_record.hpp"

namespace redspot::fabric {

namespace {

struct Conn {
  std::unique_ptr<transport::Stream> stream;
  FrameBuffer in;
  std::uint64_t worker = 0;       ///< 0 until the Hello/Welcome handshake
  bool dead = false;              ///< marked for removal at end of iteration
  std::int64_t accepted_at = 0;   ///< for the pre-handshake deadline
};

}  // namespace

struct Coordinator::Impl {
  const EnsembleSpec& spec;
  FabricOptions opt;
  RunJournal* journal;
  ShardExecutor exec;
  LeaseTable table;
  /// Canonical record per completed shard, whatever path delivered it.
  std::vector<std::optional<EnsembleShardRecord>> recs;
  CoordinatorReport report;
  std::unique_ptr<transport::Listener> listener;
  std::vector<Conn> conns;

  Impl(const EnsembleSpec& s, FabricOptions o, RunJournal* j)
      : spec(s),
        opt(std::move(o)),
        journal(j),
        exec(spec, opt.batch_width),
        table(spec.num_shards, opt.lease),
        recs(spec.num_shards) {
    const auto ep = transport::parse_endpoint(opt.endpoint);
    if (!ep)
      throw std::runtime_error("fabric: bad endpoint: " + opt.endpoint);
    // Bind in the constructor, before run(): callers that fork workers
    // right after constructing the coordinator must never race the bind,
    // and tcp:HOST:0 callers need local_endpoint() to learn the port.
    listener = transport::listen(*ep);
    replay_journal();
  }

  ~Impl() { close_all(); }

  void close_all() {
    conns.clear();
    listener.reset();
  }

  /// Restores completed shards and attempt counters from the journal.
  void replay_journal() {
    if (journal == nullptr) return;
    for (const std::string& payload : journal->records()) {
      const auto rec_type = record_type(payload);
      if (!rec_type) continue;
      switch (*rec_type) {
        case RecordType::kEnsembleShard: {
          auto rec = decode_ensemble_shard(payload);
          if (!rec || !exec.matches(*rec)) continue;
          const auto shard = static_cast<std::size_t>(rec->shard);
          if (recs[shard].has_value()) continue;
          if (!exec.audit(*rec)) {
            LOG_WARN << "fabric: journaled shard " << shard
                     << " failed the replay audit; will recompute";
            continue;
          }
          recs[shard] = std::move(rec);
          table.mark_done(shard);
          ++report.shards_replayed;
          break;
        }
        case RecordType::kFabricLease: {
          const auto lease = decode_fabric_lease(payload);
          if (!lease || lease->spec_hash != exec.spec_hash()) continue;
          for (std::uint64_t s = lease->shard_lo;
               s < lease->shard_hi && s < table.num_shards(); ++s)
            table.record_attempt(s, lease->attempt);
          break;
        }
        default:
          break;
      }
    }
  }

  /// Best-effort send; a dead peer marks the connection, never throws out.
  void send_to(Conn& c, const std::string& payload) {
    if (c.dead) return;
    try {
      transport::send_frame(*c.stream, payload);
    } catch (const std::runtime_error&) {
      c.dead = true;
    }
  }

  void dispatch(Conn& c, std::string_view payload, std::int64_t now) {
    const auto type = msg_type(payload);
    if (!type) {
      c.dead = true;
      return;
    }
    switch (*type) {
      case MsgType::kHello: {
        const auto hello = decode_hello(payload);
        if (!hello) {
          c.dead = true;
          return;
        }
        if (hello->protocol != kProtocolVersion ||
            hello->spec_hash != exec.spec_hash() ||
            hello->replications != spec.replications ||
            hello->num_shards != exec.num_shards() ||
            hello->num_configs != exec.num_configs()) {
          LOG_WARN << "fabric: rejecting worker pid " << hello->pid
                   << " (spec/protocol mismatch)";
          send_to(c, encode_reject({"spec or protocol mismatch"}));
          c.dead = true;
          return;
        }
        // Registration is idempotent: a duplicate-delivered Hello (or a
        // worker retrying an uncertain handshake) gets the same worker id
        // re-welcomed rather than a dead connection.
        if (c.worker == 0) {
          c.worker = table.add_worker(now);
          ++report.workers_seen;
        }
        send_to(c, encode_welcome({kProtocolVersion, exec.spec_hash(),
                                   c.worker}));
        break;
      }
      case MsgType::kHeartbeat:
        if (c.worker == 0) {
          c.dead = true;
          return;
        }
        table.touch(c.worker, now);
        break;
      case MsgType::kPartial:
        handle_partial(c, payload, now);
        break;
      case MsgType::kGoodbye: {
        const auto bye = decode_goodbye(payload);
        if (bye && !bye->reason.empty()) {
          LOG_WARN << "fabric: worker " << c.worker
                   << " left: " << bye->reason;
        }
        c.dead = true;
        break;
      }
      default:
        // Coordinator-bound traffic only; anything else is a broken peer.
        c.dead = true;
        break;
    }
  }

  void handle_partial(Conn& c, std::string_view payload, std::int64_t now) {
    const auto partial = decode_partial(payload);
    if (!partial || c.worker == 0) {
      c.dead = true;
      return;
    }
    table.touch(c.worker, now);
    // Trust nothing: the nested record must be a well-formed shard record
    // for this exact spec, claim the shard the envelope claims, and pass
    // the replay audit — the same bar journal replay sets.
    auto rec = decode_ensemble_shard(partial->record);
    if (!rec || !exec.matches(*rec) || rec->shard != partial->shard ||
        !exec.audit(*rec)) {
      LOG_WARN << "fabric: dropping worker " << c.worker
               << " (invalid partial for shard " << partial->shard << ")";
      c.dead = true;
      return;
    }
    switch (table.complete(partial->shard, now)) {
      case LeaseTable::Partial::kAccepted:
        // Durability before acknowledgement: once the ack is out the
        // worker may be killed, and this shard must survive us too.
        if (journal != nullptr) journal->append(partial->record);
        recs[static_cast<std::size_t>(partial->shard)] = std::move(rec);
        ++report.shards_from_fleet;
        send_to(c, encode_ack({partial->shard, false}));
        break;
      case LeaseTable::Partial::kDuplicate:
        // A reassignment raced the original owner — or the network
        // delivered the frame twice; the work is already folded, so just
        // confirm receipt.
        ++report.duplicate_partials;
        send_to(c, encode_ack({partial->shard, true}));
        break;
      case LeaseTable::Partial::kInvalid:
        c.dead = true;
        break;
    }
  }

  /// Grants a lease to every welcomed, idle worker. The grant is
  /// journaled before it is sent: the attempt counter must be durable
  /// before any chaos kill it triggers, or a restarted coordinator would
  /// replay a different kill schedule.
  void grant_leases(std::int64_t now) {
    for (Conn& c : conns) {
      if (c.dead || c.worker == 0) continue;
      const auto g = table.grant(c.worker, now);
      if (!g) continue;
      if (journal != nullptr) {
        FabricLeaseRecord rec;
        rec.spec_hash = exec.spec_hash();
        rec.lease_id = g->lease_id;
        rec.shard_lo = g->shard_lo;
        rec.shard_hi = g->shard_hi;
        rec.attempt = g->attempt;
        rec.worker = c.worker;
        journal->append(encode_fabric_lease(rec));
      }
      send_to(c, encode_lease(
                     {g->lease_id, g->shard_lo, g->shard_hi, g->attempt,
                      static_cast<std::uint64_t>(opt.lease.lease_duration_ms)}));
    }
  }

  void reap_dead(std::int64_t now, bool count_as_lost) {
    for (Conn& c : conns) {
      if (!c.dead) continue;
      if (c.worker != 0) {
        table.remove_worker(c.worker, now);
        if (count_as_lost) ++report.workers_lost;
      }
      c.stream.reset();
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const Conn& c) { return !c.stream; }),
                conns.end());
  }

  /// Zero-fleet escape hatch: compute the remaining shards right here,
  /// through the same executor and journal the fleet path uses.
  void run_fallback() {
    LOG_WARN << "fabric: no reachable workers for " << opt.fallback_wait_ms
             << " ms; finishing " << (table.num_shards() - table.done_count())
             << " shard(s) in-process";
    report.used_fallback = true;
    close_all();
    for (std::uint64_t s = 0; s < table.num_shards(); ++s) {
      if (recs[s].has_value()) continue;
      const std::string payload = exec.compute(static_cast<std::size_t>(s));
      auto rec = decode_ensemble_shard(payload);
      REDSPOT_CHECK_MSG(rec.has_value() && exec.matches(*rec),
                        "fallback shard record failed to decode");
      if (journal != nullptr) journal->append(payload);
      recs[s] = std::move(rec);
      table.complete(s, 0);
      ++report.shards_fallback;
    }
  }

  CoordinatorReport run() {
    std::int64_t last_fleet = mono_ms();

    while (!table.all_done()) {
      std::int64_t now = mono_ms();

      if (!conns.empty()) {
        last_fleet = now;
      } else if (now - last_fleet >= opt.fallback_wait_ms) {
        run_fallback();
        break;
      }

      // Sleep until something can happen: socket traffic, the next lease
      // or heartbeat deadline, or the fallback trigger. Capped at 1 s so
      // a logic error can never turn into an infinite sleep.
      std::int64_t wake = now + 1'000;
      if (const auto d = table.next_deadline(now)) wake = std::min(wake, *d);
      if (conns.empty())
        wake = std::min(wake, last_fleet + opt.fallback_wait_ms);

      std::vector<pollfd> fds;
      fds.push_back({listener->fd(), POLLIN, 0});
      for (const Conn& c : conns) fds.push_back({c.stream->fd(), POLLIN, 0});
      const int timeout = static_cast<int>(std::max<std::int64_t>(
          0, std::min<std::int64_t>(wake - now, 1'000)));
      const int rc = ::poll(fds.data(), fds.size(), timeout);
      if (rc < 0 && errno != EINTR)
        throw std::runtime_error("fabric: poll failed");

      now = mono_ms();

      if (fds[0].revents & POLLIN) {
        while (auto stream = listener->accept()) {
          Conn c;
          c.stream = std::move(stream);
          c.accepted_at = now;
          conns.push_back(std::move(c));
          // Newly pushed conn has no pollfd this round; next iteration
          // reads its Hello.
          if (conns.size() >= 1024) break;  // defensive fd cap
        }
      }

      for (std::size_t i = 0; i < conns.size() && i + 1 < fds.size(); ++i) {
        Conn& c = conns[i];
        if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        try {
          if (!c.stream->read_into(c.in)) c.dead = true;  // EOF
        } catch (const std::runtime_error&) {
          c.dead = true;
        }
        std::string frame;
        while (!c.dead && c.in.next(&frame) == FrameStatus::kOk)
          dispatch(c, frame, now);
        if (c.in.corrupt()) c.dead = true;
      }

      // A connection that never completes its Hello is not a slow worker
      // — it is a half-open peer (its Hello may have vanished into a
      // one-way partition). EOF never comes on such a socket; the
      // heartbeat deadline is the only honest death verdict.
      for (Conn& c : conns) {
        if (c.dead || c.worker != 0) continue;
        if (now - c.accepted_at >= opt.lease.heartbeat_timeout_ms) {
          LOG_WARN << "fabric: dropping connection that never said hello";
          c.dead = true;
        }
      }
      reap_dead(now, /*count_as_lost=*/true);

      const auto expired = table.tick(now);
      if (!expired.dead_workers.empty() || expired.reclaimed_shards > 0) {
        LOG_WARN << "fabric: reclaimed " << expired.reclaimed_shards
                 << " shard(s) from " << expired.dead_workers.size()
                 << " silent worker(s)";
        report.workers_lost += expired.dead_workers.size();
        for (Conn& c : conns)
          if (c.worker != 0 && !table.has_worker(c.worker)) c.dead = true;
        reap_dead(now, /*count_as_lost=*/false);
      }

      grant_leases(now);
      reap_dead(now, /*count_as_lost=*/true);
    }

    // Fleet path finished: release everyone still connected.
    for (Conn& c : conns)
      send_to(c, encode_done({table.num_shards()}));
    close_all();

    // Deterministic reduction, identical to the in-process runner: one
    // canonical record per shard, folded in shard order.
    std::vector<ShardExecutor::Acc> accs;
    accs.reserve(table.num_shards());
    for (std::uint64_t s = 0; s < table.num_shards(); ++s) {
      REDSPOT_CHECK_MSG(recs[s].has_value(), "fabric: shard never completed");
      ShardExecutor::Acc acc = exec.make_acc();
      exec.fold(*recs[s], acc);
      accs.push_back(std::move(acc));
    }
    report.result = exec.reduce(std::move(accs));
    report.result.shards_replayed =
        static_cast<std::size_t>(report.shards_replayed);
    report.result.shards_recomputed = static_cast<std::size_t>(
        report.shards_from_fleet + report.shards_fallback);
    return report;
  }
};

Coordinator::Coordinator(const EnsembleSpec& spec, FabricOptions options,
                         RunJournal* journal)
    : impl_(std::make_unique<Impl>(spec, std::move(options), journal)) {}

Coordinator::~Coordinator() = default;

std::string Coordinator::endpoint() const {
  return impl_->listener ? impl_->listener->local_endpoint().str()
                         : impl_->opt.endpoint;
}

CoordinatorReport Coordinator::run() { return impl_->run(); }

}  // namespace redspot::fabric
