// SLO-aware load shedding for the serve daemon (DESIGN.md §13).
//
// The batcher's coalescing bounds the *slide* work per tick, but the
// permutation search inside compute_advice is the unbounded part: a burst
// of advise requests beyond what the pool can absorb used to queue
// without limit, turning overload into unbounded latency for everyone.
//
// ShedGate turns that into graceful degradation. Every fresh answer is
// remembered as the last-good advice for its exact (spec, job) pair; when
// the batcher's queue depth reaches the configured bound, new requests are
// answered from that memory instead of being queued:
//
//   kAccept      — under the bound: compute fresh, as before.
//   kServeStale  — over the bound, last-good advice exists: reply now with
//                  the cached advice and the staleness marker set. The
//                  reply is bit-identical to the offline Adaptive decision
//                  for the model snapshot named by its as_of — degraded
//                  means *older*, never *wrong*.
//   kReject      — over the bound, nothing cached for this pair: answer
//                  Error "overloaded". The tenant retries; the daemon's
//                  queue stays bounded either way.
//
// The gate never mutates model state and keys strictly on the exact
// (spec_hash, JobParams) fingerprint, so a stale answer can only ever be a
// previous fresh answer to the same question.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "serve/advisor.hpp"

namespace redspot::serve {

struct ShedDecision {
  enum class Kind { kAccept, kServeStale, kReject };
  Kind kind = Kind::kAccept;
  /// Valid when kind == kServeStale: the last fresh advice computed for
  /// this exact (spec, job) pair.
  Advice advice;
};

struct ShedStats {
  std::uint64_t shed_stale = 0;
  std::uint64_t shed_rejected = 0;
  std::uint64_t queue_peak = 0;
};

class ShedGate {
 public:
  /// `queue_limit` is the batcher depth at which shedding starts; 0
  /// disables shedding entirely (every admit() accepts).
  explicit ShedGate(std::uint64_t queue_limit) : limit_(queue_limit) {}

  /// Decides the fate of one advise request given the current batcher
  /// queue depth. Thread-safe.
  ShedDecision admit(std::uint64_t spec_hash, const JobParams& job,
                     std::uint64_t queue_depth);

  /// Remembers `advice` as the last-good answer for (spec, job). Called
  /// from batch threads after every fresh compute. Thread-safe.
  void record(std::uint64_t spec_hash, const JobParams& job,
              const Advice& advice);

  ShedStats stats() const;

 private:
  static std::uint64_t key(std::uint64_t spec_hash, const JobParams& job);

  const std::uint64_t limit_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Advice> last_good_;
  ShedStats stats_;
};

}  // namespace redspot::serve
