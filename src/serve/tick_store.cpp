#include "serve/tick_store.hpp"

#include <mutex>
#include <utility>

#include "common/check.hpp"

namespace redspot::serve {

TickStore::TickStore(ZoneTraceSet seed, std::size_t capacity_samples)
    : traces_(std::move(seed)), capacity_(capacity_samples) {
  REDSPOT_CHECK_MSG(capacity_ >= traces_.zone(0).size(),
                    "tick capacity below the seed history length");
  traces_.reserve_total(capacity_);
}

SimTime TickStore::append(const std::vector<Money>& prices) {
  std::unique_lock lock(mutex_);
  REDSPOT_CHECK_MSG(traces_.zone(0).size() < capacity_,
                    "tick capacity exhausted");
  traces_.append_tick(prices);
  ++ticks_;
  return traces_.end();
}

std::size_t TickStore::num_zones() const {
  std::shared_lock lock(mutex_);
  return traces_.num_zones();
}

std::size_t TickStore::size() const {
  std::shared_lock lock(mutex_);
  return traces_.zone(0).size();
}

SimTime TickStore::end_time() const {
  std::shared_lock lock(mutex_);
  return traces_.end();
}

std::uint64_t TickStore::ticks() const {
  std::shared_lock lock(mutex_);
  return ticks_;
}

}  // namespace redspot::serve
